#!/usr/bin/env python3
"""Independently re-derive a CWC coverage table and compare it to the one
bench_cwc_compare emitted (cwc_coverage.csv), so CI catches any drift
between the C++ detection-probability math (src/fi/cwc.cpp) and the
documented model (docs/MITIGATIONS.md). Everything is recomputed from
scratch in Python — binomials, the code geometry, the enumerative
encoder, the escape probability and the ALU semantics — deliberately
sharing no code with the implementation under test:

  1. the code parameters in the CSV are the least n with
     C(n, floor(n/2)) >= 2^k and w = floor(n/2);
  2. every (ex_class, bit) row's coverage equals the brute-force mean of
     1 - prod(escape(d_block)) over ALL operand pairs in
     [0, 2^operand_bits)^2, where d_block is the Hamming distance of the
     affected block's codewords and escape(d) = C(d, d/2) / 2^d;
  3. the table is complete: one row per (ALU class, bit 0..31).

Mismatches beyond 1e-9 (the CSV round-trips doubles losslessly, so the
only tolerance needed is the float summation order) fail the check.

Usage: check_cwc.py CWC_COVERAGE_CSV
Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import csv
import math
import sys

ALU_CLASSES = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
               "mul", "cmp")
MASK32 = 0xFFFFFFFF


def fail(message):
    print(f"check_cwc: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def code_for_block_bits(k):
    """The smallest central constant-weight code holding k data bits."""
    n = k
    while math.comb(n, n // 2) < (1 << k):
        n += 1
    return n, n // 2


def encode_enumerative(n, w, index):
    """Lexicographic MSB-first unranking of `index` into an (n, w) word."""
    word = 0
    r = w
    for p in range(n - 1, -1, -1):
        if r == 0:
            break
        c = math.comb(p, r)
        if index >= c:
            word |= 1 << p
            index -= c
            r -= 1
    return word


def escape_probability(d):
    """P(a random weight-preserving capture set misses a distance-d pair):
    of the 2^d subsets of the d flipped positions, the C(d, d/2) balanced
    ones keep the codeword weight and escape the check."""
    if d == 0:
        return 1.0
    return math.comb(d, d // 2) / float(1 << d)


def alu_result(cls, a, b):
    if cls == "add":
        return (a + b) & MASK32
    if cls in ("sub", "cmp"):  # compare latches the difference
        return (a - b) & MASK32
    if cls == "and":
        return a & b
    if cls == "or":
        return a | b
    if cls == "xor":
        return a ^ b
    if cls == "sll":
        return (a << (b & 31)) & MASK32
    if cls == "srl":
        return a >> (b & 31)
    if cls == "sra":
        signed = a - (1 << 32) if a & (1 << 31) else a
        return (signed >> (b & 31)) & MASK32
    if cls == "mul":
        return (a * b) & MASK32
    raise ValueError(f"unknown ALU class {cls!r}")


def detect_probability(k, n, w, correct, corrupted, encode_cache):
    """1 - product of per-block escape probabilities over the blocks in
    which `corrupted` differs from `correct`."""
    if correct == corrupted:
        return 0.0
    escape = 1.0
    mask = (1 << k) - 1
    for block in range(32 // k):
        x = (correct >> (block * k)) & mask
        y = (corrupted >> (block * k)) & mask
        if x == y:
            continue
        d = bin(encode_cache[x] ^ encode_cache[y]).count("1")
        escape *= escape_probability(d)
    return 1.0 - escape


def expected_table(k, operand_bits):
    n, w = code_for_block_bits(k)
    encode_cache = [encode_enumerative(n, w, x) for x in range(1 << k)]
    span = 1 << operand_bits
    table = {}
    for cls in ALU_CLASSES:
        sums = [0.0] * 32
        for a in range(span):
            for b in range(span):
                r = alu_result(cls, a, b)
                for bit in range(32):
                    sums[bit] += detect_probability(k, n, w, r,
                                                    r ^ (1 << bit),
                                                    encode_cache)
        for bit in range(32):
            table[(cls, bit)] = sums[bit] / float(span * span)
    return n, w, table


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path, newline="") as f:
            rows = list(csv.DictReader(f))
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not rows:
        fail(f"{path}: empty table")

    k = int(rows[0]["block_bits"])
    operand_bits = int(rows[0]["operand_bits"])
    if operand_bits > 6:
        fail(f"operand_bits {operand_bits} too wide to brute-force here")
    n, w, expected = expected_table(k, operand_bits)

    seen = set()
    for row in rows:
        if int(row["block_bits"]) != k or int(row["operand_bits"]) != operand_bits:
            fail(f"{path}: mixed code/operand parameters in one table")
        if int(row["code_n"]) != n or int(row["code_w"]) != w:
            fail(f"code ({row['code_n']}, {row['code_w']}) for k={k}: "
                 f"expected the least central code ({n}, {w})")
        key = (row["ex_class"], int(row["bit"]))
        if key not in expected:
            fail(f"unexpected row {key}")
        if key in seen:
            fail(f"duplicate row {key}")
        seen.add(key)
        got = float(row["coverage"])
        want = expected[key]
        if abs(got - want) > 1e-9:
            fail(f"coverage({key[0]}, bit {key[1]}) = {got!r}, "
                 f"brute force says {want!r}")
    missing = set(expected) - seen
    if missing:
        fail(f"{len(missing)} missing rows, e.g. {sorted(missing)[0]}")

    print(f"check_cwc: OK: {len(rows)} rows, cwc{k} = ({n}, {w}) code, "
          f"operand_bits {operand_bits}, all coverages match brute force")
    return 0


if __name__ == "__main__":
    sys.exit(main())
