#!/usr/bin/env python3
"""Validate a fault-forensics artifact directory (bench `--forensics DIR`
or `sfi_forensics`), so CI catches a malformed or self-inconsistent
artifact before a human reads the vulnerability tables:

  1. records.bin has the pinned header (magic "SFIFRNS1", 30-byte
     records) and its payload size matches the declared record count;
  2. records are sorted by (point_id, trial) — the drain order that
     makes the stream byte-identical across worker thread counts — and
     cycles are non-decreasing within a trial;
  3. every record's detector fate is in the pinned vocabulary (0 none,
     1 razor-detected, 2 razor-escaped, 3 cwc-detected, 4 cwc-escaped);
  4. per-point record counts reconcile with the `injections` totals in
     forensics.json, and the stream total matches `record_count`;
  5. the outcome taxonomy adds up per point, in forensics.json AND in
     forensics_points.csv: trials == sum(outcome classes),
     hang == trials - finished, sdc == finished - correct,
     masked + latent_corrupt + detected == correct, and a Detected
     outcome requires razor detections (and vice versa a point with no
     razor detections must classify none).

Usage: check_forensics.py FORENSICS_DIR
Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import csv
import json
import os
import struct
import sys

MAGIC = b"SFIFRNS1"
RECORD_BYTES = 30
OUTCOME_CLASSES = ("masked", "latent_corrupt", "sdc", "hang", "detected")
RAZOR_FATES = (0, 1, 2, 3, 4)  # none / razor det+esc / cwc det+esc


def fail(message):
    print(f"check_forensics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def read_records(path):
    """Returns the list of (point_id, trial, cycle, razor) tuples."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    if len(blob) < 16:
        fail(f"{path}: truncated header ({len(blob)} bytes)")
    if blob[:8] != MAGIC:
        fail(f"{path}: bad magic {blob[:8]!r}")
    record_size, count = struct.unpack_from("<II", blob, 8)
    if record_size != RECORD_BYTES:
        fail(f"{path}: record size {record_size}, expected {RECORD_BYTES}")
    if len(blob) != 16 + count * RECORD_BYTES:
        fail(f"{path}: payload is {len(blob) - 16} bytes, header declares "
             f"{count} x {RECORD_BYTES}")
    records = []
    for i in range(count):
        trial, point_id, cycle, _pc, _window = struct.unpack_from(
            "<IIQIH", blob, 16 + i * RECORD_BYTES)
        razor = blob[16 + i * RECORD_BYTES + 28]
        records.append((point_id, trial, cycle, razor))
    return records


def check_record_stream(records, path):
    prev_point, prev_trial, prev_cycle = -1, -1, -1
    per_point = {}
    for index, (point_id, trial, cycle, razor) in enumerate(records):
        where = f"{path}: record #{index}"
        if razor not in RAZOR_FATES:
            fail(f"{where}: unknown razor fate {razor}")
        if point_id < prev_point:
            fail(f"{where}: point_id {point_id} after {prev_point} "
                 f"(stream not drained in point order)")
        if point_id == prev_point:
            if trial < prev_trial:
                fail(f"{where}: trial {trial} after {prev_trial} within "
                     f"point {point_id} (stream not drained in trial order)")
            if trial == prev_trial and cycle < prev_cycle:
                fail(f"{where}: cycle {cycle} after {prev_cycle} within "
                     f"trial {trial} of point {point_id}")
        else:
            prev_trial, prev_cycle = -1, -1
        prev_point, prev_trial, prev_cycle = point_id, trial, cycle
        per_point[point_id] = per_point.get(point_id, 0) + 1
    return per_point


def check_taxonomy(label, trials, finished, correct, outcomes,
                   razor_detected, razor_escaped):
    if sum(outcomes.values()) != trials:
        fail(f"{label}: outcome classes sum to {sum(outcomes.values())}, "
             f"trials is {trials}")
    if outcomes["hang"] != trials - finished:
        fail(f"{label}: hang {outcomes['hang']} != trials - finished "
             f"({trials} - {finished})")
    if outcomes["sdc"] != finished - correct:
        fail(f"{label}: sdc {outcomes['sdc']} != finished - correct "
             f"({finished} - {correct})")
    survived = outcomes["masked"] + outcomes["latent_corrupt"] + \
        outcomes["detected"]
    if survived != correct:
        fail(f"{label}: masked + latent_corrupt + detected = {survived}, "
             f"correct is {correct}")
    if outcomes["detected"] > 0 and razor_detected == 0:
        fail(f"{label}: {outcomes['detected']} Detected trials but zero "
             f"razor detections")
    if razor_detected > 0 and outcomes["detected"] == 0 and \
            razor_escaped == 0 and correct == trials:
        # Detected only loses to Hang/SDC in the precedence order. With
        # no escapes and every trial surviving, the trials that carried
        # the detections finished correctly, so at least one must
        # classify Detected.
        fail(f"{label}: {razor_detected} razor detections, no escapes, "
             f"all {trials} trials correct — yet no trial classified "
             f"Detected")


def load_points_csv(path):
    """Returns {point_id: row-dict} from forensics_points.csv."""
    rows = {}
    try:
        with open(path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                fail(f"{path}: empty file")
            for number, row in enumerate(reader, start=2):
                if None in row or any(cell is None for cell in row.values()):
                    fail(f"{path}:{number}: cell count disagrees with "
                         f"the header")
                rows[int(row["point_id"])] = row
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    return rows


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    directory = sys.argv[1]

    records_path = os.path.join(directory, "records.bin")
    records = read_records(records_path)
    per_point_records = check_record_stream(records, records_path)

    json_path = os.path.join(directory, "forensics.json")
    try:
        with open(json_path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {json_path}: {err}")
    if doc.get("schema") != "sfi-forensics":
        fail(f"{json_path}: unexpected schema {doc.get('schema')!r}")
    if doc.get("record_count") != len(records):
        fail(f"{json_path}: record_count {doc.get('record_count')}, "
             f"records.bin holds {len(records)}")

    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail(f"{json_path}: missing or empty points array")
    csv_rows = load_points_csv(os.path.join(directory,
                                            "forensics_points.csv"))
    if len(csv_rows) != len(points):
        fail(f"forensics_points.csv has {len(csv_rows)} points, "
             f"forensics.json has {len(points)}")

    total_trials = 0
    for point in points:
        pid = point["point_id"]
        label = f"{json_path}: point {pid} ({point.get('panel')})"
        outcomes = point["outcomes"]
        if sorted(outcomes) != sorted(OUTCOME_CLASSES):
            fail(f"{label}: outcome keys {sorted(outcomes)}")
        check_taxonomy(label, point["trials_sampled"], point["finished"],
                       point["correct"], outcomes, point["razor_detected"],
                       point["razor_escaped"])
        if per_point_records.get(pid, 0) != point["injections"]:
            fail(f"{label}: {per_point_records.get(pid, 0)} records in the "
                 f"stream, injections says {point['injections']}")
        total_trials += point["trials_sampled"]

        row = csv_rows.get(pid)
        if row is None:
            fail(f"forensics_points.csv: point {pid} missing")
        csv_label = f"forensics_points.csv: point {pid} ({row['panel']})"
        check_taxonomy(csv_label, int(row["trials"]), int(row["finished"]),
                       int(row["correct"]),
                       {cls: int(row[cls]) for cls in OUTCOME_CLASSES},
                       int(row["razor_detected"]),
                       int(row["razor_escaped"]))
        for cls in OUTCOME_CLASSES:
            if int(row[cls]) != outcomes[cls]:
                fail(f"{csv_label}: {cls} {row[cls]} disagrees with "
                     f"forensics.json {outcomes[cls]}")
        if int(row["injections"]) != point["injections"]:
            fail(f"{csv_label}: injections {row['injections']} disagrees "
                 f"with forensics.json {point['injections']}")

    if doc.get("trials") != total_trials:
        fail(f"{json_path}: trials {doc.get('trials')} != per-point sum "
             f"{total_trials}")

    print(f"check_forensics: OK: {len(records)} records across "
          f"{len(points)} point(s), {total_trials} trials, taxonomy "
          f"reconciles")


if __name__ == "__main__":
    main()
