#!/usr/bin/env python3
"""CI gate for the adaptive sampling engine (ISSUE 4, sampling-speedup job).

Compares two sfi_campaign manifests of the same campaign — one run with
the fixed-N policy, one with --sampling ci — and asserts:

  1. the adaptive run spent strictly fewer Monte-Carlo trials in total;
  2. every frequency panel's adaptive PoFF lies inside the fixed-N run's
     confidence interval, taken as +/- one grid step around the fixed-N
     PoFF (the dense estimate is only step-accurate, and each grid point
     carries its own Wilson uncertainty on top);
  3. both runs completed.

Writes a BENCH_sampling.json artifact (trial budgets, wall clock,
per-panel PoFFs) so the perf trajectory of the sampling engine is
recorded per commit.

Usage:
  check_sampling_speedup.py FIXED_MANIFEST ADAPTIVE_MANIFEST OUT_JSON [GRID_STEP_MHZ]
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def panel_map(manifest):
    return {p["name"]: p for p in manifest["panels"] if p["kind"] != "cdf"}


def main():
    if len(sys.argv) not in (4, 5):
        sys.exit(__doc__)
    fixed = load(sys.argv[1])
    adaptive = load(sys.argv[2])
    out_path = sys.argv[3]
    grid_step = float(sys.argv[4]) if len(sys.argv) == 5 else 0.5

    failures = []
    for manifest, label in ((fixed, "fixed"), (adaptive, "adaptive")):
        if not manifest["run"]["completed"]:
            failures.append(f"{label} run did not complete")

    fixed_trials = fixed["run"]["trials_spent"]
    adaptive_trials = adaptive["run"]["trials_spent"]
    if not adaptive_trials < fixed_trials:
        failures.append(
            f"adaptive run spent {adaptive_trials} trials, expected fewer "
            f"than the fixed-N run's {fixed_trials}")

    panels = []
    for name, fixed_panel in panel_map(fixed).items():
        adaptive_panel = panel_map(adaptive).get(name)
        if adaptive_panel is None:
            failures.append(f"panel {name} missing from the adaptive run")
            continue
        entry = {
            "panel": name,
            "fixed_trials": fixed_panel["trials_spent"],
            "adaptive_trials": adaptive_panel["trials_spent"],
            "fixed_poff_mhz": fixed_panel.get("poff_mhz"),
            "adaptive_poff_mhz": adaptive_panel.get("poff_mhz"),
        }
        panels.append(entry)
        f_poff, a_poff = entry["fixed_poff_mhz"], entry["adaptive_poff_mhz"]
        if f_poff is None and a_poff is None:
            continue  # PoFF above the swept range in both runs: consistent
        if (f_poff is None) != (a_poff is None):
            failures.append(
                f"panel {name}: PoFF found in only one run "
                f"(fixed={f_poff}, adaptive={a_poff})")
            continue
        if abs(a_poff - f_poff) > grid_step:
            failures.append(
                f"panel {name}: adaptive PoFF {a_poff} MHz outside the "
                f"fixed-N confidence interval {f_poff} +/- {grid_step} MHz")

    report = {
        "campaign": fixed["campaign"],
        "grid_step_mhz": grid_step,
        "fixed": {
            "trials_spent": fixed_trials,
            "wall_clock_s": fixed["run"]["wall_clock_s"],
        },
        "adaptive": {
            "trials_spent": adaptive_trials,
            "wall_clock_s": adaptive["run"]["wall_clock_s"],
        },
        "trials_saved_percent":
            round(100.0 * (1.0 - adaptive_trials / fixed_trials), 2)
            if fixed_trials else None,
        "panels": panels,
        "ok": not failures,
        "failures": failures,
    }
    with open(out_path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))

    if failures:
        sys.exit("sampling-speedup check FAILED:\n  " + "\n  ".join(failures))
    saved = report["trials_saved_percent"]
    print(f"sampling-speedup check passed: {adaptive_trials} vs "
          f"{fixed_trials} trials ({saved}% saved)")


if __name__ == "__main__":
    main()
