#!/usr/bin/env python3
"""CI gate for the trial-kernel perf trajectory (ISSUE 5, perf-regression job).

Compares a BENCH_core.json produced by bench/sfi_perf against the
checked-in scripts/perf_baseline.json and fails on:

  1. schema drift (the report's schema/schema_version must match what the
     baseline was recorded against);
  2. dispatch drift: when the baseline names a "report_dispatch", the
     report must have been benched under that ISS execution engine —
     numbers from `sfi_perf --dispatch legacy` must never be compared
     against a baseline recorded for the threaded interpreter;
  3. throughput regression: for every kernel label in the baseline, the
     current serial (1-thread) trials/sec must be at least
     min_ratio * baseline — the ratio absorbs runner-to-runner noise
     while still catching the multi-x slowdowns the gate exists for;
  4. absolute floors: kernels listed under "min_abs" must additionally
     clear a hard trials/sec floor. These pin the threaded-dispatch
     speedup itself: a change that silently reverts the clean-sim path
     to legacy-era throughput passes the ratio check on a fast runner
     but cannot pass a floor set ~3x above the legacy engine's rate
     (regenerate alongside the baseline when the runner class changes);
  5. fast-path erosion: the within-run zero-fault fast-path speedup
     (machine-independent, unlike absolute trials/sec) must stay above
     min_fastpath_speedup;
  6. fault-sampling erosion: when the baseline carries a "fault_sampling"
     object, the report's batched corrupt() throughput must clear
     min_batched_ops_per_sec and the within-run batched/scalar ratio
     must stay above min_batched_speedup (the batched path must never
     regress below the scalar reference it replaced).

Kernels present in the report but not in the baseline are reported
informationally — add them to the baseline when they stabilize. When the
runner fleet changes speed class, regenerate the baseline with
`sfi_perf` on the new runners and commit it (the "reference" field
documents the provenance).

Usage:
  check_perf_regression.py BENCH_CORE_JSON BASELINE_JSON
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def serial_trials_per_sec(kernel):
    for sample in kernel["scaling"]:
        if sample["threads"] == 1:
            return sample["trials_per_sec"]
    return None


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    report = load(sys.argv[1])
    baseline = load(sys.argv[2])

    failures = []
    notes = []

    if report.get("schema") != baseline.get("report_schema"):
        failures.append(
            f"schema mismatch: report {report.get('schema')!r} vs baseline "
            f"expectation {baseline.get('report_schema')!r}")
    if report.get("schema_version") != baseline.get("report_schema_version"):
        failures.append(
            f"schema_version mismatch: report {report.get('schema_version')} "
            f"vs baseline expectation {baseline.get('report_schema_version')}"
            " (regenerate the baseline alongside schema bumps)")

    want_dispatch = baseline.get("report_dispatch")
    have_dispatch = report.get("config", {}).get("dispatch")
    if want_dispatch is not None and have_dispatch != want_dispatch:
        failures.append(
            f"dispatch mismatch: report benched {have_dispatch!r} but the "
            f"baseline was recorded for {want_dispatch!r}")

    min_ratio = baseline["min_ratio"]
    min_abs = baseline.get("min_abs", {})
    kernels = {k["label"]: k for k in report.get("kernels", [])}
    for label, base_tps in sorted(baseline["kernels"].items()):
        kernel = kernels.pop(label, None)
        if kernel is None:
            failures.append(f"kernel {label!r} missing from the report")
            continue
        tps = serial_trials_per_sec(kernel)
        if tps is None:
            failures.append(f"kernel {label!r} has no 1-thread sample")
            continue
        ratio = tps / base_tps if base_tps else float("inf")
        line = (f"{label:28s} {tps:12.1f} trials/s  baseline {base_tps:12.1f}"
                f"  ratio {ratio:6.2f}")
        floor = min_abs.get(label)
        if ratio < min_ratio:
            failures.append(
                f"{line}  < min_ratio {min_ratio} (perf regression)")
        elif floor is not None and tps < floor:
            failures.append(
                f"{line}  < absolute floor {floor} trials/s "
                "(threaded-dispatch speedup regression)")
        else:
            notes.append(line)
    for label in sorted(kernels):
        notes.append(f"{label:28s} (not in baseline; informational)")

    speedup = report.get("fast_path", {}).get("speedup", 0.0)
    floor = baseline["min_fastpath_speedup"]
    if speedup < floor:
        failures.append(
            f"zero-fault fast-path speedup {speedup:.1f}x below the "
            f"machine-independent floor {floor}x")
    else:
        notes.append(f"{'fast-path speedup':28s} {speedup:12.1f}x  "
                     f"(floor {floor}x)")

    fs_base = baseline.get("fault_sampling")
    if fs_base is not None:
        fs = report.get("fault_sampling", {})
        batched = fs.get("batched_ops_per_sec", 0.0)
        batched_speedup = fs.get("batched_speedup", 0.0)
        ops_floor = fs_base.get("min_batched_ops_per_sec")
        if ops_floor is not None and batched < ops_floor:
            failures.append(
                f"batched fault-sampling throughput {batched:.3g} ops/s "
                f"below the floor {ops_floor:.3g}")
        ratio_floor = fs_base.get("min_batched_speedup")
        if ratio_floor is not None and batched_speedup < ratio_floor:
            failures.append(
                f"batched/scalar fault-sampling speedup "
                f"{batched_speedup:.2f}x below the floor {ratio_floor}x")
        notes.append(
            f"{'fault-sampling batched':28s} {batched:12.3g} ops/s  "
            f"speedup {batched_speedup:5.2f}x  avx2 {fs.get('avx2', False)}")

    for line in notes:
        print("  " + line)
    if failures:
        sys.exit("perf-regression check FAILED:\n  " + "\n  ".join(failures))
    print(f"perf-regression check passed "
          f"({len(baseline['kernels'])} kernels, min_ratio {min_ratio})")


if __name__ == "__main__":
    main()
