#!/usr/bin/env python3
"""Validate a Chrome trace-event export from `sfi_trace --export-chrome`.

Checks the invariants trace viewers (Perfetto / chrome://tracing)
actually require, so CI catches a malformed export before a human loads
it:

  1. the file is valid JSON with a `traceEvents` array;
  2. every event uses the pinned phase vocabulary (B/E/i/X/C/M);
  3. B/E spans nest properly per (pid, tid) lane and every B is closed;
  4. X events carry a non-negative `dur`, instants carry scope "t";
  5. lanes referenced by events are named via thread_name metadata.

Usage: check_trace.py TRACE_JSON
Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

ALLOWED_PHASES = {"B", "E", "i", "X", "C", "M"}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)

    try:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {sys.argv[1]}: {err}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("missing or empty traceEvents array")

    stacks = {}       # (pid, tid) -> [open span names]
    named_lanes = set()
    used_lanes = set()
    counts = {ph: 0 for ph in ALLOWED_PHASES}

    for index, event in enumerate(events):
        where = f"event #{index}"
        ph = event.get("ph")
        if ph not in ALLOWED_PHASES:
            fail(f"{where}: unknown phase {ph!r}")
        counts[ph] += 1
        lane = (event.get("pid"), event.get("tid"))

        if ph == "M":
            if event.get("name") == "thread_name":
                named_lanes.add(lane)
            continue

        used_lanes.add(lane)
        if ph == "B":
            stacks.setdefault(lane, []).append(event.get("name"))
        elif ph == "E":
            stack = stacks.get(lane, [])
            if not stack:
                fail(f"{where}: E {event.get('name')!r} without open B "
                     f"on lane {lane}")
            opened = stack.pop()
            if opened != event.get("name"):
                fail(f"{where}: E {event.get('name')!r} closes B "
                     f"{opened!r} on lane {lane}")
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: X event with bad dur {dur!r}")
        elif ph == "i":
            if event.get("s") not in ("t", "p", "g"):
                fail(f"{where}: instant without a valid scope")

    for lane, stack in stacks.items():
        if stack:
            fail(f"unclosed span(s) on lane {lane}: {stack}")
    unnamed = used_lanes - named_lanes
    if unnamed:
        fail(f"lanes without thread_name metadata: {sorted(unnamed)}")
    if counts["B"] != counts["E"]:
        fail(f"span imbalance: {counts['B']} B vs {counts['E']} E")

    total = sum(counts.values())
    print(f"check_trace: OK: {total} events "
          f"({counts['B']} spans, {counts['X']} worker slices, "
          f"{counts['i']} instants, {counts['C']} counters) on "
          f"{len(used_lanes)} lane(s)")


if __name__ == "__main__":
    main()
