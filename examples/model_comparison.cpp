// Compares all four fault models (A, B, B+, C) on the same benchmark and
// operating point — the paper's core argument in one run: purely random
// FI (A) is blind to the operating point, STA-based FI (B/B+) is an
// all-or-nothing threshold, and only the statistical model C resolves the
// transition region.
#include <iostream>

#include "sfi/sfi.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    const Cli cli(argc, argv);

    CoreModelConfig config;
    config.cdf_cache_path = "sfi_cdf_cache.bin";
    CharacterizedCore core(config);

    const auto bench = make_benchmark(BenchmarkId::Median);
    const double fsta = core.sta_fmax_mhz(0.7);

    McConfig mc;
    mc.trials = static_cast<std::size_t>(cli.get_int("trials", 40));
    mc.threads = cli.get_threads();

    OperatingPoint base;
    base.vdd = 0.7;
    base.noise.sigma_mv = cli.get_double("sigma", 10.0);

    std::cout << "median benchmark, Vdd = 0.7 V, sigma = "
              << fmt_fixed(base.noise.sigma_mv, 0)
              << " mV; STA limit = " << fmt_fixed(fsta, 1) << " MHz\n\n";

    TextTable table({"model", "f [MHz]", "finished", "correct", "FI/kCycle",
                     "rel. error %"});
    for (const double rel : {0.95, 1.00, 1.05, 1.10, 1.20}) {
        const double f = fsta * rel;
        // Model A's fixed probability has no physical link to f at all;
        // we give it a rate that matches model C's FI rate at the STA
        // limit so the comparison is as favorable as possible.
        auto model_a = core.make_model_a(1e-5);
        auto model_b = core.make_model_b();
        auto model_c = core.make_model_c();
        const std::vector<FaultModel*> models = {model_a.get(), model_b.get(),
                                                 model_c.get()};
        for (FaultModel* model : models) {
            MonteCarloRunner runner(*bench, *model, mc);
            OperatingPoint point = base;
            point.freq_mhz = f;
            const PointSummary s = runner.run_point(point);
            table.add_row({model->name(), fmt_fixed(f, 1),
                           fmt_pct(s.finished_frac()), fmt_pct(s.correct_frac()),
                           fmt_sci(s.fi_rate, 3),
                           s.finished_count ? fmt_fixed(s.mean_error, 2) : "n/a"});
        }
    }
    table.print(std::cout);
    std::cout << "\nNote how A is identical at every frequency, B/B+ jump "
                 "from perfect to dead,\nand C resolves a usable transition "
                 "region (the paper's contribution).\n";
    return 0;
}
