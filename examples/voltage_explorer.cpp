// Voltage/quality exploration (the paper's §4.4 use case as a tool):
// given a benchmark and a quality budget, find how much supply voltage —
// and therefore power — can be saved at the nominal frequency.
//
//   $ ./examples/voltage_explorer --benchmark kmeans --sigma 10
//         --max-error 5 --trials 60 [--threads 0]
#include <iostream>

#include "sfi/sfi.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    const Cli cli(argc, argv);

    CoreModelConfig config;
    config.cdf_cache_path = "sfi_cdf_cache.bin";
    CharacterizedCore core(config);
    const PowerModel power;

    const std::string name = cli.get("benchmark", "median");
    std::unique_ptr<Benchmark> bench;
    for (const BenchmarkId id : all_benchmarks())
        if (name == benchmark_name(id)) bench = make_benchmark(id);
    if (!bench) {
        std::cerr << "unknown benchmark '" << name << "'\n";
        return 1;
    }

    const double max_error = cli.get_double("max-error", 5.0);
    const double sigma = cli.get_double("sigma", 10.0);
    const double v_nom = 0.7;
    const double f_nom = core.sta_fmax_mhz(v_nom);

    auto model = core.make_model_c();
    McConfig mc;
    mc.trials = static_cast<std::size_t>(cli.get_int("trials", 60));
    mc.threads = cli.get_threads();
    MonteCarloRunner runner(*bench, *model, mc);

    OperatingPoint base;
    base.freq_mhz = f_nom;
    base.vdd = v_nom;
    base.noise.sigma_mv = sigma;

    std::cout << bench->name() << " at fixed " << fmt_fixed(f_nom, 1)
              << " MHz, sigma = " << fmt_fixed(sigma, 0)
              << " mV; quality budget: " << fmt_fixed(max_error, 1) << " "
              << bench->error_unit() << "\n\n";

    TextTable table({"Vdd [V]", "norm. power", "finished", "correct",
                     bench->error_unit(), "within budget"});
    double best_vdd = v_nom;
    const auto sweep = voltage_sweep(runner, base, linspace(0.645, v_nom, 12));
    for (auto it = sweep.rbegin(); it != sweep.rend(); ++it) {
        const PointSummary& p = *it;
        const bool ok =
            p.finished_frac() >= 0.999 && p.mean_error <= max_error;
        if (ok && p.point.vdd < best_vdd) best_vdd = p.point.vdd;
        table.add_row({fmt_fixed(p.point.vdd, 3),
                       fmt_fixed(power.normalized_power(p.point.vdd, v_nom), 3),
                       fmt_pct(p.finished_frac()), fmt_pct(p.correct_frac()),
                       fmt_sci(p.mean_error, 3), ok ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nlowest voltage meeting the budget: "
              << fmt_fixed(best_vdd, 3) << " V  ->  "
              << fmt_fixed(100.0 * power.normalized_power(best_vdd, v_nom), 1)
              << "% of nominal core power ("
              << fmt_fixed(power.core_power_uw(best_vdd, f_nom) / 1000.0, 2)
              << " mW)\n";
    return 0;
}
