// Shows how to bring your own kernel: write ORBIS32 assembly with the
// kernel markers, assemble it, run it under fault injection and evaluate
// a custom quality metric — everything a user needs to characterize their
// own workload's voltage/frequency resilience.
//
// The kernel here is a 64-element integer dot product.
#include <iostream>
#include <sstream>

#include "sfi/sfi.hpp"

namespace {

constexpr std::size_t kElements = 64;

/// Generates the guest program with embedded input data.
std::string dot_product_asm(const std::vector<std::uint32_t>& a,
                            const std::vector<std::uint32_t>& b) {
    std::ostringstream os;
    os << ".entry _start\n"
          "_start:\n"
          "  l.movhi r16,hi(vec_a)\n  l.ori r16,r16,lo(vec_a)\n"
          "  l.movhi r17,hi(vec_b)\n  l.ori r17,r17,lo(vec_b)\n"
          "  l.movhi r18,hi(out)\n  l.ori r18,r18,lo(out)\n"
          "  l.nop 0x10                # kernel begin: FI window opens\n"
          "  l.addi r13,r0,0           # acc\n"
          "  l.addi r14,r0," << kElements << "\n"
          "loop:\n"
          "  l.lwz  r10,0(r16)\n"
          "  l.lwz  r11,0(r17)\n"
          "  l.mul  r12,r10,r11\n"
          "  l.add  r13,r13,r12\n"
          "  l.addi r16,r16,4\n"
          "  l.addi r17,r17,4\n"
          "  l.addi r14,r14,-1\n"
          "  l.sfnei r14,0\n"
          "  l.bf   loop\n"
          "  l.sw   0(r18),r13\n"
          "  l.nop 0x11                # kernel end\n"
          "  l.addi r3,r0,0\n"
          "  l.nop 0x1                 # exit\n"
          ".org 0x8000\n";
    os << "vec_a:\n";
    for (const std::uint32_t v : a) os << "  .word " << v << "\n";
    os << "vec_b:\n";
    for (const std::uint32_t v : b) os << "  .word " << v << "\n";
    os << "out:\n  .word 0\n";
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sfi;
    const Cli cli(argc, argv);

    // Input data and the native golden result.
    Rng data_rng(7);
    std::vector<std::uint32_t> a(kElements), b(kElements);
    for (auto& v : a) v = static_cast<std::uint32_t>(data_rng.bounded(1 << 12));
    for (auto& v : b) v = static_cast<std::uint32_t>(data_rng.bounded(1 << 12));
    std::uint32_t golden = 0;
    for (std::size_t i = 0; i < kElements; ++i) golden += a[i] * b[i];

    // Assemble and sanity-check fault-free.
    const Program program = assemble(dot_product_asm(a, b));
    Memory memory;
    Cpu cpu(memory);
    cpu.reset(program);
    const RunResult golden_run = cpu.run();
    if (!golden_run.finished() ||
        memory.read_u32(program.symbol("out")) != golden) {
        std::cerr << "fault-free run failed!\n";
        return 1;
    }
    std::cout << "dot-product kernel: " << golden_run.kernel_cycles
              << " kernel cycles, golden = " << golden << "\n\n";

    // Characterize and inject.
    CoreModelConfig config;
    config.cdf_cache_path = "sfi_cdf_cache.bin";
    CharacterizedCore core(config);
    auto model = core.make_model_c();

    const std::size_t trials =
        static_cast<std::size_t>(cli.get_int("trials", 60));
    TextTable table({"f [MHz]", "finished", "exact", "mean |rel. error|"});
    for (const double f : {700.0, 720.0, 740.0, 760.0, 780.0, 800.0}) {
        OperatingPoint point;
        point.freq_mhz = f;
        point.vdd = 0.7;
        point.noise.sigma_mv = 10.0;
        model->set_operating_point(point);

        std::size_t finished = 0, exact = 0;
        RunningStats rel_error;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            model->reseed(1000 + trial);
            model->reset_stats();
            cpu.set_fault_hook(model.get());
            cpu.reset(program);
            const RunResult run = cpu.run(golden_run.cycles * 8);
            cpu.set_fault_hook(nullptr);
            if (!run.finished()) continue;
            ++finished;
            const std::uint32_t out = memory.read_u32(program.symbol("out"));
            if (out == golden) ++exact;
            rel_error.add(std::abs(static_cast<double>(out) -
                                   static_cast<double>(golden)) /
                          static_cast<double>(golden));
        }
        table.add_row({fmt_fixed(f, 0),
                       fmt_pct(static_cast<double>(finished) / trials),
                       fmt_pct(static_cast<double>(exact) / trials),
                       finished ? fmt_sci(rel_error.mean(), 3) : "n/a"});
    }
    table.print(std::cout);
    return 0;
}
