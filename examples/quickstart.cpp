// Quickstart: characterize the core, run one benchmark under statistical
// fault injection (model C), and print the four application metrics.
//
//   $ ./examples/quickstart [--freq 760] [--vdd 0.7] [--sigma 10]
//                           [--benchmark median] [--trials 50] [--threads 0]
#include <iostream>

#include "sfi/sfi.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    const Cli cli(argc, argv);

    // 1. Build and characterize the core: gate-level ALU netlist, timing
    //    calibration to the paper's 28 nm operating point (707 MHz STA
    //    limit at 0.7 V), and dynamic timing analysis for the CDFs.
    CoreModelConfig config;
    config.cdf_cache_path = "sfi_cdf_cache.bin";  // reuse across runs
    CharacterizedCore core(config);
    std::cout << "STA frequency limit at 0.7 V: "
              << fmt_fixed(core.sta_fmax_mhz(0.7), 1) << " MHz\n";

    // 2. Pick a benchmark and the statistical fault model.
    const std::string name = cli.get("benchmark", "median");
    std::unique_ptr<Benchmark> bench;
    for (const BenchmarkId id : all_benchmarks())
        if (name == benchmark_name(id)) bench = make_benchmark(id);
    if (!bench) {
        std::cerr << "unknown benchmark '" << name << "'\n";
        return 1;
    }
    auto model = core.make_model_c();

    // 3. Choose an operating point (frequency over-scaling + supply noise).
    OperatingPoint point;
    point.freq_mhz = cli.get_double("freq", 760.0);
    point.vdd = cli.get_double("vdd", 0.7);
    point.noise.sigma_mv = cli.get_double("sigma", 10.0);

    // 4. Monte-Carlo fault-injection campaign.
    McConfig mc;
    mc.trials = static_cast<std::size_t>(cli.get_int("trials", 50));
    // 0 = one worker per hardware thread; any value is bit-identical.
    mc.threads = cli.get_threads();
    MonteCarloRunner runner(*bench, *model, mc);
    std::cout << bench->name() << ": fault-free kernel = "
              << runner.golden_run().kernel_cycles << " cycles\n";

    const PointSummary s = runner.run_point(point);
    std::cout << "\nAt " << fmt_fixed(point.freq_mhz, 1) << " MHz, "
              << fmt_fixed(point.vdd, 2) << " V, sigma = "
              << fmt_fixed(point.noise.sigma_mv, 0) << " mV ("
              << mc.trials << " trials):\n"
              << "  finished : " << fmt_pct(s.finished_frac()) << "\n"
              << "  correct  : " << fmt_pct(s.correct_frac()) << "\n"
              << "  FI rate  : " << fmt_sci(s.fi_rate, 3) << " per kCycle\n"
              << "  output error (" << bench->error_unit()
              << ", finished runs): " << fmt_sci(s.mean_error, 4) << "\n";
    return 0;
}
