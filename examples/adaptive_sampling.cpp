// Adaptive sampling walkthrough: spend Monte-Carlo trials where the
// statistics still need them, then find the point of first failure by
// bisection instead of a dense frequency grid.
//
//   $ ./examples/adaptive_sampling [--vdd 0.7] [--sigma 10]
//                                  [--ci-target 0.08] [--threads 0]
#include <iostream>

#include "sfi/sfi.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    const Cli cli(argc, argv);

    CoreModelConfig config;
    config.cdf_cache_path = "sfi_cdf_cache.bin";
    CharacterizedCore core(config);

    OperatingPoint base;
    base.vdd = cli.get_double("vdd", 0.7);
    base.noise.sigma_mv = cli.get_double("sigma", 10.0);
    const double fsta = core.sta_fmax_mhz(base.vdd);
    std::cout << "STA limit at " << fmt_fixed(base.vdd, 2)
              << " V: " << fmt_fixed(fsta, 1) << " MHz\n\n";

    const auto bench = make_benchmark(BenchmarkId::Median);
    auto model = core.make_model_c();
    McConfig mc;
    mc.trials = 40;  // the fixed-N budget an adaptive run competes with
    mc.threads = cli.get_threads();
    MonteCarloRunner runner(*bench, *model, mc);

    // 1. One operating point under a target-CI policy: batches run until
    //    the Wilson intervals on finished/correct are tighter than the
    //    target (or the ceiling hits). Decided points stop early.
    sampling::SamplingPolicy policy = sampling::SamplingPolicy::target_ci(
        cli.get_positive_double("ci-target", 0.08),
        /*max_trials=*/400, /*batch_size=*/20);
    for (const double factor : {0.7, 1.02}) {
        OperatingPoint point = base;
        point.freq_mhz = factor * fsta;
        const auto result =
            run_point_sequential(runner, point, policy, mc.threads);
        std::cout << fmt_fixed(point.freq_mhz, 1) << " MHz: correct "
                  << fmt_pct(result.summary.correct_frac()) << " after "
                  << result.summary.trials << " trials ("
                  << result.batches << " batches, "
                  << (result.converged ? "CI target met" : "ceiling hit")
                  << ", half-width "
                  << fmt_fixed(sampling::max_half_width(result.summary), 3)
                  << ")\n";
    }

    // 2. PoFF by bisection: O(log) probes around the failure cliff
    //    instead of a dense grid, each probe sampled under the same
    //    policy. The true PoFF lies inside (lo, hi].
    sampling::PoffSearchConfig search;
    search.lo_mhz = 0.8 * fsta;
    search.hi_mhz = 1.1 * fsta;
    search.tol_mhz = 2.0;
    const auto poff =
        find_poff_bisection(runner, base, search, policy, mc.threads);
    if (poff.bracketed)
        std::cout << "\nPoFF in (" << fmt_fixed(poff.lo_mhz, 1) << ", "
                  << fmt_fixed(poff.hi_mhz, 1) << "] MHz after "
                  << poff.probes << " probes / " << poff.trials_spent
                  << " trials (pass-side residual risk "
                  << fmt_fixed(poff.pass_risk, 3) << ")\n"
                  << "gain over STA: "
                  << fmt_fixed(poff_gain_percent(poff.hi_mhz, fsta), 1)
                  << "%\n";
    else
        std::cout << "\nPoFF not bracketed in ["
                  << fmt_fixed(search.lo_mhz, 1) << ", "
                  << fmt_fixed(search.hi_mhz, 1) << "] MHz\n";
    return 0;
}
