// Declarative experiment campaigns with a persistent point store.
//
// Describes a two-panel frequency study of the median benchmark as a
// CampaignSpec, runs it twice through the campaign engine, and shows the
// second run being served entirely from the point store — the mechanism
// that makes the paper-figure benches incremental and interruptible
// (docs/ARCHITECTURE.md, "The campaign engine").
//
//   sfi_example_campaign_quickstart [--trials N] [--threads N]
#include <iostream>

#include "sfi/sfi.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    const Cli cli(argc, argv);

    campaign::CampaignSpec spec;
    spec.name = "quickstart";
    spec.core.cdf_cache_path = "sfi_cdf_cache.bin";  // reuse characterization
    spec.trials = static_cast<std::size_t>(cli.get_int("trials", 30));
    spec.seed = 1;

    // Panel 1: model C across the transition region (grid resolved
    // against the core's STA limit at run time).
    campaign::PanelSpec transition;
    transition.name = "quickstart_model_c";
    transition.title = "median under model C (Vdd = 0.7 V, sigma = 10 mV)";
    transition.kernel = campaign::KernelSpec::bench(BenchmarkId::Median);
    transition.model = campaign::ModelSpec::c();
    transition.base.vdd = 0.7;
    transition.base.noise.sigma_mv = 10.0;
    transition.grid = campaign::GridSpec::sta_linspace(0.98, 1.25, 8);
    spec.panels.push_back(transition);

    // Panel 2: the model B+ hard threshold for contrast (grid anchored
    // at the model's first-fault frequency).
    campaign::PanelSpec threshold;
    threshold.name = "quickstart_model_b";
    threshold.title = "median under model B+ around its threshold";
    threshold.kernel = campaign::KernelSpec::bench(BenchmarkId::Median);
    threshold.model = campaign::ModelSpec::b();
    threshold.base.vdd = 0.7;
    threshold.base.noise.sigma_mv = 10.0;
    threshold.grid = campaign::GridSpec::first_fault_window(1.0, 2.0, 1.0);
    spec.panels.push_back(threshold);

    campaign::RunOptions options;
    options.store_path = "quickstart_points.bin";
    options.csv_dir = "quickstart_csv";
    options.threads = cli.get_threads();
    options.console = &std::cout;

    std::cout << "first run (computes every point):\n\n";
    campaign::CampaignRunner cold(spec, options);
    cold.run();

    std::cout << "\nsecond run (same spec, warm store):\n\n";
    campaign::CampaignRunner warm(spec, options);
    const campaign::CampaignResult result = warm.run();

    std::cout << "\nthe warm run recomputed " << result.store_misses
              << " points — every summary came from " << options.store_path
              << ",\nand its CSVs in " << options.csv_dir
              << "/ are byte-identical to the first run's (the resume "
                 "guarantee).\n";
    return 0;
}
