#include "util/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace sfi {

Cli::Cli(int argc, const char* const* argv, std::vector<std::string> known)
    : Cli(argc, argv) {
    for (const auto& [name, value] : options_) {
        (void)value;
        if (std::find(known.begin(), known.end(), name) == known.end())
            unknown_.push_back(name);
    }
}

Cli::Cli(int argc, const char* const* argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // `--name value` when the next token is not itself an option,
        // otherwise a boolean flag.
        // std::string temporaries (not const char*) sidestep a GCC 12
        // -Wrestrict false positive (PR105329) in the inlined
        // string::operator=(const char*) path.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options_.insert_or_assign(body, std::string(argv[i + 1]));
            ++i;
        } else {
            options_.insert_or_assign(body, std::string("1"));
        }
    }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
    const auto it = options_.find(name);
    return it == options_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return def;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& name, double def) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return def;
    return std::strtod(it->second.c_str(), nullptr);
}

std::uint64_t Cli::get_uint(const std::string& name, std::uint64_t def) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return def;
    const std::string& text = it->second;
    std::size_t i = 0;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    // strtoull would silently wrap "-5" to 18446744073709551611.
    if (i < text.size() && (text[i] == '-' || text[i] == '+'))
        throw std::invalid_argument("--" + name + " must be a non-negative "
                                    "integer (got \"" + text + "\")");
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        throw std::invalid_argument("--" + name + " must be a non-negative "
                                    "integer (got \"" + text + "\")");
    return static_cast<std::uint64_t>(value);
}

double Cli::get_positive_double(const std::string& name, double def) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return def;
    const std::string& text = it->second;
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(value) || value <= 0.0)
        throw std::invalid_argument("--" + name + " must be a finite "
                                    "positive number (got \"" + text + "\")");
    return value;
}

std::size_t Cli::get_threads(std::size_t def) const {
    const std::int64_t value =
        get_int("threads", static_cast<std::int64_t>(def));
    return value < 0 ? 0 : static_cast<std::size_t>(value);
}

bool Cli::get_bool(const std::string& name, bool def) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return def;
    const std::string& v = it->second;
    return !(v == "0" || v == "false" || v == "no" || v == "off");
}

}  // namespace sfi
