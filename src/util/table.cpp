#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sfi {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
    if (columns_.empty()) throw std::invalid_argument("TextTable needs columns");
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(columns_.size());
    rows_.push_back(std::move(cells));
    return *this;
}

void TextTable::print(std::ostream& os) const {
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            os << (c ? "  " : "");
            os << cells[c];
            os << std::string(width[c] - cells[c].size(), ' ');
        }
        os << '\n';
    };
    emit(columns_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string fmt_fixed(double v, int prec) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

std::string fmt_sci(double v, int prec) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    return buf;
}

std::string fmt_pct(double fraction01) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f%%", fraction01 * 100.0);
    return buf;
}

}  // namespace sfi
