// Deterministic pseudo-random number generation for reproducible
// Monte-Carlo fault-injection experiments.
//
// We use xoshiro256** (Blackman & Vigna) rather than std::mt19937 because
// (a) its state is small enough to copy cheaply into per-trial streams and
// (b) its output is identical across standard-library implementations,
// which keeps committed experiment numbers reproducible.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace sfi {

/// xoshiro256** 1.0 generator. Satisfies std::uniform_random_bit_generator.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four 64-bit state words from a single seed value using
    /// splitmix64, as recommended by the xoshiro authors.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        // Discard any cached normal spare: a reseeded generator must be
        // bit-identical to a freshly constructed one.
        have_spare_ = false;
        spare_ = 0.0;
        std::uint64_t x = seed;
        for (auto& word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1). Uses the top 53 bits of the output.
    double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform 32-bit value.
    std::uint32_t u32() { return static_cast<std::uint32_t>((*this)() >> 32); }

    /// Uniform integer in [0, bound). Unbiased (Lemire's method).
    std::uint64_t bounded(std::uint64_t bound) {
        if (bound == 0) return 0;
        // Lemire's widening multiply-shift. The multiply alone would carry
        // a bias of at most 2^-64 * bound; the loop below rejects draws
        // landing in the short low range, which removes that bias entirely
        // (exactly uniform, at an expected cost of well under one extra
        // draw for any realistic bound).
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Standard normal variate (Marsaglia polar method).
    double normal() {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double factor = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * factor;
        have_spare_ = true;
        return u * factor;
    }

    /// Normal variate with the given mean and standard deviation.
    double normal(double mean, double stddev) { return mean + stddev * normal(); }

    /// Fills out[0..n) with exactly the values n successive calls of
    /// normal(mean, stddev) would have produced, leaving the generator
    /// (state words AND the polar spare cache) in the identical end state.
    /// This prefix property is what lets the batched fault-sampling path
    /// (src/fi/sampling_batch.hpp) prefetch a whole block of draws and
    /// stay bit-identical to the per-op scalar path: the first m <= n
    /// entries of a fill equal the first m sequential draws, and unused
    /// entries are simply never consumed (every Monte-Carlo trial reseeds,
    /// so discarded draws cannot leak into another trial). The batched
    /// form exists because the loop below keeps the polar rejection state
    /// in registers across draws, which measures ~1.5x faster per draw
    /// than repeated normal() calls.
    void normal_fill(double mean, double stddev, double* out, std::size_t n) {
        std::size_t i = 0;
        if (i < n && have_spare_) {
            have_spare_ = false;
            out[i++] = mean + stddev * spare_;
        }
        while (i < n) {
            double u, v, s;
            do {
                u = uniform(-1.0, 1.0);
                v = uniform(-1.0, 1.0);
                s = u * u + v * v;
            } while (s >= 1.0 || s == 0.0);
            const double factor = std::sqrt(-2.0 * std::log(s) / s);
            out[i++] = mean + stddev * (u * factor);
            if (i < n) {
                out[i++] = mean + stddev * (v * factor);
            } else {
                spare_ = v * factor;
                have_spare_ = true;
            }
        }
    }

    /// Bernoulli trial with probability p of returning true.
    bool chance(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return uniform() < p;
    }

    /// Derives an independent stream for sub-experiment `index`.
    /// Streams derived from distinct indices are statistically independent
    /// (fresh splitmix64 seeding of the full 256-bit state).
    Rng fork(std::uint64_t index) const {
        Rng child(state_[0] ^ (index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
        return child;
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
    bool have_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace sfi
