#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace sfi {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

void RunningStats::save(std::ostream& os) const {
    const std::uint64_t n = n_;
    os.write(reinterpret_cast<const char*>(&n), sizeof n);
    for (const double v : {mean_, m2_, min_, max_})
        os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

RunningStats RunningStats::load(std::istream& is) {
    RunningStats stats;
    std::uint64_t n = 0;
    is.read(reinterpret_cast<char*>(&n), sizeof n);
    stats.n_ = static_cast<std::size_t>(n);
    for (double* v : {&stats.mean_, &stats.m2_, &stats.min_, &stats.max_})
        is.read(reinterpret_cast<char*>(v), sizeof *v);
    if (!is) throw std::runtime_error("RunningStats::load: truncated stream");
    return stats;
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
    if (values.empty()) throw std::invalid_argument("quantile of empty sample");
    q = std::clamp(q, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= values.size()) return values.back();
    return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
    if (trials == 0) return {0.0, 1.0};
    if (successes > trials)
        throw std::invalid_argument("wilson_interval: successes > trials");
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double mean_of(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    if (bins == 0) throw std::invalid_argument("Histogram needs at least one bin");
    if (!(hi > lo)) throw std::invalid_argument("Histogram range must be non-empty");
}

void Histogram::add(double x) {
    auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
    return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
    return lo_ + width_ * static_cast<double>(bin + 1);
}

void EmpiricalCdf::add_all(const std::vector<double>& xs) {
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    finalized_ = false;
}

void EmpiricalCdf::finalize() {
    std::sort(samples_.begin(), samples_.end());
    finalized_ = true;
}

double EmpiricalCdf::fraction_at_most(double x) const {
    assert(finalized_ && "EmpiricalCdf::finalize() must be called first");
    if (samples_.empty()) return 0.0;
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double EmpiricalCdf::min() const {
    assert(finalized_ && !samples_.empty());
    return samples_.front();
}

double EmpiricalCdf::max() const {
    assert(finalized_ && !samples_.empty());
    return samples_.back();
}

double EmpiricalCdf::quantile(double q) const {
    assert(finalized_ && !samples_.empty());
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= samples_.size()) return samples_.back();
    return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

}  // namespace sfi
