// Streaming FNV-1a fingerprints for cache keys. Both binary stores of
// the repo — the CDF cache (src/fi/core_model.cpp) and the campaign
// point store (src/campaign/point_store.hpp) — key their entries by
// hashing every configuration knob that affects the cached result, so a
// changed configuration reads as a miss instead of serving stale data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace sfi {

/// FNV-1a 64-bit accumulator. Feed it the raw bytes of the values that
/// determine a cached artifact; equal value sequences give equal hashes
/// on every platform (the hash walks bytes, so it is endianness-bound —
/// fine for caches that never leave the machine family that wrote them).
class Fingerprint {
public:
    Fingerprint& bytes(const void* data, std::size_t size) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ULL;
        }
        return *this;
    }

    /// Mixes the object representation of a trivially copyable value.
    template <typename T>
    Fingerprint& mix(const T& value) {
        static_assert(std::is_trivially_copyable_v<T>,
                      "mix() hashes raw bytes; serialize non-trivial types "
                      "explicitly");
        return bytes(&value, sizeof value);
    }

    /// Strings are mixed as length + contents so ("ab","c") != ("a","bc").
    Fingerprint& mix(const std::string& value) {
        mix(value.size());
        return bytes(value.data(), value.size());
    }

    std::uint64_t value() const { return hash_; }

private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace sfi
