#include "util/csv.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace sfi {

std::string csv_escape(const std::string& field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string format_double(double v) {
    if (std::isnan(v)) return "nan";
    if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
    char buf[64];
    // %.17g round-trips doubles but is noisy; try shorter first.
    for (int prec : {6, 9, 12, 17}) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) break;
    }
    return buf;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path) {
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        // An error here surfaces as the open failure below, with a
        // message naming the path the caller asked for.
    }
    out_.open(path);
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::close() {
    out_.flush();
    if (!out_)
        throw std::runtime_error("CsvWriter: write to " + path_ + " failed");
    out_.close();
    if (!out_)
        throw std::runtime_error("CsvWriter: closing " + path_ + " failed");
}

void CsvWriter::header(const std::vector<std::string>& columns) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i) out_ << ',';
        out_ << csv_escape(columns[i]);
    }
    out_ << '\n';
}

void CsvWriter::put(const std::string& raw) {
    if (row_open_) pending_ += ',';
    pending_ += raw;
    row_open_ = true;
}

CsvWriter& CsvWriter::cell(const std::string& value) {
    put(csv_escape(value));
    return *this;
}

CsvWriter& CsvWriter::cell(double value) {
    put(format_double(value));
    return *this;
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
    put(std::to_string(value));
    return *this;
}

CsvWriter& CsvWriter::cell(std::uint64_t value) {
    put(std::to_string(value));
    return *this;
}

void CsvWriter::end_row() {
    out_ << pending_ << '\n';
    pending_.clear();
    row_open_ = false;
    ++rows_;
}

void CsvWriter::row(const std::vector<double>& values) {
    for (double v : values) cell(v);
    end_row();
}

}  // namespace sfi
