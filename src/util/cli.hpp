// Tiny command-line option parser for the bench/example binaries.
// Supports `--name value`, `--name=value` and boolean `--flag`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sfi {

class Cli {
public:
    /// Parses argv. With the one-argument form every option is accepted
    /// silently; pass a vocabulary of known option names to have the
    /// parser classify anything else into `unknown_flags()`. Unknown
    /// options are still parsed and retrievable through get*() — callers
    /// warn instead of aborting, preserving the pass-through behavior
    /// binaries that forward foreign flags (bench_microbench) rely on.
    Cli(int argc, const char* const* argv);
    Cli(int argc, const char* const* argv, std::vector<std::string> known);

    bool has(const std::string& name) const;
    std::string get(const std::string& name, const std::string& def) const;
    std::int64_t get_int(const std::string& name, std::int64_t def) const;
    double get_double(const std::string& name, double def) const;
    bool get_bool(const std::string& name, bool def) const;

    /// Strict parser for inherently non-negative quantities (--trials,
    /// --seed): a negative or unparseable value would otherwise wrap to
    /// a huge unsigned and silently run a nonsense experiment, so it
    /// throws std::invalid_argument naming the flag instead. Accepts the
    /// full std::uint64_t range (seeds are arbitrary 64-bit values).
    std::uint64_t get_uint(const std::string& name, std::uint64_t def) const;

    /// Strict parser for quantities that must be finite and strictly
    /// positive (--watchdog-factor, --ci-target): "nan", "inf", zero or
    /// negative values would silently disarm the watchdog or turn the
    /// adaptive stopping rule into an infinite loop, so they throw
    /// std::invalid_argument naming the flag — the same contract as
    /// get_uint.
    double get_positive_double(const std::string& name, double def) const;

    /// The shared `--threads` parser for McConfig::threads: non-negative
    /// worker count, where 0 means one worker per hardware thread.
    /// Negative values would wrap std::size_t to a huge count, so they are
    /// clamped to 0 (= auto) in this one place.
    std::size_t get_threads(std::size_t def = 0) const;

    /// Positional (non-option) arguments, in order.
    const std::vector<std::string>& positional() const { return positional_; }
    /// Options seen on the command line but absent from the `known`
    /// vocabulary (always empty when none was given).
    const std::vector<std::string>& unknown_flags() const { return unknown_; }
    const std::string& program() const { return program_; }

private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
    std::vector<std::string> unknown_;
};

}  // namespace sfi
