// Tiny command-line option parser for the bench/example binaries.
// Supports `--name value`, `--name=value` and boolean `--flag`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sfi {

class Cli {
public:
    /// Parses argv; unknown options are collected and reported by
    /// `unknown()` so binaries can warn instead of aborting (google-benchmark
    /// passes its own flags through).
    Cli(int argc, const char* const* argv);

    bool has(const std::string& name) const;
    std::string get(const std::string& name, const std::string& def) const;
    std::int64_t get_int(const std::string& name, std::int64_t def) const;
    double get_double(const std::string& name, double def) const;
    bool get_bool(const std::string& name, bool def) const;

    /// The shared `--threads` parser for McConfig::threads: non-negative
    /// worker count, where 0 means one worker per hardware thread.
    /// Negative values would wrap std::size_t to a huge count, so they are
    /// clamped to 0 (= auto) in this one place.
    std::size_t get_threads(std::size_t def = 0) const;

    /// Positional (non-option) arguments, in order.
    const std::vector<std::string>& positional() const { return positional_; }
    const std::vector<std::string>& unknown_flags() const { return unknown_; }
    const std::string& program() const { return program_; }

private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
    std::vector<std::string> unknown_;
};

}  // namespace sfi
