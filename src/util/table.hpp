// Fixed-width console table printer: the bench binaries reproduce the
// paper's tables/figure series as aligned text so diffs against
// EXPERIMENTS.md stay readable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sfi {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> columns);

    TextTable& add_row(std::vector<std::string> cells);
    /// Renders with column alignment and a header separator.
    void print(std::ostream& os) const;
    std::string to_string() const;

    std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `prec` fractional digits (fixed notation).
std::string fmt_fixed(double v, int prec);
/// Formats `v` in engineering/scientific style with `prec` significant digits.
std::string fmt_sci(double v, int prec);
/// Formats a percentage with one fractional digit, e.g. "97.5%".
std::string fmt_pct(double fraction01);

}  // namespace sfi
