// Minimal CSV writer used by the benchmark harness to dump figure series
// next to the human-readable console tables.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace sfi {

/// Writes one CSV file. Values are formatted with enough precision to
/// round-trip doubles; strings containing separators/quotes are quoted.
class CsvWriter {
public:
    /// Opens `path` for writing, creating missing parent directories;
    /// throws std::runtime_error when the file cannot be opened.
    explicit CsvWriter(const std::string& path);

    /// Writes the header row. Must be called before any data row.
    void header(const std::vector<std::string>& columns);

    /// Starts accumulating a row; call cell() then end_row().
    CsvWriter& cell(const std::string& value);
    CsvWriter& cell(double value);
    CsvWriter& cell(std::int64_t value);
    CsvWriter& cell(std::uint64_t value);
    void end_row();

    /// Convenience: writes a full row of doubles.
    void row(const std::vector<double>& values);

    std::size_t rows_written() const { return rows_; }

    /// Flushes and throws std::runtime_error if any write failed (a full
    /// disk otherwise passes silently — ofstream just sets failbit).
    /// Callers that skip close() keep the historical fire-and-forget
    /// behavior.
    void close();

private:
    void put(const std::string& raw);

    std::string path_;
    std::ofstream out_;
    std::string pending_;
    bool row_open_ = false;
    std::size_t rows_ = 0;
};

/// Escapes a single CSV field (quotes it when needed).
std::string csv_escape(const std::string& field);

/// Formats a double compactly but losslessly.
std::string format_double(double v);

}  // namespace sfi
