// Small statistics helpers used by the Monte-Carlo harness and the DTA
// post-processing: streaming mean/variance, order statistics, histograms
// and empirical CDFs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace sfi {

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x);
    void merge(const RunningStats& other);
    void reset();

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance (0 for fewer than two samples).
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(n_); }

    /// Binary persistence of the exact accumulator state (count + raw
    /// mean/M2/min/max doubles). A loaded instance is bit-identical to
    /// the saved one — the campaign point store relies on this so a warm
    /// re-run reproduces cold-run output byte for byte.
    void save(std::ostream& os) const;
    static RunningStats load(std::istream& is);

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `values` using linear
/// interpolation between order statistics. `values` is copied and sorted.
double quantile(std::vector<double> values, double q);

/// Wilson score interval for a binomial proportion: the uncertainty of
/// Monte-Carlo "finished" / "correct" fractions at small trial counts.
/// `z` is the normal quantile (1.96 = 95 % confidence).
struct Interval {
    double lo = 0.0;
    double hi = 0.0;
};
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96);

/// Mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& values);

/// Fixed-range histogram with uniform bins; values outside [lo, hi) are
/// clamped into the first / last bin so no sample is ever dropped.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t bin_count() const { return counts_.size(); }
    std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
    std::uint64_t total() const { return total_; }
    double bin_low(std::size_t bin) const;
    double bin_high(std::size_t bin) const;
    double lo() const { return lo_; }
    double hi() const { return hi_; }

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Empirical CDF over a sample of doubles. After `finalize()`,
/// `fraction_at_most(x)` returns P[X <= x] in O(log n).
class EmpiricalCdf {
public:
    void add(double x) { samples_.push_back(x); finalized_ = false; }
    void add_all(const std::vector<double>& xs);
    void finalize();

    bool empty() const { return samples_.empty(); }
    std::size_t size() const { return samples_.size(); }

    /// P[X <= x]; requires finalize() first (asserted in debug builds).
    double fraction_at_most(double x) const;
    /// P[X > x] = 1 - fraction_at_most(x).
    double fraction_above(double x) const { return 1.0 - fraction_at_most(x); }
    /// Smallest sample value (requires non-empty, finalized).
    double min() const;
    double max() const;
    /// q-quantile of the sample.
    double quantile(double q) const;
    const std::vector<double>& sorted_samples() const { return samples_; }

private:
    std::vector<double> samples_;
    bool finalized_ = false;
};

}  // namespace sfi
