// Monte-Carlo fault-injection harness (paper §2.3: at least 100
// simulations per parameter configuration).
//
// For each operating point the runner executes N independent trials of a
// benchmark under a fault model and aggregates the four application-level
// metrics of the paper (§4.2): probability to finish, probability to be
// correct, FI rate (faults per 1000 kernel cycles), and the output error
// of the runs that finished.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/benchmark.hpp"
#include "cpu/cpu.hpp"
#include "fi/forensics.hpp"
#include "fi/models.hpp"
#include "perf/perf.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sfi {

struct McConfig {
    /// Independent runs per operating point (paper: >= 100).
    std::size_t trials = 100;
    /// Base of the per-trial RNG streams: trial `i` always draws from the
    /// stream derived from (seed, i), never from execution order.
    std::uint64_t seed = 1;
    /// Watchdog limit as a multiple of the fault-free kernel run time;
    /// runs exceeding it count as "did not finish" (infinite-loop guard,
    /// paper §2.2).
    double watchdog_factor = 8.0;
    /// Skips the ISS run for trials whose fault model provably cannot
    /// inject at the operating point (FaultModel::can_inject() == false)
    /// and returns the precomputed fault-free outcome instead. Exact, not
    /// approximate: such a trial's simulation is the golden run, so every
    /// summary is bit-identical with the flag on or off (proven by
    /// tests/mc/test_fastpath.cpp). The switch exists for that proof and
    /// for measuring the fast path's effect (bench/sfi_perf.cpp) — leave
    /// it on otherwise.
    bool zero_fault_fast_path = true;
    /// Worker threads for run_point (and therefore the sweep drivers):
    /// 1 = serial on the caller's model, 0 = one worker per hardware
    /// thread, N = exactly N workers. Every setting produces a
    /// bit-identical PointSummary — trials share no mutable state
    /// (src/mc/parallel.hpp gives each worker its own Cpu/Memory/cloned
    /// model) and outcomes are aggregated in trial-index order. Only the
    /// summary is part of that contract: when run_point actually fans out
    /// (threads != 1 and trials > 1 — single-trial points fall back to
    /// the serial loop), the caller's model object is not driven (clones
    /// are), so its incidental post-run state — stats() of the last
    /// trial, Razor detected()/escaped() accumulation — stays untouched.
    /// Workflows that read per-trial model state (bench_ext_razor) call
    /// run_trial directly.
    std::size_t threads = 1;
    /// Execution engine for every ISS run the runner performs (golden run,
    /// serial trials, parallel worker contexts). Threaded is the
    /// decode-once micro-op interpreter — bit-identical to Legacy in every
    /// observable (tests/cpu/test_differential.cpp) and ~5x faster on
    /// clean simulation; Legacy remains as the reference semantics and for
    /// A/B measurement (bench --dispatch legacy).
    CpuDispatch dispatch = CpuDispatch::Threaded;
    /// Draw-stream mode applied to the fault model each trial
    /// (fi/sampling_batch.hpp). Batched prefetches whole blocks of noise
    /// draws and is bit-identical to Scalar (proven by the differential
    /// suite); Quantized is the fingerprinted alias-sampled variant.
    FaultSamplingMode fault_sampling = FaultSamplingMode::Batched;
};

/// Result of one fault-injected run of a benchmark.
struct TrialOutcome {
    StopReason stop = StopReason::Halted;
    bool finished = false;      ///< halted normally before the watchdog fired
    bool correct = false;       ///< finished AND output bit-exact vs. golden
    double output_error = 0.0;  ///< benchmark quality metric; valid only when finished
    FiStats fi;                 ///< injection counters from the fault model
    std::uint64_t cycles = 0;         ///< total simulated cycles
    std::uint64_t kernel_cycles = 0;  ///< cycles inside the marked kernel region
};

/// One trial re-run under a ForensicProbe: the ordinary outcome plus the
/// per-injection provenance records and the trial's outcome class.
/// Forensics never feeds PointSummary — the plain trial path stays the
/// single source of the paper's metrics, and this struct is strictly
/// additive observation on top of it.
struct TrialForensics {
    TrialOutcome outcome;
    OutcomeClass cls = OutcomeClass::Masked;
    std::uint32_t razor_detected = 0;  ///< razor verdicts this trial
    std::uint32_t razor_escaped = 0;
    std::vector<FaultRecord> records;  ///< injection order; trial stamped
    std::vector<std::uint32_t> detection_latencies;  ///< cycles, per detection
};

/// Aggregate of config.trials TrialOutcomes at one operating point — one
/// x-axis sample of the paper's figure panels.
struct PointSummary {
    OperatingPoint point;
    std::size_t trials = 0;
    std::size_t finished_count = 0;
    std::size_t correct_count = 0;
    double fi_rate = 0.0;     ///< mean FI/kCycle over all trials
    double mean_error = 0.0;  ///< mean output error over finished trials
    RunningStats error_stats; ///< distribution over finished trials
    RunningStats fi_rate_stats;

    double finished_frac() const {
        return trials ? static_cast<double>(finished_count) /
                            static_cast<double>(trials)
                      : 0.0;
    }
    double correct_frac() const {
        return trials ? static_cast<double>(correct_count) /
                            static_cast<double>(trials)
                      : 0.0;
    }
    /// 95 % Wilson confidence intervals on the two probabilities.
    Interval finished_ci() const { return wilson_interval(finished_count, trials); }
    Interval correct_ci() const { return wilson_interval(correct_count, trials); }
};

class MonteCarloRunner {
public:
    /// Performs one fault-free reference run at construction; throws
    /// std::logic_error if the benchmark does not reproduce its golden
    /// output (a miscompiled kernel would silently poison every result).
    MonteCarloRunner(const Benchmark& benchmark, FaultModel& model,
                     McConfig config = {});

    const RunResult& golden_run() const { return golden_; }
    const std::vector<std::uint32_t>& golden_output() const {
        return golden_output_;
    }

    /// One independent trial at `point` (trial index selects the RNG
    /// stream; equal indices reproduce identical trials regardless of what
    /// ran before — Cpu::reset restores a pristine memory image).
    TrialOutcome run_trial(const OperatingPoint& point, std::uint64_t trial);

    /// The same trial computation on caller-provided execution state; this
    /// is what the parallel engine (src/mc/parallel.hpp) calls with its
    /// per-thread contexts. Reads only immutable runner state, so it is
    /// safe to call concurrently with distinct `cpu`/`model` pairs.
    TrialOutcome run_trial_with(Cpu& cpu, FaultModel& model,
                                const OperatingPoint& point,
                                std::uint64_t trial) const;

    /// One trial re-run with full forensic observation: attaches `probe`
    /// to `model` for the duration of the run, classifies the final
    /// architectural state against the golden baseline and returns the
    /// stamped injection records. Bit-identical to run_trial_with in every
    /// TrialOutcome field (the probe adds no RNG draws — proven by
    /// tests/fi/test_forensics.cpp). Safe to call concurrently with
    /// distinct cpu/model/probe triples, like run_trial_with.
    TrialForensics run_trial_forensic(Cpu& cpu, FaultModel& model,
                                      const OperatingPoint& point,
                                      std::uint64_t trial,
                                      ForensicProbe& probe) const;

    /// Convenience serial form on the runner's own Cpu and model.
    TrialForensics run_trial_forensic(const OperatingPoint& point,
                                      std::uint64_t trial);

    /// Outcome taxonomy for a completed trial: Hang (watchdog / abnormal
    /// stop), SDC (finished, wrong output), Detected (correct with razor
    /// detections), LatentCorrupt (correct output but architectural state
    /// differs from the golden run), Masked (indistinguishable from the
    /// golden run). `cpu` must still hold the trial's final state.
    OutcomeClass classify_trial(const Cpu& cpu, const TrialOutcome& outcome,
                                std::uint32_t razor_detected) const;

    /// True when `cpu`'s architectural state (registers r1..r31, compare
    /// flag, data memory) differs from the golden run's final state. The
    /// r0 write sink is ignored (architecturally hardwired to zero) and
    /// the memory walk covers only the union of the two dirty ranges —
    /// bytes outside them are zero by Memory's class invariant.
    bool arch_state_differs(const Cpu& cpu) const;

    /// config.trials independent trials, aggregated in trial-index order.
    /// Fans out over McConfig::threads workers when threads != 1; the
    /// result is bit-identical to the serial loop.
    PointSummary run_point(const OperatingPoint& point);

    const McConfig& config() const { return config_; }
    const Benchmark& benchmark() const { return *benchmark_; }
    /// Prototype fault model (cloned once per parallel worker).
    const FaultModel& model() const { return *model_; }

    /// True when run_trial_with would take the zero-fault fast path for
    /// trials of `model` at `point` (the model proves it cannot inject
    /// there and the golden run fits the watchdog). Stamps the point on
    /// the model — a memoized no-op after the model ran trials at it.
    /// Used by the observability layer to tag fast-path points.
    bool fast_path_active(FaultModel& model, const OperatingPoint& point) const {
        model.set_operating_point(point);
        return config_.zero_fault_fast_path && !model.can_inject() &&
               golden_.cycles <= watchdog_cycles_;
    }

    /// Attaches a perf profile (null detaches). run_point charges the
    /// trial loop to Phase::TrialRun and the summary fold to
    /// Phase::Aggregation (items = trials); micro-op lowering is charged
    /// to Phase::Decode (parallel context priming in make_trial_contexts,
    /// plus any lazy re-lowering on the runner's own Cpu). Dispatch-thread
    /// only: parallel sections are timed as a whole, workers never touch
    /// the profile.
    void set_perf_profile(perf::PhaseProfile* profile) {
        profile_ = profile;
        cpu_.set_perf_profile(profile);
    }
    perf::PhaseProfile* perf_profile() const { return profile_; }

private:
    const Benchmark* benchmark_;
    FaultModel* model_;
    McConfig config_;
    Memory memory_;
    Cpu cpu_;
    RunResult golden_;
    std::vector<std::uint32_t> golden_output_;
    std::uint64_t watchdog_cycles_ = 0;
    /// Template outcome of a provably injection-free trial (== the golden
    /// run, FI counters included); what the zero-fault fast path returns.
    TrialOutcome clean_outcome_;
    /// Golden-run architectural baseline for forensic classification:
    /// final register file, compare flag and the dirty slice of data
    /// memory, captured right after the reference run at construction.
    std::array<std::uint32_t, 32> golden_regs_{};
    bool golden_flag_ = false;
    std::uint32_t golden_mem_lo_ = 0;
    std::uint32_t golden_mem_hi_ = 0;
    std::vector<std::uint8_t> golden_mem_;  ///< bytes [golden_mem_lo_, golden_mem_hi_)
    /// Per-trial stream derivation base (seeded once from config_.seed;
    /// fork(trial) is const, so sharing it across threads is safe).
    Rng trial_seeder_;
    perf::PhaseProfile* profile_ = nullptr;
};

/// Aggregates `outcomes` (indexed by trial) exactly like the historical
/// serial loop: iterating in trial-index order makes the floating-point
/// accumulation independent of the order in which trials finished, which
/// is what makes parallel and serial run_point bit-identical.
PointSummary summarize_trials(const OperatingPoint& point,
                              const std::vector<TrialOutcome>& outcomes);

/// Folds `outcomes` (a contiguous trial-index block, in index order) into
/// an existing summary with the exact accumulation sequence of
/// summarize_trials, then refreshes the derived means. Feeding the blocks
/// of a trial prefix in order therefore reproduces summarize_trials over
/// that prefix bit for bit — the foundation of the batched executor's
/// determinism contract (src/sampling/batch.hpp).
void accumulate_trials(PointSummary& summary,
                       const std::vector<TrialOutcome>& outcomes);

}  // namespace sfi
