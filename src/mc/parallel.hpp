// Parallel Monte-Carlo trial engine: fans the trials of one operating
// point out over a chunked, self-scheduling worker pool while keeping the
// aggregate bit-identical to the serial loop (ROADMAP: scale "as fast as
// the hardware allows" without changing the statistical output).
//
// Determinism contract (verified by tests/mc/test_parallel.cpp):
//  * every trial derives its RNG stream from (McConfig::seed, trial index)
//    alone — never from thread identity or scheduling order;
//  * every worker owns a full TrialContext (memory image, ISS, cloned
//    fault model), so concurrent trials share no mutable state; the only
//    cross-thread data are the const characterization tables (STA, CDF
//    store, Vdd fit) behind the model clones;
//  * outcomes are stored by trial index and aggregated in index order
//    (summarize_trials), so the floating-point accumulation rounds exactly
//    as in the serial loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mc/montecarlo.hpp"

namespace sfi::obs {
class Ledger;
}

namespace sfi {

/// Resolves a requested worker count: 0 = one per hardware thread
/// (at least 1), anything else is taken literally.
std::size_t resolve_thread_count(std::size_t requested);

/// Per-worker execution state: own memory image, own ISS bound to it, and
/// an own clone of the prototype fault model. Contexts are built on the
/// dispatching thread (cloning is not concurrent) and then handed to
/// exactly one worker each.
struct TrialContext {
    TrialContext(const Benchmark& benchmark, const FaultModel& prototype);

    Memory memory;
    std::unique_ptr<FaultModel> model;
    Cpu cpu;  // bound to `memory`; declared after it (init order)
};

/// Chunked self-scheduling parallel-for over trial indices [0, trials):
/// `threads` workers (the calling thread is one of them) atomically grab
/// `chunk` consecutive indices at a time from a shared counter — dynamic
/// load balancing without per-trial locking, which matters because trial
/// cost varies by ~an order of magnitude (watchdog runs are
/// `watchdog_factor`× longer than clean runs). Calls fn(worker, trial)
/// at most once per index (exactly once when no worker throws); each
/// worker index is used by one thread only. The first exception thrown by
/// any worker is rethrown after all workers stopped; a failure flag makes
/// the surviving workers quit at their next chunk boundary instead of
/// finishing work whose results will be discarded.
void for_each_trial(std::size_t trials, std::size_t threads,
                    std::size_t chunk,
                    const std::function<void(std::size_t worker,
                                             std::uint64_t trial)>& fn);

/// Runs runner.config().trials independent trials at `point` across
/// `threads` worker contexts and returns the outcomes indexed by trial —
/// ready for summarize_trials(), which makes the aggregate bit-identical
/// to the serial path. The runner's own model/CPU are left untouched.
std::vector<TrialOutcome> run_trials_parallel(const MonteCarloRunner& runner,
                                              const OperatingPoint& point,
                                              std::size_t threads);

/// Builds one TrialContext per worker for `runner`'s benchmark/model —
/// the reusable half of run_trials_parallel, split out so the batched
/// executor (src/sampling/batch.hpp) can keep the contexts alive across
/// many trial blocks instead of re-cloning the model per batch.
std::vector<std::unique_ptr<TrialContext>> make_trial_contexts(
    const MonteCarloRunner& runner, std::size_t threads);

/// Runs the contiguous trial block [first_trial, first_trial + count) at
/// `point` over `contexts` (one worker per context; fewer are used when
/// count is small) and returns the outcomes indexed relative to the
/// block start. Trial indices keep their absolute meaning — trial i
/// draws from the (seed, i) stream wherever the block boundaries fall —
/// so the union of consecutive blocks is exactly what one call over the
/// whole range would have produced.
///
/// When a wall-mode `ledger` is attached, each worker accumulates its
/// first/last activity timestamps and trial count in a per-thread buffer
/// (no locks, no shared writes) and the dispatch thread drains them into
/// one "trials" span per active worker lane after the block joins.
/// Logical-mode ledgers record nothing here — worker activity is
/// scheduling-dependent, so it is wall-only by the determinism contract.
std::vector<TrialOutcome> run_trial_block(
    const MonteCarloRunner& runner, const OperatingPoint& point,
    std::uint64_t first_trial, std::size_t count,
    const std::vector<std::unique_ptr<TrialContext>>& contexts,
    obs::Ledger* ledger = nullptr);

/// Forensic variant of run_trial_block: the same chunked self-scheduling
/// fan-out, but every trial runs under its worker's ForensicProbe and the
/// results carry records, razor counters and outcome classes. Results are
/// indexed relative to the block start, so feeding them to a ForensicSink
/// in index order yields a record stream bitwise identical to the serial
/// loop at any thread count (the probe buffers per worker; nothing is
/// emitted in scheduling order).
std::vector<TrialForensics> run_forensic_block(
    const MonteCarloRunner& runner, const OperatingPoint& point,
    std::uint64_t first_trial, std::size_t count,
    const std::vector<std::unique_ptr<TrialContext>>& contexts);

}  // namespace sfi
