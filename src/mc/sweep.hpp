// Parameter-sweep drivers: frequency sweeps at fixed voltage/noise,
// voltage sweeps at fixed frequency (Fig. 7), and point-of-first-failure
// (PoFF) extraction.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "mc/montecarlo.hpp"

namespace sfi {

/// `n` evenly spaced values from lo to hi inclusive (n >= 2), or {lo} for
/// n == 1. hi < lo yields a decreasing sequence.
std::vector<double> linspace(double lo, double hi, std::size_t n);
/// Values lo, lo+step, ... up to hi inclusive (within 1e-9 tolerance);
/// empty when hi < lo. Each value is computed as lo + i*step, so long
/// ranges cannot drift past (or short of) the inclusive endpoint the way
/// repeated accumulation does.
std::vector<double> arange(double lo, double hi, double step);

/// Optional per-point progress callback (e.g. console dots).
using SweepProgress = std::function<void(const PointSummary&)>;

// The sweep drivers execute points in the given order (so progress
// callbacks and PoFF semantics stay deterministic); each point's trials
// fan out across the runner's McConfig::threads workers via run_point
// (src/mc/parallel.hpp), which is where the wall-clock win comes from.

/// Runs one Monte-Carlo point per frequency, voltage/noise from `base`.
std::vector<PointSummary> frequency_sweep(MonteCarloRunner& runner,
                                          OperatingPoint base,
                                          const std::vector<double>& freqs_mhz,
                                          const SweepProgress& progress = {});

/// Runs one point per supply voltage at fixed frequency (Fig. 7 x-axis).
std::vector<PointSummary> voltage_sweep(MonteCarloRunner& runner,
                                        OperatingPoint base,
                                        const std::vector<double>& vdds,
                                        const SweepProgress& progress = {});

/// Point of first failure: the lowest frequency among the sweep's points
/// at which not every trial finished with a 100 % correct result (paper
/// §4.2). The sweep may be passed in any order — the minimum failing
/// frequency is selected, not the first in iteration order.
/// std::nullopt if no point fails.
std::optional<double> find_poff_mhz(const std::vector<PointSummary>& sweep);

/// Frequency gain of the PoFF over the STA limit, in percent (can be
/// negative when noise pushes failures below the STA limit).
double poff_gain_percent(double poff_mhz, double sta_mhz);

}  // namespace sfi
