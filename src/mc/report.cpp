#include "mc/report.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace sfi {

void print_sweep(std::ostream& os, const std::string& title,
                 const std::vector<PointSummary>& sweep,
                 const std::string& error_label) {
    os << title << "\n";
    TextTable table({"f [MHz]", "finished", "correct", "FI/kCycle", error_label});
    for (const PointSummary& p : sweep) {
        table.add_row({fmt_fixed(p.point.freq_mhz, 1), fmt_pct(p.finished_frac()),
                       fmt_pct(p.correct_frac()), fmt_sci(p.fi_rate, 3),
                       p.finished_count ? fmt_sci(p.mean_error, 4) : "n/a"});
    }
    table.print(os);
}

void write_sweep_csv(const std::string& path,
                     const std::vector<PointSummary>& sweep) {
    if (path.empty()) return;
    CsvWriter csv(path);
    csv.header({"freq_mhz", "vdd", "sigma_mv", "finished", "correct",
                "fi_per_kcycle", "mean_error", "trials"});
    for (const PointSummary& p : sweep) {
        csv.cell(p.point.freq_mhz)
            .cell(p.point.vdd)
            .cell(p.point.noise.sigma_mv)
            .cell(p.finished_frac())
            .cell(p.correct_frac())
            .cell(p.fi_rate)
            .cell(p.finished_count ? format_double(p.mean_error)
                                   : std::string())
            .cell(static_cast<std::uint64_t>(p.trials));
        csv.end_row();
    }
    csv.close();  // surfaces stream errors (full disk, revoked mount, ...)
}

void print_point_progress(std::ostream& os, const PointSummary& point) {
    os << "  f=" << fmt_fixed(point.point.freq_mhz, 1)
       << " MHz  finished=" << fmt_pct(point.finished_frac())
       << "  correct=" << fmt_pct(point.correct_frac())
       << "  FI/kCycle=" << fmt_sci(point.fi_rate, 3) << "\n";
}

}  // namespace sfi
