#include "mc/montecarlo.hpp"

#include <cmath>
#include <stdexcept>

#include "mc/parallel.hpp"

namespace sfi {

MonteCarloRunner::MonteCarloRunner(const Benchmark& benchmark, FaultModel& model,
                                   McConfig config)
    : benchmark_(&benchmark), model_(&model), config_(config), cpu_(memory_) {
    // Fault-free reference run: establishes the golden cycle count and
    // validates the kernel against its C++ replica.
    cpu_.set_fault_hook(nullptr);
    cpu_.reset(benchmark.program());
    golden_ = cpu_.run();
    if (golden_.stop != StopReason::Halted)
        throw std::logic_error("MonteCarloRunner: golden run of " +
                               benchmark.name() + " did not halt (" +
                               stop_reason_name(golden_.stop) + ")");
    golden_output_ = benchmark.golden_output();
    const auto observed = benchmark.read_output(memory_);
    if (observed != golden_output_)
        throw std::logic_error("MonteCarloRunner: golden run of " +
                               benchmark.name() +
                               " does not match the reference output");
    watchdog_cycles_ = static_cast<std::uint64_t>(
        std::ceil(config_.watchdog_factor * static_cast<double>(golden_.cycles)));
}

TrialOutcome MonteCarloRunner::run_trial_with(Cpu& cpu, FaultModel& model,
                                              const OperatingPoint& point,
                                              std::uint64_t trial) const {
    model.set_operating_point(point);
    model.reset_stats();
    // Independent, reproducible stream per trial: (seed, trial) fully
    // determines the model's draws, so equal indices reproduce identical
    // trials on any context, in any order, on any thread.
    Rng seeder(config_.seed);
    model.reseed(seeder.fork(trial)());

    cpu.set_fault_hook(&model);
    cpu.reset(benchmark_->program());  // zeroes memory: no cross-trial state
    const RunResult run = cpu.run(watchdog_cycles_);
    cpu.set_fault_hook(nullptr);

    TrialOutcome outcome;
    outcome.stop = run.stop;
    outcome.finished = run.finished();
    outcome.fi = model.stats();
    outcome.cycles = run.cycles;
    outcome.kernel_cycles = run.kernel_cycles;
    if (outcome.finished) {
        const auto output = benchmark_->read_output(cpu.memory());
        outcome.correct = output == golden_output_;
        outcome.output_error = benchmark_->output_error(output);
    }
    return outcome;
}

TrialOutcome MonteCarloRunner::run_trial(const OperatingPoint& point,
                                         std::uint64_t trial) {
    return run_trial_with(cpu_, *model_, point, trial);
}

PointSummary MonteCarloRunner::run_point(const OperatingPoint& point) {
    // Worker-count resolution/clamping is owned by run_trials_parallel;
    // here we only decide serial vs. parallel.
    if (config_.trials > 1 && resolve_thread_count(config_.threads) > 1)
        return summarize_trials(
            point, run_trials_parallel(*this, point, config_.threads));
    std::vector<TrialOutcome> outcomes;
    outcomes.reserve(config_.trials);
    for (std::size_t trial = 0; trial < config_.trials; ++trial)
        outcomes.push_back(run_trial(point, trial));
    return summarize_trials(point, outcomes);
}

PointSummary summarize_trials(const OperatingPoint& point,
                              const std::vector<TrialOutcome>& outcomes) {
    PointSummary summary;
    summary.point = point;
    accumulate_trials(summary, outcomes);
    return summary;
}

void accumulate_trials(PointSummary& summary,
                       const std::vector<TrialOutcome>& outcomes) {
    summary.trials += outcomes.size();
    for (const TrialOutcome& outcome : outcomes) {
        if (outcome.finished) {
            ++summary.finished_count;
            if (outcome.correct) ++summary.correct_count;
            summary.error_stats.add(outcome.output_error);
        }
        summary.fi_rate_stats.add(outcome.fi.fi_per_kcycle());
    }
    // The derived means are pure functions of the accumulators, so
    // refreshing them after every block leaves the final values identical
    // to a single-pass summarize_trials.
    summary.fi_rate = summary.fi_rate_stats.mean();
    summary.mean_error = summary.error_stats.mean();
}

}  // namespace sfi
