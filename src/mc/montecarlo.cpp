#include "mc/montecarlo.hpp"

#include <cmath>
#include <stdexcept>

namespace sfi {

MonteCarloRunner::MonteCarloRunner(const Benchmark& benchmark, FaultModel& model,
                                   McConfig config)
    : benchmark_(&benchmark), model_(&model), config_(config), cpu_(memory_) {
    // Fault-free reference run: establishes the golden cycle count and
    // validates the kernel against its C++ replica.
    cpu_.set_fault_hook(nullptr);
    cpu_.reset(benchmark.program());
    golden_ = cpu_.run();
    if (golden_.stop != StopReason::Halted)
        throw std::logic_error("MonteCarloRunner: golden run of " +
                               benchmark.name() + " did not halt (" +
                               stop_reason_name(golden_.stop) + ")");
    golden_output_ = benchmark.golden_output();
    const auto observed = benchmark.read_output(memory_);
    if (observed != golden_output_)
        throw std::logic_error("MonteCarloRunner: golden run of " +
                               benchmark.name() +
                               " does not match the reference output");
    watchdog_cycles_ = static_cast<std::uint64_t>(
        std::ceil(config_.watchdog_factor * static_cast<double>(golden_.cycles)));
}

TrialOutcome MonteCarloRunner::run_trial(const OperatingPoint& point,
                                         std::uint64_t trial) {
    model_->set_operating_point(point);
    model_->reset_stats();
    // Independent, reproducible stream per trial.
    Rng seeder(config_.seed);
    model_->reseed(seeder.fork(trial)());

    cpu_.set_fault_hook(model_);
    cpu_.reset(benchmark_->program());
    const RunResult run = cpu_.run(watchdog_cycles_);
    cpu_.set_fault_hook(nullptr);

    TrialOutcome outcome;
    outcome.stop = run.stop;
    outcome.finished = run.finished();
    outcome.fi = model_->stats();
    outcome.cycles = run.cycles;
    outcome.kernel_cycles = run.kernel_cycles;
    if (outcome.finished) {
        const auto output = benchmark_->read_output(memory_);
        outcome.correct = output == golden_output_;
        outcome.output_error = benchmark_->output_error(output);
    }
    return outcome;
}

PointSummary MonteCarloRunner::run_point(const OperatingPoint& point) {
    PointSummary summary;
    summary.point = point;
    summary.trials = config_.trials;
    for (std::size_t trial = 0; trial < config_.trials; ++trial) {
        const TrialOutcome outcome = run_trial(point, trial);
        if (outcome.finished) {
            ++summary.finished_count;
            if (outcome.correct) ++summary.correct_count;
            summary.error_stats.add(outcome.output_error);
        }
        summary.fi_rate_stats.add(outcome.fi.fi_per_kcycle());
    }
    summary.fi_rate = summary.fi_rate_stats.mean();
    summary.mean_error = summary.error_stats.mean();
    return summary;
}

}  // namespace sfi
