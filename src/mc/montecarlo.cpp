#include "mc/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mc/parallel.hpp"

namespace sfi {

namespace {

/// Pass-through hook that only counts what a FaultModel would have
/// counted on an injection-free run; drives the golden run so the
/// zero-fault fast path can synthesize exact FiStats.
class CountingHook final : public ExFaultHook {
public:
    void on_cycle(bool fi_active) override {
        if (fi_active) ++stats_.fi_cycles;
    }
    void on_cycles(std::uint64_t n, bool fi_active) override {
        if (fi_active) stats_.fi_cycles += n;
    }
    std::uint32_t on_ex_result(const ExEvent&, std::uint32_t correct) override {
        ++stats_.alu_ops;
        return correct;
    }
    const FiStats& stats() const { return stats_; }

private:
    FiStats stats_;
};

}  // namespace

MonteCarloRunner::MonteCarloRunner(const Benchmark& benchmark, FaultModel& model,
                                   McConfig config)
    : benchmark_(&benchmark),
      model_(&model),
      config_(config),
      cpu_(memory_),
      trial_seeder_(config.seed) {
    // Lower the program into the micro-op stream once, up front: the
    // golden run and every serial trial reuse it across resets (content
    // hash match), so no run on this Cpu ever decodes lazily. No profile
    // is attached yet — this one-time cost is construction, not a phase.
    cpu_.set_dispatch(config_.dispatch);
    cpu_.prime_decode(benchmark.program());
    // Fault-free reference run: establishes the golden cycle count and
    // validates the kernel against its C++ replica. The counting hook is
    // functionally inert (results pass through untouched) but records the
    // FI counters an injection-free trial reports — the fast-path
    // template below must match a simulated clean trial field for field.
    CountingHook counter;
    cpu_.set_fault_hook(&counter);
    cpu_.reset(benchmark.program());
    golden_ = cpu_.run();
    cpu_.set_fault_hook(nullptr);
    if (golden_.stop != StopReason::Halted)
        throw std::logic_error("MonteCarloRunner: golden run of " +
                               benchmark.name() + " did not halt (" +
                               stop_reason_name(golden_.stop) + ")");
    golden_output_ = benchmark.golden_output();
    const auto observed = benchmark.read_output(memory_);
    if (observed != golden_output_)
        throw std::logic_error("MonteCarloRunner: golden run of " +
                               benchmark.name() +
                               " does not match the reference output");
    watchdog_cycles_ = static_cast<std::uint64_t>(
        std::ceil(config_.watchdog_factor * static_cast<double>(golden_.cycles)));

    // Forensic baseline: cpu_/memory_ still hold the reference run's final
    // architectural state, so snapshot it here for classify_trial. Only
    // the dirty slice of memory is copied — everything outside it is zero
    // by Memory's class invariant, for the golden run and trials alike.
    for (std::uint8_t i = 0; i < 32; ++i) golden_regs_[i] = cpu_.reg(i);
    golden_flag_ = cpu_.flag();
    golden_mem_lo_ = memory_.dirty_lo();
    golden_mem_hi_ = memory_.dirty_hi();
    golden_mem_.resize(golden_mem_hi_ - golden_mem_lo_);
    for (std::uint32_t a = golden_mem_lo_; a < golden_mem_hi_; ++a)
        golden_mem_[a - golden_mem_lo_] = memory_.read_u8_unchecked(a);

    clean_outcome_.stop = StopReason::Halted;
    clean_outcome_.finished = true;
    clean_outcome_.correct = true;
    clean_outcome_.output_error = benchmark.output_error(golden_output_);
    clean_outcome_.fi = counter.stats();
    clean_outcome_.cycles = golden_.cycles;
    clean_outcome_.kernel_cycles = golden_.kernel_cycles;
}

TrialOutcome MonteCarloRunner::run_trial_with(Cpu& cpu, FaultModel& model,
                                              const OperatingPoint& point,
                                              std::uint64_t trial) const {
    model.set_operating_point(point);
    // Memoized like the point: a no-op after the first trial. Applied
    // before reseed() so a mode switch's batch invalidation cannot drop
    // draws from the fresh stream.
    model.set_sampling_mode(config_.fault_sampling);
    model.reset_stats();
    // Independent, reproducible stream per trial: (seed, trial) fully
    // determines the model's draws, so equal indices reproduce identical
    // trials on any context, in any order, on any thread.
    model.reseed(trial_seeder_.fork(trial)());

    // Zero-fault fast path: when the model proves it cannot inject at this
    // point, the trial's simulation IS the golden run — return the
    // precomputed outcome instead of re-simulating it. The watchdog guard
    // covers watchdog_factor < 1 configurations where even the clean run
    // would be cut short. RNG state needs no special handling: every trial
    // reseeds above, so skipped draws cannot leak into other trials.
    if (config_.zero_fault_fast_path && !model.can_inject() &&
        golden_.cycles <= watchdog_cycles_) {
        model.adopt_stats(clean_outcome_.fi);  // model.stats() stays faithful
        return clean_outcome_;
    }

    cpu.set_fault_hook(&model);
    cpu.reset(benchmark_->program());  // zeroes memory: no cross-trial state
    const RunResult run = cpu.run(watchdog_cycles_);
    cpu.set_fault_hook(nullptr);

    TrialOutcome outcome;
    outcome.stop = run.stop;
    outcome.finished = run.finished();
    outcome.fi = model.stats();
    outcome.cycles = run.cycles;
    outcome.kernel_cycles = run.kernel_cycles;
    if (outcome.finished) {
        const auto output = benchmark_->read_output(cpu.memory());
        outcome.correct = output == golden_output_;
        outcome.output_error = benchmark_->output_error(output);
    }
    return outcome;
}

TrialOutcome MonteCarloRunner::run_trial(const OperatingPoint& point,
                                         std::uint64_t trial) {
    return run_trial_with(cpu_, *model_, point, trial);
}

bool MonteCarloRunner::arch_state_differs(const Cpu& cpu) const {
    // r0 is the write sink — architecturally always zero, and the threaded
    // engine's slot-32 trick means its raw cell is never corrupted anyway.
    for (std::uint8_t i = 1; i < 32; ++i)
        if (cpu.reg(i) != golden_regs_[i]) return true;
    if (cpu.flag() != golden_flag_) return true;
    const Memory& mem = cpu.memory();
    const std::uint32_t lo = std::min(golden_mem_lo_, mem.dirty_lo());
    const std::uint32_t hi = std::max(golden_mem_hi_, mem.dirty_hi());
    for (std::uint32_t a = lo; a < hi; ++a) {
        const std::uint8_t golden =
            (a >= golden_mem_lo_ && a < golden_mem_hi_)
                ? golden_mem_[a - golden_mem_lo_]
                : 0;
        if (mem.read_u8_unchecked(a) != golden) return true;
    }
    return false;
}

OutcomeClass MonteCarloRunner::classify_trial(const Cpu& cpu,
                                              const TrialOutcome& outcome,
                                              std::uint32_t razor_detected) const {
    if (!outcome.finished) return OutcomeClass::Hang;
    if (!outcome.correct) return OutcomeClass::SDC;
    if (razor_detected > 0) return OutcomeClass::Detected;
    if (arch_state_differs(cpu)) return OutcomeClass::LatentCorrupt;
    return OutcomeClass::Masked;
}

TrialForensics MonteCarloRunner::run_trial_forensic(Cpu& cpu, FaultModel& model,
                                                    const OperatingPoint& point,
                                                    std::uint64_t trial,
                                                    ForensicProbe& probe) const {
    TrialForensics fx;

    model.set_operating_point(point);
    // Fast-path trials ARE the golden run: vacuously Masked, zero records.
    // Mirrors run_trial_with exactly so the forensic re-run of a point
    // classifies the same trials the summary counted.
    if (config_.zero_fault_fast_path && !model.can_inject() &&
        golden_.cycles <= watchdog_cycles_) {
        model.set_sampling_mode(config_.fault_sampling);
        model.reset_stats();
        model.reseed(trial_seeder_.fork(trial)());
        model.adopt_stats(clean_outcome_.fi);
        fx.outcome = clean_outcome_;
        fx.cls = OutcomeClass::Masked;
        return fx;
    }

    probe.start_trial();
    model.set_forensic_probe(&probe);
    // The probed run must be bit-identical to the plain one, so the trial
    // body below is run_trial_with verbatim (the probe adds no draws).
    fx.outcome = run_trial_with(cpu, model, point, trial);
    model.set_forensic_probe(nullptr);

    fx.razor_detected = probe.detected();
    fx.razor_escaped = probe.escaped();
    fx.cls = classify_trial(cpu, fx.outcome, fx.razor_detected);
    fx.records = probe.take_records();
    for (FaultRecord& rec : fx.records)
        rec.trial = static_cast<std::uint32_t>(trial);
    fx.detection_latencies = probe.take_latencies();
    return fx;
}

TrialForensics MonteCarloRunner::run_trial_forensic(const OperatingPoint& point,
                                                    std::uint64_t trial) {
    ForensicProbe probe;
    return run_trial_forensic(cpu_, *model_, point, trial, probe);
}

PointSummary MonteCarloRunner::run_point(const OperatingPoint& point) {
    std::vector<TrialOutcome> outcomes;
    {
        const perf::ScopedPhaseTimer trial_timer(profile_, perf::Phase::TrialRun,
                                                 config_.trials);
        // Worker-count resolution/clamping is owned by run_trials_parallel;
        // here we only decide serial vs. parallel.
        if (config_.trials > 1 && resolve_thread_count(config_.threads) > 1) {
            outcomes = run_trials_parallel(*this, point, config_.threads);
        } else {
            outcomes.reserve(config_.trials);
            for (std::size_t trial = 0; trial < config_.trials; ++trial)
                outcomes.push_back(run_trial(point, trial));
        }
    }
    const perf::ScopedPhaseTimer fold_timer(profile_, perf::Phase::Aggregation,
                                            outcomes.size());
    return summarize_trials(point, outcomes);
}

PointSummary summarize_trials(const OperatingPoint& point,
                              const std::vector<TrialOutcome>& outcomes) {
    PointSummary summary;
    summary.point = point;
    accumulate_trials(summary, outcomes);
    return summary;
}

void accumulate_trials(PointSummary& summary,
                       const std::vector<TrialOutcome>& outcomes) {
    summary.trials += outcomes.size();
    for (const TrialOutcome& outcome : outcomes) {
        if (outcome.finished) {
            ++summary.finished_count;
            if (outcome.correct) ++summary.correct_count;
            summary.error_stats.add(outcome.output_error);
        }
        summary.fi_rate_stats.add(outcome.fi.fi_per_kcycle());
    }
    // The derived means are pure functions of the accumulators, so
    // refreshing them after every block leaves the final values identical
    // to a single-pass summarize_trials.
    summary.fi_rate = summary.fi_rate_stats.mean();
    summary.mean_error = summary.error_stats.mean();
}

}  // namespace sfi
