// Console / CSV reporting of sweep results in the shape of the paper's
// figure panels: one row per frequency (or voltage) with the four
// application metrics.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mc/montecarlo.hpp"

namespace sfi {

/// Prints a figure-panel-style table: frequency, finished %, correct %,
/// FI/kCycle, output error. `error_label` names the benchmark metric.
void print_sweep(std::ostream& os, const std::string& title,
                 const std::vector<PointSummary>& sweep,
                 const std::string& error_label);

/// Same series as CSV (columns: freq_mhz, vdd, sigma_mv, finished, correct,
/// fi_per_kcycle, mean_error, trials). mean_error averages output error
/// over *finished* trials only, so a point where nothing finished emits an
/// empty cell (matching the table's "n/a") rather than a meaningless 0.
/// Empty path = skip. Missing parent directories are created; open or
/// write failures throw std::runtime_error instead of silently dropping
/// the figure data.
void write_sweep_csv(const std::string& path,
                     const std::vector<PointSummary>& sweep);

/// One-line progress printer for long sweeps.
void print_point_progress(std::ostream& os, const PointSummary& point);

}  // namespace sfi
