#include "mc/sweep.hpp"

#include <cmath>
#include <stdexcept>

namespace sfi {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
    if (n == 0) throw std::invalid_argument("linspace: n must be positive");
    if (n == 1) return {lo};
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(n - 1);
    return out;
}

std::vector<double> arange(double lo, double hi, double step) {
    if (step <= 0.0) throw std::invalid_argument("arange: step must be positive");
    if (hi < lo - 1e-9) return {};
    // Index form instead of `v += step`: accumulation drifts by ~n·eps and
    // drops (or duplicates) the inclusive endpoint on long ranges.
    const auto count =
        static_cast<std::size_t>(std::floor((hi - lo + 1e-9) / step)) + 1;
    std::vector<double> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = lo + static_cast<double>(i) * step;
    return out;
}

std::vector<PointSummary> frequency_sweep(MonteCarloRunner& runner,
                                          OperatingPoint base,
                                          const std::vector<double>& freqs_mhz,
                                          const SweepProgress& progress) {
    std::vector<PointSummary> out;
    out.reserve(freqs_mhz.size());
    for (const double f : freqs_mhz) {
        OperatingPoint point = base;
        point.freq_mhz = f;
        out.push_back(runner.run_point(point));
        if (progress) progress(out.back());
    }
    return out;
}

std::vector<PointSummary> voltage_sweep(MonteCarloRunner& runner,
                                        OperatingPoint base,
                                        const std::vector<double>& vdds,
                                        const SweepProgress& progress) {
    std::vector<PointSummary> out;
    out.reserve(vdds.size());
    for (const double v : vdds) {
        OperatingPoint point = base;
        point.vdd = v;
        out.push_back(runner.run_point(point));
        if (progress) progress(out.back());
    }
    return out;
}

std::optional<double> find_poff_mhz(const std::vector<PointSummary>& sweep) {
    // Scan for the minimum failing frequency instead of the first failing
    // point: the historical first-hit scan silently returned the wrong
    // frequency when the caller's sweep was not in ascending order.
    std::optional<double> poff;
    for (const PointSummary& point : sweep)
        if (point.correct_count != point.trials &&
            (!poff || point.point.freq_mhz < *poff))
            poff = point.point.freq_mhz;
    return poff;
}

double poff_gain_percent(double poff_mhz, double sta_mhz) {
    return 100.0 * (poff_mhz - sta_mhz) / sta_mhz;
}

}  // namespace sfi
