#include "mc/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/ledger.hpp"

namespace sfi {

std::size_t resolve_thread_count(std::size_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

TrialContext::TrialContext(const Benchmark& benchmark,
                           const FaultModel& prototype)
    : model(prototype.clone()), cpu(memory) {
    // Warm the benchmark's lazy program cache on the constructing thread;
    // MonteCarloRunner's golden run normally did this already, but a
    // context must not be the first to touch it from a worker.
    (void)benchmark.program();
}

void for_each_trial(std::size_t trials, std::size_t threads,
                    std::size_t chunk,
                    const std::function<void(std::size_t, std::uint64_t)>& fn) {
    if (trials == 0) return;
    threads = std::clamp<std::size_t>(threads, 1, trials);
    chunk = std::max<std::size_t>(chunk, 1);

    if (threads == 1) {
        for (std::uint64_t trial = 0; trial < trials; ++trial) fn(0, trial);
        return;
    }

    std::atomic<std::uint64_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
    const auto worker = [&](std::size_t index) {
        try {
            for (;;) {
                // A failed sibling poisons the whole result, so stop
                // grabbing chunks instead of burning cycles on trials
                // that will be thrown away.
                if (failed.load(std::memory_order_relaxed)) break;
                const std::uint64_t begin =
                    next.fetch_add(chunk, std::memory_order_relaxed);
                if (begin >= trials) break;
                const std::uint64_t end =
                    std::min<std::uint64_t>(begin + chunk, trials);
                for (std::uint64_t trial = begin; trial < end; ++trial)
                    fn(index, trial);
            }
        } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!error) error = std::current_exception();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (std::size_t index = 1; index < threads; ++index)
        pool.emplace_back(worker, index);
    worker(0);  // the calling thread participates
    for (std::thread& thread : pool) thread.join();
    if (error) std::rethrow_exception(error);
}

std::vector<std::unique_ptr<TrialContext>> make_trial_contexts(
    const MonteCarloRunner& runner, std::size_t threads) {
    threads = std::max<std::size_t>(resolve_thread_count(threads), 1);
    std::vector<std::unique_ptr<TrialContext>> contexts;
    contexts.reserve(threads);
    // Micro-op priming happens here, on the dispatching thread: every
    // context lowers the full program once, so worker trials never decode
    // lazily. That keeps the Phase::Decode counters a pure function of
    // the context count (the self-scheduling pool gives no guarantee that
    // every worker even executes a trial) and keeps PhaseProfile off the
    // worker threads entirely.
    perf::ScopedPhaseTimer decode_timer(
        runner.config().dispatch == CpuDispatch::Threaded
            ? runner.perf_profile()
            : nullptr,
        perf::Phase::Decode);
    std::uint64_t lowered = 0;
    for (std::size_t index = 0; index < threads; ++index) {
        auto context = std::make_unique<TrialContext>(runner.benchmark(),
                                                      runner.model());
        context->cpu.set_dispatch(runner.config().dispatch);
        lowered += context->cpu.prime_decode(runner.benchmark().program());
        contexts.push_back(std::move(context));
    }
    decode_timer.set_items(lowered);
    return contexts;
}

std::vector<TrialOutcome> run_trial_block(
    const MonteCarloRunner& runner, const OperatingPoint& point,
    std::uint64_t first_trial, std::size_t count,
    const std::vector<std::unique_ptr<TrialContext>>& contexts,
    obs::Ledger* ledger) {
    const std::size_t threads =
        std::clamp<std::size_t>(contexts.size(), 1,
                                std::max<std::size_t>(count, 1));

    // Small chunks keep workers balanced across the clean-run/watchdog-run
    // cost spread; 8 grabs per worker amortizes the counter traffic.
    const std::size_t chunk = std::max<std::size_t>(count / (threads * 8), 1);

    // Per-worker activity buffers: each is written by exactly one worker
    // (cache-line padded against false sharing) and read by the dispatch
    // thread only after the join below — the ledger itself is never
    // touched from a worker. Ledger::now_us() is const over immutable
    // state, so concurrent reads are safe.
    const bool record = ledger != nullptr && !ledger->logical();
    struct alignas(64) WorkerActivity {
        double first_us = 0.0;
        double last_us = 0.0;
        std::uint64_t trials = 0;
    };
    std::vector<WorkerActivity> activity(record ? contexts.size() : 0);

    std::vector<TrialOutcome> outcomes(count);
    for_each_trial(count, threads, chunk,
                   [&](std::size_t worker, std::uint64_t offset) {
                       if (record && activity[worker].trials == 0)
                           activity[worker].first_us = ledger->now_us();
                       TrialContext& context = *contexts[worker];
                       outcomes[offset] = runner.run_trial_with(
                           context.cpu, *context.model, point,
                           first_trial + offset);
                       if (record) {
                           activity[worker].last_us = ledger->now_us();
                           ++activity[worker].trials;
                       }
                   });
    if (record) {
        for (std::size_t worker = 0; worker < activity.size(); ++worker) {
            const WorkerActivity& a = activity[worker];
            if (a.trials == 0) continue;
            ledger->worker_span(
                worker + 1, "trials", a.first_us,
                std::max(0.0, a.last_us - a.first_us),
                {{"trials", a.trials}, {"first_trial", first_trial}});
        }
    }
    return outcomes;
}

std::vector<TrialForensics> run_forensic_block(
    const MonteCarloRunner& runner, const OperatingPoint& point,
    std::uint64_t first_trial, std::size_t count,
    const std::vector<std::unique_ptr<TrialContext>>& contexts) {
    const std::size_t threads =
        std::clamp<std::size_t>(contexts.size(), 1,
                                std::max<std::size_t>(count, 1));
    const std::size_t chunk = std::max<std::size_t>(count / (threads * 8), 1);

    // One probe per worker, reused across its trials (start_trial clears
    // it); run_trial_forensic moves the records out before the next grab.
    std::vector<ForensicProbe> probes(contexts.size());

    std::vector<TrialForensics> results(count);
    for_each_trial(count, threads, chunk,
                   [&](std::size_t worker, std::uint64_t offset) {
                       TrialContext& context = *contexts[worker];
                       results[offset] = runner.run_trial_forensic(
                           context.cpu, *context.model, point,
                           first_trial + offset, probes[worker]);
                   });
    return results;
}

std::vector<TrialOutcome> run_trials_parallel(const MonteCarloRunner& runner,
                                              const OperatingPoint& point,
                                              std::size_t threads) {
    const std::size_t trials = runner.config().trials;
    threads = std::clamp<std::size_t>(resolve_thread_count(threads), 1,
                                      std::max<std::size_t>(trials, 1));
    return run_trial_block(runner, point, 0, trials,
                           make_trial_contexts(runner, threads));
}

}  // namespace sfi
