// Gate-level netlist representation for the EX-stage datapath.
//
// A netlist is a DAG of single-output cells; net identifiers equal the id
// of the driving cell, and cells may only reference already-created cells,
// so creation order is a topological order by construction (no cycle check
// needed, and timing/logic evaluation is a single forward sweep).
//
// Primary inputs are Input cells grouped into named buses ("a", "b",
// "op"...); endpoints (the D-pins of the 32 ALU result flip-flops, paper
// §2.1) are recorded as named output buses.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace sfi {

enum class CellType : std::uint8_t {
    Input,  ///< primary input (no fanin)
    Tie0,   ///< constant 0
    Tie1,   ///< constant 1
    Buf, Inv,
    Nand2, Nor2, And2, Or2, Xor2, Xnor2,
    Mux2,   ///< fanin: {sel, d0, d1}; out = sel ? d1 : d0
    kCount
};

const char* cell_type_name(CellType type);
/// Number of fanin pins for a cell type (0 for Input/Tie).
unsigned cell_fanin_count(CellType type);
/// Combinational function of a cell; unused pins are ignored.
bool cell_eval(CellType type, bool in0, bool in1, bool in2);

using NetId = std::uint32_t;
constexpr NetId kNoNet = 0xffffffffu;

/// One single-output gate instance; its output net id is its position in
/// the netlist's cell vector.
struct Cell {
    CellType type = CellType::Input;
    std::array<NetId, 3> fanin = {kNoNet, kNoNet, kNoNet};  ///< unused pins = kNoNet
};

class Netlist {
public:
    // ---- construction ----------------------------------------------------
    /// Adds a primary input bit to bus `bus` at position `bit` and returns
    /// its net. Bus positions must be added exactly once.
    NetId add_input(const std::string& bus, std::size_t bit);
    /// Adds a constant-0/1 cell (Tie0/Tie1) and returns its net.
    NetId add_tie(bool value);
    /// Adds a gate. Fanins must be existing nets (enforces the DAG).
    NetId add_gate(CellType type, NetId in0, NetId in1 = kNoNet,
                   NetId in2 = kNoNet);
    /// Registers `net` as output bit `bit` of output bus `bus`.
    void set_output(const std::string& bus, std::size_t bit, NetId net);

    // Convenience gate helpers.
    NetId inv(NetId a) { return add_gate(CellType::Inv, a); }
    NetId buf(NetId a) { return add_gate(CellType::Buf, a); }
    NetId nand2(NetId a, NetId b) { return add_gate(CellType::Nand2, a, b); }
    NetId nor2(NetId a, NetId b) { return add_gate(CellType::Nor2, a, b); }
    NetId and2(NetId a, NetId b) { return add_gate(CellType::And2, a, b); }
    NetId or2(NetId a, NetId b) { return add_gate(CellType::Or2, a, b); }
    NetId xor2(NetId a, NetId b) { return add_gate(CellType::Xor2, a, b); }
    NetId xnor2(NetId a, NetId b) { return add_gate(CellType::Xnor2, a, b); }
    NetId mux2(NetId sel, NetId d0, NetId d1) {
        return add_gate(CellType::Mux2, sel, d0, d1);
    }

    // Multi-gate helpers built from the base cells.
    NetId and3(NetId a, NetId b, NetId c) { return and2(and2(a, b), c); }
    NetId or3(NetId a, NetId b, NetId c) { return or2(or2(a, b), c); }
    NetId xor3(NetId a, NetId b, NetId c) { return xor2(xor2(a, b), c); }
    /// Majority-of-three (full-adder carry): ab | bc | ca.
    NetId maj3(NetId a, NetId b, NetId c) {
        return or3(and2(a, b), and2(b, c), and2(c, a));
    }

    // ---- inspection --------------------------------------------------------
    std::size_t cell_count() const { return cells_.size(); }
    const Cell& cell(NetId id) const { return cells_[id]; }
    const std::vector<Cell>& cells() const { return cells_; }

    /// Input bus nets in bit order; throws std::out_of_range for unknown bus.
    const std::vector<NetId>& input_bus(const std::string& bus) const;
    const std::vector<NetId>& output_bus(const std::string& bus) const;
    bool has_input_bus(const std::string& bus) const;
    bool has_output_bus(const std::string& bus) const;
    const std::map<std::string, std::vector<NetId>>& input_buses() const {
        return inputs_;
    }
    const std::map<std::string, std::vector<NetId>>& output_buses() const {
        return outputs_;
    }

    /// Number of cells a net fans out to (computed lazily, cached).
    const std::vector<std::uint32_t>& fanout_counts() const;

    /// Logic depth (gate count on the longest input->output path).
    std::size_t logic_depth() const;

    /// Per-cell-type population, for reports.
    std::map<std::string, std::size_t> type_histogram() const;

    /// Graphviz dump (for documentation / debugging of small blocks).
    void write_dot(std::ostream& os, const std::string& name) const;

    // ---- functional evaluation -----------------------------------------
    /// Evaluates all cells given input bus values (LSB-first bit packing).
    /// Returns the value of the named 32-bit (or narrower) output bus.
    /// For buses wider than 64 bits only the low 64 are packed.
    std::uint64_t eval(const std::map<std::string, std::uint64_t>& input_values,
                      const std::string& output_bus_name) const;

    /// Low-level evaluation into a caller-provided value array
    /// (size >= cell_count()). Input cell values must be pre-set by the
    /// caller at their net positions; all other entries are overwritten.
    void eval_into(std::vector<std::uint8_t>& values) const;

private:
    NetId check_net(NetId id) const;

    std::vector<Cell> cells_;
    std::map<std::string, std::vector<NetId>> inputs_;
    std::map<std::string, std::vector<NetId>> outputs_;
    mutable std::vector<std::uint32_t> fanout_;  // lazy cache
};

}  // namespace sfi
