#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>

namespace sfi {

const char* cell_type_name(CellType type) {
    switch (type) {
        case CellType::Input: return "input";
        case CellType::Tie0: return "tie0";
        case CellType::Tie1: return "tie1";
        case CellType::Buf: return "buf";
        case CellType::Inv: return "inv";
        case CellType::Nand2: return "nand2";
        case CellType::Nor2: return "nor2";
        case CellType::And2: return "and2";
        case CellType::Or2: return "or2";
        case CellType::Xor2: return "xor2";
        case CellType::Xnor2: return "xnor2";
        case CellType::Mux2: return "mux2";
        case CellType::kCount: break;
    }
    return "?";
}

unsigned cell_fanin_count(CellType type) {
    switch (type) {
        case CellType::Input:
        case CellType::Tie0:
        case CellType::Tie1: return 0;
        case CellType::Buf:
        case CellType::Inv: return 1;
        case CellType::Mux2: return 3;
        default: return 2;
    }
}

bool cell_eval(CellType type, bool a, bool b, bool c) {
    switch (type) {
        case CellType::Input: return a;  // value injected externally
        case CellType::Tie0: return false;
        case CellType::Tie1: return true;
        case CellType::Buf: return a;
        case CellType::Inv: return !a;
        case CellType::Nand2: return !(a && b);
        case CellType::Nor2: return !(a || b);
        case CellType::And2: return a && b;
        case CellType::Or2: return a || b;
        case CellType::Xor2: return a != b;
        case CellType::Xnor2: return a == b;
        case CellType::Mux2: return a ? c : b;  // a=sel, b=d0, c=d1
        case CellType::kCount: break;
    }
    return false;
}

NetId Netlist::check_net(NetId id) const {
    if (id >= cells_.size()) throw std::out_of_range("Netlist: fanin net does not exist");
    return id;
}

NetId Netlist::add_input(const std::string& bus, std::size_t bit) {
    auto& nets = inputs_[bus];
    if (nets.size() <= bit) nets.resize(bit + 1, kNoNet);
    if (nets[bit] != kNoNet)
        throw std::invalid_argument("Netlist: input " + bus + "[" +
                                    std::to_string(bit) + "] already exists");
    const NetId id = static_cast<NetId>(cells_.size());
    cells_.push_back(Cell{CellType::Input, {kNoNet, kNoNet, kNoNet}});
    nets[bit] = id;
    fanout_.clear();
    return id;
}

NetId Netlist::add_tie(bool value) {
    const NetId id = static_cast<NetId>(cells_.size());
    cells_.push_back(Cell{value ? CellType::Tie1 : CellType::Tie0,
                          {kNoNet, kNoNet, kNoNet}});
    fanout_.clear();
    return id;
}

NetId Netlist::add_gate(CellType type, NetId in0, NetId in1, NetId in2) {
    const unsigned n = cell_fanin_count(type);
    if (n == 0)
        throw std::invalid_argument("Netlist: use add_input/add_tie for sources");
    Cell cell;
    cell.type = type;
    cell.fanin[0] = check_net(in0);
    if (n >= 2) cell.fanin[1] = check_net(in1);
    if (n >= 3) cell.fanin[2] = check_net(in2);
    const NetId id = static_cast<NetId>(cells_.size());
    cells_.push_back(cell);
    fanout_.clear();
    return id;
}

void Netlist::set_output(const std::string& bus, std::size_t bit, NetId net) {
    check_net(net);
    auto& nets = outputs_[bus];
    if (nets.size() <= bit) nets.resize(bit + 1, kNoNet);
    nets[bit] = net;
}

const std::vector<NetId>& Netlist::input_bus(const std::string& bus) const {
    const auto it = inputs_.find(bus);
    if (it == inputs_.end()) throw std::out_of_range("no input bus " + bus);
    return it->second;
}

const std::vector<NetId>& Netlist::output_bus(const std::string& bus) const {
    const auto it = outputs_.find(bus);
    if (it == outputs_.end()) throw std::out_of_range("no output bus " + bus);
    return it->second;
}

bool Netlist::has_input_bus(const std::string& bus) const {
    return inputs_.count(bus) > 0;
}

bool Netlist::has_output_bus(const std::string& bus) const {
    return outputs_.count(bus) > 0;
}

const std::vector<std::uint32_t>& Netlist::fanout_counts() const {
    if (fanout_.size() != cells_.size()) {
        fanout_.assign(cells_.size(), 0);
        for (const Cell& cell : cells_) {
            const unsigned n = cell_fanin_count(cell.type);
            for (unsigned i = 0; i < n; ++i) ++fanout_[cell.fanin[i]];
        }
    }
    return fanout_;
}

std::size_t Netlist::logic_depth() const {
    std::vector<std::uint32_t> depth(cells_.size(), 0);
    std::uint32_t best = 0;
    for (NetId id = 0; id < cells_.size(); ++id) {
        const Cell& cell = cells_[id];
        const unsigned n = cell_fanin_count(cell.type);
        std::uint32_t d = 0;
        for (unsigned i = 0; i < n; ++i) d = std::max(d, depth[cell.fanin[i]] + 1);
        depth[id] = d;
        best = std::max(best, d);
    }
    return best;
}

std::map<std::string, std::size_t> Netlist::type_histogram() const {
    std::map<std::string, std::size_t> hist;
    for (const Cell& cell : cells_) ++hist[cell_type_name(cell.type)];
    return hist;
}

void Netlist::write_dot(std::ostream& os, const std::string& name) const {
    os << "digraph \"" << name << "\" {\n  rankdir=LR;\n";
    for (NetId id = 0; id < cells_.size(); ++id) {
        os << "  n" << id << " [label=\"" << cell_type_name(cells_[id].type)
           << id << "\"];\n";
        const unsigned n = cell_fanin_count(cells_[id].type);
        for (unsigned i = 0; i < n; ++i)
            os << "  n" << cells_[id].fanin[i] << " -> n" << id << ";\n";
    }
    for (const auto& [bus, nets] : outputs_)
        for (std::size_t bit = 0; bit < nets.size(); ++bit)
            if (nets[bit] != kNoNet)
                os << "  n" << nets[bit] << " -> \"" << bus << "[" << bit
                   << "]\";\n";
    os << "}\n";
}

void Netlist::eval_into(std::vector<std::uint8_t>& values) const {
    assert(values.size() >= cells_.size());
    for (NetId id = 0; id < cells_.size(); ++id) {
        const Cell& cell = cells_[id];
        if (cell.type == CellType::Input) continue;  // injected by caller
        const bool a = cell.fanin[0] != kNoNet && values[cell.fanin[0]];
        const bool b = cell.fanin[1] != kNoNet && values[cell.fanin[1]];
        const bool c = cell.fanin[2] != kNoNet && values[cell.fanin[2]];
        values[id] = cell_eval(cell.type, a, b, c);
    }
}

std::uint64_t Netlist::eval(
    const std::map<std::string, std::uint64_t>& input_values,
    const std::string& output_bus_name) const {
    std::vector<std::uint8_t> values(cells_.size(), 0);
    for (const auto& [bus, value] : input_values) {
        const auto& nets = input_bus(bus);
        for (std::size_t bit = 0; bit < nets.size(); ++bit)
            if (nets[bit] != kNoNet)
                values[nets[bit]] = (value >> bit) & 1u;
    }
    eval_into(values);
    const auto& out = output_bus(output_bus_name);
    std::uint64_t result = 0;
    for (std::size_t bit = 0; bit < out.size() && bit < 64; ++bit)
        if (out[bit] != kNoNet && values[out[bit]])
            result |= 1ULL << bit;
    return result;
}

}  // namespace sfi
