// Executes a CampaignSpec: builds (and caches) the characterized cores,
// resolves the symbolic grids, schedules every panel's points through
// the Monte-Carlo engine, and emits the unified artifacts (per-panel CSV
// plus a campaign manifest JSON).
//
// Scheduling layers point-level dispatch over the existing trial-level
// pool: points run serially in spec order — preserving progress output
// and PoFF semantics — while each point's trials fan out across
// RunOptions::threads workers via MonteCarloRunner::run_point
// (src/mc/parallel.hpp). Completed points are appended to the point
// store before the next point starts, so an interrupted campaign can be
// re-run and every finished point is served from the store. By the PR 2
// determinism contract a stored summary equals a recomputed one bit for
// bit, which makes a warm re-run's CSV output byte-identical to a cold
// run's — the resume guarantee, enforced by tests/campaign/ and CI.
//
// Benchmark-kernel points execute through the adaptive sampling engine
// (src/sampling/): a fixed-N policy runs through the batched executor and
// stays byte-identical to the historical run_point path, while adaptive
// policies (CampaignSpec::sampling / PanelSpec::sampling) stop early once
// the Wilson intervals are tight enough, and PoffSearchSpec panels
// replace their grid with a store-backed bisection search. Adaptive
// summaries are keyed with the policy fingerprint so they never collide
// with fixed-N points.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/point_store.hpp"
#include "campaign/spec.hpp"
#include "fi/core_model.hpp"
#include "fi/forensics.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"

namespace sfi::campaign {

struct RunOptions {
    /// Point-store file; empty = compute everything, persist nothing.
    std::string store_path;
    /// Directory for per-panel CSVs (created on demand); empty = no CSV.
    std::string csv_dir;
    /// Manifest JSON path; empty = `<csv_dir>/<campaign>_manifest.json`
    /// when csv_dir is set, else no manifest.
    std::string manifest_path;
    /// MC worker threads per point (McConfig::threads semantics: 0 = one
    /// per hardware thread, 1 = serial; bit-identical at any value).
    std::size_t threads = 1;
    /// CPU execution engine for every ISS run (McConfig::dispatch).
    /// Bit-identical results either way, so this is a volatile run
    /// setting: it does not enter the spec fingerprint or the point-store
    /// keys — stored summaries are shared across dispatch modes.
    CpuDispatch dispatch = CpuDispatch::Threaded;
    /// Console progress (panel tables, PoFF lines); null = quiet.
    std::ostream* console = nullptr;
    /// Checked before every point; returning true stops the campaign
    /// cleanly after the point in flight (completed points are already
    /// persisted). This is how tests emulate a mid-sweep kill.
    std::function<bool()> cancelled;
    /// Invoked before each MC panel executes (after its core is built) —
    /// drivers hook their bespoke per-panel console headers here.
    std::function<void(const PanelSpec&, const CharacterizedCore&)>
        on_panel_start;
    /// Run ledger (bench --trace); null = no tracing. The runner emits
    /// the campaign/panel/point narrative, probe verdicts and stopping
    /// classifications in both trace modes, and store traffic, batch
    /// spans, worker lanes and progress estimates in wall mode only —
    /// see obs/ledger.hpp for the determinism contract.
    obs::Ledger* ledger = nullptr;
    /// External metrics registry to accumulate into (sfi_perf threads the
    /// perf-report registry through here); null = the runner uses an
    /// internal one, readable via CampaignRunner::metrics().
    obs::MetricsRegistry* metrics = nullptr;
    /// Live per-panel `point k/N, trials/s, ETA` line on stderr. Only
    /// printed when stderr is a TTY; bench drivers map --quiet to false.
    bool progress = false;
    /// Fault-forensics artifact directory (bench --forensics DIR); empty =
    /// forensics off, zero overhead and byte-identical artifacts. When
    /// set, every Benchmark-kernel point additionally re-runs its first
    /// min(forensics_trials, trials) trials under the forensic probe
    /// (store hits included — the re-run is independent of warm/cold) and
    /// the ForensicSink artifacts are written into the directory at the
    /// end of the run. PointSummaries, CSVs, the manifest and the store
    /// are untouched by construction.
    std::string forensics_dir;
    /// Trials forensically sampled per point (clamped to the point's
    /// trial count).
    std::size_t forensics_trials = 32;
};

/// Outcome of a PoffSearchSpec panel: the bisection bracket around the
/// point of first failure (the PoFF lies in (lo, hi]).
struct PoffOutcome {
    bool bracketed = false;
    double lo_mhz = 0.0;
    double hi_mhz = 0.0;
    double pass_risk = 0.0;  ///< residual risk the PoFF is at/below lo
    std::size_t probes = 0;
};

struct PanelResult {
    std::string name;
    Axis axis = Axis::Frequency;  ///< what the sweep varies (from the spec)
    std::vector<PointSummary> sweep;
    std::size_t store_hits = 0;
    std::size_t store_misses = 0;
    /// Monte-Carlo trials the sweep's summaries aggregate (store hits
    /// included — the number is a pure function of the spec, so warm and
    /// cold runs report the same budget). This is what the adaptive
    /// policies shrink; the manifest records it per panel so the saving
    /// is auditable.
    std::uint64_t trials_spent = 0;
    /// Points by stopping classification, indexed by sampling::StopRule.
    /// Derived from the final summaries via classify_stop, so it is a
    /// pure function of the spec — warm and cold runs agree byte for byte
    /// (the manifest records it in the stable section).
    std::array<std::uint64_t, sampling::kStopRuleCount> stopping{};
    std::optional<PoffOutcome> poff;  ///< set for PoffSearchSpec panels
    std::string csv_path;    ///< "" when CSV is disabled or panel incomplete
    bool completed = true;   ///< false when the campaign was cancelled mid-panel
};

struct CdfPanelResult {
    std::string name;
    std::vector<std::string> columns;        ///< "f [MHz]" + one per curve
    std::vector<std::vector<double>> rows;   ///< [point][column]
    std::string csv_path;
};

struct CampaignResult {
    std::string name;
    std::uint64_t spec_fingerprint = 0;
    std::vector<PanelResult> panels;
    std::vector<CdfPanelResult> cdf_panels;
    std::size_t store_hits = 0;
    std::size_t store_misses = 0;
    std::uint64_t trials_spent = 0;  ///< sum over the MC panels
    double wall_s = 0.0;
    bool completed = true;
    std::string manifest_path;  ///< "" when no manifest was written

    const PanelResult& panel(const std::string& name) const;
};

class CampaignRunner {
public:
    CampaignRunner(CampaignSpec spec, RunOptions options);
    ~CampaignRunner();

    const CampaignSpec& spec() const { return spec_; }

    /// The campaign-level core (spec.core), built on first use.
    const CharacterizedCore& core();
    /// The effective core of one panel (its override, or spec.core).
    const CharacterizedCore& core_for(const PanelSpec& panel);

    /// Grid resolved against the panel's core — exposed for drivers and
    /// tests that need the x-axis values without executing anything.
    std::vector<double> resolve_grid(const PanelSpec& panel);

    /// Executes every panel (store-backed) and writes CSVs + manifest.
    CampaignResult run();

    /// The registry campaign counters accumulate into — RunOptions::
    /// metrics when set, else an internal instance.
    obs::MetricsRegistry& metrics() {
        return options_.metrics != nullptr ? *options_.metrics : metrics_;
    }

private:
    struct ConditionedStoreKey {
        std::uint64_t core_fingerprint;
        ExClass cls;
        unsigned operand_bits;
        bool operator<(const ConditionedStoreKey& other) const;
    };

    /// A panel's runtime-resolved base point and x-axis samples — the one
    /// source of truth for both resolve_grid() and run_panel().
    struct ResolvedPanel {
        OperatingPoint base;
        std::vector<double> axis_values;
    };
    ResolvedPanel resolve_panel(const PanelSpec& panel);

    std::unique_ptr<FaultModel> make_model(const PanelSpec& panel,
                                           const CharacterizedCore& core);
    std::shared_ptr<const TimingErrorCdfs> conditioned_store(
        const PanelSpec& panel, const CharacterizedCore& core);
    PointSummary compute_op_stream_point(const PanelSpec& panel,
                                         FaultModel& model,
                                         const OperatingPoint& point);
    PanelResult run_panel(const PanelSpec& panel);
    CdfPanelResult run_cdf_panel(const CdfPanelSpec& panel);
    void write_manifest(CampaignResult& result);

    CampaignSpec spec_;
    RunOptions options_;
    PointStore store_;
    /// Live only while run() executes with forensics enabled.
    std::unique_ptr<ForensicSink> forensic_sink_;
    obs::MetricsRegistry metrics_;  ///< used when options_.metrics is null
    /// Owned by run(): per-panel progress state (always constructed so
    /// wall-mode ledgers get ETA events even without a TTY).
    std::unique_ptr<obs::ProgressReporter> progress_;
    /// Cores cached by configuration fingerprint (panel overrides).
    std::map<std::uint64_t, std::unique_ptr<CharacterizedCore>> cores_;
    std::map<ConditionedStoreKey, std::shared_ptr<const TimingErrorCdfs>>
        conditioned_;
};

/// First-fault frequency (MHz) of `model_spec` instantiated on `core` at
/// `base` — the runtime anchor of FirstFaultWindow grids, exposed so
/// drivers can echo it in panel titles. Model B/B+ only.
double first_fault_mhz(const CharacterizedCore& core, const ModelSpec& model_spec,
                       const OperatingPoint& base);

}  // namespace sfi::campaign
