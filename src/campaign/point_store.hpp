// Content-addressed persistent store of completed Monte-Carlo points.
//
// Every PointSummary a campaign computes is appended under its 64-bit
// point key (campaign/spec.hpp) and flushed immediately, so a campaign
// killed mid-sweep loses at most the point in flight. A re-run looks
// every point up before computing it; by the determinism contract of the
// parallel Monte-Carlo engine (src/mc/parallel.hpp) a stored summary is
// bit-identical to what a recomputation would produce, which is what
// makes a warm re-run's CSV output byte-identical to a cold run's.
//
// On-disk format (same trick as the CDF cache, src/fi/core_model.cpp):
//
//   header:  8-byte magic "SFIPTS\x01\n", u32 format version
//   record:  u64 key, u32 payload size, payload bytes, u64 payload FNV-1a
//
// The payload is the raw little-endian serialization of one PointSummary
// (save_point_summary below). Loading stops at the first truncated or
// hash-mismatched record and discards everything from there on; the next
// insert truncates the file back to the last good record before
// appending, so one torn write (the expected result of a kill) never
// poisons the store. A wrong magic/version reads as an empty store and
// the file is rewritten on first insert.
//
// Concurrency: one store file, one writing process at a time. Records
// are appended in O_APPEND mode and each is flushed in a single write,
// so concurrent writers will not overwrite each other's records — but
// their records may interleave mid-record in pathological cases, and
// neither process sees the other's entries (each loaded the file at
// open). Torn bytes are caught by the per-record hash and dropped on the
// next load; for guaranteed-lossless sharing, run campaigns against a
// shared store sequentially.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mc/montecarlo.hpp"
#include "obs/ledger.hpp"

namespace sfi::campaign {

/// One recovery anomaly observed while opening a store file. These used
/// to happen silently; they now surface as ledger "store_warning" events
/// (both trace modes — corruption is the documented exception to the
/// logical byte-stability contract) or, without a ledger, as one stderr
/// line each.
struct StoreDiagnostic {
    enum class Kind : std::uint8_t {
        ForeignFile,  ///< wrong magic/version: read as empty, rewritten later
        CorruptTail,  ///< truncated record at EOF (torn write): tail dropped
        BitRot,       ///< payload hash mismatch: record + tail dropped
    };
    Kind kind = Kind::CorruptTail;
    std::uint64_t dropped_bytes = 0;   ///< bytes discarded from the file
    std::size_t records_loaded = 0;    ///< intact records before the damage
};

/// Stable short name ("foreign-file", "corrupt-tail", "bit-rot").
const char* store_diagnostic_name(StoreDiagnostic::Kind kind);

/// Raw binary serialization of one PointSummary. Doubles are written as
/// their object representation, so load(save(x)) == x bit for bit
/// (including the RunningStats accumulators).
void save_point_summary(std::ostream& os, const PointSummary& summary);
PointSummary load_point_summary(std::istream& is);

class PointStore {
public:
    /// In-memory store only (nothing persists).
    PointStore() = default;

    /// Opens (or creates on first insert) the store at `path`, loading
    /// every intact record. Corrupt or truncated trailing data is
    /// dropped; `recovered_bytes()` reports how much and `diagnostics()`
    /// says why. Each anomaly is emitted as a "store_warning" event on
    /// `ledger` when one is attached, else as a line on stderr.
    explicit PointStore(std::string path, obs::Ledger* ledger = nullptr);

    PointStore(const PointStore&) = delete;
    PointStore& operator=(const PointStore&) = delete;

    const std::string& path() const { return path_; }
    std::size_t size() const { return entries_.size(); }

    /// The summary stored under `key`, if any.
    std::optional<PointSummary> lookup(std::uint64_t key) const;

    /// Records `summary` under `key` and (for persistent stores) appends
    /// + flushes it so the entry survives a kill. Re-inserting an
    /// existing key is a no-op: by construction equal keys map to
    /// identical summaries.
    void insert(std::uint64_t key, const PointSummary& summary);

    /// Bytes of corrupt/truncated trailing data discarded while opening.
    std::uint64_t recovered_bytes() const { return recovered_bytes_; }

    /// Recovery anomalies observed while opening (empty for a healthy
    /// file). At most one per open with the current recovery strategy —
    /// loading stops at the first bad record.
    const std::vector<StoreDiagnostic>& diagnostics() const {
        return diagnostics_;
    }

private:
    void load_file();
    void report_diagnostics() const;
    void append_record(std::uint64_t key, const PointSummary& summary);

    std::string path_;
    std::unordered_map<std::uint64_t, PointSummary> entries_;
    std::ofstream out_;                ///< opened lazily on first insert
    bool header_ok_ = false;           ///< file exists with a valid header
    std::uint64_t valid_bytes_ = 0;    ///< good prefix length of the file
    std::uint64_t recovered_bytes_ = 0;
    std::vector<StoreDiagnostic> diagnostics_;
    obs::Ledger* ledger_ = nullptr;    ///< warning sink (may be null)
};

}  // namespace sfi::campaign
