// Declarative description of a Monte-Carlo experiment campaign.
//
// A campaign is what a paper figure really is: a set of panels, each a
// sweep of operating points for one (kernel, fault model) pair on one
// characterized core. Historically every bench_fig* binary hand-rolled
// its panels imperatively; a CampaignSpec states them as data, so the
// same description can be executed by the runner (src/campaign/
// runner.hpp), resumed against the point store (point_store.hpp), and
// fingerprinted for cache invalidation.
//
// Grids may reference characterization results that only exist at run
// time (the STA limit, a model's first-fault frequency); GridSpec keeps
// those references symbolic and the runner resolves them against the
// panel's core. Resolution is deterministic, so a resolved operating
// point — and therefore its point-store key — is a pure function of the
// spec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/benchmark.hpp"
#include "fi/core_model.hpp"
#include "fi/models.hpp"
#include "sampling/sequential.hpp"

namespace sfi::campaign {

/// X-axis sample grid of one panel. The symbolic kinds are resolved by
/// the runner against the panel's characterized core (and model).
struct GridSpec {
    enum class Kind : std::uint8_t {
        Explicit,         ///< `values` used verbatim
        Linspace,         ///< linspace(lo, hi, points)
        StaLinspace,      ///< linspace(lo * f_STA, hi * f_STA, points); the
                          ///< STA limit is taken at the panel's base Vdd
        FirstFaultWindow  ///< arange(f0 - below, f0 + above, step) around the
                          ///< model's first-fault frequency at the base point
                          ///< (model B/B+ only)
    };

    Kind kind = Kind::Explicit;
    std::vector<double> values;             // Explicit
    double lo = 0.0, hi = 0.0;              // Linspace / StaLinspace
    std::size_t points = 2;                 // Linspace / StaLinspace
    double below = 0.0, above = 0.0, step = 1.0;  // FirstFaultWindow

    static GridSpec explicit_values(std::vector<double> values);
    static GridSpec linspace(double lo, double hi, std::size_t points);
    static GridSpec sta_linspace(double lo_factor, double hi_factor,
                                 std::size_t points);
    static GridSpec first_fault_window(double below, double above, double step);
};

/// Which quantity the grid sweeps; the other coordinates come from the
/// panel's base operating point.
enum class Axis : std::uint8_t { Frequency, Voltage };

/// Fault model to instantiate for a panel (paper Table 2), optionally
/// wrapped by an error-detection decorator (docs/MITIGATIONS.md).
struct ModelSpec {
    enum class Kind : std::uint8_t { A, B, C };
    /// Detection stage wrapped around the fault model. None mixes nothing
    /// into point keys, so every store written before mitigations existed
    /// stays byte-compatible.
    enum class Mitigation : std::uint8_t { None, Razor, Cwc };

    Kind kind = Kind::C;
    double flip_probability = 1e-4;  ///< model A only
    FaultPolicy policy = FaultPolicy::BitFlip;

    Mitigation mitigation = Mitigation::None;
    double razor_coverage = 1.0;        ///< Razor P(detect | corrupted)
    unsigned razor_replay_cycles = 11;  ///< Razor replay cost per detection
    unsigned cwc_block_bits = 8;        ///< CWC data bits per protected block
    unsigned cwc_recovery_cycles = 2;   ///< CWC recovery stall per detection

    static ModelSpec a(double flip_probability);
    static ModelSpec b();  ///< B when the base point has sigma = 0, else B+
    static ModelSpec c();

    /// Chainable decorator selectors: ModelSpec::c().with_razor(...).
    ModelSpec with_razor(double coverage = 1.0,
                         unsigned replay_cycles = 11) const;
    ModelSpec with_cwc(unsigned block_bits = 8,
                       unsigned recovery_cycles = 2) const;
};

/// Workload executed at every operating point of a panel.
struct KernelSpec {
    enum class Kind : std::uint8_t {
        Benchmark,  ///< full ORBIS32 application under the Monte-Carlo runner
        OpStream    ///< raw ALU instruction stream through the model (Fig. 4)
    };

    Kind kind = Kind::Benchmark;
    BenchmarkId benchmark = BenchmarkId::Median;
    // OpStream parameters:
    ExClass cls = ExClass::Add;
    unsigned operand_bits = 32;       ///< operand value range mask
    std::size_t ops_per_trial = 2048;
    std::uint64_t operand_seed = 0;   ///< stream of operand values

    static KernelSpec bench(BenchmarkId id);
    static KernelSpec op_stream(ExClass cls, unsigned operand_bits,
                                std::size_t ops_per_trial,
                                std::uint64_t operand_seed);
};

/// Symbolic PoFF bisection search (src/sampling/search.hpp) in panel
/// form: instead of sweeping a grid, the runner brackets and bisects the
/// point of first failure between lo_factor and hi_factor times the STA
/// limit at the panel's base Vdd. Frequency-axis Benchmark panels only —
/// bisection relies on failure being monotone in frequency.
struct PoffSearchSpec {
    double lo_factor = 0.9;   ///< bracket lo = lo_factor * f_STA(base.vdd)
    double hi_factor = 1.2;   ///< bracket hi = hi_factor * f_STA(base.vdd)
    double tol_mhz = 2.0;     ///< stop once the bracket is this tight
    std::size_t max_expand = 4;  ///< outward slides per disagreeing edge
};

/// One figure panel: a sweep of points for one kernel under one model.
struct PanelSpec {
    std::string name;   ///< CSV stem and manifest key (unique per campaign)
    std::string title;  ///< console heading ("" = use name)
    KernelSpec kernel;
    ModelSpec model;
    OperatingPoint base;       ///< coordinates not swept by the grid
    Axis axis = Axis::Frequency;
    GridSpec grid;
    /// Added to the campaign seed for this panel's trials, so panels that
    /// share a kernel still draw independent streams (Fig. 4's series).
    std::uint64_t seed_offset = 0;
    /// When set, model C runs on a dedicated DTA characterization of
    /// kernel.cls with this operand width instead of the core's full
    /// store (the operand-profile-conditioned series of Fig. 4).
    std::optional<unsigned> dta_operand_bits;
    /// Panel-specific core configuration (ablation studies); points of a
    /// panel with an override are keyed by the override's fingerprint.
    std::optional<CoreModelConfig> core_override;
    /// When set, the base frequency is resolved at run time as
    /// factor * f_STA(base.vdd) — Fig. 7 pins its voltage sweep to the
    /// nominal STA limit this way.
    std::optional<double> base_freq_sta_factor;
    /// Per-panel sampling policy; unset = the campaign-level policy.
    /// Benchmark kernels only — OpStream panels always run the campaign's
    /// fixed trial count (their trials are microseconds, not seconds, so
    /// adaptive stopping has nothing to save), and explicitly setting an
    /// adaptive policy on one is rejected at run time.
    std::optional<sampling::SamplingPolicy> sampling;
    /// When set, the panel runs a bisection PoFF search instead of
    /// sweeping `grid` (which is ignored): the probe summaries become the
    /// panel sweep/CSV and the PoFF interval lands in the result and the
    /// manifest. Requires axis == Frequency and a Benchmark kernel.
    std::optional<PoffSearchSpec> poff;
    /// Error-metric label of the console table ("rel. error %", "MSE", ...).
    std::string error_label = "rel. error %";
    /// Print the figure-panel table + PoFF line while running (drivers
    /// with bespoke console output disable this and render the returned
    /// sweep themselves).
    bool print_table = true;
};

/// Deterministic curve family evaluated straight from the CDF store —
/// no Monte-Carlo, no point store (Fig. 2). Kept separate from PanelSpec
/// because its result is a matrix of probabilities, not PointSummaries.
struct CdfCurveSpec {
    ExClass cls = ExClass::Add;
    std::size_t bit = 0;
    double vdd = 0.7;
};

struct CdfPanelSpec {
    std::string name;
    std::string title;
    std::vector<CdfCurveSpec> curves;
    GridSpec grid;  ///< frequency grid (Explicit or Linspace)
};

/// The whole experiment: shared core + Monte-Carlo knobs + panels.
struct CampaignSpec {
    std::string name;
    CoreModelConfig core;
    std::size_t trials = 100;
    std::uint64_t seed = 1;
    double watchdog_factor = 8.0;
    /// Campaign-wide sampling policy (paper default: fixed trials).
    /// Panels override it via PanelSpec::sampling.
    sampling::SamplingPolicy sampling;
    std::vector<PanelSpec> panels;
    std::vector<CdfPanelSpec> cdf_panels;

    /// Hash of everything above that can influence any artifact —
    /// recorded in the campaign manifest so a consumer can tell whether
    /// two manifests describe the same experiment.
    std::uint64_t fingerprint() const;
};

/// The sampling policy a panel actually runs under (its own, or the
/// campaign's).
const sampling::SamplingPolicy& effective_sampling(const CampaignSpec& campaign,
                                                   const PanelSpec& panel);

/// Content address of one completed point in the store: hashes exactly
/// the inputs that determine its PointSummary — the effective core
/// fingerprint, the model, the kernel, the *resolved* operating point,
/// trials / seed (+ panel offset) / watchdog — and a format-version
/// salt. An *adaptive* sampling policy (kind != FixedN) additionally
/// mixes its fingerprint, because the policy decides how many trials the
/// summary aggregates; fixed-N keys mix nothing extra, so they are
/// byte-compatible with every store written before the sampling engine
/// existed. Panel names, titles and grid symbolism are deliberately
/// excluded: equal physics means equal key, so re-described campaigns
/// still hit.
std::uint64_t point_key(const CampaignSpec& campaign, const PanelSpec& panel,
                        std::uint64_t core_fingerprint,
                        const OperatingPoint& resolved);

}  // namespace sfi::campaign
