#include "campaign/spec.hpp"

#include "util/fingerprint.hpp"

namespace sfi::campaign {

GridSpec GridSpec::explicit_values(std::vector<double> values) {
    GridSpec grid;
    grid.kind = Kind::Explicit;
    grid.values = std::move(values);
    return grid;
}

GridSpec GridSpec::linspace(double lo, double hi, std::size_t points) {
    GridSpec grid;
    grid.kind = Kind::Linspace;
    grid.lo = lo;
    grid.hi = hi;
    grid.points = points;
    return grid;
}

GridSpec GridSpec::sta_linspace(double lo_factor, double hi_factor,
                                std::size_t points) {
    GridSpec grid;
    grid.kind = Kind::StaLinspace;
    grid.lo = lo_factor;
    grid.hi = hi_factor;
    grid.points = points;
    return grid;
}

GridSpec GridSpec::first_fault_window(double below, double above, double step) {
    GridSpec grid;
    grid.kind = Kind::FirstFaultWindow;
    grid.below = below;
    grid.above = above;
    grid.step = step;
    return grid;
}

ModelSpec ModelSpec::a(double flip_probability) {
    ModelSpec spec;
    spec.kind = Kind::A;
    spec.flip_probability = flip_probability;
    return spec;
}

ModelSpec ModelSpec::b() {
    ModelSpec spec;
    spec.kind = Kind::B;
    return spec;
}

ModelSpec ModelSpec::c() {
    ModelSpec spec;
    spec.kind = Kind::C;
    return spec;
}

ModelSpec ModelSpec::with_razor(double coverage,
                                unsigned replay_cycles) const {
    ModelSpec spec = *this;
    spec.mitigation = Mitigation::Razor;
    spec.razor_coverage = coverage;
    spec.razor_replay_cycles = replay_cycles;
    return spec;
}

ModelSpec ModelSpec::with_cwc(unsigned block_bits,
                              unsigned recovery_cycles) const {
    ModelSpec spec = *this;
    spec.mitigation = Mitigation::Cwc;
    spec.cwc_block_bits = block_bits;
    spec.cwc_recovery_cycles = recovery_cycles;
    return spec;
}

KernelSpec KernelSpec::bench(BenchmarkId id) {
    KernelSpec spec;
    spec.kind = Kind::Benchmark;
    spec.benchmark = id;
    return spec;
}

KernelSpec KernelSpec::op_stream(ExClass cls, unsigned operand_bits,
                                 std::size_t ops_per_trial,
                                 std::uint64_t operand_seed) {
    KernelSpec spec;
    spec.kind = Kind::OpStream;
    spec.cls = cls;
    spec.operand_bits = operand_bits;
    spec.ops_per_trial = ops_per_trial;
    spec.operand_seed = operand_seed;
    return spec;
}

namespace {

// Bumped whenever the meaning of a stored PointSummary changes (store
// payload layout changes are handled by the store's own version field;
// this salt covers semantic changes in how points are computed).
constexpr std::uint64_t kPointKeyVersion = 1;

void mix_model(Fingerprint& fp, const ModelSpec& model) {
    fp.mix(model.kind);
    fp.mix(model.policy);
    // Only model A's behavior depends on the flip probability; exclude it
    // otherwise so tweaking an unused knob cannot invalidate points.
    if (model.kind == ModelSpec::Kind::A) fp.mix(model.flip_probability);
    // Mitigated panels salt the key with the decorator and only its own
    // live knobs; a bare model mixes nothing here so every store written
    // before mitigations existed keeps its keys.
    if (model.mitigation != ModelSpec::Mitigation::None) {
        fp.mix(std::uint64_t{0x4d49544947415445ull});  // "MITIGATE"
        fp.mix(model.mitigation);
        if (model.mitigation == ModelSpec::Mitigation::Razor) {
            fp.mix(model.razor_coverage);
            fp.mix(model.razor_replay_cycles);
        } else {
            fp.mix(model.cwc_block_bits);
            fp.mix(model.cwc_recovery_cycles);
        }
    }
}

void mix_kernel(Fingerprint& fp, const KernelSpec& kernel) {
    fp.mix(kernel.kind);
    if (kernel.kind == KernelSpec::Kind::Benchmark) {
        fp.mix(kernel.benchmark);
    } else {
        fp.mix(kernel.cls);
        fp.mix(kernel.operand_bits);
        fp.mix(kernel.ops_per_trial);
        fp.mix(kernel.operand_seed);
    }
}

void mix_point(Fingerprint& fp, const OperatingPoint& point) {
    fp.mix(point.freq_mhz);
    fp.mix(point.vdd);
    fp.mix(point.noise.sigma_mv);
    fp.mix(point.noise.clip_sigmas);
}

void mix_grid(Fingerprint& fp, const GridSpec& grid) {
    fp.mix(grid.kind);
    fp.mix(grid.values.size());
    for (const double v : grid.values) fp.mix(v);
    fp.mix(grid.lo);
    fp.mix(grid.hi);
    fp.mix(grid.points);
    fp.mix(grid.below);
    fp.mix(grid.above);
    fp.mix(grid.step);
}

void mix_poff(Fingerprint& fp, const PoffSearchSpec& poff) {
    fp.mix(poff.lo_factor);
    fp.mix(poff.hi_factor);
    fp.mix(poff.tol_mhz);
    fp.mix(poff.max_expand);
}

}  // namespace

const sampling::SamplingPolicy& effective_sampling(const CampaignSpec& campaign,
                                                   const PanelSpec& panel) {
    // OpStream panels always run the fixed trial count (the runner
    // rejects explicit adaptive requests on them), so a campaign-wide
    // adaptive policy must not leak into their point keys — the points
    // are the same physics under any policy.
    static const sampling::SamplingPolicy fixed_n;
    if (panel.kernel.kind != KernelSpec::Kind::Benchmark) return fixed_n;
    return panel.sampling ? *panel.sampling : campaign.sampling;
}

std::uint64_t CampaignSpec::fingerprint() const {
    Fingerprint fp;
    fp.mix(kPointKeyVersion);
    fp.mix(name);
    fp.mix(core_config_fingerprint(core));
    fp.mix(trials);
    fp.mix(seed);
    fp.mix(watchdog_factor);
    fp.mix(sampling.fingerprint());
    fp.mix(panels.size());
    for (const PanelSpec& panel : panels) {
        fp.mix(panel.name);
        mix_kernel(fp, panel.kernel);
        mix_model(fp, panel.model);
        mix_point(fp, panel.base);
        fp.mix(panel.axis);
        mix_grid(fp, panel.grid);
        fp.mix(panel.seed_offset);
        fp.mix(panel.dta_operand_bits.value_or(0xffffffffu));
        fp.mix(panel.core_override ? core_config_fingerprint(*panel.core_override)
                                   : std::uint64_t{0});
        fp.mix(panel.base_freq_sta_factor.value_or(0.0));
        fp.mix(panel.sampling ? panel.sampling->fingerprint()
                              : std::uint64_t{0});
        fp.mix(panel.poff.has_value());
        if (panel.poff) mix_poff(fp, *panel.poff);
    }
    fp.mix(cdf_panels.size());
    for (const CdfPanelSpec& panel : cdf_panels) {
        fp.mix(panel.name);
        fp.mix(panel.curves.size());
        for (const CdfCurveSpec& curve : panel.curves) {
            fp.mix(curve.cls);
            fp.mix(curve.bit);
            fp.mix(curve.vdd);
        }
        mix_grid(fp, panel.grid);
    }
    return fp.value();
}

std::uint64_t point_key(const CampaignSpec& campaign, const PanelSpec& panel,
                        std::uint64_t core_fingerprint,
                        const OperatingPoint& resolved) {
    Fingerprint fp;
    fp.mix(kPointKeyVersion);
    fp.mix(core_fingerprint);
    mix_model(fp, panel.model);
    mix_kernel(fp, panel.kernel);
    fp.mix(panel.dta_operand_bits.value_or(0xffffffffu));
    mix_point(fp, resolved);
    fp.mix(campaign.trials);
    fp.mix(campaign.seed + panel.seed_offset);
    fp.mix(campaign.watchdog_factor);
    // Adaptive policies decide the summary's trial count, so they are
    // part of the point's identity; fixed-N mixes nothing, keeping every
    // pre-adaptive store byte-compatible.
    const sampling::SamplingPolicy& policy = effective_sampling(campaign, panel);
    if (policy.adaptive()) fp.mix(policy.fingerprint());
    return fp.value();
}

}  // namespace sfi::campaign
