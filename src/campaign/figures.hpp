// Built-in CampaignSpecs for the paper's figure panels and the ablation
// studies — the declarative replacements for the sweeps the bench_fig*
// binaries used to hand-roll. Each factory takes the shared core
// configuration plus the Monte-Carlo knobs; `trials = 0` selects the
// figure's historical default trial count.
//
// The bench drivers and the `sfi_campaign` binary both run these specs,
// so a point computed by `bench_fig5` is served from the store when
// `sfi_campaign --figures fig5` runs later (and vice versa).
#pragma once

#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace sfi::campaign::figures {

CampaignSpec fig1(const CoreModelConfig& core, std::size_t trials = 0,
                  std::uint64_t seed = 1);
CampaignSpec fig2(const CoreModelConfig& core);
CampaignSpec fig4(const CoreModelConfig& core, std::size_t trials = 0,
                  std::uint64_t seed = 1);
CampaignSpec fig5(const CoreModelConfig& core, std::size_t trials = 0,
                  std::uint64_t seed = 1, std::size_t points = 22);
CampaignSpec fig6(const CoreModelConfig& core, std::size_t trials = 0,
                  std::uint64_t seed = 1);
CampaignSpec fig7(const CoreModelConfig& core, std::size_t trials = 0,
                  std::uint64_t seed = 1);
CampaignSpec ablation_adder(const CoreModelConfig& core, std::size_t trials = 0,
                            std::uint64_t seed = 1);
CampaignSpec ablation_compression(const CoreModelConfig& core,
                                  std::size_t trials = 0,
                                  std::uint64_t seed = 1);
CampaignSpec ablation_noise_clip(const CoreModelConfig& core,
                                 std::size_t trials = 0,
                                 std::uint64_t seed = 1);
CampaignSpec ablation_policy(const CoreModelConfig& core,
                             std::size_t trials = 0, std::uint64_t seed = 1);

/// Names accepted by make_figure (and `sfi_campaign --figures`).
const std::vector<std::string>& figure_names();

/// Factory by name; throws std::invalid_argument for unknown names.
CampaignSpec make_figure(const std::string& name, const CoreModelConfig& core,
                         std::size_t trials = 0, std::uint64_t seed = 1);

}  // namespace sfi::campaign::figures
