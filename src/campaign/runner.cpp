#include "campaign/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "fi/cwc.hpp"
#include "fi/mitigation.hpp"
#include "isa/isa.hpp"
#include "mc/report.hpp"
#include "mc/sweep.hpp"
#include "sampling/search.hpp"
#include "timing/dta.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace sfi::campaign {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) continue;  // not expected
        out += c;
    }
    return out;
}

std::string hex64(std::uint64_t value) {
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

const char* model_kind_name(ModelSpec::Kind kind) {
    switch (kind) {
        case ModelSpec::Kind::A: return "A";
        case ModelSpec::Kind::B: return "B";
        case ModelSpec::Kind::C: return "C";
    }
    return "unknown";
}

/// Model label shared by the ledger panel payload and the forensic point
/// registry: the bare kind ("A", "B", "B+", "C") wrapped in its
/// mitigation decorator ("razor(C)", "cwc8(B+)") when the panel has one.
std::string model_label(const PanelSpec& panel, const OperatingPoint& base) {
    const std::string bare =
        panel.model.kind == ModelSpec::Kind::B && base.noise.sigma_mv > 0.0
            ? "B+"
            : model_kind_name(panel.model.kind);
    switch (panel.model.mitigation) {
        case ModelSpec::Mitigation::Razor:
            return "razor(" + bare + ")";
        case ModelSpec::Mitigation::Cwc:
            return "cwc" + std::to_string(panel.model.cwc_block_bits) + "(" +
                   bare + ")";
        case ModelSpec::Mitigation::None: break;
    }
    return bare;
}

const char* panel_kind_name(const PanelSpec& panel) {
    if (panel.poff) return "poff";
    return panel.kernel.kind == KernelSpec::Kind::Benchmark ? "mc"
                                                            : "opstream";
}

/// Grid resolution shared by MC and CDF panels. `first_fault` is only
/// invoked for FirstFaultWindow grids.
std::vector<double> resolve(const GridSpec& grid, const CharacterizedCore& core,
                            double base_vdd,
                            const std::function<double()>& first_fault) {
    switch (grid.kind) {
        case GridSpec::Kind::Explicit:
            return grid.values;
        case GridSpec::Kind::Linspace:
            return linspace(grid.lo, grid.hi, grid.points);
        case GridSpec::Kind::StaLinspace: {
            const double fsta = core.sta_fmax_mhz(base_vdd);
            return linspace(grid.lo * fsta, grid.hi * fsta, grid.points);
        }
        case GridSpec::Kind::FirstFaultWindow: {
            if (!first_fault)
                throw std::invalid_argument(
                    "GridSpec: FirstFaultWindow grid needs a model with a "
                    "first-fault frequency (model B/B+)");
            const double f0 = first_fault();
            return arange(f0 - grid.below, f0 + grid.above, grid.step);
        }
    }
    throw std::logic_error("GridSpec: unknown grid kind");
}

}  // namespace

double first_fault_mhz(const CharacterizedCore& core,
                       const ModelSpec& model_spec, const OperatingPoint& base) {
    if (model_spec.kind != ModelSpec::Kind::B)
        throw std::invalid_argument(
            "first_fault_mhz: only model B/B+ has a deterministic "
            "first-fault frequency");
    auto model = core.make_model_b();
    model->set_operating_point(base);
    return model->first_fault_frequency_mhz();
}

const PanelResult& CampaignResult::panel(const std::string& name) const {
    for (const PanelResult& p : panels)
        if (p.name == name) return p;
    throw std::out_of_range("CampaignResult: no panel named " + name);
}

bool CampaignRunner::ConditionedStoreKey::operator<(
    const ConditionedStoreKey& other) const {
    if (core_fingerprint != other.core_fingerprint)
        return core_fingerprint < other.core_fingerprint;
    if (cls != other.cls) return cls < other.cls;
    return operand_bits < other.operand_bits;
}

CampaignRunner::CampaignRunner(CampaignSpec spec, RunOptions options)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      store_(options_.store_path, options_.ledger) {}

CampaignRunner::~CampaignRunner() = default;

const CharacterizedCore& CampaignRunner::core() {
    const std::uint64_t fp = core_config_fingerprint(spec_.core);
    auto it = cores_.find(fp);
    if (it == cores_.end())
        it = cores_.emplace(fp, std::make_unique<CharacterizedCore>(spec_.core))
                 .first;
    return *it->second;
}

const CharacterizedCore& CampaignRunner::core_for(const PanelSpec& panel) {
    if (!panel.core_override) return core();
    const std::uint64_t fp = core_config_fingerprint(*panel.core_override);
    auto it = cores_.find(fp);
    if (it == cores_.end())
        it = cores_
                 .emplace(fp, std::make_unique<CharacterizedCore>(
                                  *panel.core_override))
                 .first;
    return *it->second;
}

CampaignRunner::ResolvedPanel CampaignRunner::resolve_panel(
    const PanelSpec& panel) {
    const CharacterizedCore& panel_core = core_for(panel);
    ResolvedPanel resolved{panel.base, {}};
    if (panel.base_freq_sta_factor)
        resolved.base.freq_mhz = *panel.base_freq_sta_factor *
                                 panel_core.sta_fmax_mhz(resolved.base.vdd);
    // PoFF-search panels pick their own probe frequencies; the (ignored)
    // grid is not resolved, so e.g. a leftover FirstFaultWindow grid on a
    // model-C panel cannot make the search throw.
    if (!panel.poff)
        resolved.axis_values =
            resolve(panel.grid, panel_core, resolved.base.vdd, [&] {
                return first_fault_mhz(panel_core, panel.model, resolved.base);
            });
    return resolved;
}

std::vector<double> CampaignRunner::resolve_grid(const PanelSpec& panel) {
    return resolve_panel(panel).axis_values;
}

std::shared_ptr<const TimingErrorCdfs> CampaignRunner::conditioned_store(
    const PanelSpec& panel, const CharacterizedCore& panel_core) {
    const ConditionedStoreKey key{panel_core.fingerprint(), panel.kernel.cls,
                                  *panel.dta_operand_bits};
    auto it = conditioned_.find(key);
    if (it != conditioned_.end()) return it->second;

    // Operand-profile-conditioned characterization of just this class
    // (Fig. 4): re-run DTA with the panel's operand width.
    DtaConfig dta = panel_core.config().dta;
    dta.operand_bits = *panel.dta_operand_bits;
    DtaResult result;
    result.setup_ps = panel_core.timing().setup_ps();
    result.cycles = dta.cycles;
    result.classes = {run_dta_class(panel_core.alu(), panel_core.timing(),
                                    panel.kernel.cls, dta)};
    result.worst_arrival_ps = result.classes[0].max_arrival_ps;
    auto store =
        std::make_shared<TimingErrorCdfs>(TimingErrorCdfs::from_dta(result));
    conditioned_.emplace(key, store);
    return store;
}

std::unique_ptr<FaultModel> CampaignRunner::make_model(
    const PanelSpec& panel, const CharacterizedCore& panel_core) {
    std::unique_ptr<FaultModel> model;
    switch (panel.model.kind) {
        case ModelSpec::Kind::A:
            model = panel_core.make_model_a(panel.model.flip_probability);
            break;
        case ModelSpec::Kind::B:
            model = panel_core.make_model_b();
            break;
        case ModelSpec::Kind::C:
            if (panel.dta_operand_bits)
                model = std::make_unique<ModelC>(
                    conditioned_store(panel, panel_core),
                    panel_core.lib().fit());
            else
                model = panel_core.make_model_c();
            break;
    }
    // The factory paths stamp the core's sampling mode already (memoized
    // no-op here); the directly-constructed conditioned ModelC does not.
    // Mode and policy land on the inner model BEFORE a decorator wraps it:
    // set_policy is non-virtual, so it must reach the model that injects.
    model->set_sampling_mode(panel_core.config().fault_sampling);
    model->set_policy(panel.model.policy);
    switch (panel.model.mitigation) {
        case ModelSpec::Mitigation::None:
            break;
        case ModelSpec::Mitigation::Razor:
            model = std::make_unique<ErrorDetectionModel>(
                std::move(model),
                RazorConfig{panel.model.razor_coverage,
                            panel.model.razor_replay_cycles});
            model->set_sampling_mode(panel_core.config().fault_sampling);
            break;
        case ModelSpec::Mitigation::Cwc: {
            CwcConfig config;
            config.block_bits = panel.model.cwc_block_bits;
            config.recovery_penalty_cycles = panel.model.cwc_recovery_cycles;
            model = std::make_unique<CwcDetectionModel>(std::move(model),
                                                        config);
            model->set_sampling_mode(panel_core.config().fault_sampling);
            break;
        }
    }
    return model;
}

PointSummary CampaignRunner::compute_op_stream_point(
    const PanelSpec& panel, FaultModel& model, const OperatingPoint& point) {
    const KernelSpec& kernel = panel.kernel;
    model.set_operating_point(point);
    model.reseed(spec_.seed + panel.seed_offset);
    Rng operands(kernel.operand_seed);
    const std::uint32_t mask = kernel.operand_bits >= 32
                                   ? 0xffffffffu
                                   : ((1u << kernel.operand_bits) - 1);
    PointSummary summary;
    summary.point = point;
    summary.trials = spec_.trials;
    for (std::size_t trial = 0; trial < spec_.trials; ++trial) {
        model.reset_stats();
        double sum_sq = 0.0;
        for (std::size_t i = 0; i < kernel.ops_per_trial; ++i) {
            model.on_cycle(true);
            ExEvent ev;
            ev.cls = kernel.cls;
            ev.operand_a = operands.u32() & mask;
            ev.operand_b = operands.u32() & mask;
            const std::uint32_t correct =
                alu_result(ev.cls, ev.operand_a, ev.operand_b);
            const std::uint32_t got = model.on_ex_result(ev, correct);
            const double diff =
                static_cast<double>(got) - static_cast<double>(correct);
            sum_sq += diff * diff;
        }
        // A raw instruction stream always runs to completion; "correct"
        // means every result of the trial was exact.
        ++summary.finished_count;
        if (sum_sq == 0.0) ++summary.correct_count;
        summary.error_stats.add(
            sum_sq / static_cast<double>(kernel.ops_per_trial));
        summary.fi_rate_stats.add(model.stats().fi_per_kcycle());
    }
    summary.fi_rate = summary.fi_rate_stats.mean();
    summary.mean_error = summary.error_stats.mean();
    return summary;
}

PanelResult CampaignRunner::run_panel(const PanelSpec& panel) {
    PanelResult result;
    result.name = panel.name;
    result.axis = panel.axis;

    const sampling::SamplingPolicy& policy = effective_sampling(spec_, panel);
    if (panel.kernel.kind != KernelSpec::Kind::Benchmark) {
        // OpStream trials are single ALU operations — there is no budget
        // for adaptive stopping to save, so the campaign-level policy is
        // simply not applied. An explicit per-panel request is a spec
        // error, not something to ignore.
        if (panel.sampling && panel.sampling->adaptive())
            throw std::invalid_argument(
                "PanelSpec '" + panel.name +
                "': adaptive sampling requires a Benchmark kernel");
        if (panel.poff)
            throw std::invalid_argument(
                "PanelSpec '" + panel.name +
                "': PoFF search requires a Benchmark kernel");
    }
    if (panel.poff && panel.axis != Axis::Frequency)
        throw std::invalid_argument(
            "PanelSpec '" + panel.name +
            "': PoFF search bisects frequency; axis must be Frequency");

    const CharacterizedCore& panel_core = core_for(panel);
    const std::uint64_t core_fp = panel_core.fingerprint();
    if (options_.on_panel_start) options_.on_panel_start(panel, panel_core);

    const ResolvedPanel resolved = resolve_panel(panel);
    const OperatingPoint& base = resolved.base;
    const std::vector<double>& axis_values = resolved.axis_values;

    obs::Ledger* const led = options_.ledger;
    const bool wall = led != nullptr && !led->logical();
    if (led != nullptr)
        led->begin(
            "panel",
            {{"name", panel.name},
             {"kind", panel_kind_name(panel)},
             {"model", model_label(panel, base)},
             {"kernel", panel.kernel.kind == KernelSpec::Kind::Benchmark
                            ? benchmark_name(panel.kernel.benchmark)
                            : ex_class_name(panel.kernel.cls)}});
    if (progress_)
        progress_->begin_panel(panel.name,
                               panel.poff ? 0 : axis_values.size());

    // The executors are built lazily: a fully warm panel (every point in
    // the store) skips model construction, the golden reference run and
    // any conditioned re-characterization entirely.
    std::unique_ptr<Benchmark> bench;
    std::unique_ptr<FaultModel> model;
    std::unique_ptr<MonteCarloRunner> mc;
    std::unique_ptr<sampling::BatchedExecutor> executor;
    const auto ensure_executor = [&] {
        if (model) return;
        model = make_model(panel, panel_core);
        model->set_operating_point(base);
        if (panel.kernel.kind == KernelSpec::Kind::Benchmark) {
            bench = make_benchmark(panel.kernel.benchmark);
            McConfig config;
            config.trials = spec_.trials;
            config.seed = spec_.seed + panel.seed_offset;
            config.watchdog_factor = spec_.watchdog_factor;
            config.threads = options_.threads;
            config.dispatch = options_.dispatch;
            config.fault_sampling = panel_core.config().fault_sampling;
            mc = std::make_unique<MonteCarloRunner>(*bench, *model, config);
            executor = std::make_unique<sampling::BatchedExecutor>(
                *mc, options_.threads);
            executor->set_observer(options_.ledger, &metrics());
        }
    };

    // Store-backed point computation shared by the grid sweep and the
    // PoFF probes: every completed summary is keyed (with the policy
    // fingerprint when adaptive) and persisted before the next one runs.
    //
    // Ledger narrative: a "point" B/E span per point in both trace modes
    // (its payload — operating point, trial totals, stopping rule — is a
    // pure function of the spec), with the volatile details (store
    // traffic, batch spans, trajectories) only in wall mode. The stopping
    // rule is always re-derived via classify_stop so warm store hits and
    // cold computations report identical classifications.
    std::size_t point_index = 0;
    // Panel labels for the forensic point registry; mirrors the ledger's
    // panel payload above so the artifacts and traces name points alike.
    const std::string forensic_model = model_label(panel, base);
    const std::string forensic_kernel =
        panel.kernel.kind == KernelSpec::Kind::Benchmark
            ? benchmark_name(panel.kernel.benchmark)
            : ex_class_name(panel.kernel.cls);
    const auto compute_point = [&](const OperatingPoint& point) {
        const std::uint64_t key = point_key(spec_, panel, core_fp, point);
        if (led != nullptr)
            led->begin("point",
                       {{"panel", panel.name},
                        {"index", static_cast<std::uint64_t>(point_index)},
                        {"freq_mhz", point.freq_mhz},
                        {"vdd", point.vdd},
                        {"sigma_mv", point.noise.sigma_mv}});
        PointSummary summary;
        if (auto stored = store_.lookup(key)) {
            ++result.store_hits;
            metrics().add("run.store_hits");
            if (wall) led->instant("store_hit", {{"key", "0x" + hex64(key)}});
            summary = std::move(*stored);
        } else {
            if (wall) led->instant("store_miss", {{"key", "0x" + hex64(key)}});
            ensure_executor();
            summary =
                panel.kernel.kind == KernelSpec::Kind::Benchmark
                    ? sampling::run_point_sequential(*executor, point, policy,
                                                     spec_.trials)
                          .summary
                    : compute_op_stream_point(panel, *model, point);
            if (wall) led->begin("store_insert", {{"key", "0x" + hex64(key)}});
            store_.insert(key, summary);
            if (wall) led->end("store_insert");
            ++result.store_misses;
            metrics().add("run.store_misses");
        }
        // Forensic sampling pass: re-run the point's first K trials under
        // the probe. Purely additive — the summary above is already
        // final, so the trials drawn here (bit-identical re-runs of
        // indices [0, K)) cannot perturb any figure. Store hits get the
        // pass too: forensics is an observation of the point, not of
        // whether its summary was cached.
        if (forensic_sink_ != nullptr &&
            panel.kernel.kind == KernelSpec::Kind::Benchmark) {
            ensure_executor();
            const std::size_t sample =
                std::min<std::size_t>(options_.forensics_trials, summary.trials);
            const perf::ScopedPhaseTimer forensic_timer(
                mc->perf_profile(), perf::Phase::Forensics, sample);
            const std::uint32_t pid = forensic_sink_->begin_point(
                panel.name, forensic_model, forensic_kernel, point);
            for (TrialForensics& fx : executor->run_forensics(point, sample))
                forensic_sink_->add_trial(pid, fx.cls, fx.outcome.finished,
                                          fx.outcome.correct, fx.razor_detected,
                                          fx.razor_escaped,
                                          std::move(fx.records),
                                          fx.detection_latencies);
            metrics().add("run.forensic_trials", sample);
        }

        const sampling::StopRule stop =
            panel.kernel.kind == KernelSpec::Kind::Benchmark
                ? sampling::classify_stop(summary, policy)
                : sampling::StopRule::Fixed;
        ++result.stopping[static_cast<std::size_t>(stop)];
        metrics().add("campaign.points");
        metrics().add("campaign.trials_spent", summary.trials);
        if (led != nullptr)
            led->end("point",
                     {{"trials", summary.trials},
                      {"finished", summary.finished_count},
                      {"correct", summary.correct_count},
                      {"stop", sampling::stop_rule_name(stop)},
                      {"half_width",
                       sampling::max_half_width(summary, policy.z)}});
        ++point_index;
        if (progress_) {
            progress_->point_done();
            if (wall)
                led->instant(
                    "progress",
                    {{"points_done",
                      static_cast<std::uint64_t>(progress_->points_done())},
                     {"eta_s", progress_->eta_s()},
                     {"trials_per_sec", progress_->trials_per_sec()}});
        }
        return summary;
    };

    if (panel.poff) {
        sampling::PoffSearchConfig search;
        const double fsta = panel_core.sta_fmax_mhz(base.vdd);
        search.lo_mhz = panel.poff->lo_factor * fsta;
        search.hi_mhz = panel.poff->hi_factor * fsta;
        search.tol_mhz = panel.poff->tol_mhz;
        search.max_expand = panel.poff->max_expand;
        search.cancelled = options_.cancelled;
        // Probes run under `policy` (via compute_point), so their residual
        // pass_risk must be quoted at the policy's z, not the default.
        search.z = policy.z;
        // Probe verdicts are a pure function of the spec, so the search
        // emits them in both trace modes.
        search.ledger = options_.ledger;
        const sampling::PoffSearchResult found =
            sampling::find_poff_bisection(compute_point, base, search);
        result.sweep = found.sweep;
        result.completed = !found.cancelled;
        result.poff = PoffOutcome{found.bracketed, found.lo_mhz,
                                  found.hi_mhz, found.pass_risk,
                                  found.probes};
        metrics().add("campaign.probes", found.probes);
    } else {
        result.sweep.reserve(axis_values.size());
        for (const double value : axis_values) {
            if (options_.cancelled && options_.cancelled()) {
                result.completed = false;
                break;
            }
            OperatingPoint point = base;
            if (panel.axis == Axis::Frequency)
                point.freq_mhz = value;
            else
                point.vdd = value;
            result.sweep.push_back(compute_point(point));
        }
    }
    for (const PointSummary& summary : result.sweep)
        result.trials_spent += summary.trials;
    metrics().add("panel." + panel.name + ".points", result.sweep.size());
    metrics().add("panel." + panel.name + ".trials_spent",
                  result.trials_spent);
    if (progress_) progress_->end_panel();
    if (led != nullptr) {
        const auto points = static_cast<std::uint64_t>(result.sweep.size());
        if (result.poff)
            led->end("panel",
                     {{"points", points},
                      {"trials_spent", result.trials_spent},
                      {"completed", result.completed},
                      {"poff_bracketed", result.poff->bracketed},
                      {"poff_lo_mhz", result.poff->lo_mhz},
                      {"poff_hi_mhz", result.poff->hi_mhz}});
        else
            led->end("panel", {{"points", points},
                               {"trials_spent", result.trials_spent},
                               {"completed", result.completed}});
    }
    if (!result.completed) return result;

    if (options_.console && panel.print_table) {
        std::ostream& os = *options_.console;
        // Empty title = the driver already printed its own header (via
        // on_panel_start).
        if (!panel.title.empty()) os << panel.title << "\n";
        print_sweep(os, "", result.sweep, panel.error_label);
        if (result.poff) {
            const double fsta = panel_core.sta_fmax_mhz(base.vdd);
            if (result.poff->bracketed)
                os << "PoFF in (" << fmt_fixed(result.poff->lo_mhz, 1) << ", "
                   << fmt_fixed(result.poff->hi_mhz, 1) << "] MHz (bisection, "
                   << result.poff->probes << " probes, "
                   << result.trials_spent << " trials), gain "
                   << fmt_fixed(
                          poff_gain_percent(result.poff->hi_mhz, fsta), 1)
                   << "% over STA (" << fmt_fixed(fsta, 1) << " MHz)\n";
            else
                os << "PoFF not bracketed in ["
                   << fmt_fixed(result.poff->lo_mhz, 1) << ", "
                   << fmt_fixed(result.poff->hi_mhz, 1) << "] MHz\n";
        } else if (panel.axis == Axis::Frequency) {
            const double fsta = panel_core.sta_fmax_mhz(base.vdd);
            if (const auto poff = find_poff_mhz(result.sweep))
                os << "PoFF = " << fmt_fixed(*poff, 1) << " MHz, gain "
                   << fmt_fixed(poff_gain_percent(*poff, fsta), 1)
                   << "% over STA (" << fmt_fixed(fsta, 1) << " MHz)\n";
            else
                os << "PoFF above the swept range\n";
        }
        os << "\n";
    }

    if (!options_.csv_dir.empty()) {
        result.csv_path = options_.csv_dir + "/" + panel.name + ".csv";
        write_sweep_csv(result.csv_path, result.sweep);
    }
    return result;
}

CdfPanelResult CampaignRunner::run_cdf_panel(const CdfPanelSpec& panel) {
    CdfPanelResult result;
    result.name = panel.name;

    obs::Ledger* const led = options_.ledger;
    if (led != nullptr)
        led->begin("panel", {{"name", panel.name}, {"kind", "cdf"}});

    const CharacterizedCore& campaign_core = core();
    const TimingErrorCdfs& cdfs = *campaign_core.cdfs();
    // CDF panels have no base operating point or model, so the symbolic
    // grid kinds have nothing to resolve against — reject them instead
    // of evaluating curves at meaningless frequencies.
    if (panel.grid.kind != GridSpec::Kind::Explicit &&
        panel.grid.kind != GridSpec::Kind::Linspace)
        throw std::invalid_argument(
            "CdfPanelSpec '" + panel.name +
            "': grids must be Explicit or Linspace");
    const std::vector<double> freqs =
        resolve(panel.grid, campaign_core, /*base_vdd=*/0.0, nullptr);

    result.columns = {"f [MHz]"};
    for (const CdfCurveSpec& curve : panel.curves) {
        char label[48];
        std::snprintf(label, sizeof label, "%s b%zu %.1fV",
                      ex_class_name(curve.cls), curve.bit, curve.vdd);
        result.columns.push_back(label);
    }

    result.rows.reserve(freqs.size());
    for (const double f : freqs) {
        std::vector<double> row = {f};
        for (const CdfCurveSpec& curve : panel.curves) {
            const double window =
                (1.0e6 / f) / campaign_core.lib().fit().factor(curve.vdd);
            row.push_back(cdfs.violation_prob(curve.cls, curve.bit, window));
        }
        result.rows.push_back(std::move(row));
    }

    if (!options_.csv_dir.empty()) {
        result.csv_path = options_.csv_dir + "/" + panel.name + ".csv";
        CsvWriter csv(result.csv_path);
        csv.header(result.columns);
        for (const auto& row : result.rows) csv.row(row);
        csv.close();  // surface write failures like the sweep CSVs do
    }
    metrics().add("panel." + panel.name + ".points", result.rows.size());
    if (led != nullptr)
        led->end("panel",
                 {{"points", static_cast<std::uint64_t>(result.rows.size())}});
    return result;
}

void CampaignRunner::write_manifest(CampaignResult& result) {
    std::string path = options_.manifest_path;
    if (path.empty() && !options_.csv_dir.empty())
        path = options_.csv_dir + "/" + spec_.name + "_manifest.json";
    if (path.empty()) return;

    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("campaign manifest: cannot open " + path);

    // Stable description first; everything that varies between runs of
    // the same spec (hit/miss split, wall clock, machine-local paths)
    // lives on the single "run" line so consumers — and the resume tests
    // — can separate the two by line.
    os << "{\n";
    os << "  \"campaign\": \"" << json_escape(spec_.name) << "\",\n";
    os << "  \"spec_fingerprint\": \"0x" << hex64(result.spec_fingerprint)
       << "\",\n";
    os << "  \"trials\": " << spec_.trials << ",\n";
    os << "  \"seed\": " << spec_.seed << ",\n";
    os << "  \"panels\": [\n";
    bool first = true;
    for (const PanelResult& panel : result.panels) {
        if (!first) os << ",\n";
        first = false;
        os << "    {\"name\": \"" << json_escape(panel.name)
           << "\", \"kind\": \"" << (panel.poff ? "poff" : "mc")
           << "\", \"points\": " << panel.sweep.size()
           << ", \"trials_spent\": " << panel.trials_spent;
        // Stopping classifications are derived from the final summaries
        // (classify_stop), so they are a pure function of the spec and
        // belong to the stable section: warm and cold runs agree.
        {
            using sampling::StopRule;
            const auto count = [&](StopRule rule) {
                return panel.stopping[static_cast<std::size_t>(rule)];
            };
            os << ", \"stopping\": {\"fixed\": " << count(StopRule::Fixed)
               << ", \"ci_met\": " << count(StopRule::CiMet)
               << ", \"max_trials\": " << count(StopRule::MaxTrials)
               << ", \"screen\": " << count(StopRule::Screen) << "}";
        }
        // The PoFF crossing (paper §4.2): dense frequency panels report
        // the grid estimate, bisection panels the bracket — both land in
        // the stable part, they are pure functions of the spec.
        if (panel.poff) {
            const PoffOutcome& poff = *panel.poff;
            os << ", \"poff_bracketed\": "
               << (poff.bracketed ? "true" : "false");
            if (poff.bracketed)
                os << ", \"poff_lo_mhz\": " << format_double(poff.lo_mhz)
                   << ", \"poff_hi_mhz\": " << format_double(poff.hi_mhz)
                   << ", \"poff_mhz\": " << format_double(poff.hi_mhz)
                   << ", \"probes\": " << poff.probes;
        } else if (panel.axis == Axis::Frequency && !panel.sweep.empty()) {
            if (const auto poff = find_poff_mhz(panel.sweep))
                os << ", \"poff_mhz\": " << format_double(*poff);
            else
                os << ", \"poff_mhz\": null";
        }
        os << ", \"csv\": \""
           << json_escape(
                  std::filesystem::path(panel.csv_path).filename().string())
           << "\"}";
    }
    for (const CdfPanelResult& panel : result.cdf_panels) {
        if (!first) os << ",\n";
        first = false;
        os << "    {\"name\": \"" << json_escape(panel.name)
           << "\", \"kind\": \"cdf\", \"points\": " << panel.rows.size()
           << ", \"csv\": \""
           << json_escape(
                  std::filesystem::path(panel.csv_path).filename().string())
           << "\"}";
    }
    os << "\n  ],\n";
    os << "  \"run\": {\"store_path\": \"" << json_escape(options_.store_path)
       << "\", \"store_hits\": " << result.store_hits
       << ", \"store_misses\": " << result.store_misses
       << ", \"trials_spent\": " << result.trials_spent
       << ", \"store_recovered_bytes\": " << store_.recovered_bytes()
       << ", \"threads\": " << options_.threads
       << ", \"dispatch\": \"" << cpu_dispatch_name(options_.dispatch) << "\""
       << ", \"wall_clock_s\": " << format_double(result.wall_s)
       << ", \"completed\": " << (result.completed ? "true" : "false")
       << "}\n";
    os << "}\n";
    os.flush();
    if (!os)
        throw std::runtime_error("campaign manifest: write to " + path +
                                 " failed");
    result.manifest_path = path;
}

CampaignResult CampaignRunner::run() {
    const auto t0 = std::chrono::steady_clock::now();
    CampaignResult result;
    result.name = spec_.name;
    result.spec_fingerprint = spec_.fingerprint();

    obs::Ledger* const led = options_.ledger;
    const bool wall = led != nullptr && !led->logical();
    if (led != nullptr)
        led->begin("campaign",
                   {{"name", spec_.name},
                    {"spec_fingerprint", "0x" + hex64(result.spec_fingerprint)},
                    {"panels", static_cast<std::uint64_t>(spec_.panels.size() +
                                                          spec_.cdf_panels.size())},
                    {"trials", static_cast<std::uint64_t>(spec_.trials)},
                    {"seed", spec_.seed}});
    // Always constructed while running: wall-mode ledgers want the ETA
    // estimates even when stderr is not a TTY (console == nullptr then).
    progress_ = std::make_unique<obs::ProgressReporter>(
        options_.progress && obs::stderr_is_tty() ? &std::cerr : nullptr,
        &metrics());
    if (store_.recovered_bytes() > 0)
        metrics().add("run.store_recovered_bytes", store_.recovered_bytes());

    if (!options_.csv_dir.empty())
        std::filesystem::create_directories(options_.csv_dir);
    forensic_sink_ = options_.forensics_dir.empty()
                         ? nullptr
                         : std::make_unique<ForensicSink>();

    for (const PanelSpec& panel : spec_.panels) {
        if (options_.cancelled && options_.cancelled()) {
            result.completed = false;
            break;
        }
        PanelResult panel_result = run_panel(panel);
        result.store_hits += panel_result.store_hits;
        result.store_misses += panel_result.store_misses;
        result.trials_spent += panel_result.trials_spent;
        const bool completed = panel_result.completed;
        result.panels.push_back(std::move(panel_result));
        if (!completed) {
            result.completed = false;
            break;
        }
    }
    if (result.completed)
        for (const CdfPanelSpec& panel : spec_.cdf_panels) {
            if (options_.cancelled && options_.cancelled()) {
                result.completed = false;
                break;
            }
            result.cdf_panels.push_back(run_cdf_panel(panel));
        }

    // Forensic artifacts are written even for cancelled campaigns: every
    // recorded point is complete, and a partial record stream is still a
    // valid (and debuggable) artifact.
    if (forensic_sink_ != nullptr) {
        forensic_sink_->write_artifacts(options_.forensics_dir);
        metrics().add("run.forensic_records",
                      forensic_sink_->records().size());
        if (led != nullptr)
            led->instant(
                "forensics",
                {{"dir", options_.forensics_dir},
                 {"trials", forensic_sink_->trials_recorded()},
                 {"records", static_cast<std::uint64_t>(
                                 forensic_sink_->records().size())}});
        forensic_sink_.reset();
    }

    result.wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    write_manifest(result);
    progress_.reset();

    if (led != nullptr) {
        if (!result.completed)
            // The cancellation instant is part of the stable narrative:
            // whether a run was cancelled is an input, not a measurement.
            led->instant("cancelled",
                         {{"panels_done",
                           static_cast<std::uint64_t>(result.panels.size())}});
        if (wall)
            led->instant("run_stats",
                         {{"store_hits",
                           static_cast<std::uint64_t>(result.store_hits)},
                          {"store_misses",
                           static_cast<std::uint64_t>(result.store_misses)},
                          {"wall_s", result.wall_s},
                          {"threads",
                           static_cast<std::uint64_t>(options_.threads)}});
        led->emit_metrics(metrics());
        led->end("campaign",
                 {{"trials_spent", result.trials_spent},
                  {"completed", result.completed}});
        led->flush();
    }

    if (options_.console) {
        *options_.console << "[campaign " << spec_.name << "] "
                          << result.store_hits << " store hits, "
                          << result.store_misses << " misses, "
                          << fmt_fixed(result.wall_s, 1) << " s"
                          << (result.completed ? "" : " (cancelled)") << "\n";
    }
    return result;
}

}  // namespace sfi::campaign
