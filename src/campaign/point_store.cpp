#include "campaign/point_store.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fingerprint.hpp"

namespace sfi::campaign {

namespace {

constexpr char kMagic[8] = {'S', 'F', 'I', 'P', 'T', 'S', '\x01', '\n'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = sizeof kMagic + sizeof kVersion;
// A PointSummary payload is ~150 bytes; anything larger than this is a
// corrupt size field, not a record.
constexpr std::uint32_t kMaxPayload = 1u << 20;

template <typename T>
void put(std::ostream& os, const T& value) {
    os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool get(std::istream& is, T& value) {
    is.read(reinterpret_cast<char*>(&value), sizeof value);
    return static_cast<bool>(is);
}

}  // namespace

void save_point_summary(std::ostream& os, const PointSummary& summary) {
    put(os, summary.point.freq_mhz);
    put(os, summary.point.vdd);
    put(os, summary.point.noise.sigma_mv);
    put(os, summary.point.noise.clip_sigmas);
    put(os, static_cast<std::uint64_t>(summary.trials));
    put(os, static_cast<std::uint64_t>(summary.finished_count));
    put(os, static_cast<std::uint64_t>(summary.correct_count));
    put(os, summary.fi_rate);
    put(os, summary.mean_error);
    summary.error_stats.save(os);
    summary.fi_rate_stats.save(os);
}

PointSummary load_point_summary(std::istream& is) {
    PointSummary summary;
    std::uint64_t trials = 0, finished = 0, correct = 0;
    if (!get(is, summary.point.freq_mhz) || !get(is, summary.point.vdd) ||
        !get(is, summary.point.noise.sigma_mv) ||
        !get(is, summary.point.noise.clip_sigmas) || !get(is, trials) ||
        !get(is, finished) || !get(is, correct) || !get(is, summary.fi_rate) ||
        !get(is, summary.mean_error))
        throw std::runtime_error("load_point_summary: truncated stream");
    summary.trials = static_cast<std::size_t>(trials);
    summary.finished_count = static_cast<std::size_t>(finished);
    summary.correct_count = static_cast<std::size_t>(correct);
    summary.error_stats = RunningStats::load(is);
    summary.fi_rate_stats = RunningStats::load(is);
    return summary;
}

const char* store_diagnostic_name(StoreDiagnostic::Kind kind) {
    switch (kind) {
        case StoreDiagnostic::Kind::ForeignFile: return "foreign-file";
        case StoreDiagnostic::Kind::CorruptTail: return "corrupt-tail";
        case StoreDiagnostic::Kind::BitRot: return "bit-rot";
    }
    return "unknown";
}

PointStore::PointStore(std::string path, obs::Ledger* ledger)
    : path_(std::move(path)), ledger_(ledger) {
    if (!path_.empty()) {
        load_file();
        report_diagnostics();
    }
}

void PointStore::load_file() {
    valid_bytes_ = kHeaderBytes;
    std::ifstream is(path_, std::ios::binary);
    if (!is) return;  // no file yet: created with a header on first insert

    std::error_code ec;
    const std::uint64_t file_size = std::filesystem::file_size(path_, ec);

    char magic[sizeof kMagic] = {};
    std::uint32_t version = 0;
    is.read(magic, sizeof magic);
    if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0 ||
        !get(is, version) || version != kVersion) {
        // Foreign or old-format file: read as empty; the first insert
        // rewrites it from scratch.
        recovered_bytes_ = ec ? 0 : file_size;
        diagnostics_.push_back({StoreDiagnostic::Kind::ForeignFile,
                                recovered_bytes_, 0});
        return;
    }
    header_ok_ = true;

    std::uint64_t good_end = kHeaderBytes;
    std::vector<char> payload;
    auto damage = StoreDiagnostic::Kind::CorruptTail;
    bool damaged = false;
    for (;;) {
        std::uint64_t key = 0;
        std::uint32_t size = 0;
        if (!get(is, key)) {
            // A clean end of file fails the key read with nothing
            // consumed; any partial read is a torn record.
            damaged = is.gcount() > 0;
            break;
        }
        if (!get(is, size)) {
            damaged = true;
            break;
        }
        if (size > kMaxPayload) {
            damaged = true;  // corrupt size field, not a record
            break;
        }
        payload.resize(size);
        is.read(payload.data(), size);
        std::uint64_t stored_hash = 0;
        if (!is || !get(is, stored_hash)) {
            damaged = true;
            break;
        }
        if (Fingerprint().bytes(payload.data(), size).value() != stored_hash) {
            // Bit rot / torn write: drop this record and the rest.
            damaged = true;
            damage = StoreDiagnostic::Kind::BitRot;
            break;
        }
        std::istringstream ps(std::string(payload.data(), size));
        try {
            entries_[key] = load_point_summary(ps);
        } catch (const std::exception&) {
            damaged = true;
            break;
        }
        good_end += sizeof key + sizeof size + size + sizeof stored_hash;
    }
    valid_bytes_ = good_end;
    if (!ec && file_size > valid_bytes_)
        recovered_bytes_ = file_size - valid_bytes_;
    if (damaged)
        diagnostics_.push_back({damage, recovered_bytes_, entries_.size()});
}

void PointStore::report_diagnostics() const {
    for (const StoreDiagnostic& diag : diagnostics_) {
        if (ledger_ != nullptr) {
            ledger_->instant(
                "store_warning",
                {{"kind", store_diagnostic_name(diag.kind)},
                 {"path", path_},
                 {"dropped_bytes", diag.dropped_bytes},
                 {"records_loaded",
                  static_cast<std::uint64_t>(diag.records_loaded)}});
        } else {
            std::fprintf(
                stderr,
                "sfi: point store %s: %s — dropped %llu byte(s), "
                "%zu record(s) loaded\n",
                path_.c_str(), store_diagnostic_name(diag.kind),
                static_cast<unsigned long long>(diag.dropped_bytes),
                diag.records_loaded);
        }
    }
}

void PointStore::append_record(std::uint64_t key, const PointSummary& summary) {
    if (!out_.is_open()) {
        if (!header_ok_) {
            // Missing or unrecognizable file: start fresh.
            out_.open(path_, std::ios::binary | std::ios::trunc);
            if (out_) {
                out_.write(kMagic, sizeof kMagic);
                put(out_, kVersion);
            }
        } else {
            // Cut corrupt trailing data back to the last good record,
            // then append behind it. ios::app (O_APPEND) writes at the
            // OS-maintained end of file, so a second process appending
            // to the same store cannot overwrite this one's records —
            // see the concurrency note in the header.
            if (recovered_bytes_ > 0) {
                std::error_code ec;
                std::filesystem::resize_file(path_, valid_bytes_, ec);
            }
            out_.open(path_, std::ios::binary | std::ios::app);
        }
        if (!out_)
            throw std::runtime_error("PointStore: cannot open " + path_ +
                                     " for writing");
        header_ok_ = true;
    }
    std::ostringstream ps(std::ios::binary);
    save_point_summary(ps, summary);
    const std::string payload = ps.str();
    put(out_, key);
    put(out_, static_cast<std::uint32_t>(payload.size()));
    out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    put(out_, Fingerprint().bytes(payload.data(), payload.size()).value());
    out_.flush();  // the resume guarantee: completed points hit the disk
    if (!out_)
        throw std::runtime_error("PointStore: write to " + path_ + " failed");
    valid_bytes_ += sizeof key + sizeof(std::uint32_t) + payload.size() +
                    sizeof(std::uint64_t);
}

std::optional<PointSummary> PointStore::lookup(std::uint64_t key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

void PointStore::insert(std::uint64_t key, const PointSummary& summary) {
    if (!entries_.emplace(key, summary).second) return;  // already stored
    if (!path_.empty()) append_record(key, summary);
}

}  // namespace sfi::campaign
