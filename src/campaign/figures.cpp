#include "campaign/figures.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace sfi::campaign::figures {

namespace {

std::string fmt(const char* format, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, format, value);
    return buf;
}

CampaignSpec base_spec(std::string name, const CoreModelConfig& core,
                       std::size_t trials, std::size_t default_trials,
                       std::uint64_t seed) {
    CampaignSpec spec;
    spec.name = std::move(name);
    spec.core = core;
    spec.trials = trials ? trials : default_trials;
    spec.seed = seed;
    return spec;
}

/// The ablation studies characterize variant cores with a clamped DTA
/// kernel (full-length re-characterization per variant would dominate).
CoreModelConfig ablation_core(CoreModelConfig config) {
    config.dta.cycles = std::min<std::size_t>(config.dta.cycles, 4096);
    return config;
}

/// Gives a variant core its own CDF cache file, derived from the base
/// cache path and the config fingerprint. The historical benches simply
/// cleared the path (distinct configs would thrash one file), which made
/// every warm ablation re-run pay full DTA again; per-fingerprint names
/// keep warm campaigns warm. Apply this AFTER all config overrides.
CoreModelConfig with_fingerprint_cache(CoreModelConfig config) {
    if (config.cdf_cache_path.empty()) return config;
    char suffix[20];
    std::snprintf(suffix, sizeof suffix, "_%016llx",
                  static_cast<unsigned long long>(
                      core_config_fingerprint(config)));
    // Suffix the file *stem* only — a dot in a directory component
    // ("caches/v1.0/cdf.bin") must not be touched.
    std::filesystem::path path(config.cdf_cache_path);
    std::filesystem::path name = path.stem();
    name += suffix;
    name += path.extension();
    config.cdf_cache_path = (path.parent_path() / name).string();
    return config;
}

}  // namespace

CampaignSpec fig1(const CoreModelConfig& core, std::size_t trials,
                  std::uint64_t seed) {
    CampaignSpec spec = base_spec("fig1", core, trials, 100, seed);
    for (const double sigma : {0.0, 10.0, 25.0}) {
        PanelSpec panel;
        panel.name = "fig1_sigma" + fmt("%.0f", sigma);
        panel.title = "Fig. 1 model " + std::string(sigma > 0.0 ? "B+" : "B") +
                      "  (Vdd = 0.7 V, sigma = " + fmt("%.0f", sigma) + " mV)";
        panel.kernel = KernelSpec::bench(BenchmarkId::Median);
        panel.model = ModelSpec::b();
        panel.base.vdd = 0.7;
        panel.base.noise.sigma_mv = sigma;
        panel.grid = GridSpec::first_fault_window(1.5, 3.5, 0.5);
        spec.panels.push_back(std::move(panel));
    }
    return spec;
}

CampaignSpec fig2(const CoreModelConfig& core) {
    CampaignSpec spec = base_spec("fig2", core, 1, 1, 1);
    CdfPanelSpec panel;
    panel.name = "fig2_cdfs";
    panel.title = "Fig. 2: timing-error-probability CDFs from DTA";
    for (const ExClass cls : {ExClass::Add, ExClass::Mul})
        for (const std::size_t bit : {std::size_t{3}, std::size_t{24}})
            for (const double vdd : {0.7, 0.8})
                panel.curves.push_back({cls, bit, vdd});
    panel.grid = GridSpec::linspace(600.0, 2400.0, 37);
    spec.cdf_panels.push_back(std::move(panel));
    return spec;
}

CampaignSpec fig4(const CoreModelConfig& core, std::size_t trials,
                  std::uint64_t seed) {
    CampaignSpec spec = base_spec("fig4", core, trials, 100, seed);
    struct Series {
        const char* name;
        ExClass cls;
        unsigned operand_bits;
    };
    const Series series[] = {
        {"fig4_add16", ExClass::Add, 16},
        {"fig4_add32", ExClass::Add, 32},
        {"fig4_mul32", ExClass::Mul, 16},
    };
    std::uint64_t index = 0;
    for (const Series& s : series) {
        PanelSpec panel;
        panel.name = s.name;
        panel.title = std::string("Fig. 4 ") + ex_class_name(s.cls) +
                      " stream, " + std::to_string(s.operand_bits) +
                      "-bit operands (Vdd = 0.7 V, sigma = 10 mV)";
        // The paper's isolated instruction streams: raw ALU operations
        // through model C, with an operand-profile-conditioned DTA
        // characterization per series.
        panel.kernel = KernelSpec::op_stream(s.cls, s.operand_bits, 2048,
                                             0xF164000ULL + index);
        panel.model = ModelSpec::c();
        panel.dta_operand_bits = s.operand_bits;
        panel.seed_offset = index;
        panel.base.vdd = 0.7;
        panel.base.noise.sigma_mv = 10.0;
        panel.grid = GridSpec::linspace(650.0, 1250.0, 25);
        panel.error_label = "MSE";
        spec.panels.push_back(std::move(panel));
        ++index;
    }
    return spec;
}

CampaignSpec fig5(const CoreModelConfig& core, std::size_t trials,
                  std::uint64_t seed, std::size_t points) {
    CampaignSpec spec = base_spec("fig5", core, trials, 100, seed);
    for (const double vdd : {0.7, 0.8}) {
        for (const double sigma : {0.0, 10.0, 25.0}) {
            PanelSpec panel;
            panel.name =
                "fig5_v" + fmt("%.1f", vdd) + "_s" + fmt("%.0f", sigma);
            panel.title = "Fig. 5  Vdd = " + fmt("%.1f", vdd) +
                          " V  noise sigma = " + fmt("%.0f", sigma) + " mV";
            panel.kernel = KernelSpec::bench(BenchmarkId::Median);
            panel.model = ModelSpec::c();
            panel.base.vdd = vdd;
            panel.base.noise.sigma_mv = sigma;
            // The reliable->unreliable transition region: from below the
            // noisy first-fault point to well past total failure.
            panel.grid = GridSpec::sta_linspace(0.92, 1.45, points);
            spec.panels.push_back(std::move(panel));
        }
    }
    return spec;
}

CampaignSpec fig6(const CoreModelConfig& core, std::size_t trials,
                  std::uint64_t seed) {
    CampaignSpec spec = base_spec("fig6", core, trials, 100, seed);
    struct Panel {
        BenchmarkId id;
        double lo, hi;
        std::size_t points;
    };
    const Panel panels[] = {
        {BenchmarkId::MatMult8, 0.97, 1.30, 18},
        {BenchmarkId::MatMult16, 0.97, 1.30, 18},
        {BenchmarkId::KMeans, 0.97, 1.35, 18},
        {BenchmarkId::Dijkstra, 0.99, 1.22, 20},  // narrow: higher resolution
    };
    for (const Panel& p : panels) {
        PanelSpec panel;
        panel.name = std::string("fig6_") + benchmark_name(p.id);
        panel.title = std::string("Fig. 6  ") + benchmark_name(p.id) +
                      "  (Vdd = 0.7 V, sigma = 10 mV)";
        panel.kernel = KernelSpec::bench(p.id);
        panel.model = ModelSpec::c();
        panel.base.vdd = 0.7;
        panel.base.noise.sigma_mv = 10.0;
        panel.grid = GridSpec::sta_linspace(p.lo, p.hi, p.points);
        panel.error_label = make_benchmark(p.id)->error_unit();
        spec.panels.push_back(std::move(panel));
    }
    return spec;
}

CampaignSpec fig7(const CoreModelConfig& core, std::size_t trials,
                  std::uint64_t seed) {
    CampaignSpec spec = base_spec("fig7", core, trials, 100, seed);
    for (const double sigma : {0.0, 10.0, 25.0}) {
        PanelSpec panel;
        panel.name = "fig7_s" + fmt("%.0f", sigma);
        panel.title = "Fig. 7  sigma = " + fmt("%.0f", sigma) +
                      " mV (median @ f_STA(0.7 V), voltage sweep)";
        panel.kernel = KernelSpec::bench(BenchmarkId::Median);
        panel.model = ModelSpec::c();
        panel.base.vdd = 0.7;
        panel.base.noise.sigma_mv = sigma;
        panel.base_freq_sta_factor = 1.0;  // pinned to the nominal STA limit
        panel.axis = Axis::Voltage;
        panel.grid = GridSpec::linspace(0.640, 0.7, 16);
        spec.panels.push_back(std::move(panel));
    }
    return spec;
}

CampaignSpec ablation_adder(const CoreModelConfig& core, std::size_t trials,
                            std::uint64_t seed) {
    CampaignSpec spec = base_spec("ablation_adder", core, trials, 60, seed);
    spec.core = with_fingerprint_cache(ablation_core(core));
    for (const AdderKind kind : {AdderKind::KoggeStone, AdderKind::RippleCarry}) {
        const char* name =
            kind == AdderKind::KoggeStone ? "kogge_stone" : "ripple_carry";
        PanelSpec panel;
        panel.name = std::string("ablation_adder_") + name;
        panel.title = std::string("median under model C, adder = ") + name;
        panel.kernel = KernelSpec::bench(BenchmarkId::Median);
        panel.model = ModelSpec::c();
        panel.base.vdd = 0.7;
        CoreModelConfig override_config = ablation_core(core);
        override_config.alu.adder = kind;
        panel.core_override = with_fingerprint_cache(override_config);
        panel.grid = GridSpec::sta_linspace(1.0, 1.6, 14);
        spec.panels.push_back(std::move(panel));
    }
    return spec;
}

CampaignSpec ablation_compression(const CoreModelConfig& core,
                                  std::size_t trials, std::uint64_t seed) {
    CampaignSpec spec =
        base_spec("ablation_compression", core, trials, 60, seed);
    spec.core = with_fingerprint_cache(ablation_core(core));
    for (const double kappa : {0.0, 0.35, 0.8}) {
        PanelSpec panel;
        panel.name = "ablation_compression_k" + fmt("%.2f", kappa);
        panel.title = "median under model C, compression = " + fmt("%.2f", kappa);
        panel.kernel = KernelSpec::bench(BenchmarkId::Median);
        panel.model = ModelSpec::c();
        panel.base.vdd = 0.7;
        panel.base.noise.sigma_mv = 10.0;
        CoreModelConfig override_config = ablation_core(core);
        override_config.calibration.compression = kappa;
        panel.core_override = with_fingerprint_cache(override_config);
        panel.grid = GridSpec::sta_linspace(0.98, 1.35, 10);
        spec.panels.push_back(std::move(panel));
    }
    return spec;
}

CampaignSpec ablation_noise_clip(const CoreModelConfig& core,
                                 std::size_t trials, std::uint64_t seed) {
    CampaignSpec spec =
        base_spec("ablation_noise_clip", core, trials, 80, seed);
    for (const double clip : {1.0, 2.0, 3.0, 4.0}) {
        PanelSpec panel;
        panel.name = "ablation_noise_clip_c" + fmt("%.0f", clip);
        panel.title = "median under model C at f_STA, clip = " +
                      fmt("%.0f", clip) + " sigma";
        panel.kernel = KernelSpec::bench(BenchmarkId::Median);
        panel.model = ModelSpec::c();
        panel.base.vdd = 0.7;
        panel.base.noise.sigma_mv = 25.0;
        panel.base.noise.clip_sigmas = clip;
        panel.grid = GridSpec::sta_linspace(1.0, 1.0, 1);  // single point
        spec.panels.push_back(std::move(panel));
    }
    return spec;
}

CampaignSpec ablation_policy(const CoreModelConfig& core, std::size_t trials,
                             std::uint64_t seed) {
    CampaignSpec spec = base_spec("ablation_policy", core, trials, 80, seed);
    for (const BenchmarkId id : {BenchmarkId::KMeans, BenchmarkId::Median}) {
        for (const FaultPolicy policy :
             {FaultPolicy::BitFlip, FaultPolicy::StaleCapture}) {
            const char* policy_name =
                policy == FaultPolicy::BitFlip ? "bitflip" : "stale";
            PanelSpec panel;
            panel.name = std::string("ablation_policy_") + benchmark_name(id) +
                         "_" + policy_name;
            panel.title = std::string(benchmark_name(id)) + " under model C, " +
                          policy_name + " policy";
            panel.kernel = KernelSpec::bench(id);
            panel.model = ModelSpec::c();
            panel.model.policy = policy;
            panel.base.vdd = 0.7;
            panel.base.noise.sigma_mv = 10.0;
            panel.grid = GridSpec::sta_linspace(1.00, 1.15, 4);
            panel.error_label = make_benchmark(id)->error_unit();
            spec.panels.push_back(std::move(panel));
        }
    }
    return spec;
}

const std::vector<std::string>& figure_names() {
    static const std::vector<std::string> names = {
        "fig1",          "fig2",
        "fig4",          "fig5",
        "fig6",          "fig7",
        "ablation_adder", "ablation_compression",
        "ablation_noise_clip", "ablation_policy",
    };
    return names;
}

CampaignSpec make_figure(const std::string& name, const CoreModelConfig& core,
                         std::size_t trials, std::uint64_t seed) {
    if (name == "fig1") return fig1(core, trials, seed);
    if (name == "fig2") return fig2(core);
    if (name == "fig4") return fig4(core, trials, seed);
    if (name == "fig5") return fig5(core, trials, seed);
    if (name == "fig6") return fig6(core, trials, seed);
    if (name == "fig7") return fig7(core, trials, seed);
    if (name == "ablation_adder") return ablation_adder(core, trials, seed);
    if (name == "ablation_compression")
        return ablation_compression(core, trials, seed);
    if (name == "ablation_noise_clip")
        return ablation_noise_clip(core, trials, seed);
    if (name == "ablation_policy") return ablation_policy(core, trials, seed);
    throw std::invalid_argument("unknown figure campaign: " + name);
}

}  // namespace sfi::campaign::figures
