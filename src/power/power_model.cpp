#include "power/power_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sfi {

PowerModel::PowerModel(PowerModelConfig config) : config_(config) {
    if (config_.ref_v_high <= config_.ref_v_low)
        throw std::invalid_argument("PowerModel: reference voltages out of order");
    // Least-squares fit of P = k V^2 through the two reference points.
    const double x1 = config_.ref_v_low * config_.ref_v_low;
    const double x2 = config_.ref_v_high * config_.ref_v_high;
    const double y1 = config_.ref_uw_per_mhz_low;
    const double y2 = config_.ref_uw_per_mhz_high;
    k_uw_per_mhz_v2_ = (x1 * y1 + x2 * y2) / (x1 * x1 + x2 * x2);
}

double PowerModel::active_uw_per_mhz(double v) const {
    return k_uw_per_mhz_v2_ * v * v;
}

double PowerModel::leakage_fraction(double v) const {
    const double t = (v - config_.ref_v_low) /
                     (config_.ref_v_high - config_.ref_v_low);
    const double clamped = std::clamp(t, 0.0, 1.0);
    return config_.leak_frac_low +
           clamped * (config_.leak_frac_high - config_.leak_frac_low);
}

double PowerModel::core_power_uw(double v, double freq_mhz) const {
    const double active = active_uw_per_mhz(v) * freq_mhz;
    // leakage is the stated fraction of *total* power: total = active/(1-l).
    return active / (1.0 - leakage_fraction(v));
}

double PowerModel::normalized_power(double v, double v_nom) const {
    return core_power_uw(v, 1.0) / core_power_uw(v_nom, 1.0);
}

double PowerModel::voltage_for_slowdown(const VddDelayFit& fit, double v_nom,
                                        double slowdown) {
    if (slowdown < 1.0)
        throw std::invalid_argument("voltage_for_slowdown: slowdown must be >= 1");
    const double target = fit.factor(v_nom) * slowdown;
    double lo = 0.45, hi = v_nom;  // delay decreases with voltage
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (fit.factor(mid) > target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

}  // namespace sfi
