// Core power model (paper §4.4, footnote 2).
//
// The paper reduces power to two VCD-based post-layout reference points —
// 10.9 µW/MHz @ 0.6 V and 15.0 µW/MHz @ 0.7 V, with 2 % / 3 % leakage —
// and scales active power quadratically with supply voltage between them.
// We implement exactly that model: P_active(V, f) = k · V^2 · f with k
// fitted to the reference points, plus the stated leakage fraction.
#pragma once

#include "timing/vdd_model.hpp"

namespace sfi {

/// The two post-layout VCD reference points of the paper (§4.4,
/// footnote 2) that anchor the quadratic active-power fit.
struct PowerModelConfig {
    double ref_v_low = 0.6;            ///< lower reference supply (V)
    double ref_uw_per_mhz_low = 10.9;  ///< active power at ref_v_low, µW/MHz
    double leak_frac_low = 0.02;       ///< leakage share of total power at ref_v_low
    double ref_v_high = 0.7;           ///< upper reference supply (V)
    double ref_uw_per_mhz_high = 15.0; ///< active power at ref_v_high, µW/MHz
    double leak_frac_high = 0.03;      ///< leakage share of total power at ref_v_high
};

class PowerModel {
public:
    explicit PowerModel(PowerModelConfig config = {});

    /// Active (switching) energy coefficient at voltage `v`, µW per MHz.
    double active_uw_per_mhz(double v) const;

    /// Leakage fraction of total core power at voltage `v` (interpolated
    /// between the reference points, clamped outside).
    double leakage_fraction(double v) const;

    /// Total core power (µW) at voltage `v`, clock `freq_mhz`.
    double core_power_uw(double v, double freq_mhz) const;

    /// Core power at (v, f) normalized to the power at (v_nom, f) —
    /// the x-axis of the paper's Fig. 7 (fixed frequency, scaled supply).
    double normalized_power(double v, double v_nom) const;

    /// Finds the supply voltage (by bisection on the fit) whose delay is
    /// `slowdown` times the delay at `v_nom`: converts frequency-over-
    /// scaling headroom into an equivalent voltage reduction (§4.4).
    static double voltage_for_slowdown(const VddDelayFit& fit, double v_nom,
                                       double slowdown);

    const PowerModelConfig& config() const { return config_; }

private:
    PowerModelConfig config_;
    double k_uw_per_mhz_v2_;  // fitted quadratic coefficient
};

}  // namespace sfi
