// Fault forensics: per-injection provenance and per-trial outcome
// taxonomy (opt-in; docs/ARCHITECTURE.md, "Fault forensics").
//
// The aggregate metrics (PointSummary, FiStats) say how MANY violations a
// point injects; this layer says WHERE each one landed and what became of
// it. A ForensicProbe attached to a FaultModel records every apply_fault
// as one compact FaultRecord — kernel cycle, PC, opcode/ExClass, endpoint
// bit, policy, pre/post bit value, FI-window id, razor fate — and a
// trial-end classifier (MonteCarloRunner::classify_trial) assigns each
// trial an OutcomeClass by diffing final architectural state against the
// golden run. The ForensicSink accumulates records and tallies across
// points and emits the VulnerabilityReport artifacts (per-ExClass /
// per-bit / per-PC injection->SDC derating, razor detection-latency
// histogram) as a binary record stream plus JSON/CSV tables.
//
// Guarantees:
//  * Zero overhead off. No probe attached (the default) means the hot
//    paths pay one null-pointer test per ALU op at most; PointSummary,
//    store fingerprints and every existing CSV/JSON artifact are
//    byte-identical with forensics disabled.
//  * Determinism on. A probed trial consumes exactly the RNG stream of an
//    unprobed one (model B's batched bulk-mask apply falls back to the
//    provably identical per-endpoint walk, which draws nothing), records
//    are appended in simulation order, and the drain happens in
//    trial-index order — so serial and parallel record streams are
//    bitwise identical at any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cpu/cpu.hpp"
#include "fi/models.hpp"

namespace sfi {

/// Architectural fate of one Monte-Carlo trial. Precedence (first match):
/// Hang, SDC, Detected, LatentCorrupt, Masked — so the tallies reconcile
/// exactly with the aggregate counters: hang = trials - finished_count,
/// sdc = finished_count - correct_count, masked + latent + detected =
/// correct_count.
enum class OutcomeClass : std::uint8_t {
    Masked,         ///< finished, correct, architectural state == golden
    LatentCorrupt,  ///< finished, correct output, but arch state differs
    SDC,            ///< finished with a wrong output (silent data corruption)
    Hang,           ///< did not finish (watchdog or fatal stop)
    Detected,       ///< finished correct with >= 1 razor detection
    kCount
};

constexpr std::size_t kOutcomeClassCount =
    static_cast<std::size_t>(OutcomeClass::kCount);

/// Stable identifier ("masked", "latent_corrupt", "sdc", "hang",
/// "detected") used in every artifact.
const char* outcome_class_name(OutcomeClass cls);

/// Detector fate of a record (FaultRecord::razor — the field keeps its
/// original name for stream compatibility; values 3/4 extend the
/// vocabulary for the constant-weight-code detector without disturbing
/// the pinned Razor encodings).
inline constexpr std::uint8_t kRazorNone = 0;      ///< no detection stage
inline constexpr std::uint8_t kRazorDetected = 1;  ///< detected & replayed
inline constexpr std::uint8_t kRazorEscaped = 2;   ///< escaped detection
inline constexpr std::uint8_t kCwcDetected = 3;    ///< CWC weight violation caught
inline constexpr std::uint8_t kCwcEscaped = 4;     ///< balanced flip escaped CWC

/// Detector family a fate byte belongs to ("none", "razor", "cwc").
const char* detector_family_name(std::uint8_t fate);

/// One injected endpoint violation. Serialized little-endian in exactly
/// this field order (kFaultRecordBytes, no padding bytes written); the
/// binary stream is what CI byte-compares across thread counts.
struct FaultRecord {
    std::uint32_t trial = 0;     ///< absolute Monte-Carlo trial index
    std::uint32_t point_id = 0;  ///< ForensicSink point registry id
    std::uint64_t cycle = 0;     ///< absolute cycle of the EX computation
    std::uint32_t pc = 0;        ///< PC of the corrupted instruction
    std::uint16_t window = 0;    ///< FI-window ordinal (1 = first kernel entry)
    std::uint8_t op = 0;         ///< static_cast<uint8_t>(Op)
    std::uint8_t cls = 0;        ///< static_cast<uint8_t>(ExClass)
    std::uint8_t endpoint = 0;   ///< ALU endpoint bit position (0..31)
    std::uint8_t policy = 0;     ///< static_cast<uint8_t>(FaultPolicy)
    std::uint8_t pre_bit = 0;    ///< endpoint bit before the fault
    std::uint8_t post_bit = 0;   ///< endpoint bit latched after the fault
    std::uint8_t razor = 0;      ///< kRazorNone / kRazorDetected / kRazorEscaped

    bool operator==(const FaultRecord&) const = default;
};

inline constexpr std::size_t kFaultRecordBytes = 30;
/// records.bin starts with this 8-byte magic, then u32 record size, then
/// u32 record count, then the records.
inline constexpr char kForensicMagic[9] = "SFIFRNS1";

/// Serializes `records` (header + payload) to `os`.
void write_fault_records(std::ostream& os,
                         const std::vector<FaultRecord>& records);

/// Parses a stream written by write_fault_records; throws
/// std::runtime_error on a bad magic, record size or truncation.
std::vector<FaultRecord> read_fault_records(std::istream& is);

/// Per-trial record collector, attached to a FaultModel via
/// set_forensic_probe for the duration of one forensic trial. The model
/// base class drives it: begin_op from on_ex_result (stashes the event
/// context and the record watermark of the current op), record_injection
/// from apply_fault, mark_razor from the razor decorator's verdict.
/// trial/point_id are stamped after the run by the caller.
class ForensicProbe {
public:
    void start_trial() {
        records_.clear();
        latencies_.clear();
        detected_ = escaped_ = 0;
        ev_ = nullptr;
        op_watermark_ = 0;
        first_injection_cycle_ = 0;
        saw_injection_ = false;
    }

    /// One ALU op is being offered to the model. Re-entry with the same
    /// event (razor driving its inner model) is harmless: the watermark
    /// still brackets the records of this op.
    void begin_op(const ExEvent& ev) {
        ev_ = &ev;
        op_watermark_ = records_.size();
    }

    /// One endpoint violation was injected into the current op.
    void record_injection(std::uint32_t endpoint, bool pre_bit, bool post_bit,
                          FaultPolicy policy) {
        if (ev_ == nullptr) return;  // apply_fault outside an op (tests)
        FaultRecord rec;
        rec.cycle = ev_->cycle;
        rec.pc = ev_->pc;
        rec.window = static_cast<std::uint16_t>(ev_->window);
        rec.op = static_cast<std::uint8_t>(ev_->op);
        rec.cls = static_cast<std::uint8_t>(ev_->cls);
        rec.endpoint = static_cast<std::uint8_t>(endpoint);
        rec.policy = static_cast<std::uint8_t>(policy);
        rec.pre_bit = pre_bit ? 1 : 0;
        rec.post_bit = post_bit ? 1 : 0;
        if (!saw_injection_) {
            saw_injection_ = true;
            first_injection_cycle_ = ev_->cycle;
        }
        records_.push_back(rec);
    }

    /// Razor verdict for the current op: stamps the fate onto every record
    /// the op produced and, on detection, logs the latency from the
    /// trial's first injection to this detection (cycles, >= 0).
    void mark_razor(bool detected) {
        mark_detector(detected, kRazorDetected, kRazorEscaped);
    }

    /// CWC verdict for the current op — same stamping and counters as
    /// mark_razor, different fate vocabulary, so classify_trial and the
    /// taxonomy checks treat both detector families uniformly.
    void mark_cwc(bool detected) {
        mark_detector(detected, kCwcDetected, kCwcEscaped);
    }

    std::uint32_t detected() const { return detected_; }
    std::uint32_t escaped() const { return escaped_; }
    const std::vector<FaultRecord>& records() const { return records_; }
    std::vector<FaultRecord> take_records() { return std::move(records_); }
    std::vector<std::uint32_t> take_latencies() {
        return std::move(latencies_);
    }

private:
    void mark_detector(bool detected, std::uint8_t fate_detected,
                       std::uint8_t fate_escaped) {
        const std::uint8_t fate = detected ? fate_detected : fate_escaped;
        for (std::size_t i = op_watermark_; i < records_.size(); ++i)
            records_[i].razor = fate;
        if (detected) {
            ++detected_;
            if (ev_ != nullptr)
                latencies_.push_back(static_cast<std::uint32_t>(
                    ev_->cycle - first_injection_cycle_));
        } else {
            ++escaped_;
        }
    }

    std::vector<FaultRecord> records_;
    std::vector<std::uint32_t> latencies_;  ///< one per detection, cycles
    std::uint32_t detected_ = 0;
    std::uint32_t escaped_ = 0;
    const ExEvent* ev_ = nullptr;  ///< valid for the duration of one op
    std::size_t op_watermark_ = 0;
    std::uint64_t first_injection_cycle_ = 0;
    bool saw_injection_ = false;
};

/// Per-point forensic tallies plus the metadata that names the point in
/// the artifacts.
struct ForensicPointInfo {
    std::uint32_t point_id = 0;
    std::string panel;
    std::string model;
    std::string kernel;
    double freq_mhz = 0.0;
    double vdd = 0.0;
    double sigma_mv = 0.0;
    std::uint64_t trials_sampled = 0;
    std::uint64_t finished = 0;
    std::uint64_t correct = 0;
    std::array<std::uint64_t, kOutcomeClassCount> outcomes{};
    std::uint64_t injections = 0;
    std::uint64_t razor_detected = 0;
    std::uint64_t razor_escaped = 0;
};

/// Detection-latency histogram bucketing: bucket 0 holds latency 0,
/// bucket i >= 1 holds [2^(i-1), 2^i) cycles; the last bucket absorbs
/// the tail.
inline constexpr std::size_t kLatencyBuckets = 33;
std::size_t latency_bucket(std::uint32_t latency_cycles);

/// Aggregated vulnerability evidence over every recorded trial.
struct VulnerabilityReport {
    /// One derating row: of the trials with >= 1 injection at this key,
    /// how many ended as SDC.
    struct DeratingRow {
        std::string key;
        std::uint64_t injections = 0;  ///< records attributed to the key
        std::uint64_t trials = 0;      ///< trials with >= 1 such injection
        std::uint64_t sdc_trials = 0;  ///< of those, classified SDC
        double sdc_derating() const {
            return trials ? static_cast<double>(sdc_trials) /
                                static_cast<double>(trials)
                          : 0.0;
        }
    };

    /// One derating row split by detector family: the by_class table
    /// refined by which detection stage (none / razor / cwc) saw the
    /// injections — the per-class derating split the mitigation
    /// comparison campaign reads.
    struct DetectorDeratingRow {
        std::string ex_class;
        std::string detector;  ///< detector_family_name of the fate bytes
        std::uint64_t injections = 0;
        std::uint64_t trials = 0;
        std::uint64_t sdc_trials = 0;
        double sdc_derating() const {
            return trials ? static_cast<double>(sdc_trials) /
                                static_cast<double>(trials)
                          : 0.0;
        }
    };

    std::vector<DeratingRow> by_class;  ///< ExClass order
    std::vector<DeratingRow> by_bit;    ///< endpoint bit order
    std::vector<DeratingRow> by_pc;     ///< hotspots, injections descending
    std::vector<DetectorDeratingRow> by_class_detector;  ///< (class, family)
    std::array<std::uint64_t, kLatencyBuckets> detection_latency_hist{};
    std::uint64_t detections = 0;
};

/// Accumulates forensic trials across operating points and emits the
/// artifacts. Feed points with begin_point / add_trial strictly in
/// (point, trial-index) order — the record stream is written exactly in
/// feed order, which is what makes serial == parallel byte-identical
/// when the caller drains parallel results by trial index.
class ForensicSink {
public:
    /// Registers a point and returns its id (stamped into the records).
    std::uint32_t begin_point(std::string panel, std::string model,
                              std::string kernel, const OperatingPoint& point);

    /// Appends one forensically re-run trial of the current point.
    /// `records` are stamped with `point_id` here; `trial` must already be
    /// stamped by the runner.
    void add_trial(std::uint32_t point_id, OutcomeClass cls, bool finished,
                   bool correct, std::uint32_t razor_detected,
                   std::uint32_t razor_escaped,
                   std::vector<FaultRecord> records,
                   const std::vector<std::uint32_t>& detection_latencies);

    const std::vector<FaultRecord>& records() const { return records_; }
    const std::vector<ForensicPointInfo>& points() const { return points_; }
    std::uint64_t trials_recorded() const { return trials_recorded_; }
    bool empty() const { return points_.empty(); }

    /// Builds the aggregated report from the incremental tallies.
    VulnerabilityReport report() const;

    /// Serializes the record stream (write_fault_records).
    void write_records(std::ostream& os) const;

    /// Writes every artifact into `dir` (created if missing): records.bin,
    /// forensics.json, forensics_points.csv and the report CSV tables.
    /// Throws std::runtime_error on I/O failure.
    void write_artifacts(const std::string& dir) const;

private:
    struct KeyTally {
        std::uint64_t injections = 0;
        std::uint64_t trials = 0;
        std::uint64_t sdc_trials = 0;
    };

    std::vector<FaultRecord> records_;
    std::vector<ForensicPointInfo> points_;
    std::uint64_t trials_recorded_ = 0;
    std::map<std::uint8_t, KeyTally> by_class_;
    std::map<std::uint8_t, KeyTally> by_bit_;
    std::map<std::uint32_t, KeyTally> by_pc_;
    /// (ExClass, detector family ordinal 0 none / 1 razor / 2 cwc).
    std::map<std::pair<std::uint8_t, std::uint8_t>, KeyTally>
        by_class_detector_;
    std::array<std::uint64_t, kLatencyBuckets> latency_hist_{};
    std::uint64_t detections_ = 0;
};

/// Per-panel outcome tallies parsed back from forensics_points.csv — the
/// reader half used by sfi_trace when a forensic artifact sits next to a
/// run ledger. Tolerant: returns an empty map when the file is missing or
/// malformed rather than throwing.
struct ForensicPanelTally {
    std::uint64_t trials = 0;
    std::array<std::uint64_t, kOutcomeClassCount> outcomes{};
};

std::map<std::string, ForensicPanelTally> read_forensic_panel_tallies(
    const std::string& csv_path);

/// One forensics_points.csv row parsed back in file order — the join key
/// bench_cwc_compare uses to pair per-point detector counters with the
/// in-memory campaign sweeps (panel + point order). The detector counters
/// cover both families: a CWC stage feeds the same probe counters Razor
/// does, so "razor_detected"/"razor_escaped" read as "detector
/// detected/escaped" under a CWC panel.
struct ForensicPointRow {
    std::string panel;
    std::string model;
    std::string kernel;
    std::uint32_t point_id = 0;
    double freq_mhz = 0.0;
    double vdd = 0.0;
    double sigma_mv = 0.0;
    std::uint64_t trials = 0;
    std::uint64_t finished = 0;
    std::uint64_t correct = 0;
    std::uint64_t injections = 0;
    std::uint64_t razor_detected = 0;
    std::uint64_t razor_escaped = 0;
};

/// Reads forensics_points.csv rows in file order. Tolerant like
/// read_forensic_panel_tallies: a missing/malformed file returns an
/// empty vector rather than throwing.
std::vector<ForensicPointRow> read_forensic_points(
    const std::string& csv_path);

}  // namespace sfi
