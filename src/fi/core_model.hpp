// CharacterizedCore: one-stop assembly of the whole characterization
// flow — build the ALU netlist, annotate timing, calibrate to the paper's
// block targets, run STA, run the DTA characterization kernel and build
// the CDF store. This is what examples and benches instantiate.
//
// DTA is the only expensive step (seconds); pass `cdf_cache_path` to
// reuse a previous characterization. The cache is invalidated when the
// configuration fingerprint changes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "circuits/alu.hpp"
#include "fi/cdf.hpp"
#include "fi/models.hpp"
#include "fi/sampling_batch.hpp"
#include "timing/calibration.hpp"
#include "timing/dta.hpp"
#include "timing/sta.hpp"
#include "timing/timing_lib.hpp"

namespace sfi {

struct CoreModelConfig {
    AluConfig alu;
    TimingLibConfig lib;
    CalibrationTargets calibration;
    DtaConfig dta;
    /// Optional binary cache for the (deterministic) DTA result.
    std::string cdf_cache_path;
    /// Draw-stream mode stamped onto models built by the factories.
    /// Scalar and Batched are bit-identical (same results, same
    /// fingerprint); Quantized is the alias-sampled "B-q" variant and
    /// gets its own fingerprint so stored results never collide.
    FaultSamplingMode fault_sampling = FaultSamplingMode::Batched;
};

/// FNV-1a hash of every CoreModelConfig knob that affects the
/// characterization result (the cache path is deliberately excluded).
/// This is the invalidation key of the CDF cache and one ingredient of
/// the campaign point-store keys (src/campaign/): two configs with equal
/// fingerprints characterize to identical cores.
std::uint64_t core_config_fingerprint(const CoreModelConfig& config);

class CharacterizedCore {
public:
    /// `profile`, when given, receives the DTA phase timings
    /// (Phase::DtaEval / Phase::EventSimSettle) of the characterization —
    /// nothing is recorded on a CDF-cache hit, which is itself a useful
    /// signal in BENCH_core.json.
    explicit CharacterizedCore(CoreModelConfig config = {},
                               perf::PhaseProfile* profile = nullptr);

    const Alu& alu() const { return alu_; }
    const TimingLib& lib() const { return lib_; }
    const InstanceTiming& timing() const { return timing_; }
    const CalibrationResult& calibration() const { return calibration_; }
    const StaResult& sta() const { return sta_; }
    const std::shared_ptr<const TimingErrorCdfs>& cdfs() const { return cdfs_; }
    const CoreModelConfig& config() const { return config_; }
    /// core_config_fingerprint(config()).
    std::uint64_t fingerprint() const { return core_config_fingerprint(config_); }

    /// Design STA frequency limit (MHz) at a supply voltage — the "STA"
    /// marker of the paper's figures (707 MHz at 0.7 V by calibration).
    double sta_fmax_mhz(double vdd) const;

    /// Instruction-conditioned dynamic frequency limit: the highest f at
    /// which `cls` has zero error probability without noise, at `vdd`.
    double dynamic_fmax_mhz(ExClass cls, double vdd) const;

    // Fault-model factories (models keep references into this core; the
    // core must outlive them).
    std::unique_ptr<ModelA> make_model_a(double flip_probability) const;
    std::unique_ptr<ModelB> make_model_b() const;
    std::unique_ptr<ModelC> make_model_c() const;

private:
    CoreModelConfig config_;
    Alu alu_;
    TimingLib lib_;
    InstanceTiming timing_;
    CalibrationResult calibration_;
    StaResult sta_;
    std::shared_ptr<const TimingErrorCdfs> cdfs_;
};

}  // namespace sfi
