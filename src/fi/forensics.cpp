#include "fi/forensics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "perf/json_writer.hpp"
#include "util/csv.hpp"

namespace sfi {

const char* detector_family_name(std::uint8_t fate) {
    switch (fate) {
        case kRazorNone: return "none";
        case kRazorDetected:
        case kRazorEscaped: return "razor";
        case kCwcDetected:
        case kCwcEscaped: return "cwc";
        default: return "?";
    }
}

namespace {

/// Detector family ordinal used as the by_class_detector_ map key —
/// 0 none, 1 razor, 2 cwc (the map order fixes the artifact row order).
std::uint8_t detector_family_ordinal(std::uint8_t fate) {
    switch (fate) {
        case kRazorDetected:
        case kRazorEscaped: return 1;
        case kCwcDetected:
        case kCwcEscaped: return 2;
        default: return 0;
    }
}

const char* detector_family_ordinal_name(std::uint8_t ordinal) {
    switch (ordinal) {
        case 1: return "razor";
        case 2: return "cwc";
        default: return "none";
    }
}

}  // namespace

const char* outcome_class_name(OutcomeClass cls) {
    switch (cls) {
        case OutcomeClass::Masked: return "masked";
        case OutcomeClass::LatentCorrupt: return "latent_corrupt";
        case OutcomeClass::SDC: return "sdc";
        case OutcomeClass::Hang: return "hang";
        case OutcomeClass::Detected: return "detected";
        case OutcomeClass::kCount: break;
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Binary record stream
// ---------------------------------------------------------------------------

namespace {

void put_u16(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
    put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
    put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_u16(const unsigned char* p) {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
    return static_cast<std::uint32_t>(get_u16(p)) |
           (static_cast<std::uint32_t>(get_u16(p + 2)) << 16);
}

std::uint64_t get_u64(const unsigned char* p) {
    return static_cast<std::uint64_t>(get_u32(p)) |
           (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

void write_fault_records(std::ostream& os,
                         const std::vector<FaultRecord>& records) {
    // Serialized explicitly field by field (little-endian, no struct
    // padding) so the byte stream is host-layout-independent.
    std::string buffer;
    buffer.reserve(16 + records.size() * kFaultRecordBytes);
    buffer.append(kForensicMagic, 8);
    put_u32(buffer, static_cast<std::uint32_t>(kFaultRecordBytes));
    put_u32(buffer, static_cast<std::uint32_t>(records.size()));
    for (const FaultRecord& rec : records) {
        put_u32(buffer, rec.trial);
        put_u32(buffer, rec.point_id);
        put_u64(buffer, rec.cycle);
        put_u32(buffer, rec.pc);
        put_u16(buffer, rec.window);
        buffer.push_back(static_cast<char>(rec.op));
        buffer.push_back(static_cast<char>(rec.cls));
        buffer.push_back(static_cast<char>(rec.endpoint));
        buffer.push_back(static_cast<char>(rec.policy));
        buffer.push_back(static_cast<char>(rec.pre_bit));
        buffer.push_back(static_cast<char>(rec.post_bit));
        buffer.push_back(static_cast<char>(rec.razor));
        buffer.push_back(0);  // reserved (keeps the record size even)
    }
    os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
}

std::vector<FaultRecord> read_fault_records(std::istream& is) {
    char header[16];
    if (!is.read(header, sizeof(header)))
        throw std::runtime_error("fault records: truncated header");
    if (std::memcmp(header, kForensicMagic, 8) != 0)
        throw std::runtime_error("fault records: bad magic");
    const auto* h = reinterpret_cast<const unsigned char*>(header);
    const std::uint32_t record_size = get_u32(h + 8);
    const std::uint32_t count = get_u32(h + 12);
    if (record_size != kFaultRecordBytes)
        throw std::runtime_error("fault records: unexpected record size");
    std::vector<FaultRecord> records;
    records.reserve(count);
    unsigned char raw[kFaultRecordBytes];
    for (std::uint32_t i = 0; i < count; ++i) {
        if (!is.read(reinterpret_cast<char*>(raw), sizeof(raw)))
            throw std::runtime_error("fault records: truncated payload");
        FaultRecord rec;
        rec.trial = get_u32(raw);
        rec.point_id = get_u32(raw + 4);
        rec.cycle = get_u64(raw + 8);
        rec.pc = get_u32(raw + 16);
        rec.window = get_u16(raw + 20);
        rec.op = raw[22];
        rec.cls = raw[23];
        rec.endpoint = raw[24];
        rec.policy = raw[25];
        rec.pre_bit = raw[26];
        rec.post_bit = raw[27];
        rec.razor = raw[28];
        records.push_back(rec);
    }
    return records;
}

std::size_t latency_bucket(std::uint32_t latency_cycles) {
    if (latency_cycles == 0) return 0;
    std::size_t bucket = 1;
    while (bucket + 1 < kLatencyBuckets &&
           latency_cycles >= (1u << bucket))
        ++bucket;
    return bucket;
}

// ---------------------------------------------------------------------------
// ForensicSink
// ---------------------------------------------------------------------------

std::uint32_t ForensicSink::begin_point(std::string panel, std::string model,
                                        std::string kernel,
                                        const OperatingPoint& point) {
    ForensicPointInfo info;
    info.point_id = static_cast<std::uint32_t>(points_.size());
    info.panel = std::move(panel);
    info.model = std::move(model);
    info.kernel = std::move(kernel);
    info.freq_mhz = point.freq_mhz;
    info.vdd = point.vdd;
    info.sigma_mv = point.noise.sigma_mv;
    points_.push_back(std::move(info));
    return points_.back().point_id;
}

void ForensicSink::add_trial(std::uint32_t point_id, OutcomeClass cls,
                             bool finished, bool correct,
                             std::uint32_t razor_detected,
                             std::uint32_t razor_escaped,
                             std::vector<FaultRecord> records,
                             const std::vector<std::uint32_t>& latencies) {
    ForensicPointInfo& info = points_.at(point_id);
    ++info.trials_sampled;
    ++trials_recorded_;
    if (finished) ++info.finished;
    if (correct) ++info.correct;
    ++info.outcomes[static_cast<std::size_t>(cls)];
    info.injections += records.size();
    info.razor_detected += razor_detected;
    info.razor_escaped += razor_escaped;

    // Derating attribution: one trial counts once per distinct key it
    // injected into, regardless of how many records share the key.
    const bool sdc = cls == OutcomeClass::SDC;
    const auto fold = [sdc](auto& map, auto key, std::uint64_t injections) {
        KeyTally& tally = map[key];
        tally.injections += injections;
        ++tally.trials;
        if (sdc) ++tally.sdc_trials;
    };
    std::map<std::uint8_t, std::uint64_t> cls_seen, bit_seen;
    std::map<std::uint32_t, std::uint64_t> pc_seen;
    std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint64_t>
        cls_detector_seen;
    for (FaultRecord& rec : records) {
        rec.point_id = point_id;
        ++cls_seen[rec.cls];
        ++bit_seen[rec.endpoint];
        ++pc_seen[rec.pc];
        ++cls_detector_seen[{rec.cls, detector_family_ordinal(rec.razor)}];
    }
    for (const auto& [key, n] : cls_seen) fold(by_class_, key, n);
    for (const auto& [key, n] : bit_seen) fold(by_bit_, key, n);
    for (const auto& [key, n] : pc_seen) fold(by_pc_, key, n);
    for (const auto& [key, n] : cls_detector_seen)
        fold(by_class_detector_, key, n);
    for (const std::uint32_t latency : latencies) {
        ++latency_hist_[latency_bucket(latency)];
        ++detections_;
    }
    records_.insert(records_.end(), records.begin(), records.end());
}

VulnerabilityReport ForensicSink::report() const {
    VulnerabilityReport report;
    for (const auto& [cls, tally] : by_class_)
        report.by_class.push_back(
            {ex_class_name(static_cast<ExClass>(cls)), tally.injections,
             tally.trials, tally.sdc_trials});
    for (const auto& [bit, tally] : by_bit_)
        report.by_bit.push_back({"bit" + std::to_string(bit), tally.injections,
                                 tally.trials, tally.sdc_trials});
    for (const auto& [pc, tally] : by_pc_) {
        char name[16];
        std::snprintf(name, sizeof(name), "0x%08x", pc);
        report.by_pc.push_back(
            {name, tally.injections, tally.trials, tally.sdc_trials});
    }
    // Hotspot ranking: injections descending, PC ascending on ties (the
    // map order) — stable_sort keeps it deterministic.
    std::stable_sort(report.by_pc.begin(), report.by_pc.end(),
                     [](const auto& lhs, const auto& rhs) {
                         return lhs.injections > rhs.injections;
                     });
    for (const auto& [key, tally] : by_class_detector_)
        report.by_class_detector.push_back(
            {ex_class_name(static_cast<ExClass>(key.first)),
             detector_family_ordinal_name(key.second), tally.injections,
             tally.trials, tally.sdc_trials});
    report.detection_latency_hist = latency_hist_;
    report.detections = detections_;
    return report;
}

void ForensicSink::write_records(std::ostream& os) const {
    write_fault_records(os, records_);
}

namespace {

void write_derating_csv(const std::string& path, const std::string& key_column,
                        const std::vector<VulnerabilityReport::DeratingRow>& rows) {
    CsvWriter csv(path);
    csv.header({key_column, "injections", "trials", "sdc_trials",
                "sdc_derating"});
    for (const auto& row : rows) {
        csv.cell(row.key)
            .cell(row.injections)
            .cell(row.trials)
            .cell(row.sdc_trials)
            .cell(row.sdc_derating());
        csv.end_row();
    }
    csv.close();
}

}  // namespace

void ForensicSink::write_artifacts(const std::string& dir) const {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // ok if it exists

    const std::string records_path = dir + "/records.bin";
    {
        std::ofstream os(records_path, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("forensics: cannot write " + records_path);
        write_records(os);
        os.flush();
        if (!os)
            throw std::runtime_error("forensics: write to " + records_path +
                                     " failed");
    }

    const VulnerabilityReport rep = report();

    const std::string json_path = dir + "/forensics.json";
    {
        std::ofstream os(json_path, std::ios::trunc);
        if (!os)
            throw std::runtime_error("forensics: cannot write " + json_path);
        perf::JsonWriter json(os);
        json.begin_object();
        json.field("schema", "sfi-forensics");
        json.field("version", 1);
        json.field("record_count", static_cast<std::uint64_t>(records_.size()));
        json.field("trials", trials_recorded_);
        json.key("points");
        json.begin_array();
        for (const ForensicPointInfo& info : points_) {
            json.begin_object();
            json.field("point_id", static_cast<std::uint64_t>(info.point_id));
            json.field("panel", info.panel);
            json.field("model", info.model);
            json.field("kernel", info.kernel);
            json.field("freq_mhz", info.freq_mhz);
            json.field("vdd", info.vdd);
            json.field("sigma_mv", info.sigma_mv);
            json.field("trials_sampled", info.trials_sampled);
            json.field("finished", info.finished);
            json.field("correct", info.correct);
            json.key("outcomes");
            json.begin_object();
            for (std::size_t i = 0; i < kOutcomeClassCount; ++i)
                json.field(outcome_class_name(static_cast<OutcomeClass>(i)),
                           info.outcomes[i]);
            json.end_object();
            json.field("injections", info.injections);
            json.field("razor_detected", info.razor_detected);
            json.field("razor_escaped", info.razor_escaped);
            json.end_object();
        }
        json.end_array();
        json.key("report");
        json.begin_object();
        const auto emit_rows =
            [&json](const char* name,
                    const std::vector<VulnerabilityReport::DeratingRow>& rows) {
                json.key(name);
                json.begin_array();
                for (const auto& row : rows) {
                    json.begin_object();
                    json.field("key", row.key);
                    json.field("injections", row.injections);
                    json.field("trials", row.trials);
                    json.field("sdc_trials", row.sdc_trials);
                    json.field("sdc_derating", row.sdc_derating());
                    json.end_object();
                }
                json.end_array();
            };
        emit_rows("by_class", rep.by_class);
        emit_rows("by_bit", rep.by_bit);
        emit_rows("by_pc", rep.by_pc);
        json.key("by_class_detector");
        json.begin_array();
        for (const auto& row : rep.by_class_detector) {
            json.begin_object();
            json.field("ex_class", row.ex_class);
            json.field("detector", row.detector);
            json.field("injections", row.injections);
            json.field("trials", row.trials);
            json.field("sdc_trials", row.sdc_trials);
            json.field("sdc_derating", row.sdc_derating());
            json.end_object();
        }
        json.end_array();
        json.field("detections", rep.detections);
        json.key("detection_latency_hist");
        json.begin_array();
        for (const std::uint64_t count : rep.detection_latency_hist)
            json.value(count);
        json.end_array();
        json.end_object();
        json.end_object();
        os << "\n";
        os.flush();
        if (!os)
            throw std::runtime_error("forensics: write to " + json_path +
                                     " failed");
    }

    {
        CsvWriter csv(dir + "/forensics_points.csv");
        std::vector<std::string> columns = {
            "panel",   "model",    "kernel",  "point_id", "freq_mhz",
            "vdd",     "sigma_mv", "trials",  "finished", "correct"};
        for (std::size_t i = 0; i < kOutcomeClassCount; ++i)
            columns.push_back(outcome_class_name(static_cast<OutcomeClass>(i)));
        columns.insert(columns.end(),
                       {"injections", "razor_detected", "razor_escaped"});
        csv.header(columns);
        for (const ForensicPointInfo& info : points_) {
            csv.cell(info.panel)
                .cell(info.model)
                .cell(info.kernel)
                .cell(static_cast<std::uint64_t>(info.point_id))
                .cell(info.freq_mhz)
                .cell(info.vdd)
                .cell(info.sigma_mv)
                .cell(info.trials_sampled)
                .cell(info.finished)
                .cell(info.correct);
            for (std::size_t i = 0; i < kOutcomeClassCount; ++i)
                csv.cell(info.outcomes[i]);
            csv.cell(info.injections)
                .cell(info.razor_detected)
                .cell(info.razor_escaped);
            csv.end_row();
        }
        csv.close();
    }

    write_derating_csv(dir + "/forensics_by_class.csv", "ex_class",
                       rep.by_class);
    write_derating_csv(dir + "/forensics_by_bit.csv", "bit", rep.by_bit);
    write_derating_csv(dir + "/forensics_by_pc.csv", "pc", rep.by_pc);

    {
        CsvWriter csv(dir + "/forensics_by_class_detector.csv");
        csv.header({"ex_class", "detector", "injections", "trials",
                    "sdc_trials", "sdc_derating"});
        for (const auto& row : rep.by_class_detector) {
            csv.cell(row.ex_class)
                .cell(row.detector)
                .cell(row.injections)
                .cell(row.trials)
                .cell(row.sdc_trials)
                .cell(row.sdc_derating());
            csv.end_row();
        }
        csv.close();
    }

    {
        CsvWriter csv(dir + "/forensics_latency.csv");
        csv.header({"bucket", "min_cycles", "max_cycles", "detections"});
        for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
            const std::uint64_t lo = i == 0 ? 0 : (1ull << (i - 1));
            const std::uint64_t hi = i == 0 ? 0 : (1ull << i) - 1;
            csv.cell(static_cast<std::uint64_t>(i))
                .cell(lo)
                .cell(hi)
                .cell(rep.detection_latency_hist[i]);
            csv.end_row();
        }
        csv.close();
    }
}

// ---------------------------------------------------------------------------
// forensics_points.csv reader (sfi_trace)
// ---------------------------------------------------------------------------

namespace {

/// Splits one CSV line with the quoting conventions of csv_escape
/// (fields containing separators/quotes are double-quote wrapped,
/// embedded quotes doubled).
std::vector<std::string> split_csv_line(const std::string& line) {
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field.push_back('"');
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field.push_back(c);
            }
        } else if (c == '"' && field.empty()) {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(std::move(field));
            field.clear();
        } else {
            field.push_back(c);
        }
    }
    fields.push_back(std::move(field));
    return fields;
}

}  // namespace

std::map<std::string, ForensicPanelTally> read_forensic_panel_tallies(
    const std::string& csv_path) {
    std::map<std::string, ForensicPanelTally> tallies;
    std::ifstream is(csv_path);
    if (!is) return tallies;
    std::string line;
    if (!std::getline(is, line)) return tallies;
    const std::vector<std::string> header = split_csv_line(line);
    const auto column = [&header](const std::string& name) -> std::ptrdiff_t {
        const auto it = std::find(header.begin(), header.end(), name);
        return it == header.end() ? -1 : it - header.begin();
    };
    const std::ptrdiff_t panel_col = column("panel");
    const std::ptrdiff_t trials_col = column("trials");
    std::array<std::ptrdiff_t, kOutcomeClassCount> class_col{};
    for (std::size_t i = 0; i < kOutcomeClassCount; ++i)
        class_col[i] = column(outcome_class_name(static_cast<OutcomeClass>(i)));
    if (panel_col < 0 || trials_col < 0) return tallies;
    const auto parse_u64 = [](const std::string& text) -> std::uint64_t {
        try {
            return std::stoull(text);
        } catch (const std::exception&) {
            return 0;
        }
    };
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_csv_line(line);
        if (static_cast<std::size_t>(panel_col) >= fields.size()) continue;
        ForensicPanelTally& tally = tallies[fields[panel_col]];
        if (static_cast<std::size_t>(trials_col) < fields.size())
            tally.trials += parse_u64(fields[trials_col]);
        for (std::size_t i = 0; i < kOutcomeClassCount; ++i) {
            const std::ptrdiff_t col = class_col[i];
            if (col >= 0 && static_cast<std::size_t>(col) < fields.size())
                tally.outcomes[i] += parse_u64(fields[col]);
        }
    }
    return tallies;
}

std::vector<ForensicPointRow> read_forensic_points(
    const std::string& csv_path) {
    std::vector<ForensicPointRow> rows;
    std::ifstream is(csv_path);
    if (!is) return rows;
    std::string line;
    if (!std::getline(is, line)) return rows;
    const std::vector<std::string> header = split_csv_line(line);
    const auto column = [&header](const std::string& name) -> std::ptrdiff_t {
        const auto it = std::find(header.begin(), header.end(), name);
        return it == header.end() ? -1 : it - header.begin();
    };
    const std::ptrdiff_t panel_col = column("panel");
    const std::ptrdiff_t model_col = column("model");
    const std::ptrdiff_t kernel_col = column("kernel");
    const std::ptrdiff_t id_col = column("point_id");
    const std::ptrdiff_t freq_col = column("freq_mhz");
    const std::ptrdiff_t vdd_col = column("vdd");
    const std::ptrdiff_t sigma_col = column("sigma_mv");
    const std::ptrdiff_t trials_col = column("trials");
    const std::ptrdiff_t finished_col = column("finished");
    const std::ptrdiff_t correct_col = column("correct");
    const std::ptrdiff_t injections_col = column("injections");
    const std::ptrdiff_t detected_col = column("razor_detected");
    const std::ptrdiff_t escaped_col = column("razor_escaped");
    if (panel_col < 0 || id_col < 0 || trials_col < 0) return rows;
    const auto cell = [](const std::vector<std::string>& fields,
                         std::ptrdiff_t col) -> std::string {
        return col >= 0 && static_cast<std::size_t>(col) < fields.size()
                   ? fields[col]
                   : std::string();
    };
    const auto parse_u64 = [](const std::string& text) -> std::uint64_t {
        try {
            return std::stoull(text);
        } catch (const std::exception&) {
            return 0;
        }
    };
    const auto parse_double = [](const std::string& text) -> double {
        try {
            return std::stod(text);
        } catch (const std::exception&) {
            return 0.0;
        }
    };
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_csv_line(line);
        ForensicPointRow row;
        row.panel = cell(fields, panel_col);
        row.model = cell(fields, model_col);
        row.kernel = cell(fields, kernel_col);
        row.point_id =
            static_cast<std::uint32_t>(parse_u64(cell(fields, id_col)));
        row.freq_mhz = parse_double(cell(fields, freq_col));
        row.vdd = parse_double(cell(fields, vdd_col));
        row.sigma_mv = parse_double(cell(fields, sigma_col));
        row.trials = parse_u64(cell(fields, trials_col));
        row.finished = parse_u64(cell(fields, finished_col));
        row.correct = parse_u64(cell(fields, correct_col));
        row.injections = parse_u64(cell(fields, injections_col));
        row.razor_detected = parse_u64(cell(fields, detected_col));
        row.razor_escaped = parse_u64(cell(fields, escaped_col));
        rows.push_back(std::move(row));
    }
    return rows;
}

}  // namespace sfi
