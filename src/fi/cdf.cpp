#include "fi/cdf.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <stdexcept>

namespace sfi {

namespace {
constexpr std::uint32_t kMagic = 0x53464943;  // "SFIC"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, const T& v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!is) throw std::runtime_error("TimingErrorCdfs: truncated stream");
    return v;
}
}  // namespace

TimingErrorCdfs TimingErrorCdfs::from_dta(const DtaResult& dta) {
    TimingErrorCdfs store;
    store.setup_ps_ = dta.setup_ps;
    store.samples_ = dta.cycles;
    for (const DtaClassResult& cls_result : dta.classes) {
        PerClass& pc = store.classes_.at(static_cast<std::size_t>(cls_result.cls));
        pc.present = true;
        pc.sorted_arrivals = cls_result.arrivals_ps;
        for (auto& samples : pc.sorted_arrivals)
            std::sort(samples.begin(), samples.end());
        store.endpoints_ =
            std::max(store.endpoints_, pc.sorted_arrivals.size());
    }
    store.rebuild_derived();
    return store;
}

void TimingErrorCdfs::rebuild_derived() {
    for (PerClass& pc : classes_) {
        if (!pc.present) continue;
        const std::size_t n = pc.sorted_arrivals.size();
        pc.max_window_ps.assign(n, 0.0);
        for (std::size_t e = 0; e < n; ++e)
            if (!pc.sorted_arrivals[e].empty())
                pc.max_window_ps[e] =
                    static_cast<double>(pc.sorted_arrivals[e].back()) + setup_ps_;
        pc.order.resize(n);
        std::iota(pc.order.begin(), pc.order.end(), 0u);
        std::sort(pc.order.begin(), pc.order.end(),
                  [&](std::uint32_t lhs, std::uint32_t rhs) {
                      return pc.max_window_ps[lhs] > pc.max_window_ps[rhs];
                  });
        pc.class_max_window_ps =
            n ? *std::max_element(pc.max_window_ps.begin(), pc.max_window_ps.end())
              : 0.0;
    }
}

const TimingErrorCdfs::PerClass& TimingErrorCdfs::per_class(ExClass cls) const {
    const PerClass& pc = classes_.at(static_cast<std::size_t>(cls));
    if (!pc.present)
        throw std::out_of_range(std::string("TimingErrorCdfs: class not characterized: ") +
                                ex_class_name(cls));
    return pc;
}

bool TimingErrorCdfs::has_class(ExClass cls) const {
    return classes_.at(static_cast<std::size_t>(cls)).present;
}

double TimingErrorCdfs::violation_prob(ExClass cls, std::size_t endpoint,
                                       double capture_window_ps) const {
    const PerClass& pc = per_class(cls);
    const auto& samples = pc.sorted_arrivals.at(endpoint);
    if (samples.empty()) return 0.0;
    const double threshold = capture_window_ps - setup_ps_;
    // Violated samples are those with arrival > threshold.
    const auto it = std::upper_bound(samples.begin(), samples.end(), threshold,
                                     [](double t, float s) {
                                         return t < static_cast<double>(s);
                                     });
    return static_cast<double>(samples.end() - it) /
           static_cast<double>(samples.size());
}

double TimingErrorCdfs::class_max_window_ps(ExClass cls) const {
    return per_class(cls).class_max_window_ps;
}

double TimingErrorCdfs::endpoint_max_window_ps(ExClass cls,
                                               std::size_t endpoint) const {
    return per_class(cls).max_window_ps.at(endpoint);
}

double TimingErrorCdfs::max_window_ps() const {
    double worst = 0.0;
    for (const PerClass& pc : classes_)
        if (pc.present) worst = std::max(worst, pc.class_max_window_ps);
    return worst;
}

const std::vector<std::uint32_t>& TimingErrorCdfs::endpoints_by_criticality(
    ExClass cls) const {
    return per_class(cls).order;
}

void TimingErrorCdfs::save(std::ostream& os) const {
    put(os, kMagic);
    put(os, kVersion);
    put(os, setup_ps_);
    put(os, static_cast<std::uint64_t>(endpoints_));
    put(os, static_cast<std::uint64_t>(samples_));
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        const PerClass& pc = classes_[c];
        put(os, static_cast<std::uint8_t>(pc.present));
        if (!pc.present) continue;
        put(os, static_cast<std::uint64_t>(pc.sorted_arrivals.size()));
        for (const auto& samples : pc.sorted_arrivals) {
            put(os, static_cast<std::uint64_t>(samples.size()));
            os.write(reinterpret_cast<const char*>(samples.data()),
                     static_cast<std::streamsize>(samples.size() * sizeof(float)));
        }
    }
}

TimingErrorCdfs TimingErrorCdfs::load(std::istream& is) {
    if (get<std::uint32_t>(is) != kMagic)
        throw std::runtime_error("TimingErrorCdfs: bad magic");
    if (get<std::uint32_t>(is) != kVersion)
        throw std::runtime_error("TimingErrorCdfs: unsupported version");
    TimingErrorCdfs store;
    store.setup_ps_ = get<double>(is);
    store.endpoints_ = static_cast<std::size_t>(get<std::uint64_t>(is));
    store.samples_ = static_cast<std::size_t>(get<std::uint64_t>(is));
    for (std::size_t c = 0; c < store.classes_.size(); ++c) {
        PerClass& pc = store.classes_[c];
        pc.present = get<std::uint8_t>(is) != 0;
        if (!pc.present) continue;
        const auto endpoints = get<std::uint64_t>(is);
        pc.sorted_arrivals.resize(endpoints);
        for (auto& samples : pc.sorted_arrivals) {
            const auto n = get<std::uint64_t>(is);
            samples.resize(n);
            is.read(reinterpret_cast<char*>(samples.data()),
                    static_cast<std::streamsize>(n * sizeof(float)));
            if (!is) throw std::runtime_error("TimingErrorCdfs: truncated samples");
        }
    }
    store.rebuild_derived();
    return store;
}

void TimingErrorCdfs::save_file(const std::string& path) const {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("TimingErrorCdfs: cannot write " + path);
    save(os);
}

TimingErrorCdfs TimingErrorCdfs::load_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("TimingErrorCdfs: cannot read " + path);
    return load(is);
}

bool TimingErrorCdfs::operator==(const TimingErrorCdfs& other) const {
    if (setup_ps_ != other.setup_ps_ || endpoints_ != other.endpoints_ ||
        samples_ != other.samples_)
        return false;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        if (classes_[c].present != other.classes_[c].present) return false;
        if (classes_[c].present &&
            classes_[c].sorted_arrivals != other.classes_[c].sorted_arrivals)
            return false;
    }
    return true;
}

}  // namespace sfi
