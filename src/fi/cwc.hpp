// Constant-weight-code (CWC) error detection on top of any fault model —
// the second mitigation family next to Razor replay (fi/mitigation.hpp),
// motivated by Sasidharan/Viterbo/Dau's low-complexity binary constant-
// Hamming-weight codes: encode each k-bit block of the EX result as an
// n-bit codeword of constant weight w, and flag a timing fault whenever
// the latched codeword's weight is off. Unlike Razor there is no shadow
// latch and no replay — detection is a cheap popcount check — but the
// code has genuine coverage holes: a violation that latches a *balanced*
// mix of old and new codeword bits preserves the weight and escapes.
//
// The detection math is exact and a-priori (no fitting):
//   * A k-bit data value x maps to enc(x), the x-th n-bit word of weight
//     w in lexicographic order (enumerative coding, Cover 1973). Two
//     codecs compute the same bijection: the table-driven enumerative
//     form and the sequential low-complexity scheme that updates one
//     binomial coefficient per bit (the Sasidharan paper's contribution);
//     tests hold them bit-equal over the full index space.
//   * When a timing fault corrupts a block from x to x', the d =
//     popcount(enc(x) ^ enc(x')) differing codeword bits each settle to
//     the old or the new value independently (the partial-capture model,
//     matching FaultPolicy semantics: some endpoints latch late). The
//     weight is preserved — the fault escapes — exactly when the captured
//     subset is balanced between the d/2 rising and d/2 falling bits, so
//     P(escape) = C(d, d/2) / 2^d and P(detect) = 1 - C(d, d/2) / 2^d.
//   * Per corrupted op the per-block detection probabilities combine as
//     1 - prod_b P(escape_b), and the decorator resolves the verdict with
//     ONE deterministic rng_.chance() draw.
//
// cwc_coverage_table() averages the same formula over every operand pair
// of a small-width ALU-result distribution, giving the exact per-
// (ExClass, bit) single-bit-flip coverage that scripts/check_cwc.py
// re-derives independently by brute force. docs/MITIGATIONS.md has the
// full derivation and the overhead model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fi/mitigation.hpp"
#include "fi/models.hpp"

namespace sfi {

/// Binomial coefficient C(n, r) in exact 64-bit arithmetic (n <= 62 is
/// plenty for every code this library builds); r > n gives 0.
std::uint64_t cwc_binomial(unsigned n, unsigned r);

/// Code geometry for one protected block: k data bits carried by n-bit
/// codewords of constant Hamming weight w.
struct CwcCode {
    unsigned k = 8;   ///< data bits per block
    unsigned n = 11;  ///< codeword bits
    unsigned w = 5;   ///< codeword weight

    /// Number of weight-w words, C(n, w) — the code's index space.
    std::uint64_t codewords() const { return cwc_binomial(n, w); }

    /// Smallest code carrying k data bits: the least n with
    /// C(n, floor(n/2)) >= 2^k, at the central weight w = floor(n/2)
    /// (k = 4 -> (6, 3), k = 8 -> (11, 5), k = 16 -> (19, 9)).
    /// Throws std::invalid_argument unless 1 <= k <= 16 and k divides 32.
    static CwcCode for_block_bits(unsigned k);
};

/// Enumerative (lexicographic) unranking: data index in [0, C(n, w)) to
/// the index-th n-bit word of weight w, bit strings ordered MSB-first.
/// Table/recomputation-driven reference form.
std::uint64_t cwc_encode_enumerative(const CwcCode& code, std::uint64_t index);

/// Inverse of cwc_encode_enumerative (ranking). `word` must have weight w.
std::uint64_t cwc_decode_enumerative(const CwcCode& code, std::uint64_t word);

/// The low-complexity sequential scheme: the same bijection computed with
/// one multiplicative binomial update per bit position instead of a
/// binomial evaluation per position. Bit-equal to the enumerative form
/// over the whole index space (tests/fi/test_cwc.cpp).
std::uint64_t cwc_encode_sequential(const CwcCode& code, std::uint64_t index);

/// Inverse of cwc_encode_sequential.
std::uint64_t cwc_decode_sequential(const CwcCode& code, std::uint64_t word);

/// P(escape) of one corrupted block whose correct and corrupted codewords
/// differ in `code_distance` bits: C(d, d/2) / 2^d under the partial-
/// capture model (balanced subsets preserve the weight). d = 0 returns
/// 1.0 (nothing to detect); d is even for any constant-weight pair.
double cwc_block_escape_probability(unsigned code_distance);

/// P(detect) for one corrupted EX result: the 32-bit values are split
/// into 32/k blocks and the per-block escape probabilities multiply,
/// detect = 1 - prod. Returns 0.0 when correct == corrupted.
double cwc_detect_probability(const CwcCode& code, std::uint32_t correct,
                              std::uint32_t corrupted);

/// Exact a-priori single-bit-flip coverage of one (ExClass, result-bit)
/// pair: the mean of cwc_detect_probability(r, r ^ (1 << bit)) over the
/// ALU results r = alu_result(cls, a, b) of ALL operand pairs (a, b) in
/// [0, 2^operand_bits)^2 — the weight-violation detection derivation,
/// brute-force checkable because the operand space is enumerated, not
/// sampled.
struct CwcCoverageRow {
    ExClass cls = ExClass::Add;
    unsigned bit = 0;        ///< result bit position flipped (0..31)
    double coverage = 0.0;   ///< mean P(detect) over the operand space
};

/// Rows for every ALU class (Add..Cmp) x bit (0..31), class-major and
/// bit-ascending. `operand_bits` must be small (<= 8: the enumeration is
/// 4^operand_bits result evaluations per class).
std::vector<CwcCoverageRow> cwc_coverage_table(const CwcCode& code,
                                               unsigned operand_bits);

/// Writes the coverage table as CSV (columns: block_bits, code_n, code_w,
/// operand_bits, ex_class, bit, coverage) — the artifact
/// scripts/check_cwc.py validates against its own brute-force
/// enumeration. Throws std::runtime_error on I/O failure.
void write_cwc_coverage_csv(const std::string& path, const CwcCode& code,
                            unsigned operand_bits);

/// Knobs of the CWC detection stage.
struct CwcConfig {
    unsigned block_bits = 8;  ///< k; must divide 32 (CwcCode::for_block_bits)
    /// Pipeline stall per detection — the corrupted result is recomputed
    /// at a relaxed (checker) path, not replayed through the pipeline, so
    /// this is a fraction of Razor's 11-cycle replay.
    unsigned recovery_penalty_cycles = 2;
    /// Encode/decode logic in series with the EX stage lengthens the
    /// critical path: the effective clock is f / (1 + frac). <= 0 derives
    /// the default 0.01 * (n - k) — one percent per check bit.
    double latency_overhead_frac = 0.0;
    /// Switching energy of the widened (n-bit) datapath per protected
    /// k-bit block. <= 0 derives the default 0.5 * (n - k) / k.
    double energy_overhead_frac = 0.0;
};

/// CWC detection decorator: mirrors ErrorDetectionModel's contract (deep
/// clone with counter carry-over, lock-step reseed of the inner model on
/// a distinct stream, forwarded sampling mode / clean-op credit / shared
/// forensic probe, delegated reachability), but the per-corruption
/// verdict is drawn from the exact code-domain detection probability
/// instead of a flat coverage knob, and detections cost recovery stalls
/// plus a static clock-rate penalty instead of replay cycles.
class CwcDetectionModel final : public DetectionModel {
public:
    CwcDetectionModel(std::unique_ptr<FaultModel> inner, CwcConfig config);

    std::string name() const override {
        return "cwc" + std::to_string(code_.k) + "(" + inner_->name() + ")";
    }
    ModelFeatures features() const override { return inner_->features(); }
    /// Deep copy: clones the inner fault model and carries the detection/
    /// escape counters over, like the Razor decorator.
    std::unique_ptr<FaultModel> clone() const override;

    const FaultModel& inner() const { return *inner_; }
    const CwcCode& code() const { return code_; }
    const CwcConfig& config() const { return config_; }

    std::uint64_t detected() const override { return detected_; }
    std::uint64_t escaped() const override { return escaped_; }
    void reset_mitigation_stats() override { detected_ = escaped_ = 0; }

    /// Extra cycles spent in recovery stalls on detections.
    std::uint64_t recovery_cycles() const {
        return detected_ * config_.recovery_penalty_cycles;
    }
    /// Effective static clock-rate cost of the codec in the EX critical
    /// path (resolved default when the config left it at "derive").
    double latency_overhead_frac() const { return latency_frac_; }
    /// Switching-energy overhead of the widened datapath (resolved).
    double energy_overhead_frac() const { return energy_frac_; }

    /// Throughput at clock `f_mhz`: the codec first derates the clock by
    /// 1 + latency_overhead_frac (paid always, faults or not), then the
    /// recovery stalls accumulated over `kernel_cycles` dilate the run
    /// like Razor's replay cycles do.
    double effective_mhz(double f_mhz,
                         std::uint64_t kernel_cycles) const override;

    /// Reseeds the verdict-draw stream and the inner fault model on a
    /// distinct stream (a different salt than Razor's, so razor(C) and
    /// cwc(C) decorating the same inner model draw independently).
    void reseed(std::uint64_t seed) override {
        FaultModel::reseed(seed);
        inner_->reseed(seed ^ 0x43574331ULL);  // "CWC1"
    }

    void set_sampling_mode(FaultSamplingMode mode) override {
        FaultModel::set_sampling_mode(mode);
        inner_->set_sampling_mode(mode);
    }

    /// Weight checks only react to inner injections, so reachability is
    /// the inner model's (arms the zero-fault trial fast path).
    bool can_inject() const override { return inner_->can_inject(); }

    void count_clean_ops(std::uint64_t n) override {
        FaultModel::count_clean_ops(n);
        inner_->count_clean_ops(n);
    }

    /// Shared with the inner model, exactly like the Razor decorator: the
    /// inner corrupt() records injections, this decorator stamps the CWC
    /// verdict (fates kCwcDetected / kCwcEscaped) onto those records.
    void set_forensic_probe(ForensicProbe* probe) override {
        FaultModel::set_forensic_probe(probe);
        inner_->set_forensic_probe(probe);
    }

protected:
    std::uint32_t corrupt(const ExEvent& ev, std::uint32_t correct) override;
    void operating_point_changed() override;

private:
    CwcDetectionModel(const CwcDetectionModel& other);

    std::unique_ptr<FaultModel> inner_;
    CwcConfig config_;
    CwcCode code_;
    double latency_frac_ = 0.0;
    double energy_frac_ = 0.0;
    std::uint64_t detected_ = 0;
    std::uint64_t escaped_ = 0;
};

}  // namespace sfi
