// Timing-error-probability CDF store: the interface between dynamic
// timing analysis (characterization time) and fault model C (simulation
// time).
//
// For every (instruction class, endpoint) pair the store keeps the sorted
// per-cycle arrival-time samples of the DTA characterization kernel, all
// at the reference voltage. The probability that instruction I violates
// endpoint E at clock frequency f, supply voltage V and per-cycle noise n
// is evaluated as
//     P = fraction of samples with  arrival + setup > window,
//     window = (1/f) / delay_factor(V + n)
// i.e. all operating-point and noise dependence is folded into a single
// capture-window scaling, exactly the "CDF scaling-factor" of Fig. 3.
// (Under the paper's own approximation that path delays scale uniformly
// with voltage, this is equivalent to re-characterizing at each voltage.)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "timing/dta.hpp"

namespace sfi {

class TimingErrorCdfs {
public:
    TimingErrorCdfs() = default;

    /// Builds the store from a DTA characterization result.
    static TimingErrorCdfs from_dta(const DtaResult& dta);

    /// True if `cls` was characterized.
    bool has_class(ExClass cls) const;

    std::size_t endpoint_count() const { return endpoints_; }
    double setup_ps() const { return setup_ps_; }
    std::size_t samples_per_endpoint() const { return samples_; }

    /// P[arrival + setup > capture_window_ps] for one endpoint.
    double violation_prob(ExClass cls, std::size_t endpoint,
                          double capture_window_ps) const;

    /// Worst arrival + setup over all endpoints of `cls` (ps @ Vref):
    /// the class is error-free whenever the capture window exceeds this.
    double class_max_window_ps(ExClass cls) const;
    /// Worst arrival + setup for one endpoint of `cls`.
    double endpoint_max_window_ps(ExClass cls, std::size_t endpoint) const;
    /// Worst over all classes.
    double max_window_ps() const;

    /// Endpoint indices of `cls` sorted by decreasing max window — the
    /// fault models walk this list and stop at the first safe endpoint.
    const std::vector<std::uint32_t>& endpoints_by_criticality(ExClass cls) const;

    // ---- persistence (binary, versioned) --------------------------------
    void save(std::ostream& os) const;
    static TimingErrorCdfs load(std::istream& is);
    void save_file(const std::string& path) const;
    static TimingErrorCdfs load_file(const std::string& path);

    bool operator==(const TimingErrorCdfs& other) const;

private:
    struct PerClass {
        bool present = false;
        std::vector<std::vector<float>> sorted_arrivals;  // [endpoint][sample]
        std::vector<double> max_window_ps;                // per endpoint
        std::vector<std::uint32_t> order;                 // endpoints by criticality
        double class_max_window_ps = 0.0;
    };

    const PerClass& per_class(ExClass cls) const;
    void rebuild_derived();

    std::vector<PerClass> classes_{kExClassCount};
    std::size_t endpoints_ = 0;
    std::size_t samples_ = 0;
    double setup_ps_ = 0.0;
};

}  // namespace sfi
