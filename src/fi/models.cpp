#include "fi/models.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "fi/forensics.hpp"

namespace sfi {

// ---------------------------------------------------------------------------
// FaultModel base
// ---------------------------------------------------------------------------

void FaultModel::set_operating_point(const OperatingPoint& point) {
    // Hot-path memoization: run_trial_with re-applies the same point once
    // per trial; rebuilding the derived state (noise-window tables, ~1k
    // Vdd-fit evaluations) only when the point actually moves keeps that
    // out of the trial kernel. Derived state is a pure function of
    // (point_, const characterization data), so skipping is exact.
    if (point_applied_ && point == point_) return;
    point_ = point;
    point_applied_ = true;
    operating_point_changed();
}

void FaultModel::on_cycle(bool fi_active) {
    if (fi_active) ++stats_.fi_cycles;
}

void FaultModel::on_cycles(std::uint64_t n, bool fi_active) {
    if (fi_active) stats_.fi_cycles += n;
}

std::uint32_t FaultModel::on_ex_result(const ExEvent& ev, std::uint32_t correct) {
    ++stats_.alu_ops;
    if (probe_ != nullptr) probe_->begin_op(ev);
    const std::uint64_t before = stats_.injections;
    const std::uint32_t result = corrupt(ev, correct);
    if (stats_.injections != before) ++stats_.corrupted_ops;
    return result;
}

std::uint32_t FaultModel::apply_fault(std::uint32_t value, std::uint32_t endpoint,
                                      std::uint32_t prev_result) {
    ++stats_.injections;
    const std::uint32_t mask = 1u << endpoint;
    std::uint32_t result = value;
    switch (policy_) {
        case FaultPolicy::BitFlip:
            result = value ^ mask;
            break;
        case FaultPolicy::StaleCapture:
            result = (value & ~mask) | (prev_result & mask);
            break;
    }
    if (probe_ != nullptr)
        probe_->record_injection(endpoint, (value & mask) != 0,
                                 (result & mask) != 0, policy_);
    return result;
}

std::vector<double> build_noise_window_table(const OperatingPoint& point,
                                             const VddDelayFit& fit,
                                             std::size_t entries) {
    assert(entries >= 2);
    const double clip_v = point.noise.clip_sigmas * point.noise.sigma_mv * 1e-3;
    std::vector<double> table(entries);
    const double period = point.period_ps();
    for (std::size_t i = 0; i < entries; ++i) {
        const double noise =
            -clip_v + 2.0 * clip_v * static_cast<double>(i) /
                          static_cast<double>(entries - 1);
        table[i] = period / fit.factor(point.vdd + noise);
    }
    return table;
}

std::size_t noise_table_index(const OperatingPoint& point, double noise_v,
                              std::size_t entries) {
    const double clip_v = point.noise.clip_sigmas * point.noise.sigma_mv * 1e-3;
    return noise_table_index(clip_v, noise_v, entries);
}

std::size_t noise_table_index(double clip_v, double noise_v,
                              std::size_t entries) {
    if (clip_v <= 0.0) return entries / 2;
    const double t = (noise_v + clip_v) / (2.0 * clip_v);
    const auto idx = static_cast<std::ptrdiff_t>(
        t * static_cast<double>(entries - 1) + 0.5);
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(entries) - 1));
}

// ---------------------------------------------------------------------------
// Model A
// ---------------------------------------------------------------------------

ModelA::ModelA(double flip_probability) : p_(flip_probability) {
    if (p_ < 0.0 || p_ > 1.0)
        throw std::invalid_argument("ModelA: probability out of range");
}

ModelFeatures ModelA::features() const {
    return {"fixed probability", "none", false, false, "no", false};
}

std::uint32_t ModelA::corrupt(const ExEvent& ev, std::uint32_t correct) {
    std::uint32_t result = correct;
    for (std::uint32_t endpoint = 0; endpoint < 32; ++endpoint)
        if (rng_.chance(p_))
            result = apply_fault(result, endpoint, ev.prev_result);
    return result;
}

// ---------------------------------------------------------------------------
// Models B / B+
// ---------------------------------------------------------------------------

ModelB::ModelB(StaResult sta, const VddDelayFit& fit)
    : sta_(std::move(sta)), fit_(&fit) {
    window_ps_.resize(sta_.endpoint_ps.size());
    for (std::size_t e = 0; e < window_ps_.size(); ++e)
        window_ps_[e] = sta_.endpoint_ps[e] + sta_.setup_ps;
    order_.resize(window_ps_.size());
    std::iota(order_.begin(), order_.end(), 0u);
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t lhs, std::uint32_t rhs) {
                  return window_ps_[lhs] > window_ps_[rhs];
              });
    max_window_ps_ =
        window_ps_.empty() ? 0.0
                           : *std::max_element(window_ps_.begin(), window_ps_.end());
    // Cumulative fault masks for the batched path: cum_mask_[k] is the
    // union of the first k (most critical) endpoints of order_. The
    // endpoints are distinct bits, so applying them one at a time —
    // XOR-flipping or stale-capturing each — equals one masked apply.
    assert(order_.size() <= 255);  // violation counts live in uint8_t
    cum_mask_.resize(order_.size() + 1);
    cum_mask_[0] = 0;
    for (std::size_t k = 0; k < order_.size(); ++k)
        cum_mask_[k + 1] = cum_mask_[k] | (1u << order_[k]);
    operating_point_changed();
}

std::string ModelB::name() const {
    if (point_.noise.sigma_mv <= 0.0) return "B";
    // The alias-sampled variant is a statistically-equivalent but not
    // bit-identical stream; it is reported (and fingerprinted) as its
    // own model so stored results never mix with exact B+ runs.
    return sampling_mode_ == FaultSamplingMode::Quantized ? "B-q" : "B+";
}

ModelFeatures ModelB::features() const {
    if (point_.noise.sigma_mv > 0.0)
        return {"modulated period violation", "STA", true, true, "partially", false};
    return {"fixed period violation", "STA", true, false, "partially", false};
}

void ModelB::operating_point_changed() {
    base_window_ps_ = point_.period_ps() / fit_->factor(point_.vdd);
    noise_window_table_ = point_.noise.sigma_mv > 0.0
                              ? build_noise_window_table(point_, *fit_)
                              : std::vector<double>{};
    noise_clip_v_ = point_.noise.clip_sigmas * point_.noise.sigma_mv * 1e-3;
    min_window_ps_ =
        noise_window_table_.empty()
            ? base_window_ps_
            : *std::min_element(noise_window_table_.begin(),
                                noise_window_table_.end());
    vdd_noise_ = VddNoise(point_.noise);
    // Violation-count tables for the batched path: for every window the
    // model can ever see (each table entry, plus the no-noise window) the
    // number of injected endpoints is a pure function of the window — the
    // count of leading order_ entries with window_ps_ > window, exactly
    // the scalar loop's break condition. Precomputing it turns a batched
    // corrupt() into one count load and one cum_mask_ apply.
    const auto leading_violations = [&](double window) {
        std::uint8_t count = 0;
        for (const std::uint32_t endpoint : order_) {
            if (window_ps_[endpoint] <= window) break;
            ++count;
        }
        return count;
    };
    base_violation_count_ = leading_violations(base_window_ps_);
    violation_count_.resize(noise_window_table_.size());
    for (std::size_t i = 0; i < noise_window_table_.size(); ++i)
        violation_count_[i] = leading_violations(noise_window_table_[i]);
    refresh_sampling();
}

void ModelB::refresh_sampling() {
    // clip_mv / clip_v are spelled with VddNoise::draw's and max_abs_v()'s
    // own expressions so the batch's conversion constants are bitwise the
    // scalar path's.
    batch_.configure(point_.noise.sigma_mv,
                     point_.noise.clip_sigmas * point_.noise.sigma_mv,
                     noise_clip_v_, noise_window_table_.size(),
                     sampling_mode_);
    // B-q's sampler: the window index only ever feeds violation_count_,
    // so quantized mode aliases the pushforward of the index masses
    // through that table and samples the count directly — a <= 33-entry
    // L1-resident table instead of a 1025-entry index alias.
    count_alias_ = AliasTable{};
    if (sampling_mode_ == FaultSamplingMode::Quantized &&
        !noise_window_table_.empty()) {
        const std::vector<double> masses = noise_index_masses(
            point_.noise.sigma_mv,
            point_.noise.clip_sigmas * point_.noise.sigma_mv,
            noise_window_table_.size());
        if (!masses.empty()) {
            std::vector<double> count_mass(order_.size() + 1, 0.0);
            for (std::size_t i = 0; i < masses.size(); ++i)
                count_mass[violation_count_[i]] += masses[i];
            count_alias_ = build_alias_from_masses(count_mass);
        }
    }
}

bool ModelB::can_inject() const {
    // corrupt() injects iff the drawn window undercuts the worst endpoint;
    // min_window_ps_ is the smallest window any draw can produce (the
    // quantized table is the full range of values corrupt() ever sees), so
    // this test is exact, not just conservative.
    return max_window_ps_ > min_window_ps_;
}

double ModelB::first_fault_frequency_mhz() const {
    // Worst case: maximum clipped negative noise excursion.
    const double clip_v = point_.noise.clip_sigmas * point_.noise.sigma_mv * 1e-3;
    const double factor = fit_->factor(point_.vdd - clip_v);
    // Violation when period / factor < max_window  =>  f > 1e6/(window*factor).
    return 1.0e6 / (max_window_ps_ * factor);
}

std::uint32_t ModelB::corrupt(const ExEvent& ev, std::uint32_t correct) {
    if (sampling_mode_ == FaultSamplingMode::Scalar) {
        // Reference path: one noise draw, table lookup and per-endpoint
        // walk per op. The batched path below is proven bit-identical to
        // this by the differential suite (tests/fi, tests/mc).
        double window = base_window_ps_;
        if (!noise_window_table_.empty()) {
            const double n = vdd_noise_.draw(rng_);
            window = noise_window_table_[noise_table_index(
                noise_clip_v_, n, noise_window_table_.size())];
        }
        if (max_window_ps_ <= window) return correct;  // whole stage safe
        std::uint32_t result = correct;
        for (const std::uint32_t endpoint : order_) {
            if (window_ps_[endpoint] <= window) break;  // sorted: rest are safe
            result = apply_fault(result, endpoint, ev.prev_result);
        }
        return result;
    }
    // Batched/quantized path: the window never leaves integer space — the
    // precomputed violation count selects a cumulative mask that applies
    // all violating endpoints at once. Batched draws the count through a
    // prefetched (bit-identical) table index; quantized samples it
    // directly from the count alias (2 raw u64 draws, not bit-identical:
    // the "B-q" variant).
    std::size_t count;
    if (noise_window_table_.empty())
        count = base_violation_count_;
    else if (sampling_mode_ == FaultSamplingMode::Quantized)
        count = count_alias_.sample(rng_);
    else
        count = violation_count_[batch_.next_index(rng_)];
    if (count == 0) return correct;
    return apply_leading_faults(count, correct, ev.prev_result);
}

std::uint32_t ModelB::apply_leading_faults(std::size_t count,
                                           std::uint32_t correct,
                                           std::uint32_t prev_result) {
    // Equivalent to `count` successive apply_fault calls on the leading
    // endpoints of order_: the endpoints are distinct bits, so BitFlip
    // XORs compose into one XOR of the union mask and StaleCapture's
    // per-bit splice composes into one masked merge.
    if (probe_ != nullptr) {
        // Forensics needs one record per endpoint, so a probed trial takes
        // the per-endpoint walk the mask apply composes from. Same result,
        // same statistics, no draws consumed either way — the probed trial
        // stays bit-identical to the unprobed one.
        std::uint32_t result = correct;
        for (std::size_t k = 0; k < count; ++k)
            result = apply_fault(result, order_[k], prev_result);
        return result;
    }
    stats_.injections += count;
    const std::uint32_t mask = cum_mask_[count];
    switch (policy_) {
        case FaultPolicy::BitFlip:
            return correct ^ mask;
        case FaultPolicy::StaleCapture:
            return (correct & ~mask) | (prev_result & mask);
    }
    return correct;
}

// ---------------------------------------------------------------------------
// Model C
// ---------------------------------------------------------------------------

ModelC::ModelC(std::shared_ptr<const TimingErrorCdfs> cdfs, const VddDelayFit& fit)
    : cdfs_(std::move(cdfs)), fit_(&fit) {
    if (!cdfs_) throw std::invalid_argument("ModelC: null CDF store");
    operating_point_changed();
}

ModelFeatures ModelC::features() const {
    return {"probabilistic period violation (using CDFs)", "DTA", true, true,
            "yes", true};
}

void ModelC::operating_point_changed() {
    base_window_ps_ = point_.period_ps() / fit_->factor(point_.vdd);
    noise_window_table_ = point_.noise.sigma_mv > 0.0
                              ? build_noise_window_table(point_, *fit_)
                              : std::vector<double>{};
    noise_clip_v_ = point_.noise.clip_sigmas * point_.noise.sigma_mv * 1e-3;
    min_window_ps_ =
        noise_window_table_.empty()
            ? base_window_ps_
            : *std::min_element(noise_window_table_.begin(),
                                noise_window_table_.end());
    vdd_noise_ = VddNoise(point_.noise);
    // Hoist the per-class store lookups: corrupt() runs once per ALU op,
    // and the store is immutable, so resolve the class dispatch to plain
    // array loads here. (Rebuilt per point only because this hook is the
    // one refresh point; the views themselves are point-independent.)
    for (std::size_t i = 0; i < kExClassCount; ++i) {
        const ExClass cls = static_cast<ExClass>(i);
        ClassView& view = class_view_[i];
        view.present = cdfs_->has_class(cls);
        if (view.present) {
            view.max_window_ps = cdfs_->class_max_window_ps(cls);
            view.order = &cdfs_->endpoints_by_criticality(cls);
        }
    }
    refresh_sampling();
}

void ModelC::refresh_sampling() {
    batch_.configure(point_.noise.sigma_mv,
                     point_.noise.clip_sigmas * point_.noise.sigma_mv,
                     noise_clip_v_, noise_window_table_.size(),
                     sampling_mode_);
}

bool ModelC::can_inject() const {
    // Conservative over instruction classes (the trial's mix is unknown):
    // reachable iff the worst class's worst arrival beats the smallest
    // drawable window. Per class the test is exact, like ModelB's.
    return cdfs_->max_window_ps() > min_window_ps_;
}

double ModelC::first_fault_frequency_mhz(ExClass cls) const {
    const double clip_v = point_.noise.clip_sigmas * point_.noise.sigma_mv * 1e-3;
    const double factor = fit_->factor(point_.vdd - clip_v);
    return 1.0e6 / (cdfs_->class_max_window_ps(cls) * factor);
}

std::uint32_t ModelC::corrupt(const ExEvent& ev, std::uint32_t correct) {
    // Step 1 (Fig. 3): derive the capture window at Vref from clock
    // frequency, supply voltage and this cycle's noise draw — taken from
    // the prefetched index batch unless in scalar reference mode.
    double window = base_window_ps_;
    bool batched_draw = false;
    if (!noise_window_table_.empty()) {
        if (sampling_mode_ == FaultSamplingMode::Scalar) {
            const double n = vdd_noise_.draw(rng_);
            window = noise_window_table_[noise_table_index(
                noise_clip_v_, n, noise_window_table_.size())];
        } else {
            window = noise_window_table_[batch_.next_index(rng_)];
            batched_draw = true;
        }
    }
    // Step 2+3: evaluate the instruction's endpoint CDFs at the scaled
    // window and inject per-endpoint Bernoulli faults. The class dispatch
    // goes through the hoisted views (operating_point_changed), not the
    // store's checked accessors.
    const ClassView& view = class_view_[static_cast<std::size_t>(ev.cls)];
    if (!view.present)  // preserve the store's "class not characterized" throw
        (void)cdfs_->class_max_window_ps(ev.cls);
    if (view.max_window_ps <= window) return correct;
    // The Bernoulli walk consumes uniforms from the same stream the noise
    // draws come from. In exact batched mode, rewind-and-replay the batch
    // so those uniforms appear exactly where the scalar path would take
    // them (bit-identity); quantized mode has no such contract and simply
    // continues from the current generator state.
    if (batched_draw && batch_.exact()) batch_.resync(rng_);
    std::uint32_t result = correct;
    for (const std::uint32_t endpoint : *view.order) {
        if (cdfs_->endpoint_max_window_ps(ev.cls, endpoint) <= window)
            break;  // sorted by criticality: all remaining endpoints are safe
        const double p = cdfs_->violation_prob(ev.cls, endpoint, window);
        if (p > 0.0 && rng_.chance(p))
            result = apply_fault(result, endpoint, ev.prev_result);
    }
    return result;
}

}  // namespace sfi
