// AVX2 variant of the noise-draw -> table-index conversion, compiled
// only when the SFI_ENABLE_AVX2 CMake toggle is on (this TU gets -mavx2;
// the dispatcher in sampling_batch.cpp still checks the CPU at runtime).
//
// Bit-identity with noise_draws_to_indices_scalar relies on using only
// unfused IEEE operations: vmaxpd/vminpd match std::min/std::max for the
// non-NaN inputs Rng::normal_fill produces, vmulpd/vaddpd/vdivpd are the
// same correctly-rounded primitives the scalar loop compiles to (the
// default build never contracts to FMA), and vcvttpd2dq truncates toward
// zero exactly like the scalar static_cast.
#include "fi/sampling_batch.hpp"

#if defined(SFI_ENABLE_AVX2)

#include <immintrin.h>

namespace sfi {

void noise_draws_to_indices_avx2(const double* draws, std::uint32_t* indices,
                                 std::size_t n, double clip_mv,
                                 double clip_v, std::size_t entries) {
    const __m256d neg_clip = _mm256_set1_pd(-clip_mv);
    const __m256d pos_clip = _mm256_set1_pd(clip_mv);
    const __m256d to_volts = _mm256_set1_pd(1e-3);
    const __m256d offset = _mm256_set1_pd(clip_v);
    const __m256d span = _mm256_set1_pd(2.0 * clip_v);
    const __m256d scale =
        _mm256_set1_pd(static_cast<double>(entries - 1));
    const __m256d half = _mm256_set1_pd(0.5);
    const __m128i zero = _mm_setzero_si128();
    const __m128i max_index =
        _mm_set1_epi32(static_cast<int>(entries - 1));

    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256d x = _mm256_loadu_pd(draws + i);
        x = _mm256_max_pd(x, neg_clip);
        x = _mm256_min_pd(x, pos_clip);
        const __m256d noise_v = _mm256_mul_pd(x, to_volts);
        const __m256d t =
            _mm256_div_pd(_mm256_add_pd(noise_v, offset), span);
        const __m256d biased =
            _mm256_add_pd(_mm256_mul_pd(t, scale), half);
        __m128i idx = _mm256_cvttpd_epi32(biased);
        idx = _mm_max_epi32(idx, zero);
        idx = _mm_min_epi32(idx, max_index);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(indices + i), idx);
    }
    if (i < n) {
        noise_draws_to_indices_scalar(draws + i, indices + i, n - i,
                                      clip_mv, clip_v, entries);
    }
}

}  // namespace sfi

#endif  // SFI_ENABLE_AVX2
