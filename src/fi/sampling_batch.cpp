#include "fi/sampling_batch.hpp"

#include <algorithm>
#include <cmath>

namespace sfi {

const char* fault_sampling_mode_name(FaultSamplingMode mode) {
    switch (mode) {
        case FaultSamplingMode::Scalar: return "scalar";
        case FaultSamplingMode::Batched: return "batched";
        case FaultSamplingMode::Quantized: return "quantized";
    }
    return "?";
}

std::optional<FaultSamplingMode> parse_fault_sampling_mode(
    const std::string& name) {
    if (name == "scalar") return FaultSamplingMode::Scalar;
    if (name == "batched") return FaultSamplingMode::Batched;
    if (name == "quantized") return FaultSamplingMode::Quantized;
    return std::nullopt;
}

void noise_draws_to_indices_scalar(const double* draws,
                                   std::uint32_t* indices, std::size_t n,
                                   double clip_mv, double clip_v,
                                   std::size_t entries) {
    // Elementwise this must stay the exact IEEE operation sequence of
    // VddNoise::draw + noise_table_index: clamp in mV, scale to volts,
    // affine map to [0, 1], round half up by +0.5 and truncate. The
    // default build has no -ffp-contract=fast FMA fusion, so the AVX2
    // kernel (explicit non-fused intrinsics) matches bit for bit.
    if (clip_v <= 0.0) {
        // noise_table_index's degenerate case: no clip span, every draw
        // maps to the middle entry.
        const auto mid = static_cast<std::uint32_t>(entries / 2);
        for (std::size_t i = 0; i < n; ++i) indices[i] = mid;
        return;
    }
    const double scale = static_cast<double>(entries - 1);
    const double inv_span = 2.0 * clip_v;
    const auto max_index = static_cast<std::int64_t>(entries - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double clamped =
            std::min(std::max(draws[i], -clip_mv), clip_mv);
        const double noise_v = clamped * 1e-3;
        const double t = (noise_v + clip_v) / inv_span;
        auto idx = static_cast<std::int64_t>(t * scale + 0.5);
        idx = std::min(std::max(idx, std::int64_t{0}), max_index);
        indices[i] = static_cast<std::uint32_t>(idx);
    }
}

#if defined(SFI_ENABLE_AVX2)
// Defined in sampling_batch_avx2.cpp (compiled with -mavx2).
void noise_draws_to_indices_avx2(const double* draws, std::uint32_t* indices,
                                 std::size_t n, double clip_mv,
                                 double clip_v, std::size_t entries);
#endif

bool noise_conversion_uses_avx2() {
#if defined(SFI_ENABLE_AVX2)
    static const bool supported = __builtin_cpu_supports("avx2") != 0;
    return supported;
#else
    return false;
#endif
}

void noise_draws_to_indices(const double* draws, std::uint32_t* indices,
                            std::size_t n, double clip_mv, double clip_v,
                            std::size_t entries) {
#if defined(SFI_ENABLE_AVX2)
    // The AVX2 kernel assumes a positive clip span; route the degenerate
    // clip_v <= 0 case through the scalar loop's middle-entry fill.
    if (clip_v > 0.0 && noise_conversion_uses_avx2()) {
        noise_draws_to_indices_avx2(draws, indices, n, clip_mv, clip_v,
                                    entries);
        return;
    }
#endif
    noise_draws_to_indices_scalar(draws, indices, n, clip_mv, clip_v,
                                  entries);
}

std::vector<double> noise_index_masses(double sigma_mv, double clip_mv,
                                       std::size_t entries) {
    std::vector<double> mass;
    if (sigma_mv <= 0.0 || entries < 2) return mass;
    mass.assign(entries, 0.0);
    if (clip_mv <= 0.0) {
        // noise_table_index's degenerate case: every draw maps to the
        // middle entry.
        mass[entries / 2] = 1.0;
        return mass;
    }

    // Exact bin masses of the clamped draw under noise_table_index
    // rounding: index i collects t in [(i-0.5)/(E-1), (i+0.5)/(E-1)),
    // i.e. noise below (2t-1)*clip in mV; the boundary bins additionally
    // absorb the clamp mass beyond +/-clip. Masses depend only on
    // clip_mv/sigma_mv, so the table survives frequency/voltage sweeps.
    const std::size_t n = entries;
    const auto cdf = [&](double x_mv) {
        return 0.5 * std::erfc(-(x_mv / sigma_mv) / std::sqrt(2.0));
    };
    double below = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double upper_t =
            (static_cast<double>(i) + 0.5) / static_cast<double>(n - 1);
        const double upper = cdf((2.0 * upper_t - 1.0) * clip_mv);
        mass[i] = upper - below;
        below = upper;
    }
    mass[n - 1] = 1.0 - below;
    return mass;
}

AliasTable build_alias_from_masses(const std::vector<double>& mass) {
    AliasTable table;
    const std::size_t n = mass.size();
    if (n == 0) return table;

    // Vose's alias construction; thresholds quantized to Q0.64.
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = mass[i] * static_cast<double>(n);
    }
    table.threshold.assign(n, ~std::uint64_t{0});
    table.alias.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        table.alias[i] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    for (std::size_t i = 0; i < n; ++i) {
        (scaled[i] < 1.0 ? small : large)
            .push_back(static_cast<std::uint32_t>(i));
    }
    const auto to_q64 = [](double q) -> std::uint64_t {
        if (q >= 1.0) return ~std::uint64_t{0};
        if (q <= 0.0) return 0;
        return static_cast<std::uint64_t>(q * 0x1.0p64);
    };
    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        small.pop_back();
        const std::uint32_t l = large.back();
        large.pop_back();
        table.threshold[s] = to_q64(scaled[s]);
        table.alias[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Leftovers (numerical dust on either stack) are full bins: keep the
    // all-ones threshold and the self alias they already have.
    return table;
}

AliasTable build_noise_index_alias(double sigma_mv, double clip_mv,
                                   std::size_t entries) {
    return build_alias_from_masses(
        noise_index_masses(sigma_mv, clip_mv, entries));
}

void NoiseIndexBatch::configure(double sigma_mv, double clip_mv,
                                double clip_v, std::size_t entries,
                                FaultSamplingMode mode) {
    if (mode == mode_ && sigma_mv == sigma_mv_ && clip_mv == clip_mv_ &&
        clip_v == clip_v_ && entries == entries_) {
        return;
    }
    mode_ = mode;
    sigma_mv_ = sigma_mv;
    clip_mv_ = clip_mv;
    clip_v_ = clip_v;
    entries_ = entries;
    pos_ = 0;
    size_ = 0;
    next_fill_ = kMinFill;
    alias_ = AliasTable{};
    if (mode_ == FaultSamplingMode::Quantized && entries_ >= 2 &&
        sigma_mv_ > 0.0) {
        alias_ = build_noise_index_alias(sigma_mv_, clip_mv_, entries_);
    }
}

void NoiseIndexBatch::start_trial() {
    pos_ = 0;
    size_ = 0;
    next_fill_ = kMinFill;
}

void NoiseIndexBatch::refill(Rng& rng) {
    const std::size_t want = next_fill_;
    next_fill_ = std::min(next_fill_ * 2, kMaxFill);
    if (indices_.size() < want) indices_.resize(want);
    if (normals_.size() < want) normals_.resize(want);
    snapshot_ = rng;
    rng.normal_fill(0.0, sigma_mv_, normals_.data(), want);
    noise_draws_to_indices(normals_.data(), indices_.data(), want,
                           clip_mv_, clip_v_, entries_);
    pos_ = 0;
    size_ = want;
}

void NoiseIndexBatch::resync(Rng& rng) {
    // pos_ draws of the current fill have been consumed (including the
    // one that opened the interleave). Rewind to the fill snapshot and
    // replay exactly those draws — bit-identical values, so the caller's
    // past decisions stay valid and the generator lands in the state the
    // scalar path would occupy right now.
    rng = snapshot_;
    if (pos_ > 0) {
        rng.normal_fill(0.0, sigma_mv_, normals_.data(), pos_);
    }
    size_ = pos_;           // the unconsumed prefetch is now stale
    next_fill_ = kMinFill;  // interleaves cluster; refill small
}

}  // namespace sfi
