#include "fi/cwc.hpp"

#include <array>
#include <bit>
#include <stdexcept>

#include "fi/forensics.hpp"
#include "isa/isa.hpp"
#include "util/csv.hpp"

namespace sfi {

// ---------------------------------------------------------------------------
// Code geometry
// ---------------------------------------------------------------------------

std::uint64_t cwc_binomial(unsigned n, unsigned r) {
    if (r > n) return 0;
    if (r > n - r) r = n - r;
    std::uint64_t result = 1;
    // Multiply-before-divide keeps every intermediate C(n-r+i, i) exact.
    for (unsigned i = 1; i <= r; ++i) result = result * (n - r + i) / i;
    return result;
}

CwcCode CwcCode::for_block_bits(unsigned k) {
    if (k < 1 || k > 16 || 32 % k != 0)
        throw std::invalid_argument(
            "CwcCode: block_bits must divide 32 and be in [1, 16]");
    const std::uint64_t needed = 1ull << k;
    for (unsigned n = k;; ++n) {
        const unsigned w = n / 2;
        if (cwc_binomial(n, w) >= needed) return CwcCode{k, n, w};
    }
}

// ---------------------------------------------------------------------------
// Enumerative codec (reference form: one binomial evaluation per position)
// ---------------------------------------------------------------------------

std::uint64_t cwc_encode_enumerative(const CwcCode& code, std::uint64_t index) {
    std::uint64_t word = 0;
    unsigned r = code.w;
    for (unsigned p = code.n; p-- > 0;) {
        if (r == 0) break;
        const std::uint64_t c = cwc_binomial(p, r);
        if (index >= c) {
            word |= 1ull << p;
            index -= c;
            --r;
        }
    }
    return word;
}

std::uint64_t cwc_decode_enumerative(const CwcCode& code, std::uint64_t word) {
    std::uint64_t index = 0;
    unsigned r = code.w;
    for (unsigned p = code.n; p-- > 0;) {
        if (r == 0) break;
        if ((word >> p) & 1) {
            index += cwc_binomial(p, r);
            --r;
        }
    }
    return index;
}

// ---------------------------------------------------------------------------
// Sequential codec (low-complexity scheme: one multiplicative update per
// position — C(p-1, r-1) = C(p, r) * r / p on a taken bit and
// C(p-1, r) = C(p, r) * (p - r) / p otherwise, both divisions exact)
// ---------------------------------------------------------------------------

std::uint64_t cwc_encode_sequential(const CwcCode& code, std::uint64_t index) {
    std::uint64_t word = 0;
    unsigned r = code.w;
    if (r == 0 || code.n == 0) return 0;
    std::uint64_t c = cwc_binomial(code.n - 1, r);
    for (unsigned p = code.n; p-- > 0;) {
        if (r == 0) break;
        if (index >= c) {
            word |= 1ull << p;
            index -= c;
            if (p > 0) c = c * r / p;
            --r;
        } else if (p > 0) {
            c = c * (p - r) / p;
        }
    }
    return word;
}

std::uint64_t cwc_decode_sequential(const CwcCode& code, std::uint64_t word) {
    std::uint64_t index = 0;
    unsigned r = code.w;
    if (r == 0 || code.n == 0) return 0;
    std::uint64_t c = cwc_binomial(code.n - 1, r);
    for (unsigned p = code.n; p-- > 0;) {
        if (r == 0) break;
        if ((word >> p) & 1) {
            index += c;
            if (p > 0) c = c * r / p;
            --r;
        } else if (p > 0) {
            c = c * (p - r) / p;
        }
    }
    return index;
}

// ---------------------------------------------------------------------------
// Detection math
// ---------------------------------------------------------------------------

double cwc_block_escape_probability(unsigned code_distance) {
    if (code_distance == 0) return 1.0;
    // Of the 2^d capture subsets of the d differing bits, the weight is
    // preserved exactly by the balanced ones: C(d, d/2).
    return static_cast<double>(cwc_binomial(code_distance, code_distance / 2)) /
           static_cast<double>(1ull << code_distance);
}

double cwc_detect_probability(const CwcCode& code, std::uint32_t correct,
                              std::uint32_t corrupted) {
    if (correct == corrupted) return 0.0;
    const unsigned blocks = 32 / code.k;
    const std::uint32_t mask = (code.k >= 32)
                                   ? 0xffffffffu
                                   : ((1u << code.k) - 1u);
    double escape = 1.0;
    for (unsigned b = 0; b < blocks; ++b) {
        const std::uint32_t x = (correct >> (b * code.k)) & mask;
        const std::uint32_t y = (corrupted >> (b * code.k)) & mask;
        if (x == y) continue;
        const std::uint64_t cx = cwc_encode_sequential(code, x);
        const std::uint64_t cy = cwc_encode_sequential(code, y);
        const unsigned d =
            static_cast<unsigned>(std::popcount(cx ^ cy));
        escape *= cwc_block_escape_probability(d);
    }
    return 1.0 - escape;
}

// ---------------------------------------------------------------------------
// Coverage table
// ---------------------------------------------------------------------------

std::vector<CwcCoverageRow> cwc_coverage_table(const CwcCode& code,
                                               unsigned operand_bits) {
    if (operand_bits < 1 || operand_bits > 8)
        throw std::invalid_argument(
            "cwc_coverage_table: operand_bits must be in [1, 8]");
    const std::uint32_t operands = 1u << operand_bits;
    const double pairs =
        static_cast<double>(operands) * static_cast<double>(operands);
    std::vector<CwcCoverageRow> rows;
    rows.reserve((kExClassCount - 1) * 32);
    for (std::size_t c = static_cast<std::size_t>(ExClass::Add);
         c < kExClassCount; ++c) {
        const ExClass cls = static_cast<ExClass>(c);
        std::array<double, 32> sums{};
        for (std::uint32_t a = 0; a < operands; ++a)
            for (std::uint32_t b = 0; b < operands; ++b) {
                const std::uint32_t r = alu_result(cls, a, b);
                for (unsigned bit = 0; bit < 32; ++bit)
                    sums[bit] += cwc_detect_probability(code, r, r ^ (1u << bit));
            }
        for (unsigned bit = 0; bit < 32; ++bit)
            rows.push_back({cls, bit, sums[bit] / pairs});
    }
    return rows;
}

void write_cwc_coverage_csv(const std::string& path, const CwcCode& code,
                            unsigned operand_bits) {
    CsvWriter csv(path);
    csv.header({"block_bits", "code_n", "code_w", "operand_bits", "ex_class",
                "bit", "coverage"});
    for (const CwcCoverageRow& row : cwc_coverage_table(code, operand_bits)) {
        csv.cell(static_cast<std::uint64_t>(code.k))
            .cell(static_cast<std::uint64_t>(code.n))
            .cell(static_cast<std::uint64_t>(code.w))
            .cell(static_cast<std::uint64_t>(operand_bits))
            .cell(ex_class_name(row.cls))
            .cell(static_cast<std::uint64_t>(row.bit))
            .cell(row.coverage);
        csv.end_row();
    }
    csv.close();
}

// ---------------------------------------------------------------------------
// CwcDetectionModel
// ---------------------------------------------------------------------------

CwcDetectionModel::CwcDetectionModel(std::unique_ptr<FaultModel> inner,
                                     CwcConfig config)
    : inner_(std::move(inner)),
      config_(config),
      code_(CwcCode::for_block_bits(config.block_bits)) {
    if (!inner_) throw std::invalid_argument("CwcDetectionModel: null inner");
    const double check_bits = static_cast<double>(code_.n - code_.k);
    latency_frac_ = config_.latency_overhead_frac > 0.0
                        ? config_.latency_overhead_frac
                        : 0.01 * check_bits;
    energy_frac_ = config_.energy_overhead_frac > 0.0
                       ? config_.energy_overhead_frac
                       : 0.5 * check_bits / static_cast<double>(code_.k);
}

CwcDetectionModel::CwcDetectionModel(const CwcDetectionModel& other)
    : DetectionModel(other),
      inner_(other.inner_->clone()),
      config_(other.config_),
      code_(other.code_),
      latency_frac_(other.latency_frac_),
      energy_frac_(other.energy_frac_),
      detected_(other.detected_),
      escaped_(other.escaped_) {}

std::unique_ptr<FaultModel> CwcDetectionModel::clone() const {
    return std::unique_ptr<FaultModel>(new CwcDetectionModel(*this));
}

void CwcDetectionModel::operating_point_changed() {
    inner_->set_operating_point(point_);
}

std::uint32_t CwcDetectionModel::corrupt(const ExEvent& ev,
                                         std::uint32_t correct) {
    // Drive the inner model through its public entry point so its own
    // statistics (and RNG stream) behave exactly as without mitigation.
    const std::uint32_t result = inner_->on_ex_result(ev, correct);
    if (result == correct) return correct;
    const double p = cwc_detect_probability(code_, correct, result);
    if (rng_.chance(p)) {
        ++detected_;
        ++stats_.injections;  // a detected violation still counts as an FI
        if (probe_ != nullptr) probe_->mark_cwc(true);
        return correct;       // recovered: architecturally clean
    }
    ++escaped_;
    ++stats_.injections;
    if (probe_ != nullptr) probe_->mark_cwc(false);
    return result;
}

double CwcDetectionModel::effective_mhz(double f_mhz,
                                        std::uint64_t kernel_cycles) const {
    const double derated = f_mhz / (1.0 + latency_frac_);
    const std::uint64_t total = kernel_cycles + recovery_cycles();
    return total ? derated * static_cast<double>(kernel_cycles) /
                       static_cast<double>(total)
                 : derated;
}

}  // namespace sfi
