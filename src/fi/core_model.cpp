#include "fi/core_model.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>

#include "util/fingerprint.hpp"

namespace sfi {

// Hashes the numeric configuration knobs that affect the DTA result.
// Changing any of them invalidates a CDF cache (and every campaign point
// computed against the old characterization).
std::uint64_t core_config_fingerprint(const CoreModelConfig& config) {
    Fingerprint fp;
    fp.mix(config.alu.adder);
    fp.mix(config.alu.operand_isolation);
    fp.mix(config.lib.load_per_fanout);
    fp.mix(config.lib.process_sigma);
    fp.mix(config.lib.process_seed);
    fp.mix(config.lib.ff_setup_ps);
    fp.mix(config.lib.cell_alpha_spread);
    fp.mix(config.lib.vdd.vref);
    fp.mix(config.lib.vdd.vth);
    fp.mix(config.lib.vdd.alpha);
    fp.mix(config.calibration.vdd);
    fp.mix(config.calibration.compression);
    fp.mix(config.calibration.mul_period_ps);
    fp.mix(config.calibration.add_period_ps);
    fp.mix(config.calibration.shift_period_ps);
    fp.mix(config.calibration.logic_period_ps);
    fp.mix(config.dta.cycles);
    fp.mix(config.dta.seed);
    fp.mix(config.dta.clk_to_q_ps);
    fp.mix(config.dta.operand_bits);
    // The sampling mode is mixed ONLY for the quantized ("B-q") variant:
    // Scalar and Batched produce bit-identical trial results, so their
    // stored points are interchangeable and must keep the pre-existing
    // key. Quantized draws a different stream — separating its
    // fingerprint keeps old point stores from ever colliding with it.
    // (Side effect, deliberate: a quantized run also re-keys the CDF
    // cache. Conservative — the characterization itself is unchanged —
    // but it guarantees the store/cache key split stays in lock-step.)
    if (config.fault_sampling == FaultSamplingMode::Quantized)
        fp.mix(std::uint64_t{0x712d76617269616eULL});  // 'q-varian' salt
    return fp.value();
}

CharacterizedCore::CharacterizedCore(CoreModelConfig config,
                                     perf::PhaseProfile* profile)
    : config_(std::move(config)),
      alu_(build_alu(config_.alu)),
      lib_(config_.lib),
      timing_(alu_.netlist, lib_) {
    calibration_ = calibrate_alu(alu_, timing_, config_.calibration);
    sta_ = endpoint_worst_sta(alu_, timing_);

    const std::uint64_t fingerprint = core_config_fingerprint(config_);
    bool loaded = false;
    if (!config_.cdf_cache_path.empty() &&
        std::filesystem::exists(config_.cdf_cache_path)) {
        std::ifstream is(config_.cdf_cache_path, std::ios::binary);
        std::uint64_t stored = 0;
        is.read(reinterpret_cast<char*>(&stored), sizeof stored);
        if (is && stored == fingerprint) {
            try {
                cdfs_ = std::make_shared<TimingErrorCdfs>(TimingErrorCdfs::load(is));
                loaded = true;
            } catch (const std::exception&) {
                loaded = false;  // corrupt cache: recharacterize
            }
        }
    }
    if (!loaded) {
        const DtaResult dta = run_dta(alu_, timing_, config_.dta, profile);
        cdfs_ = std::make_shared<TimingErrorCdfs>(TimingErrorCdfs::from_dta(dta));
        if (!config_.cdf_cache_path.empty()) {
            std::ofstream os(config_.cdf_cache_path, std::ios::binary);
            if (os) {
                os.write(reinterpret_cast<const char*>(&fingerprint),
                         sizeof fingerprint);
                cdfs_->save(os);
            }
        }
    }
}

double CharacterizedCore::sta_fmax_mhz(double vdd) const {
    return sta_.fmax_mhz(lib_.fit().factor(vdd));
}

double CharacterizedCore::dynamic_fmax_mhz(ExClass cls, double vdd) const {
    const double window = cdfs_->class_max_window_ps(cls);
    return 1.0e6 / (window * lib_.fit().factor(vdd));
}

std::unique_ptr<ModelA> CharacterizedCore::make_model_a(
    double flip_probability) const {
    return std::make_unique<ModelA>(flip_probability);
}

std::unique_ptr<ModelB> CharacterizedCore::make_model_b() const {
    auto model = std::make_unique<ModelB>(sta_, lib_.fit());
    model->set_sampling_mode(config_.fault_sampling);
    return model;
}

std::unique_ptr<ModelC> CharacterizedCore::make_model_c() const {
    auto model = std::make_unique<ModelC>(cdfs_, lib_.fit());
    model->set_sampling_mode(config_.fault_sampling);
    return model;
}

}  // namespace sfi
