#include "fi/core_model.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>

namespace sfi {

namespace {

// FNV-1a over the bytes of the numeric configuration knobs that affect
// the DTA result. Changing any of them invalidates a CDF cache.
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

template <typename T>
std::uint64_t mix(std::uint64_t hash, const T& value) {
    return fnv1a(hash, &value, sizeof value);
}

}  // namespace

std::uint64_t CharacterizedCore::config_fingerprint() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = mix(h, config_.alu.adder);
    h = mix(h, config_.alu.operand_isolation);
    h = mix(h, config_.lib.load_per_fanout);
    h = mix(h, config_.lib.process_sigma);
    h = mix(h, config_.lib.process_seed);
    h = mix(h, config_.lib.ff_setup_ps);
    h = mix(h, config_.lib.vdd.vref);
    h = mix(h, config_.lib.vdd.vth);
    h = mix(h, config_.lib.vdd.alpha);
    h = mix(h, config_.calibration.vdd);
    h = mix(h, config_.calibration.mul_period_ps);
    h = mix(h, config_.calibration.add_period_ps);
    h = mix(h, config_.calibration.shift_period_ps);
    h = mix(h, config_.calibration.logic_period_ps);
    h = mix(h, config_.dta.cycles);
    h = mix(h, config_.dta.seed);
    h = mix(h, config_.dta.clk_to_q_ps);
    h = mix(h, config_.dta.operand_bits);
    return h;
}

CharacterizedCore::CharacterizedCore(CoreModelConfig config)
    : config_(std::move(config)),
      alu_(build_alu(config_.alu)),
      lib_(config_.lib),
      timing_(alu_.netlist, lib_) {
    calibration_ = calibrate_alu(alu_, timing_, config_.calibration);
    sta_ = endpoint_worst_sta(alu_, timing_);

    const std::uint64_t fingerprint = config_fingerprint();
    bool loaded = false;
    if (!config_.cdf_cache_path.empty() &&
        std::filesystem::exists(config_.cdf_cache_path)) {
        std::ifstream is(config_.cdf_cache_path, std::ios::binary);
        std::uint64_t stored = 0;
        is.read(reinterpret_cast<char*>(&stored), sizeof stored);
        if (is && stored == fingerprint) {
            try {
                cdfs_ = std::make_shared<TimingErrorCdfs>(TimingErrorCdfs::load(is));
                loaded = true;
            } catch (const std::exception&) {
                loaded = false;  // corrupt cache: recharacterize
            }
        }
    }
    if (!loaded) {
        const DtaResult dta = run_dta(alu_, timing_, config_.dta);
        cdfs_ = std::make_shared<TimingErrorCdfs>(TimingErrorCdfs::from_dta(dta));
        if (!config_.cdf_cache_path.empty()) {
            std::ofstream os(config_.cdf_cache_path, std::ios::binary);
            if (os) {
                os.write(reinterpret_cast<const char*>(&fingerprint),
                         sizeof fingerprint);
                cdfs_->save(os);
            }
        }
    }
}

double CharacterizedCore::sta_fmax_mhz(double vdd) const {
    return sta_.fmax_mhz(lib_.fit().factor(vdd));
}

double CharacterizedCore::dynamic_fmax_mhz(ExClass cls, double vdd) const {
    const double window = cdfs_->class_max_window_ps(cls);
    return 1.0e6 / (window * lib_.fit().factor(vdd));
}

std::unique_ptr<ModelA> CharacterizedCore::make_model_a(
    double flip_probability) const {
    return std::make_unique<ModelA>(flip_probability);
}

std::unique_ptr<ModelB> CharacterizedCore::make_model_b() const {
    return std::make_unique<ModelB>(sta_, lib_.fit());
}

std::unique_ptr<ModelC> CharacterizedCore::make_model_c() const {
    return std::make_unique<ModelC>(cdfs_, lib_.fit());
}

}  // namespace sfi
