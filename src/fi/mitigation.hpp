// Razor-style error detection & replay on top of any fault model — the
// mitigation approach the paper positions itself against ([1] Ernst et
// al., Razor; [2] Bowman et al., resilient core). The paper's statistical
// FI makes this analysis possible: detection hardware turns timing errors
// into replay cycles instead of data corruption, so the interesting
// question becomes where the throughput-optimal overscaling point lies.
//
// ErrorDetectionModel decorates an inner fault model: every corrupted EX
// result is detected with probability `detection_coverage` and replayed
// (correct result, `replay_penalty_cycles` charged); undetected
// corruptions escape to the application exactly as without mitigation.
#pragma once

#include <memory>

#include "fi/models.hpp"

namespace sfi {

struct RazorConfig {
    double detection_coverage = 1.0;    ///< P(detect | corrupted result)
    unsigned replay_penalty_cycles = 11;  ///< pipeline replay cost per detection
    /// Shadow-latch + control switching energy relative to the bare core
    /// (Ernst et al. report ~3% total power for Razor I).
    double energy_overhead_frac = 0.03;
};

/// Common face of every error-detection decorator (Razor replay,
/// constant-weight codes, ...). A detector wraps an inner FaultModel,
/// turns some corruptions into detections, and answers for its own
/// throughput cost — which is all the campaign/bench layers need, so a
/// new mitigation model only has to derive from this and pass the shared
/// contract suite (tests/fi/test_mitigation_contract.cpp).
class DetectionModel : public FaultModel {
public:
    /// Corruptions caught (architecturally clean after recovery).
    virtual std::uint64_t detected() const = 0;
    /// Corruptions that escaped to the application.
    virtual std::uint64_t escaped() const = 0;
    /// Throughput at clock `f_mhz` given the recovery overhead this
    /// detector accumulated over `kernel_cycles` of execution.
    virtual double effective_mhz(double f_mhz,
                                 std::uint64_t kernel_cycles) const = 0;
    /// Clears the detection/escape counters (not the inner model's stats).
    virtual void reset_mitigation_stats() = 0;
};

class ErrorDetectionModel final : public DetectionModel {
public:
    ErrorDetectionModel(std::unique_ptr<FaultModel> inner, RazorConfig config);

    std::string name() const override { return "razor(" + inner_->name() + ")"; }
    ModelFeatures features() const override { return inner_->features(); }
    /// Deep copy: clones the inner fault model and carries over the
    /// detection/escape counters, so a clone continues exactly where the
    /// original stands.
    std::unique_ptr<FaultModel> clone() const override;

    const FaultModel& inner() const { return *inner_; }
    const RazorConfig& config() const { return config_; }
    std::uint64_t detected() const override { return detected_; }
    std::uint64_t escaped() const override { return escaped_; }
    /// Extra cycles spent replaying detected errors.
    std::uint64_t replay_cycles() const {
        return detected_ * config_.replay_penalty_cycles;
    }
    /// Effective throughput at clock `f_mhz` given the replay overhead
    /// accumulated over `kernel_cycles` of execution.
    double effective_mhz(double f_mhz,
                         std::uint64_t kernel_cycles) const override;

    void reset_mitigation_stats() override { detected_ = escaped_ = 0; }

    /// Reseeds both the detection draw stream and the inner fault model.
    void reseed(std::uint64_t seed) override {
        FaultModel::reseed(seed);
        inner_->reseed(seed ^ 0x52415a4fULL);  // distinct inner stream
    }

    /// The sampling mode only matters to the inner model's draw stream,
    /// but is forwarded so both agree (and name() reports the variant).
    void set_sampling_mode(FaultSamplingMode mode) override {
        FaultModel::set_sampling_mode(mode);
        inner_->set_sampling_mode(mode);
    }

    /// Detection only reacts to inner injections, so reachability is the
    /// inner model's (arms the zero-fault trial fast path for razor runs).
    bool can_inject() const override { return inner_->can_inject(); }

    /// Clean ALU ops count toward this model's and the inner model's
    /// statistics, exactly as corrupt() would have driven them.
    void count_clean_ops(std::uint64_t n) override {
        FaultModel::count_clean_ops(n);
        inner_->count_clean_ops(n);
    }

    /// The probe observes the inner model's injections (corrupt() drives
    /// it through on_ex_result), and this decorator stamps the razor
    /// verdict onto those records — so it is shared with the inner model.
    void set_forensic_probe(ForensicProbe* probe) override {
        FaultModel::set_forensic_probe(probe);
        inner_->set_forensic_probe(probe);
    }

protected:
    std::uint32_t corrupt(const ExEvent& ev, std::uint32_t correct) override;
    void operating_point_changed() override;

private:
    ErrorDetectionModel(const ErrorDetectionModel& other);

    std::unique_ptr<FaultModel> inner_;
    RazorConfig config_;
    std::uint64_t detected_ = 0;
    std::uint64_t escaped_ = 0;
};

}  // namespace sfi
