#include "fi/mitigation.hpp"

#include <stdexcept>

#include "fi/forensics.hpp"

namespace sfi {

ErrorDetectionModel::ErrorDetectionModel(std::unique_ptr<FaultModel> inner,
                                         RazorConfig config)
    : inner_(std::move(inner)), config_(config) {
    if (!inner_) throw std::invalid_argument("ErrorDetectionModel: null inner");
    if (config_.detection_coverage < 0.0 || config_.detection_coverage > 1.0)
        throw std::invalid_argument("ErrorDetectionModel: coverage out of range");
}

ErrorDetectionModel::ErrorDetectionModel(const ErrorDetectionModel& other)
    : DetectionModel(other),
      inner_(other.inner_->clone()),
      config_(other.config_),
      detected_(other.detected_),
      escaped_(other.escaped_) {}

std::unique_ptr<FaultModel> ErrorDetectionModel::clone() const {
    return std::unique_ptr<FaultModel>(new ErrorDetectionModel(*this));
}

void ErrorDetectionModel::operating_point_changed() {
    inner_->set_operating_point(point_);
}

std::uint32_t ErrorDetectionModel::corrupt(const ExEvent& ev,
                                           std::uint32_t correct) {
    // Drive the inner model through its public entry point so its own
    // statistics (and RNG stream) behave exactly as without mitigation.
    const std::uint32_t result = inner_->on_ex_result(ev, correct);
    if (result == correct) return correct;
    if (rng_.chance(config_.detection_coverage)) {
        ++detected_;
        ++stats_.injections;  // a detected violation still counts as an FI
        if (probe_ != nullptr) probe_->mark_razor(true);
        return correct;       // replayed: architecturally clean
    }
    ++escaped_;
    ++stats_.injections;
    if (probe_ != nullptr) probe_->mark_razor(false);
    return result;
}

double ErrorDetectionModel::effective_mhz(double f_mhz,
                                          std::uint64_t kernel_cycles) const {
    const std::uint64_t total = kernel_cycles + replay_cycles();
    return total ? f_mhz * static_cast<double>(kernel_cycles) /
                       static_cast<double>(total)
                 : f_mhz;
}

}  // namespace sfi
