// Batched fault sampling for the noise-modulated models (B+/C): draw
// whole blocks of supply-noise values from the per-trial Rng stream at
// once, convert them to noise-window table indices with one vectorizable
// pass, and hand the models integer indices instead of one Gaussian draw
// per ALU op.
//
// Draw-order contract (what keeps the batched path bit-identical to the
// scalar reference in src/fi/models.cpp):
//
//  * a fill of n draws consumes the Rng exactly like n successive
//    VddNoise::draw calls (Rng::normal_fill has the prefix property:
//    the first m <= n values of a fill equal the first m sequential
//    draws, polar spare included);
//  * draws are consumed strictly in fill order, one per corrupt() call;
//  * unconsumed draws are discarded only at trial boundaries, where the
//    per-trial reseed makes the discard unobservable;
//  * model C interleaves Bernoulli uniforms with the noise draws on the
//    SAME stream whenever a violation is possible. The batch keeps a
//    snapshot of the Rng taken at fill time; resync() rewinds to it and
//    replays exactly the consumed draws, leaving the generator in the
//    state the scalar path would have — the remaining prefetch is
//    invalidated and refilled after the interleave.
//
// The index conversion quantizes each clamped draw to one of the
// `entries` window-table bins with the same IEEE double operation
// sequence as noise_table_index (clamp, mV->V scale, affine map,
// round-half-up via +0.5 and truncation) — an integer result, so the
// batched decision tables (violation counts, cumulative fault masks in
// models.cpp) are exact, not approximate. An AVX2 variant of the pass is
// compiled behind the SFI_ENABLE_AVX2 CMake toggle; it uses only
// mul/add/div/min/max/cvtt intrinsics (no FMA contraction), so its
// indices are bit-identical to the scalar loop's.
//
// FaultSamplingMode::Quantized replaces the Gaussian draw + conversion
// with direct alias-method sampling of the table index from the
// quantized clipped-normal distribution (Walker alias table with Q0.64
// fixed-point thresholds, two raw 64-bit draws per index). That is a
// different random stream — statistically equivalent, NOT bit-identical
// — so it ships as the fingerprinted model variant "B-q":
// core_config_fingerprint() mixes a salt for it and the campaign point
// store can never collide quantized summaries with exact ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sfi {

/// How the noise-modulated fault models consume their per-op draws.
enum class FaultSamplingMode : std::uint8_t {
    Scalar,     ///< reference path: one VddNoise::draw per corrupt() call
    Batched,    ///< block prefetch + index conversion; bit-identical
    Quantized,  ///< alias-method index sampling ("B-q"; not bit-identical)
};

const char* fault_sampling_mode_name(FaultSamplingMode mode);

/// Parses a --fault-sampling flag value ("scalar" / "batched" /
/// "quantized"); nullopt for anything else.
std::optional<FaultSamplingMode> parse_fault_sampling_mode(
    const std::string& name);

/// Converts raw normal draws (mV units, mean 0 / stddev sigma as produced
/// by Rng::normal_fill) into window-table indices. Elementwise this is
/// exactly VddNoise::draw's clamp + mV->V scale followed by
/// noise_table_index's affine map and round-half-up — the scalar loop is
/// auto-vectorizable, and the AVX2 variant below produces bit-identical
/// indices. `clip_mv` is the clamp level in mV (clip_sigmas * sigma_mv)
/// and `clip_v` the same level in volts, computed by the caller with the
/// models' own expressions so no re-derivation can diverge.
/// Requires entries >= 2 (and, for the AVX2 path, entries <= 2^31).
void noise_draws_to_indices(const double* draws, std::uint32_t* indices,
                            std::size_t n, double clip_mv, double clip_v,
                            std::size_t entries);

/// The plain-loop implementation of the above (always available; the
/// AVX2-vs-scalar equivalence test compares against it directly).
void noise_draws_to_indices_scalar(const double* draws,
                                   std::uint32_t* indices, std::size_t n,
                                   double clip_mv, double clip_v,
                                   std::size_t entries);

/// True when this build carries the AVX2 conversion kernel AND the CPU
/// supports it (the dispatcher falls back to the scalar loop otherwise).
bool noise_conversion_uses_avx2();

/// Walker alias table over the quantized clipped-normal index
/// distribution: P(i) = probability that a clamped N(0, sigma) draw maps
/// to table index i under noise_table_index rounding. Thresholds are
/// Q0.64 fixed point (a uniform u64 below threshold[j] accepts bin j,
/// otherwise its alias), so sampling is two raw draws and one compare —
/// no floating point at all.
struct AliasTable {
    std::vector<std::uint64_t> threshold;  ///< Q0.64 acceptance levels
    std::vector<std::uint32_t> alias;      ///< fallback bin per column

    bool empty() const { return threshold.empty(); }

    /// Samples one index (consumes exactly two raw 64-bit draws).
    std::uint32_t sample(Rng& rng) const {
        // Multiply-shift bin pick: bias < 2^-64 * bins, far below the
        // Q0.64 threshold quantization itself.
        const std::uint32_t j = static_cast<std::uint32_t>(
            (static_cast<__uint128_t>(rng()) * threshold.size()) >> 64);
        return rng() < threshold[j] ? j : alias[j];
    }
};

/// Exact clipped-Gaussian masses of the noise_table_index rounding cells
/// for `entries` bins at the given noise parameters (mV): element i is
/// P(clamped N(0, sigma_mv) draw maps to index i), with the clamp mass
/// beyond +/-clip collapsed into the boundary bins and the clip_mv <= 0
/// degenerate case a point mass at entries / 2. Empty when sigma_mv <= 0
/// or entries < 2. Depends only on clip_mv / sigma_mv and `entries` —
/// not on frequency or voltage — so operating-point sweeps reuse it.
std::vector<double> noise_index_masses(double sigma_mv, double clip_mv,
                                       std::size_t entries);

/// Vose alias construction over an arbitrary mass vector (must sum to ~1;
/// thresholds are quantized to Q0.64). Empty input gives an empty table.
AliasTable build_alias_from_masses(const std::vector<double>& mass);

/// build_alias_from_masses(noise_index_masses(...)): the table-index
/// sampler of FaultSamplingMode::Quantized. Model B compresses further —
/// it aliases the pushforward of these masses through its per-index
/// violation counts, sampling the count directly (see ModelB).
AliasTable build_noise_index_alias(double sigma_mv, double clip_mv,
                                   std::size_t entries);

/// Block buffer of prefetched window-table indices for one fault model.
/// Value-semantic on purpose: FaultModel::clone() copies it, and a copy
/// reproduces the identical index/resync stream from the identical Rng.
class NoiseIndexBatch {
public:
    /// (Re)configures for an operating point. A no-op when nothing
    /// changed (preserves the buffered draws); otherwise drops the buffer
    /// — callers reseed per trial, so a configuration change between
    /// trials never loses consumed-stream state. entries == 0 disables
    /// the batch (no noise at this point).
    void configure(double sigma_mv, double clip_mv, double clip_v,
                   std::size_t entries, FaultSamplingMode mode);

    /// Trial boundary (call from FaultModel::reseed): drops unconsumed
    /// draws — unobservable, the trial reseed restarts the stream — and
    /// resets the fill schedule. Fills grow geometrically from kMinFill
    /// within a trial, so prefetched-but-discarded normals are bounded by
    /// the trial's own consumption (trial lengths at a faulting point are
    /// heavy-tailed; sizing fills from a *previous* trial's demand wastes
    /// whole blocks of draws after every long trial).
    void start_trial();

    /// The next table index. Quantized mode samples the alias table
    /// directly — two raw u64 draws, already O(1), so buffering it would
    /// only add prefetch waste; exact mode refills the block buffer from
    /// `rng` when it runs dry.
    std::uint32_t next_index(Rng& rng) {
        if (mode_ == FaultSamplingMode::Quantized) return alias_.sample(rng);
        if (pos_ == size_) refill(rng);
        return indices_[pos_++];
    }

    /// Exact-mode rollback for interleaved consumers (model C): rewinds
    /// `rng` to the fill snapshot, replays exactly the draws consumed
    /// from this fill (bit-identical values, so nothing observable
    /// changes), and invalidates the remaining prefetch. On return the
    /// generator state equals the scalar path's after the same draws,
    /// and the caller may consume uniforms directly.
    void resync(Rng& rng);

    /// True when draws are bit-identical to the scalar reference
    /// (Batched); false for Quantized, whose indices come from the alias
    /// table and support no resync.
    bool exact() const { return mode_ == FaultSamplingMode::Batched; }

    /// Buffered-but-unconsumed indices (testing aid).
    std::size_t pending() const { return size_ - pos_; }

private:
    void refill(Rng& rng);

    static constexpr std::size_t kMinFill = 16;
    static constexpr std::size_t kMaxFill = 4096;

    FaultSamplingMode mode_ = FaultSamplingMode::Batched;
    double sigma_mv_ = 0.0;
    double clip_mv_ = 0.0;
    double clip_v_ = 0.0;
    std::size_t entries_ = 0;

    std::vector<double> normals_;          // fill scratch (exact mode)
    std::vector<std::uint32_t> indices_;   // the prefetched indices
    std::size_t pos_ = 0;                  // next index to hand out
    std::size_t size_ = 0;                 // valid prefix of indices_
    std::size_t next_fill_ = kMinFill;     // size of the next refill
    Rng snapshot_;                         // Rng state at fill time (exact)
    AliasTable alias_;                     // Quantized only
};

}  // namespace sfi
