// Supply-voltage noise model (paper §3.3): zero-mean Gaussian with
// standard deviation sigma, clipped at +/- clip_sigmas * sigma to avoid
// physically unrealistic tail spikes. One independent value per cycle.
#pragma once

#include <algorithm>

#include "util/rng.hpp"

namespace sfi {

struct NoiseConfig {
    double sigma_mv = 0.0;     ///< standard deviation in millivolts
    double clip_sigmas = 2.0;  ///< saturation point (paper: 2 sigma)

    bool operator==(const NoiseConfig&) const = default;
};

class VddNoise {
public:
    explicit VddNoise(NoiseConfig config = {}) : config_(config) {}

    /// Draws one per-cycle noise value in volts.
    double draw(Rng& rng) const {
        if (config_.sigma_mv <= 0.0) return 0.0;
        const double clip = config_.clip_sigmas * config_.sigma_mv;
        const double n = std::clamp(rng.normal(0.0, config_.sigma_mv), -clip, clip);
        return n * 1e-3;  // mV -> V
    }

    /// Largest possible |noise| in volts (the clip level).
    double max_abs_v() const {
        return config_.clip_sigmas * config_.sigma_mv * 1e-3;
    }

    const NoiseConfig& config() const { return config_; }

private:
    NoiseConfig config_;
};

}  // namespace sfi
