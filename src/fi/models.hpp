// The four timing-error fault-injection models of the paper (Table 2):
//
//   A  — fixed-probability random bit flips (conventional FI);
//   B  — deterministic injection whenever the clock period violates the
//        per-endpoint STA delay (fixed period violation);
//   B+ — model B with per-cycle supply-noise modulation of all delays
//        (modulated period violation);
//   C  — the paper's contribution: probabilistic injection from
//        instruction-conditioned DTA arrival-time CDFs, combined with the
//        same noise model (probabilistic period violation using CDFs).
//
// All models implement the ISS hook (ExFaultHook): they receive one
// callback per cycle and may corrupt every ALU result computed in the EX
// stage during the benchmark kernel. They corrupt only the 32 ALU
// endpoints, per the case-study constraint that all other paths are safe
// (paper §2.1).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cpu.hpp"
#include "fi/cdf.hpp"
#include "fi/noise.hpp"
#include "fi/sampling_batch.hpp"
#include "timing/sta.hpp"
#include "timing/vdd_model.hpp"
#include "util/rng.hpp"

namespace sfi {

class ForensicProbe;  // fi/forensics.hpp

/// Operating point of a simulation run.
struct OperatingPoint {
    double freq_mhz = 500.0;
    double vdd = 0.7;
    NoiseConfig noise;

    double period_ps() const { return 1.0e6 / freq_mhz; }

    bool operator==(const OperatingPoint&) const = default;
};

/// What a timing violation does to the captured bit.
enum class FaultPolicy : std::uint8_t {
    BitFlip,       ///< invert the captured bit (the paper's choice)
    StaleCapture,  ///< capture the previous EX-stage endpoint value
};

/// Feature row of Table 2.
struct ModelFeatures {
    std::string technique;
    std::string timing_data;
    bool multi_vdd = false;
    bool vdd_noise = false;
    std::string gate_level_aware;  // "no" / "partially" / "yes"
    bool instruction_aware = false;
};

/// Injection statistics for one run.
struct FiStats {
    std::uint64_t fi_cycles = 0;     ///< cycles with FI active (kernel)
    std::uint64_t alu_ops = 0;       ///< ALU results offered to the model
    std::uint64_t injections = 0;    ///< endpoint violations injected
    std::uint64_t corrupted_ops = 0; ///< ALU ops with >= 1 injected endpoint

    /// FI rate in faults per 1000 cycles of kernel execution (the paper's
    /// FI/kCycle metric).
    double fi_per_kcycle() const {
        return fi_cycles ? 1000.0 * static_cast<double>(injections) /
                               static_cast<double>(fi_cycles)
                         : 0.0;
    }
};

/// Common base: operating point, RNG stream, statistics, fault policy.
class FaultModel : public ExFaultHook {
public:
    ~FaultModel() override = default;

    virtual std::string name() const = 0;
    virtual ModelFeatures features() const = 0;

    /// Deep copy with identical state (operating point, policy, RNG stream,
    /// injection statistics): after cloning, both models produce the same
    /// corrupt() stream for the same inputs. This is what gives every
    /// worker of the parallel Monte-Carlo engine (src/mc/parallel.hpp) its
    /// own model. Decorating models clone their inner model too. The large
    /// characterization stores held by const pointer — model C's CDF store,
    /// the Vdd-delay fit — are shared between clones; model B's small
    /// STA-derived window tables are value members and are copied (~10 KB
    /// per clone).
    virtual std::unique_ptr<FaultModel> clone() const = 0;

    /// Sets frequency/voltage/noise; resets per-point derived state.
    /// Memoized: re-applying the current point is a no-op, so per-trial
    /// callers (MonteCarloRunner::run_trial_with) do not rebuild the
    /// noise-window tables once per trial — derived state depends only on
    /// the point and on const characterization data, never on the RNG,
    /// policy or statistics.
    void set_operating_point(const OperatingPoint& point);
    const OperatingPoint& operating_point() const { return point_; }

    /// True when corrupt() could inject at least one fault at the current
    /// operating point under SOME noise draw; false is a guarantee that
    /// every trial at this point reproduces the fault-free run, which is
    /// what arms the zero-fault trial fast path
    /// (MonteCarloRunner::run_trial_with). The base implementation is the
    /// conservative `true`.
    virtual bool can_inject() const { return true; }

    /// Overwrites the injection statistics wholesale. Used by the
    /// zero-fault fast path to leave the model's stats() exactly as the
    /// skipped (provably injection-free) simulation would have.
    void adopt_stats(const FiStats& stats) { stats_ = stats; }

    void set_policy(FaultPolicy policy) { policy_ = policy; }
    FaultPolicy policy() const { return policy_; }

    /// Reseeds the RNG stream (one distinct seed per Monte-Carlo trial).
    /// Virtual so decorating models (fi/mitigation.hpp) can reseed their
    /// inner model in lock-step.
    virtual void reseed(std::uint64_t seed) { rng_.reseed(seed); }

    /// Selects how the noise-modulated models consume their per-op draws
    /// (fi/sampling_batch.hpp). Memoized like set_operating_point; the
    /// Scalar and Batched modes produce bit-identical corrupt() streams,
    /// Quantized is the fingerprinted "B-q" variant. Virtual so decorators
    /// forward to their inner model. Switching modes mid-trial drops any
    /// prefetched draws — call before reseed() for reproducible streams.
    virtual void set_sampling_mode(FaultSamplingMode mode) {
        if (mode == sampling_mode_) return;
        sampling_mode_ = mode;
        sampling_mode_changed();
    }
    FaultSamplingMode sampling_mode() const { return sampling_mode_; }

    const FiStats& stats() const { return stats_; }
    void reset_stats() { stats_ = FiStats{}; }

    /// Attaches a forensic probe (null detaches; null is the default and
    /// costs one pointer test per ALU op). While attached, the probe
    /// receives one begin_op per on_ex_result and one record_injection per
    /// apply_fault; model B's batched path switches to its provably
    /// bit-identical per-endpoint walk (which consumes no extra draws), so
    /// a probed trial reproduces the unprobed outcome, statistics and RNG
    /// stream exactly. Virtual so decorating models (fi/mitigation.hpp)
    /// share the probe with their inner model and stamp razor fates onto
    /// its records. Probes are per-trial scratch state: attach around one
    /// trial and detach before cloning the model.
    virtual void set_forensic_probe(ForensicProbe* probe) { probe_ = probe; }
    ForensicProbe* forensic_probe() const { return probe_; }

    // ExFaultHook:
    void on_cycle(bool fi_active) final;
    /// O(1) batch form (pure accumulation, so it is order-independent
    /// against on_ex_result): lets the ISS charge a whole stall group —
    /// or, under threaded dispatch, an entire run's kernel window — in
    /// one call.
    void on_cycles(std::uint64_t n, bool fi_active) final;
    std::uint32_t on_ex_result(const ExEvent& ev, std::uint32_t correct) final;

    /// Credits `n` ALU operations that provably latched their correct
    /// result — only valid when can_inject() is false, where corrupt()
    /// is the identity for every possible draw. Pure statistics: no
    /// corruption, no RNG. Virtual so decorating models keep their inner
    /// model's counters in lock-step (razor's corrupt() drives the inner
    /// on_ex_result, so the inner must see the same op count).
    virtual void count_clean_ops(std::uint64_t n) { stats_.alu_ops += n; }

protected:
    FaultModel() = default;
    // Copyable by derived clone() implementations only.
    FaultModel(const FaultModel&) = default;
    FaultModel& operator=(const FaultModel&) = default;

    /// Model-specific corruption: returns the value to latch.
    virtual std::uint32_t corrupt(const ExEvent& ev, std::uint32_t correct) = 0;
    /// Called when the operating point changes (derived-state refresh).
    virtual void operating_point_changed() {}
    /// Called when the sampling mode changes (batch-state refresh).
    virtual void sampling_mode_changed() {}

    /// Applies the fault policy to one endpoint of `value`.
    std::uint32_t apply_fault(std::uint32_t value, std::uint32_t endpoint,
                              std::uint32_t prev_result);

    OperatingPoint point_;
    FaultPolicy policy_ = FaultPolicy::BitFlip;
    Rng rng_;
    FiStats stats_;
    FaultSamplingMode sampling_mode_ = FaultSamplingMode::Batched;
    ForensicProbe* probe_ = nullptr;

private:
    /// set_operating_point memoization guard: false until the first call,
    /// so the constructor-established derived state is refreshed once even
    /// for the default point.
    bool point_applied_ = false;
};

// ---------------------------------------------------------------------------

/// Model A: every endpoint flips with a fixed probability per ALU result,
/// independent of frequency, voltage, instruction and circuit timing.
class ModelA final : public FaultModel {
public:
    explicit ModelA(double flip_probability);

    std::string name() const override { return "A"; }
    ModelFeatures features() const override;
    std::unique_ptr<FaultModel> clone() const override {
        return std::make_unique<ModelA>(*this);
    }
    double flip_probability() const { return p_; }

    /// A zero probability can never flip anything.
    bool can_inject() const override { return p_ > 0.0; }

protected:
    std::uint32_t corrupt(const ExEvent& ev, std::uint32_t correct) override;

private:
    double p_;
};

/// Models B and B+: per-endpoint worst-case STA delays; injection is
/// deterministic given the (possibly noise-modulated) capture window.
/// sigma = 0 gives model B; sigma > 0 gives model B+.
class ModelB final : public FaultModel {
public:
    /// `sta` must come from the full (instruction-oblivious) netlist STA;
    /// `fit` is the five-corner Vdd-delay fit used for scaling.
    ModelB(StaResult sta, const VddDelayFit& fit);

    std::string name() const override;
    ModelFeatures features() const override;
    std::unique_ptr<FaultModel> clone() const override {
        return std::make_unique<ModelB>(*this);
    }

    /// Lowest frequency at which this model can inject at the current
    /// operating point (with worst-case clipped noise), MHz.
    double first_fault_frequency_mhz() const;

    /// Exact (quantization-aware) reachability: true iff some entry of the
    /// noise-window table (or the no-noise window) is small enough for the
    /// most critical endpoint to violate.
    bool can_inject() const override;

    /// Per-trial reseed also restarts the draw batch (unconsumed prefetch
    /// is dropped; the fresh stream starts at the new seed).
    void reseed(std::uint64_t seed) override {
        FaultModel::reseed(seed);
        batch_.start_trial();
    }

protected:
    std::uint32_t corrupt(const ExEvent& ev, std::uint32_t correct) override;
    void operating_point_changed() override;
    void sampling_mode_changed() override { refresh_sampling(); }

private:
    void refresh_sampling();
    std::uint32_t apply_leading_faults(std::size_t count, std::uint32_t correct,
                                       std::uint32_t prev_result);

    StaResult sta_;
    const VddDelayFit* fit_;
    std::vector<double> window_ps_;        // per endpoint: delay + setup @ Vref
    std::vector<std::uint32_t> order_;     // endpoints by decreasing window
    double max_window_ps_ = 0.0;
    // Noise -> capture-window lookup (quantized; see .cpp).
    std::vector<double> noise_window_table_;
    double base_window_ps_ = 0.0;          // no-noise capture window @ Vref
    // Derived per point (operating_point_changed): the smallest capture
    // window any noise draw can produce (= the table minimum, or the
    // no-noise window) and the precomputed clip level feeding the table
    // index — both hoisted out of the per-ALU-op corrupt() path.
    double min_window_ps_ = 0.0;
    double noise_clip_v_ = 0.0;
    // Hoisted noise source (satellite: no per-corrupt() VddNoise
    // construction) and the batched-sampling decision tables: for table
    // index i, violation_count_[i] is how many leading endpoints of
    // order_ violate that window, and cum_mask_[k] is the XOR-cumulative
    // bit mask of the first k endpoints of order_ — together they reduce
    // a batched corrupt() to one index, one count load and one mask apply
    // (provably equal to the scalar per-endpoint walk; see .cpp).
    VddNoise vdd_noise_;
    std::vector<std::uint8_t> violation_count_;
    std::uint8_t base_violation_count_ = 0;  // no-noise-table counterpart
    std::vector<std::uint32_t> cum_mask_;
    NoiseIndexBatch batch_;
    // Quantized ("B-q") only: alias over the violation-count distribution
    // (the index masses pushed through violation_count_), sampled directly
    // per op — the index itself carries no other information in model B.
    AliasTable count_alias_;
};

/// Model C: statistical, instruction-aware fault injection from DTA CDFs.
class ModelC final : public FaultModel {
public:
    ModelC(std::shared_ptr<const TimingErrorCdfs> cdfs, const VddDelayFit& fit);

    std::string name() const override {
        // Like ModelB: the alias-sampled stream is its own named variant.
        return sampling_mode_ == FaultSamplingMode::Quantized &&
                       point_.noise.sigma_mv > 0.0
                   ? "C-q"
                   : "C";
    }
    ModelFeatures features() const override;
    std::unique_ptr<FaultModel> clone() const override {
        return std::make_unique<ModelC>(*this);  // shares the const CDF store
    }

    const TimingErrorCdfs& cdfs() const { return *cdfs_; }

    /// Lowest frequency with a non-zero injection probability for `cls`
    /// at the current operating point (with worst-case clipped noise), MHz.
    double first_fault_frequency_mhz(ExClass cls) const;

    /// True iff the smallest reachable capture window is below the worst
    /// arrival of ANY characterized class (conservative over classes: the
    /// kernel's instruction mix is unknown here).
    bool can_inject() const override;

    /// Per-trial reseed also restarts the draw batch.
    void reseed(std::uint64_t seed) override {
        FaultModel::reseed(seed);
        batch_.start_trial();
    }

protected:
    std::uint32_t corrupt(const ExEvent& ev, std::uint32_t correct) override;
    void operating_point_changed() override;
    void sampling_mode_changed() override { refresh_sampling(); }

private:
    void refresh_sampling();

    std::shared_ptr<const TimingErrorCdfs> cdfs_;
    const VddDelayFit* fit_;
    std::vector<double> noise_window_table_;
    double base_window_ps_ = 0.0;
    double min_window_ps_ = 0.0;
    double noise_clip_v_ = 0.0;
    VddNoise vdd_noise_;       // hoisted out of corrupt() (satellite fix)
    NoiseIndexBatch batch_;    // prefetched window-table indices
    // Per-class CDF-store lookups hoisted out of corrupt(): the store is
    // immutable for the model's lifetime, so the per-op class dispatch is
    // two array loads instead of map/throw-guarded store calls.
    struct ClassView {
        bool present = false;
        double max_window_ps = 0.0;
        const std::vector<std::uint32_t>* order = nullptr;
    };
    std::array<ClassView, kExClassCount> class_view_{};
};

/// Shared helper: builds the quantized noise -> capture-window table.
/// Entry i covers noise value -clip + i * step; window = period /
/// factor(vdd + noise) expressed at Vref.
std::vector<double> build_noise_window_table(const OperatingPoint& point,
                                             const VddDelayFit& fit,
                                             std::size_t entries = 1025);

/// Maps a concrete noise draw (volts) to a table index.
std::size_t noise_table_index(const OperatingPoint& point, double noise_v,
                              std::size_t entries);

/// Same mapping with the clip level precomputed (hot-path form: the clip
/// is a per-point constant, so the models derive it once per operating
/// point instead of twice per ALU op). Bit-identical to the overload
/// above — the arithmetic sequence is unchanged.
std::size_t noise_table_index(double clip_v, double noise_v,
                              std::size_t entries);

}  // namespace sfi
