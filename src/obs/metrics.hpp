// Deterministic named counters and gauges for run telemetry.
//
// The registry follows the PhaseProfile merge discipline (src/perf): each
// worker accumulates into its own instance (or the dispatch thread owns a
// single one) and partial registries are merged on the dispatch thread —
// the class itself is NOT thread-safe. Counters merge by addition, which
// is associative and commutative, so any merge order yields identical
// totals; gauges are last-writer-wins point samples.
//
// Naming convention: metrics whose name starts with "run." describe the
// specific execution (store hits, batch counts, wall-clock-dependent
// values) and are excluded from logical-mode ledger emission so that warm
// reruns and different thread counts stay byte-identical. Everything else
// must be a pure function of the campaign spec and is emitted in both
// trace modes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace sfi::obs {

/// True when `name` is volatile by convention ("run." prefix) and must be
/// kept out of byte-stable (logical-mode) ledger output.
bool volatile_metric_name(std::string_view name);

class MetricsRegistry {
public:
    /// Adds `delta` to the named counter, creating it at zero first.
    void add(std::string_view name, std::uint64_t delta = 1);

    /// Sets the named gauge to `value` (last writer wins).
    void set_gauge(std::string_view name, double value);

    /// Current counter value; absent counters read as 0.
    std::uint64_t counter(std::string_view name) const;

    /// Current gauge value; absent gauges read as 0.0.
    double gauge(std::string_view name) const;

    /// Folds `other` into this registry: counters add, gauges overwrite.
    void merge(const MetricsRegistry& other);

    void clear();
    bool empty() const { return counters_.empty() && gauges_.empty(); }

    /// Ordered views (std::map keeps lexicographic key order, which is
    /// what makes emission deterministic).
    const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
        return counters_;
    }
    const std::map<std::string, double, std::less<>>& gauges() const {
        return gauges_;
    }

private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
};

}  // namespace sfi::obs
