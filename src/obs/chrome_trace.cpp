#include "obs/chrome_trace.hpp"

#include <cstdlib>
#include <set>
#include <string>

#include "perf/json_writer.hpp"

namespace sfi::obs {

namespace {

/// Re-emits a raw ledger JSON value through the writer. The ledger only
/// produces strings, numbers and booleans at this level, so anything else
/// is passed through as its raw text.
void raw_value(perf::JsonWriter& json, const std::string& raw) {
    if (!raw.empty() && raw[0] == '"') {
        // Round-trip through the event helper is unnecessary: the slice is
        // already a quoted JSON string; strip the quotes and unescape via a
        // minimal path — LedgerEvent::arg_string handles full unescaping,
        // but here we only have the raw slice, so rebuild an event arg.
        LedgerEvent tmp;
        tmp.args.emplace_back("v", raw);
        json.value(tmp.arg_string("v"));
        return;
    }
    if (raw == "true" || raw == "false") {
        json.value(raw == "true");
        return;
    }
    json.value(std::strtod(raw.c_str(), nullptr));
}

void event_common(perf::JsonWriter& json, const LedgerEvent& event) {
    json.field("pid", std::uint64_t{1});
    json.field("tid", event.tid);
    json.field("ts", event.ts_us);
}

}  // namespace

void export_chrome_trace(const LedgerFile& ledger, std::ostream& os) {
    perf::JsonWriter json(os);
    json.begin_object();
    json.key("traceEvents");
    json.begin_array();

    json.begin_object();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", std::uint64_t{1});
    json.key("args");
    json.begin_object();
    json.field("name", "sfi run");
    json.end_object();
    json.end_object();

    std::set<std::uint64_t> tids;
    for (const LedgerEvent& event : ledger.events) tids.insert(event.tid);
    for (const std::uint64_t tid : tids) {
        json.begin_object();
        json.field("name", "thread_name");
        json.field("ph", "M");
        json.field("pid", std::uint64_t{1});
        json.field("tid", tid);
        json.key("args");
        json.begin_object();
        json.field("name", tid == 0 ? std::string("dispatch")
                                    : "worker " + std::to_string(tid));
        json.end_object();
        json.end_object();
    }

    for (const LedgerEvent& event : ledger.events) {
        json.begin_object();
        json.field("name", event.name);
        json.field("ph", std::string_view(&event.ph, 1));
        event_common(json, event);
        if (event.ph == 'X') json.field("dur", event.dur_us);
        if (event.ph == 'i') json.field("s", "t");
        if (!event.args.empty()) {
            json.key("args");
            json.begin_object();
            for (const auto& [key, raw] : event.args) {
                json.key(key);
                raw_value(json, raw);
            }
            json.end_object();
        }
        json.end_object();
    }

    json.end_array();
    json.field("displayTimeUnit", "ms");
    json.end_object();  // the writer terminates the document with \n
}

}  // namespace sfi::obs
