// Live progress line for long campaigns: `[panel] point k/N, trials/s,
// ETA` rewritten in place on stderr. Numbers come from the same
// MetricsRegistry the ledger snapshots, so the console, the ledger and
// the manifest never disagree about how many trials were spent.
//
// The reporter also works headless (null console): the campaign runner
// always keeps one attached so wall-mode ledgers get "progress" events
// with the ETA estimate, which is what lets sfi_trace score ETA accuracy
// after the fact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace sfi::obs {

/// True when stderr is an interactive terminal (always false on platforms
/// without isatty). Callers gate console output on this plus --quiet.
bool stderr_is_tty();

class ProgressReporter {
public:
    /// `console` may be null: estimates are still computed (for ledger
    /// progress events) but nothing is printed. `metrics` supplies the
    /// "campaign.trials_spent" counter used for the trials/s figure.
    ProgressReporter(std::ostream* console, const MetricsRegistry* metrics);

    void begin_panel(const std::string& name, std::size_t total_points);
    /// Call once per finished point, after the metrics registry has been
    /// updated for it.
    void point_done();
    /// Clears the in-place line so subsequent output starts clean.
    void end_panel();

    std::size_t points_done() const { return done_; }
    /// Estimated seconds to finish the current panel; 0 until the first
    /// point lands or when the total is unknown (bisection panels).
    double eta_s() const { return eta_s_; }
    double trials_per_sec() const { return tps_; }

private:
    void render();

    std::ostream* console_;
    const MetricsRegistry* metrics_;
    std::string panel_;
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    std::uint64_t trials_at_start_ = 0;
    std::int64_t t0_ns_ = 0;
    double eta_s_ = 0.0;
    double tps_ = 0.0;
    std::size_t line_len_ = 0;
};

}  // namespace sfi::obs
