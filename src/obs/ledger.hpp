// Structured run ledger: a JSONL event stream recording what a campaign
// did — spans, instants, counters — cheap enough to leave attached and
// deterministic enough to diff in CI.
//
// File format. Line 1 is a *volatile* header object
//
//   {"schema":"sfi-ledger","version":1,"mode":"logical","created_unix_s":N}
//
// which carries wall-clock provenance in both modes and is therefore
// excluded from byte comparisons (strip it with `tail -n +2`). Every
// subsequent line is one event:
//
//   {"seq":1,"ts":0,"tid":0,"ph":"B","name":"point","args":{...}}
//
// `ph` follows the Chrome trace-event vocabulary: "B"/"E" span begin/end,
// "i" instant, "X" pre-timed complete span (adds "dur"), "C" counter.
// `ts`/`dur` are microseconds since the ledger was opened. `tid` 0 is the
// dispatch thread; worker lanes are 1..N.
//
// Determinism contract. In Logical mode the ledger records only the
// *stable narrative* — events whose presence and payload are pure
// functions of the campaign spec: campaign/panel/point spans, bisection
// probes, stopping classifications, and non-"run." counters. Timestamps
// are zeroed, worker spans are dropped, and store hits/misses, batch
// spans, half-width trajectories and fast-path activations are omitted,
// because a warm rerun answers points from the store without recomputing
// them. The result is byte-identical across thread counts and warm/cold
// reruns (modulo the header line) for any healthy store; store-corruption
// warnings are emitted in both modes and are the documented exception.
// Wall mode records everything with real timestamps for humans and the
// Chrome exporter.
//
// Threading. All emission happens on the dispatch thread. Workers never
// touch the Ledger directly: per-thread buffers (e.g. the per-worker
// activity accumulators in mc/parallel) are drained by the dispatch
// thread at batch barriers via worker_span(), in worker-index order.
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace sfi::obs {

enum class TraceMode : std::uint8_t {
    Logical,  ///< byte-stable spec narrative; timestamps zeroed
    Wall,     ///< full event stream with wall-clock timestamps
};

const char* trace_mode_name(TraceMode mode);
/// Parses "logical"/"wall"; nullopt on anything else.
std::optional<TraceMode> parse_trace_mode(std::string_view text);

/// One key/value argument of an event, pre-rendered to deterministic JSON
/// (doubles via format_double, the same shortest-round-trip form the CSV
/// writer uses).
struct Field {
    Field(std::string_view key, std::string_view value);
    Field(std::string_view key, const char* value);
    Field(std::string_view key, double value);
    Field(std::string_view key, bool value);
    Field(std::string_view key, std::uint64_t value);
    Field(std::string_view key, std::int64_t value);
    Field(std::string_view key, int value)
        : Field(key, static_cast<std::int64_t>(value)) {}
    Field(std::string_view key, unsigned value)
        : Field(key, static_cast<std::uint64_t>(value)) {}

    std::string key;
    std::string json;  ///< rendered value, quotes included for strings
};

class Ledger {
public:
    /// Opens `path` for writing (truncating) and emits the header line;
    /// throws std::runtime_error when the file cannot be created.
    Ledger(const std::string& path, TraceMode mode);

    /// Writes to a caller-owned stream (tests); emits the header line.
    Ledger(std::ostream& os, TraceMode mode);

    ~Ledger();
    Ledger(const Ledger&) = delete;
    Ledger& operator=(const Ledger&) = delete;

    TraceMode mode() const { return mode_; }
    /// True in Logical mode — callers gate volatile events on this.
    bool logical() const { return mode_ == TraceMode::Logical; }

    /// Span begin/end on the dispatch lane (tid 0).
    void begin(std::string_view name, std::initializer_list<Field> args = {});
    void end(std::string_view name, std::initializer_list<Field> args = {});

    /// Point event on the dispatch lane.
    void instant(std::string_view name, std::initializer_list<Field> args = {});

    /// Pre-timed complete span on a worker lane (tid >= 1). Dropped in
    /// logical mode. Dispatch thread only: workers buffer their activity
    /// and the dispatch thread drains it at batch barriers.
    void worker_span(std::uint64_t tid, std::string_view name, double ts_us,
                     double dur_us, std::initializer_list<Field> args = {});

    /// Emits one "C" event per metric. Logical mode skips volatile
    /// ("run."-prefixed) names so the output stays byte-stable.
    void emit_metrics(const MetricsRegistry& metrics);

    /// Microseconds since the ledger was opened; always 0 in logical mode
    /// so event payloads stay byte-stable.
    double now_us() const;

    void flush();
    std::uint64_t events_written() const { return seq_; }

private:
    void emit(char ph, std::uint64_t tid, std::string_view name, double ts_us,
              double dur_us, bool has_dur, std::initializer_list<Field> args);
    void write_header();
    std::ostream& out() { return owned_ ? *owned_ : *external_; }

    TraceMode mode_;
    std::unique_ptr<std::ofstream> owned_;
    std::ostream* external_ = nullptr;
    std::uint64_t seq_ = 0;
    std::int64_t epoch_ns_ = 0;  // steady_clock epoch for now_us()
};

/// Parsed event (reader side, used by sfi_trace and the exporter).
struct LedgerEvent {
    std::uint64_t seq = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;  // "X" events only
    std::uint64_t tid = 0;
    char ph = 'i';
    std::string name;
    /// Argument key -> raw JSON value slice, in emission order.
    std::vector<std::pair<std::string, std::string>> args;

    bool has_arg(std::string_view key) const;
    /// Unquoted string value; "" when absent or not a string.
    std::string arg_string(std::string_view key) const;
    /// Numeric value; `fallback` when absent or not a number.
    double arg_double(std::string_view key, double fallback = 0.0) const;
    std::uint64_t arg_uint(std::string_view key,
                           std::uint64_t fallback = 0) const;
    /// Boolean value; `fallback` when absent or not a JSON boolean.
    bool arg_bool(std::string_view key, bool fallback = false) const;
};

struct LedgerFile {
    std::string header_line;
    TraceMode mode = TraceMode::Wall;
    int version = 0;
    std::vector<LedgerEvent> events;
};

/// Parses a ledger stream; throws std::runtime_error on malformed input.
LedgerFile read_ledger(std::istream& is);
/// Opens and parses `path`; throws std::runtime_error on I/O or parse errors.
LedgerFile read_ledger_file(const std::string& path);

}  // namespace sfi::obs
