#include "obs/ledger.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "perf/json_writer.hpp"
#include "util/csv.hpp"

namespace sfi::obs {

namespace {

std::string quoted(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    out += perf::JsonWriter::escape(text);
    out += '"';
    return out;
}

std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

const char* trace_mode_name(TraceMode mode) {
    return mode == TraceMode::Logical ? "logical" : "wall";
}

std::optional<TraceMode> parse_trace_mode(std::string_view text) {
    if (text == "logical") return TraceMode::Logical;
    if (text == "wall") return TraceMode::Wall;
    return std::nullopt;
}

Field::Field(std::string_view key, std::string_view value)
    : key(key), json(quoted(value)) {}
Field::Field(std::string_view key, const char* value)
    : Field(key, std::string_view(value)) {}
Field::Field(std::string_view key, double value)
    : key(key), json(format_double(value)) {}
Field::Field(std::string_view key, bool value)
    : key(key), json(value ? "true" : "false") {}
Field::Field(std::string_view key, std::uint64_t value)
    : key(key), json(std::to_string(value)) {}
Field::Field(std::string_view key, std::int64_t value)
    : key(key), json(std::to_string(value)) {}

Ledger::Ledger(const std::string& path, TraceMode mode) : mode_(mode) {
    owned_ = std::make_unique<std::ofstream>(path, std::ios::binary |
                                                       std::ios::trunc);
    if (!*owned_) {
        throw std::runtime_error("cannot open trace ledger for writing: " +
                                 path);
    }
    epoch_ns_ = steady_now_ns();
    write_header();
}

Ledger::Ledger(std::ostream& os, TraceMode mode)
    : mode_(mode), external_(&os) {
    epoch_ns_ = steady_now_ns();
    write_header();
}

Ledger::~Ledger() { flush(); }

void Ledger::write_header() {
    std::string line = "{\"schema\":\"sfi-ledger\",\"version\":1,\"mode\":\"";
    line += trace_mode_name(mode_);
    line += "\",\"created_unix_s\":";
    line += std::to_string(static_cast<std::int64_t>(std::time(nullptr)));
    line += "}\n";
    out() << line;
}

double Ledger::now_us() const {
    if (logical()) return 0.0;
    return static_cast<double>(steady_now_ns() - epoch_ns_) / 1000.0;
}

void Ledger::emit(char ph, std::uint64_t tid, std::string_view name,
                  double ts_us, double dur_us, bool has_dur,
                  std::initializer_list<Field> args) {
    ++seq_;
    std::string line;
    line.reserve(96);
    line += "{\"seq\":";
    line += std::to_string(seq_);
    line += ",\"ts\":";
    line += format_double(logical() ? 0.0 : ts_us);
    if (has_dur) {
        line += ",\"dur\":";
        line += format_double(logical() ? 0.0 : dur_us);
    }
    line += ",\"tid\":";
    line += std::to_string(logical() ? 0 : tid);
    line += ",\"ph\":\"";
    line += ph;
    line += "\",\"name\":";
    line += quoted(name);
    if (args.size() != 0) {
        line += ",\"args\":{";
        bool first = true;
        for (const Field& field : args) {
            if (!first) line += ',';
            first = false;
            line += quoted(field.key);
            line += ':';
            line += field.json;
        }
        line += '}';
    }
    line += "}\n";
    out() << line;
}

void Ledger::begin(std::string_view name, std::initializer_list<Field> args) {
    emit('B', 0, name, now_us(), 0.0, false, args);
}

void Ledger::end(std::string_view name, std::initializer_list<Field> args) {
    emit('E', 0, name, now_us(), 0.0, false, args);
}

void Ledger::instant(std::string_view name,
                     std::initializer_list<Field> args) {
    emit('i', 0, name, now_us(), 0.0, false, args);
}

void Ledger::worker_span(std::uint64_t tid, std::string_view name,
                         double ts_us, double dur_us,
                         std::initializer_list<Field> args) {
    if (logical()) return;
    emit('X', tid, name, ts_us, dur_us, true, args);
}

void Ledger::emit_metrics(const MetricsRegistry& metrics) {
    const double ts = now_us();
    for (const auto& [name, value] : metrics.counters()) {
        if (logical() && volatile_metric_name(name)) continue;
        emit('C', 0, name, ts, 0.0, false, {Field("value", value)});
    }
    for (const auto& [name, value] : metrics.gauges()) {
        if (logical() && volatile_metric_name(name)) continue;
        emit('C', 0, name, ts, 0.0, false, {Field("value", value)});
    }
}

void Ledger::flush() { out().flush(); }

// ---------------------------------------------------------------------------
// Reader: a minimal parser for the flat JSON this file emits (objects,
// strings, numbers, booleans, null, and one nested object for "args").

namespace {

struct Cursor {
    const char* p;
    const char* end;
    bool done() const { return p >= end; }
};

void skip_ws(Cursor& c) {
    while (!c.done() &&
           (*c.p == ' ' || *c.p == '\t' || *c.p == '\r' || *c.p == '\n')) {
        ++c.p;
    }
}

[[noreturn]] void fail(const char* what) {
    throw std::runtime_error(std::string("malformed ledger line: ") + what);
}

void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    }
}

std::string parse_string(Cursor& c) {
    if (c.done() || *c.p != '"') fail("expected string");
    ++c.p;
    std::string out;
    while (true) {
        if (c.done()) fail("unterminated string");
        const char ch = *c.p++;
        if (ch == '"') return out;
        if (ch != '\\') {
            out += ch;
            continue;
        }
        if (c.done()) fail("dangling escape");
        const char esc = *c.p++;
        switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (c.end - c.p < 4) fail("short \\u escape");
                char hex[5] = {c.p[0], c.p[1], c.p[2], c.p[3], 0};
                char* stop = nullptr;
                const unsigned cp =
                    static_cast<unsigned>(std::strtoul(hex, &stop, 16));
                if (stop != hex + 4) fail("bad \\u escape");
                c.p += 4;
                append_utf8(out, cp);
                break;
            }
            default: fail("unknown escape");
        }
    }
}

/// Scans one JSON value without interpreting it, returning the raw slice.
std::string scan_value(Cursor& c) {
    skip_ws(c);
    if (c.done()) fail("expected value");
    const char* start = c.p;
    if (*c.p == '"') {
        parse_string(c);
    } else if (*c.p == '{' || *c.p == '[') {
        int depth = 0;
        while (!c.done()) {
            if (*c.p == '"') {
                parse_string(c);
                continue;
            }
            if (*c.p == '{' || *c.p == '[') ++depth;
            if (*c.p == '}' || *c.p == ']') --depth;
            ++c.p;
            if (depth == 0) break;
        }
        if (depth != 0) fail("unbalanced container");
    } else {
        while (!c.done() && *c.p != ',' && *c.p != '}' && *c.p != ']' &&
               *c.p != ' ' && *c.p != '\t') {
            ++c.p;
        }
    }
    return std::string(start, static_cast<std::size_t>(c.p - start));
}

using RawObject = std::vector<std::pair<std::string, std::string>>;

RawObject parse_object(std::string_view text) {
    Cursor c{text.data(), text.data() + text.size()};
    skip_ws(c);
    if (c.done() || *c.p != '{') fail("expected object");
    ++c.p;
    RawObject fields;
    skip_ws(c);
    if (!c.done() && *c.p == '}') return fields;
    while (true) {
        skip_ws(c);
        std::string key = parse_string(c);
        skip_ws(c);
        if (c.done() || *c.p != ':') fail("expected ':'");
        ++c.p;
        fields.emplace_back(std::move(key), scan_value(c));
        skip_ws(c);
        if (c.done()) fail("unterminated object");
        if (*c.p == ',') {
            ++c.p;
            continue;
        }
        if (*c.p == '}') return fields;
        fail("expected ',' or '}'");
    }
}

const std::string* find_raw(const RawObject& fields, std::string_view key) {
    for (const auto& [k, v] : fields) {
        if (k == key) return &v;
    }
    return nullptr;
}

double raw_double(const RawObject& fields, std::string_view key,
                  double fallback) {
    const std::string* raw = find_raw(fields, key);
    if (raw == nullptr || raw->empty() || (*raw)[0] == '"') return fallback;
    return std::strtod(raw->c_str(), nullptr);
}

std::uint64_t raw_uint(const RawObject& fields, std::string_view key,
                       std::uint64_t fallback) {
    const std::string* raw = find_raw(fields, key);
    if (raw == nullptr || raw->empty() || (*raw)[0] == '"') return fallback;
    return std::strtoull(raw->c_str(), nullptr, 10);
}

std::string raw_string(const RawObject& fields, std::string_view key) {
    const std::string* raw = find_raw(fields, key);
    if (raw == nullptr || raw->empty() || (*raw)[0] != '"') return {};
    Cursor c{raw->data(), raw->data() + raw->size()};
    return parse_string(c);
}

}  // namespace

bool LedgerEvent::has_arg(std::string_view key) const {
    return find_raw(args, key) != nullptr;
}

std::string LedgerEvent::arg_string(std::string_view key) const {
    return raw_string(args, key);
}

double LedgerEvent::arg_double(std::string_view key, double fallback) const {
    return raw_double(args, key, fallback);
}

std::uint64_t LedgerEvent::arg_uint(std::string_view key,
                                    std::uint64_t fallback) const {
    return raw_uint(args, key, fallback);
}

bool LedgerEvent::arg_bool(std::string_view key, bool fallback) const {
    const std::string* raw = find_raw(args, key);
    if (raw == nullptr) return fallback;
    if (*raw == "true") return true;
    if (*raw == "false") return false;
    return fallback;
}

LedgerFile read_ledger(std::istream& is) {
    LedgerFile file;
    std::string line;
    if (!std::getline(is, line)) {
        throw std::runtime_error("empty ledger: missing header line");
    }
    const RawObject header = parse_object(line);
    if (raw_string(header, "schema") != "sfi-ledger") {
        throw std::runtime_error("not a sfi-ledger file (bad schema field)");
    }
    file.header_line = line;
    file.version = static_cast<int>(raw_uint(header, "version", 0));
    const auto mode = parse_trace_mode(raw_string(header, "mode"));
    if (!mode) throw std::runtime_error("ledger header has unknown mode");
    file.mode = *mode;

    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const RawObject fields = parse_object(line);
        LedgerEvent event;
        event.seq = raw_uint(fields, "seq", 0);
        event.ts_us = raw_double(fields, "ts", 0.0);
        event.dur_us = raw_double(fields, "dur", 0.0);
        event.tid = raw_uint(fields, "tid", 0);
        const std::string ph = raw_string(fields, "ph");
        if (ph.size() != 1) throw std::runtime_error("event has bad ph");
        event.ph = ph[0];
        event.name = raw_string(fields, "name");
        if (const std::string* raw = find_raw(fields, "args")) {
            event.args = parse_object(*raw);
        }
        file.events.push_back(std::move(event));
    }
    return file;
}

LedgerFile read_ledger_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        throw std::runtime_error("cannot open trace ledger: " + path);
    }
    return read_ledger(is);
}

}  // namespace sfi::obs
