#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sfi::obs {

namespace {

std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string human_rate(double per_sec) {
    char buf[32];
    if (per_sec >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.1fM", per_sec / 1e6);
    } else if (per_sec >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.1fk", per_sec / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.0f", per_sec);
    }
    return buf;
}

std::string human_eta(double seconds) {
    char buf[32];
    if (seconds >= 600.0) {
        std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
    } else {
        std::snprintf(buf, sizeof buf, "%.0fs", seconds);
    }
    return buf;
}

}  // namespace

bool stderr_is_tty() {
#if defined(__unix__) || defined(__APPLE__)
    return isatty(fileno(stderr)) != 0;
#else
    return false;
#endif
}

ProgressReporter::ProgressReporter(std::ostream* console,
                                   const MetricsRegistry* metrics)
    : console_(console), metrics_(metrics) {}

void ProgressReporter::begin_panel(const std::string& name,
                                   std::size_t total_points) {
    panel_ = name;
    total_ = total_points;
    done_ = 0;
    eta_s_ = 0.0;
    tps_ = 0.0;
    trials_at_start_ =
        metrics_ != nullptr ? metrics_->counter("campaign.trials_spent") : 0;
    t0_ns_ = steady_now_ns();
}

void ProgressReporter::point_done() {
    ++done_;
    const double elapsed_s =
        static_cast<double>(steady_now_ns() - t0_ns_) / 1e9;
    const std::uint64_t trials =
        (metrics_ != nullptr ? metrics_->counter("campaign.trials_spent")
                             : 0) -
        trials_at_start_;
    tps_ = elapsed_s > 0.0 ? static_cast<double>(trials) / elapsed_s : 0.0;
    eta_s_ = (total_ > done_ && done_ > 0)
                 ? elapsed_s * static_cast<double>(total_ - done_) /
                       static_cast<double>(done_)
                 : 0.0;
    render();
}

void ProgressReporter::render() {
    if (console_ == nullptr) return;
    std::string line = "[" + panel_ + "] point " + std::to_string(done_);
    if (total_ > 0) line += "/" + std::to_string(total_);
    line += ", " + human_rate(tps_) + " trials/s";
    if (total_ > 0) line += ", ETA " + human_eta(eta_s_);
    std::string padded = line;
    if (line_len_ > padded.size()) padded.append(line_len_ - padded.size(), ' ');
    line_len_ = line.size();
    *console_ << '\r' << padded << std::flush;
}

void ProgressReporter::end_panel() {
    if (console_ != nullptr && line_len_ > 0) {
        *console_ << '\r' << std::string(line_len_, ' ') << '\r'
                  << std::flush;
    }
    line_len_ = 0;
}

}  // namespace sfi::obs
