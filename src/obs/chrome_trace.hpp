// Converts a parsed ledger into Chrome trace-event JSON, viewable in
// chrome://tracing or https://ui.perfetto.dev. The ledger's event phases
// already follow the trace-event vocabulary, so the export is mostly a
// re-framing: events land in {"traceEvents":[...]} with pid 1, the
// dispatch thread on tid 0 and worker lanes on tid 1..N, plus "M"
// metadata events naming each lane. Counter events become "C" samples so
// trial totals plot as tracks.
#pragma once

#include <iosfwd>

#include "obs/ledger.hpp"

namespace sfi::obs {

/// Writes Chrome trace JSON for `ledger` to `os`. Output is deterministic
/// for a given ledger (stable key order, round-trippable numbers).
void export_chrome_trace(const LedgerFile& ledger, std::ostream& os);

}  // namespace sfi::obs
