#include "obs/metrics.hpp"

namespace sfi::obs {

bool volatile_metric_name(std::string_view name) {
    return name.rfind("run.", 0) == 0;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        counters_.emplace(std::string(name), delta);
    } else {
        it->second += delta;
    }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        gauges_.emplace(std::string(name), value);
    } else {
        it->second = value;
    }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    for (const auto& [name, value] : other.counters_) counters_[name] += value;
    for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
}

void MetricsRegistry::clear() {
    counters_.clear();
    gauges_.clear();
}

}  // namespace sfi::obs
