// ORBIS32-subset instruction set used by the cycle-accurate ISS.
//
// The subset covers everything the four paper benchmarks need: integer
// ALU (add/sub/logic/shift/mul, register and immediate forms), set-flag
// compares, conditional/unconditional branches, loads/stores and l.nop
// control codes. Encodings follow the OpenRISC 1000 architecture manual
// (ORBIS32) so that binaries round-trip through encoder and decoder.
//
// Deviation from ORBIS32 documented in DESIGN.md: branches have NO delay
// slot (mor1kx "no-delay" variant); this affects cycle counts only, not
// fault-injection behaviour. Full subset reference: docs/ISA.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sfi {

/// Mnemonic-level opcode. Immediate and register forms are distinct
/// because they decode from different primary opcodes.
enum class Op : std::uint8_t {
    // Control
    J, JAL, JR, JALR, BF, BNF, NOP, MOVHI,
    // Memory
    LWZ, LBZ, LHZ, SW, SB, SH,
    // ALU register-register
    ADD, SUB, AND, OR, XOR, MUL, SLL, SRL, SRA,
    // ALU register-immediate
    ADDI, ANDI, ORI, XORI, MULI, SLLI, SRLI, SRAI,
    // Set-flag register-register
    SFEQ, SFNE, SFGTU, SFGEU, SFLTU, SFLEU, SFGTS, SFGES, SFLTS, SFLES,
    // Set-flag register-immediate
    SFEQI, SFNEI, SFGTUI, SFGEUI, SFLTUI, SFLEUI, SFGTSI, SFGESI, SFLTSI,
    SFLESI,
    kCount
};

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

/// Functional unit exercised in the EX stage. This is the granularity at
/// which dynamic timing analysis conditions the arrival-time statistics
/// (paper §3.4: "characterization is performed independently for different
/// instructions, even if they affect the same pipeline stage").
enum class ExClass : std::uint8_t {
    None,   ///< no EX-stage ALU activity (branches, loads, stores, nop)
    Add,    ///< adder, A + B
    Sub,    ///< adder in subtract mode, A - B
    And, Or, Xor,
    Sll, Srl, Sra,
    Mul,    ///< 32x32 -> low-32 multiplier
    Cmp,    ///< set-flag compares (subtract path + flag logic)
    kCount
};

constexpr std::size_t kExClassCount = static_cast<std::size_t>(ExClass::kCount);

/// l.nop control codes (or1ksim conventions plus two kernel markers used
/// by the FI framework to delimit the benchmark kernel, paper §2.2).
enum NopCode : std::uint16_t {
    kNopNop = 0x0000,          ///< plain no-operation
    kNopExit = 0x0001,         ///< terminate simulation, r3 = exit code
    kNopReport = 0x0002,       ///< report r3 to the simulator log
    kNopKernelBegin = 0x0010,  ///< enable fault injection (kernel entry)
    kNopKernelEnd = 0x0011,    ///< disable fault injection (kernel exit)
};

/// One decoded instruction. `imm` is stored sign- or zero-extended to
/// 32 bits exactly as the execution semantics consume it.
struct Instr {
    Op op = Op::NOP;
    std::uint8_t rd = 0;   ///< destination register (0..31)
    std::uint8_t ra = 0;   ///< source register A
    std::uint8_t rb = 0;   ///< source register B
    std::int32_t imm = 0;  ///< extended immediate / branch word-offset / nop code

    bool operator==(const Instr&) const = default;
};

/// Static properties of an opcode, used by the decoder, the pipeline model
/// and the fault-injection engine.
struct OpInfo {
    const char* mnemonic;
    ExClass ex_class;
    bool writes_rd;     ///< produces a GPR result
    bool reads_ra;
    bool reads_rb;
    bool has_imm;
    bool is_branch;     ///< changes control flow (incl. jumps)
    bool is_load;
    bool is_store;
    bool sets_flag;     ///< set-flag compare
    bool reads_flag;    ///< l.bf / l.bnf
};

/// Property lookup; total over all Op values.
const OpInfo& op_info(Op op);

/// True when the EX stage latches a 32-bit ALU result for this opcode and
/// the instruction is therefore a fault-injection target (paper §2.1:
/// only the 32 ALU endpoints of the execution stage are ever at risk).
bool is_alu_fi_target(Op op);

/// Human-readable ExClass name ("add", "mul", ...).
const char* ex_class_name(ExClass c);

/// Parses an ExClass name; returns std::nullopt for unknown names.
std::optional<ExClass> ex_class_from_name(const std::string& name);

/// Register name "r0".."r31".
std::string reg_name(std::uint8_t r);

// ---------------------------------------------------------------------------
// ALU reference semantics. These are the *functional* results; the
// gate-level netlist in src/circuits must agree bit-exactly (checked by
// equivalence tests), and the ISS uses them for golden execution.
// ---------------------------------------------------------------------------

/// Computes the 32-bit EX-stage result for an ALU-class operation.
/// For compares the result is the subtraction A - B (the value latched at
/// the ALU endpoints); the flag is derived separately via `compare_flag`.
std::uint32_t alu_result(ExClass c, std::uint32_t a, std::uint32_t b);

/// Compare predicate of a set-flag opcode, resolved once (the threaded
/// interpreter bakes it into the micro-op at lowering time so the hot
/// kernel never re-derives it from the opcode).
enum class CmpKind : std::uint8_t {
    Eq, Ne, Gtu, Geu, Ltu, Leu, Gts, Ges, Lts, Les
};

/// Maps a set-flag opcode to its predicate.
CmpKind cmp_kind(Op op);

/// Evaluates a predicate from the primitive comparison outcomes.
inline bool flag_from(CmpKind k, bool eq, bool lt_s, bool lt_u) {
    switch (k) {
        case CmpKind::Eq: return eq;
        case CmpKind::Ne: return !eq;
        case CmpKind::Gtu: return !lt_u && !eq;
        case CmpKind::Geu: return !lt_u;
        case CmpKind::Ltu: return lt_u;
        case CmpKind::Leu: return lt_u || eq;
        case CmpKind::Gts: return !lt_s && !eq;
        case CmpKind::Ges: return !lt_s;
        case CmpKind::Lts: return lt_s;
        case CmpKind::Les: return lt_s || eq;
    }
    return false;
}

/// Kind-resolved form of compare_flag_from_diff (inline: it sits in the
/// interpreter's compare kernel). The flag logic consumes the latched
/// difference plus the operand sign bits, so a corrupted diff yields
/// exactly the flag the hardware would compute from corrupted endpoints.
inline bool compare_flag_from_diff_kind(CmpKind k, std::uint32_t a,
                                        std::uint32_t b, std::uint32_t diff) {
    const bool eq = diff == 0;
    // Unsigned borrow reconstruction: for diff = a - b (mod 2^32) the
    // borrow occurred iff diff > a (wrap-around), which holds for the
    // correct diff and degrades consistently for a corrupted one.
    const bool lt_u = diff > a;
    const bool sign_a = (a >> 31) & 1u;
    const bool sign_b = (b >> 31) & 1u;
    const bool sign_d = (diff >> 31) & 1u;
    const bool overflow = (sign_a != sign_b) && (sign_d != sign_a);
    const bool lt_s = sign_d != overflow;
    return flag_from(k, eq, lt_s, lt_u);
}

/// Derives the compare flag for a set-flag opcode from operands.
bool compare_flag(Op op, std::uint32_t a, std::uint32_t b);

/// Derives the compare flag from the (possibly FI-corrupted) subtract
/// result plus the operand sign bits, mirroring how the flag logic sits
/// downstream of the ALU endpoints in the real datapath.
bool compare_flag_from_diff(Op op, std::uint32_t a, std::uint32_t b,
                            std::uint32_t diff);

}  // namespace sfi
