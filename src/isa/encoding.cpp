#include "isa/encoding.hpp"

#include <stdexcept>

namespace sfi {

namespace {

constexpr std::uint32_t kOpcJ = 0x00, kOpcJal = 0x01, kOpcBnf = 0x03,
                        kOpcBf = 0x04, kOpcNop = 0x05, kOpcMovhi = 0x06,
                        kOpcJr = 0x11, kOpcJalr = 0x12, kOpcLwz = 0x21,
                        kOpcLbz = 0x23, kOpcLhz = 0x25, kOpcAddi = 0x27,
                        kOpcAndi = 0x29, kOpcOri = 0x2a, kOpcXori = 0x2b,
                        kOpcMuli = 0x2c, kOpcShifti = 0x2e, kOpcSfi = 0x2f,
                        kOpcSw = 0x35, kOpcSb = 0x36, kOpcSh = 0x37,
                        kOpcAlu = 0x38, kOpcSf = 0x39;

// Set-flag condition field values (bits [25:21]).
constexpr std::uint32_t kCondEq = 0x0, kCondNe = 0x1, kCondGtu = 0x2,
                        kCondGeu = 0x3, kCondLtu = 0x4, kCondLeu = 0x5,
                        kCondGts = 0xa, kCondGes = 0xb, kCondLts = 0xc,
                        kCondLes = 0xd;

std::uint32_t field_d(const Instr& i) { return (i.rd & 0x1fu) << 21; }
std::uint32_t field_a(const Instr& i) { return (i.ra & 0x1fu) << 16; }
std::uint32_t field_b(const Instr& i) { return (i.rb & 0x1fu) << 11; }

void check_signed16(std::int32_t v, const char* what) {
    if (v < -32768 || v > 32767)
        throw std::out_of_range(std::string(what) + ": signed 16-bit immediate overflow");
}

void check_unsigned16(std::int32_t v, const char* what) {
    if (v < 0 || v > 0xffff)
        throw std::out_of_range(std::string(what) + ": unsigned 16-bit immediate overflow");
}

void check_n26(std::int32_t v, const char* what) {
    if (v < -(1 << 25) || v >= (1 << 25))
        throw std::out_of_range(std::string(what) + ": 26-bit branch offset overflow");
}

void check_shamt(std::int32_t v, const char* what) {
    if (v < 0 || v > 31)
        throw std::out_of_range(std::string(what) + ": shift amount out of range");
}

std::uint32_t enc_n26(std::uint32_t opc, std::int32_t n) {
    return (opc << 26) | (static_cast<std::uint32_t>(n) & 0x03ffffffu);
}

std::uint32_t enc_imm16(std::uint32_t opc, const Instr& i) {
    return (opc << 26) | field_d(i) | field_a(i) |
           (static_cast<std::uint32_t>(i.imm) & 0xffffu);
}

std::uint32_t enc_store(std::uint32_t opc, const Instr& i) {
    const auto imm = static_cast<std::uint32_t>(i.imm);
    return (opc << 26) | ((imm >> 11) & 0x1fu) << 21 | field_a(i) | field_b(i) |
           (imm & 0x7ffu);
}

std::uint32_t enc_alu(const Instr& i, std::uint32_t op2, std::uint32_t op3,
                      std::uint32_t low) {
    return (kOpcAlu << 26) | field_d(i) | field_a(i) | field_b(i) |
           (op2 << 8) | (op3 << 6) | low;
}

std::uint32_t enc_sf(std::uint32_t opc, std::uint32_t cond, const Instr& i,
                     bool imm_form) {
    std::uint32_t word = (opc << 26) | (cond << 21) | field_a(i);
    if (imm_form)
        word |= static_cast<std::uint32_t>(i.imm) & 0xffffu;
    else
        word |= field_b(i);
    return word;
}

std::int32_t sext16(std::uint32_t v) {
    return static_cast<std::int32_t>(static_cast<std::int16_t>(v & 0xffffu));
}

std::int32_t sext26(std::uint32_t v) {
    v &= 0x03ffffffu;
    if (v & 0x02000000u) v |= 0xfc000000u;
    return static_cast<std::int32_t>(v);
}

std::optional<Op> sf_op_from_cond(std::uint32_t cond, bool imm_form) {
    switch (cond) {
        case kCondEq: return imm_form ? Op::SFEQI : Op::SFEQ;
        case kCondNe: return imm_form ? Op::SFNEI : Op::SFNE;
        case kCondGtu: return imm_form ? Op::SFGTUI : Op::SFGTU;
        case kCondGeu: return imm_form ? Op::SFGEUI : Op::SFGEU;
        case kCondLtu: return imm_form ? Op::SFLTUI : Op::SFLTU;
        case kCondLeu: return imm_form ? Op::SFLEUI : Op::SFLEU;
        case kCondGts: return imm_form ? Op::SFGTSI : Op::SFGTS;
        case kCondGes: return imm_form ? Op::SFGESI : Op::SFGES;
        case kCondLts: return imm_form ? Op::SFLTSI : Op::SFLTS;
        case kCondLes: return imm_form ? Op::SFLESI : Op::SFLES;
        default: return std::nullopt;
    }
}

std::uint32_t sf_cond_of(Op op) {
    switch (op) {
        case Op::SFEQ: case Op::SFEQI: return kCondEq;
        case Op::SFNE: case Op::SFNEI: return kCondNe;
        case Op::SFGTU: case Op::SFGTUI: return kCondGtu;
        case Op::SFGEU: case Op::SFGEUI: return kCondGeu;
        case Op::SFLTU: case Op::SFLTUI: return kCondLtu;
        case Op::SFLEU: case Op::SFLEUI: return kCondLeu;
        case Op::SFGTS: case Op::SFGTSI: return kCondGts;
        case Op::SFGES: case Op::SFGESI: return kCondGes;
        case Op::SFLTS: case Op::SFLTSI: return kCondLts;
        case Op::SFLES: case Op::SFLESI: return kCondLes;
        default: throw std::logic_error("sf_cond_of: not a set-flag opcode");
    }
}

}  // namespace

std::uint32_t encode(const Instr& i) {
    switch (i.op) {
        case Op::J: check_n26(i.imm, "l.j"); return enc_n26(kOpcJ, i.imm);
        case Op::JAL: check_n26(i.imm, "l.jal"); return enc_n26(kOpcJal, i.imm);
        case Op::BNF: check_n26(i.imm, "l.bnf"); return enc_n26(kOpcBnf, i.imm);
        case Op::BF: check_n26(i.imm, "l.bf"); return enc_n26(kOpcBf, i.imm);
        case Op::NOP:
            check_unsigned16(i.imm, "l.nop");
            return (kOpcNop << 26) | (0x01u << 24) |
                   (static_cast<std::uint32_t>(i.imm) & 0xffffu);
        case Op::MOVHI:
            check_unsigned16(i.imm, "l.movhi");
            return (kOpcMovhi << 26) | field_d(i) |
                   (static_cast<std::uint32_t>(i.imm) & 0xffffu);
        case Op::JR: return (kOpcJr << 26) | field_b(i);
        case Op::JALR: return (kOpcJalr << 26) | field_b(i);
        case Op::LWZ: check_signed16(i.imm, "l.lwz"); return enc_imm16(kOpcLwz, i);
        case Op::LBZ: check_signed16(i.imm, "l.lbz"); return enc_imm16(kOpcLbz, i);
        case Op::LHZ: check_signed16(i.imm, "l.lhz"); return enc_imm16(kOpcLhz, i);
        case Op::SW: check_signed16(i.imm, "l.sw"); return enc_store(kOpcSw, i);
        case Op::SB: check_signed16(i.imm, "l.sb"); return enc_store(kOpcSb, i);
        case Op::SH: check_signed16(i.imm, "l.sh"); return enc_store(kOpcSh, i);
        case Op::ADDI: check_signed16(i.imm, "l.addi"); return enc_imm16(kOpcAddi, i);
        case Op::ANDI: check_unsigned16(i.imm, "l.andi"); return enc_imm16(kOpcAndi, i);
        case Op::ORI: check_unsigned16(i.imm, "l.ori"); return enc_imm16(kOpcOri, i);
        case Op::XORI: check_signed16(i.imm, "l.xori"); return enc_imm16(kOpcXori, i);
        case Op::MULI: check_signed16(i.imm, "l.muli"); return enc_imm16(kOpcMuli, i);
        case Op::SLLI:
            check_shamt(i.imm, "l.slli");
            return (kOpcShifti << 26) | field_d(i) | field_a(i) | (0u << 6) |
                   static_cast<std::uint32_t>(i.imm);
        case Op::SRLI:
            check_shamt(i.imm, "l.srli");
            return (kOpcShifti << 26) | field_d(i) | field_a(i) | (1u << 6) |
                   static_cast<std::uint32_t>(i.imm);
        case Op::SRAI:
            check_shamt(i.imm, "l.srai");
            return (kOpcShifti << 26) | field_d(i) | field_a(i) | (2u << 6) |
                   static_cast<std::uint32_t>(i.imm);
        case Op::ADD: return enc_alu(i, 0, 0, 0x0);
        case Op::SUB: return enc_alu(i, 0, 0, 0x2);
        case Op::AND: return enc_alu(i, 0, 0, 0x3);
        case Op::OR: return enc_alu(i, 0, 0, 0x4);
        case Op::XOR: return enc_alu(i, 0, 0, 0x5);
        case Op::MUL: return enc_alu(i, 3, 0, 0x6);
        case Op::SLL: return enc_alu(i, 0, 0, 0x8);
        case Op::SRL: return enc_alu(i, 0, 1, 0x8);
        case Op::SRA: return enc_alu(i, 0, 2, 0x8);
        case Op::SFEQ: case Op::SFNE: case Op::SFGTU: case Op::SFGEU:
        case Op::SFLTU: case Op::SFLEU: case Op::SFGTS: case Op::SFGES:
        case Op::SFLTS: case Op::SFLES:
            return enc_sf(kOpcSf, sf_cond_of(i.op), i, /*imm_form=*/false);
        case Op::SFEQI: case Op::SFNEI: case Op::SFGTUI: case Op::SFGEUI:
        case Op::SFLTUI: case Op::SFLEUI: case Op::SFGTSI: case Op::SFGESI:
        case Op::SFLTSI: case Op::SFLESI:
            check_signed16(i.imm, "l.sf*i");
            return enc_sf(kOpcSfi, sf_cond_of(i.op), i, /*imm_form=*/true);
        case Op::kCount: break;
    }
    throw std::logic_error("encode: invalid opcode");
}

std::optional<Instr> decode(std::uint32_t word) {
    const std::uint32_t opc = word >> 26;
    const auto rd = static_cast<std::uint8_t>((word >> 21) & 0x1f);
    const auto ra = static_cast<std::uint8_t>((word >> 16) & 0x1f);
    const auto rb = static_cast<std::uint8_t>((word >> 11) & 0x1f);
    const std::uint32_t imm16 = word & 0xffffu;

    Instr i;
    switch (opc) {
        case kOpcJ: return Instr{Op::J, 0, 0, 0, sext26(word)};
        case kOpcJal: return Instr{Op::JAL, 0, 0, 0, sext26(word)};
        case kOpcBnf: return Instr{Op::BNF, 0, 0, 0, sext26(word)};
        case kOpcBf: return Instr{Op::BF, 0, 0, 0, sext26(word)};
        case kOpcNop:
            if (((word >> 24) & 0x3u) != 0x1u) return std::nullopt;
            return Instr{Op::NOP, 0, 0, 0, static_cast<std::int32_t>(imm16)};
        case kOpcMovhi:
            if ((word >> 16) & 0x1u) return std::nullopt;  // l.macrc unsupported
            return Instr{Op::MOVHI, rd, 0, 0, static_cast<std::int32_t>(imm16)};
        case kOpcJr: return Instr{Op::JR, 0, 0, rb, 0};
        case kOpcJalr: return Instr{Op::JALR, 0, 0, rb, 0};
        case kOpcLwz: return Instr{Op::LWZ, rd, ra, 0, sext16(imm16)};
        case kOpcLbz: return Instr{Op::LBZ, rd, ra, 0, sext16(imm16)};
        case kOpcLhz: return Instr{Op::LHZ, rd, ra, 0, sext16(imm16)};
        case kOpcAddi: return Instr{Op::ADDI, rd, ra, 0, sext16(imm16)};
        case kOpcAndi:
            return Instr{Op::ANDI, rd, ra, 0, static_cast<std::int32_t>(imm16)};
        case kOpcOri:
            return Instr{Op::ORI, rd, ra, 0, static_cast<std::int32_t>(imm16)};
        case kOpcXori: return Instr{Op::XORI, rd, ra, 0, sext16(imm16)};
        case kOpcMuli: return Instr{Op::MULI, rd, ra, 0, sext16(imm16)};
        case kOpcShifti: {
            const std::uint32_t kind = (word >> 6) & 0x3u;
            const auto sh = static_cast<std::int32_t>(word & 0x3fu);
            if (sh > 31) return std::nullopt;
            switch (kind) {
                case 0: return Instr{Op::SLLI, rd, ra, 0, sh};
                case 1: return Instr{Op::SRLI, rd, ra, 0, sh};
                case 2: return Instr{Op::SRAI, rd, ra, 0, sh};
                default: return std::nullopt;
            }
        }
        case kOpcSfi: {
            const auto op = sf_op_from_cond((word >> 21) & 0x1f, true);
            if (!op) return std::nullopt;
            return Instr{*op, 0, ra, 0, sext16(imm16)};
        }
        case kOpcSf: {
            const auto op = sf_op_from_cond((word >> 21) & 0x1f, false);
            if (!op) return std::nullopt;
            return Instr{*op, 0, ra, rb, 0};
        }
        case kOpcSw: case kOpcSb: case kOpcSh: {
            const std::uint32_t imm =
                (((word >> 21) & 0x1fu) << 11) | (word & 0x7ffu);
            const Op op = opc == kOpcSw ? Op::SW : opc == kOpcSb ? Op::SB : Op::SH;
            return Instr{op, 0, ra, rb, sext16(imm)};
        }
        case kOpcAlu: {
            const std::uint32_t op2 = (word >> 8) & 0x3u;
            const std::uint32_t op3 = (word >> 6) & 0x3u;
            const std::uint32_t low = word & 0xfu;
            if (op2 == 3 && low == 0x6) return Instr{Op::MUL, rd, ra, rb, 0};
            if (op2 != 0) return std::nullopt;
            switch (low) {
                case 0x0: return Instr{Op::ADD, rd, ra, rb, 0};
                case 0x2: return Instr{Op::SUB, rd, ra, rb, 0};
                case 0x3: return Instr{Op::AND, rd, ra, rb, 0};
                case 0x4: return Instr{Op::OR, rd, ra, rb, 0};
                case 0x5: return Instr{Op::XOR, rd, ra, rb, 0};
                case 0x8:
                    switch (op3) {
                        case 0: return Instr{Op::SLL, rd, ra, rb, 0};
                        case 1: return Instr{Op::SRL, rd, ra, rb, 0};
                        case 2: return Instr{Op::SRA, rd, ra, rb, 0};
                        default: return std::nullopt;
                    }
                default: return std::nullopt;
            }
        }
        default: return std::nullopt;
    }
}

std::string disassemble(const Instr& i) {
    const OpInfo& info = op_info(i.op);
    std::string out = info.mnemonic;
    auto imm_str = [&] { return std::to_string(i.imm); };
    switch (i.op) {
        case Op::J: case Op::JAL: case Op::BF: case Op::BNF:
            return out + " " + imm_str();
        case Op::JR: case Op::JALR:
            return out + " " + reg_name(i.rb);
        case Op::NOP:
            return i.imm == 0 ? out : out + " " + imm_str();
        case Op::MOVHI:
            return out + " " + reg_name(i.rd) + "," + imm_str();
        case Op::LWZ: case Op::LBZ: case Op::LHZ:
            return out + " " + reg_name(i.rd) + "," + imm_str() + "(" +
                   reg_name(i.ra) + ")";
        case Op::SW: case Op::SB: case Op::SH:
            return out + " " + imm_str() + "(" + reg_name(i.ra) + ")," +
                   reg_name(i.rb);
        default: break;
    }
    if (info.sets_flag) {
        out += " " + reg_name(i.ra) + ",";
        out += info.has_imm ? imm_str() : reg_name(i.rb);
        return out;
    }
    // Remaining: three-operand ALU ops (register or immediate form).
    out += " " + reg_name(i.rd) + "," + reg_name(i.ra) + ",";
    out += info.has_imm ? imm_str() : reg_name(i.rb);
    return out;
}

}  // namespace sfi
