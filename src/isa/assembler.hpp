// Two-pass text assembler for the ORBIS32 subset.
//
// Supported syntax (one statement per line, '#' or ';' start a comment):
//
//   .org   0x100          ; set location counter
//   .entry _start         ; program entry point (default: 0)
//   .equ   SIZE, 129      ; symbolic constant
//   .align 4              ; pad with zero bytes to a multiple of 4
//   .word  1, -2, 0x30    ; 32-bit little-endian data (symbols allowed)
//   .half  7, 8           ; 16-bit data
//   .byte  1, 2, 3        ; 8-bit data
//   .space 64             ; 64 zero bytes
//   loop:                 ; label
//     l.addi r3,r3,-1
//     l.sfeqi r3,0
//     l.bnf  loop         ; branch targets are labels or literal word offsets
//     l.movhi r4,hi(data) ; hi()/lo() split 32-bit addresses for movhi/ori
//     l.ori   r4,r4,lo(data)
//     l.lwz  r5,0(r4)
//     l.sw   4(r4),r5
//
// The benchmark generators in src/apps emit this syntax with their input
// data embedded as .word blocks.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace sfi {

/// An assembled memory image: disjoint byte sections plus symbols.
struct Program {
    struct Section {
        std::uint32_t addr = 0;
        std::vector<std::uint8_t> bytes;
    };
    std::vector<Section> sections;
    std::uint32_t entry = 0;
    std::map<std::string, std::uint32_t> symbols;
    /// Unique per assemble() call (0 for hand-built Programs). Lets
    /// consumers that cache per-program state (Cpu::reset's fast path)
    /// distinguish two distinct assemblies even when the object and its
    /// heap buffers land at recycled addresses.
    std::uint64_t build_id = 0;

    /// Total image size in bytes across all sections.
    std::size_t byte_size() const;
    /// Address of a symbol; throws std::out_of_range if undefined.
    std::uint32_t symbol(const std::string& name) const;
};

/// Thrown on any syntax / range / duplicate-label error. Message includes
/// the 1-based source line number.
struct AsmError : std::runtime_error {
    AsmError(std::size_t line, const std::string& message);
    std::size_t line;
};

/// Looks up an opcode by its "l.xxx" mnemonic.
std::optional<Op> op_from_mnemonic(const std::string& mnemonic);

/// Assembles `source` into a Program. Deterministic, no file I/O.
Program assemble(const std::string& source);

}  // namespace sfi
