// Binary encoder / decoder for the ORBIS32 subset.
//
// Encodings follow the OpenRISC 1000 architecture manual: primary opcode
// in bits [31:26]; D/A/B register fields at [25:21]/[20:16]/[15:11];
// stores split their 16-bit immediate across [25:21] and [10:0]; the
// register-register ALU group (0x38) selects the operation via bits
// [9:8], [7:6] and [3:0]; set-flag compares put the condition in [25:21].
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/isa.hpp"

namespace sfi {

/// Encodes an instruction into its 32-bit ORBIS32 word.
/// Immediates are range-checked; throws std::out_of_range on overflow.
std::uint32_t encode(const Instr& instr);

/// Decodes a 32-bit word. Returns std::nullopt for words outside the
/// implemented subset (the ISS raises an illegal-instruction fault).
std::optional<Instr> decode(std::uint32_t word);

/// Disassembles one instruction to assembler syntax, e.g.
/// "l.addi r3,r4,-12" or "l.bf 8" (branch offsets in instruction words).
std::string disassemble(const Instr& instr);

}  // namespace sfi
