#include "isa/isa.hpp"

#include <array>
#include <cassert>

namespace sfi {

namespace {

// Indexed by Op. Order must match the enum declaration.
constexpr std::array<OpInfo, kOpCount> kOpTable = {{
    // mnemonic    ex_class       wrD    rdA    rdB    imm    br     ld     st     setF   rdF
    {"l.j",     ExClass::None, false, false, false, true,  true,  false, false, false, false},
    {"l.jal",   ExClass::None, true,  false, false, true,  true,  false, false, false, false},
    {"l.jr",    ExClass::None, false, false, true,  false, true,  false, false, false, false},
    {"l.jalr",  ExClass::None, true,  false, true,  false, true,  false, false, false, false},
    {"l.bf",    ExClass::None, false, false, false, true,  true,  false, false, false, true},
    {"l.bnf",   ExClass::None, false, false, false, true,  true,  false, false, false, true},
    {"l.nop",   ExClass::None, false, false, false, true,  false, false, false, false, false},
    {"l.movhi", ExClass::None, true,  false, false, true,  false, false, false, false, false},
    {"l.lwz",   ExClass::None, true,  true,  false, true,  false, true,  false, false, false},
    {"l.lbz",   ExClass::None, true,  true,  false, true,  false, true,  false, false, false},
    {"l.lhz",   ExClass::None, true,  true,  false, true,  false, true,  false, false, false},
    {"l.sw",    ExClass::None, false, true,  true,  true,  false, false, true,  false, false},
    {"l.sb",    ExClass::None, false, true,  true,  true,  false, false, true,  false, false},
    {"l.sh",    ExClass::None, false, true,  true,  true,  false, false, true,  false, false},
    {"l.add",   ExClass::Add,  true,  true,  true,  false, false, false, false, false, false},
    {"l.sub",   ExClass::Sub,  true,  true,  true,  false, false, false, false, false, false},
    {"l.and",   ExClass::And,  true,  true,  true,  false, false, false, false, false, false},
    {"l.or",    ExClass::Or,   true,  true,  true,  false, false, false, false, false, false},
    {"l.xor",   ExClass::Xor,  true,  true,  true,  false, false, false, false, false, false},
    {"l.mul",   ExClass::Mul,  true,  true,  true,  false, false, false, false, false, false},
    {"l.sll",   ExClass::Sll,  true,  true,  true,  false, false, false, false, false, false},
    {"l.srl",   ExClass::Srl,  true,  true,  true,  false, false, false, false, false, false},
    {"l.sra",   ExClass::Sra,  true,  true,  true,  false, false, false, false, false, false},
    {"l.addi",  ExClass::Add,  true,  true,  false, true,  false, false, false, false, false},
    {"l.andi",  ExClass::And,  true,  true,  false, true,  false, false, false, false, false},
    {"l.ori",   ExClass::Or,   true,  true,  false, true,  false, false, false, false, false},
    {"l.xori",  ExClass::Xor,  true,  true,  false, true,  false, false, false, false, false},
    {"l.muli",  ExClass::Mul,  true,  true,  false, true,  false, false, false, false, false},
    {"l.slli",  ExClass::Sll,  true,  true,  false, true,  false, false, false, false, false},
    {"l.srli",  ExClass::Srl,  true,  true,  false, true,  false, false, false, false, false},
    {"l.srai",  ExClass::Sra,  true,  true,  false, true,  false, false, false, false, false},
    {"l.sfeq",  ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfne",  ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfgtu", ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfgeu", ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfltu", ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfleu", ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfgts", ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfges", ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sflts", ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfles", ExClass::Cmp,  false, true,  true,  false, false, false, false, true,  false},
    {"l.sfeqi", ExClass::Cmp,  false, true,  false, true,  false, false, false, true,  false},
    {"l.sfnei", ExClass::Cmp,  false, true,  false, true,  false, false, false, true,  false},
    {"l.sfgtui", ExClass::Cmp, false, true,  false, true,  false, false, false, true,  false},
    {"l.sfgeui", ExClass::Cmp, false, true,  false, true,  false, false, false, true,  false},
    {"l.sfltui", ExClass::Cmp, false, true,  false, true,  false, false, false, true,  false},
    {"l.sfleui", ExClass::Cmp, false, true,  false, true,  false, false, false, true,  false},
    {"l.sfgtsi", ExClass::Cmp, false, true,  false, true,  false, false, false, true,  false},
    {"l.sfgesi", ExClass::Cmp, false, true,  false, true,  false, false, false, true,  false},
    {"l.sfltsi", ExClass::Cmp, false, true,  false, true,  false, false, false, true,  false},
    {"l.sflesi", ExClass::Cmp, false, true,  false, true,  false, false, false, true,  false},
}};

}  // namespace

const OpInfo& op_info(Op op) {
    const auto idx = static_cast<std::size_t>(op);
    assert(idx < kOpCount);
    return kOpTable[idx];
}

bool is_alu_fi_target(Op op) { return op_info(op).ex_class != ExClass::None; }

const char* ex_class_name(ExClass c) {
    switch (c) {
        case ExClass::None: return "none";
        case ExClass::Add: return "add";
        case ExClass::Sub: return "sub";
        case ExClass::And: return "and";
        case ExClass::Or: return "or";
        case ExClass::Xor: return "xor";
        case ExClass::Sll: return "sll";
        case ExClass::Srl: return "srl";
        case ExClass::Sra: return "sra";
        case ExClass::Mul: return "mul";
        case ExClass::Cmp: return "cmp";
        case ExClass::kCount: break;
    }
    return "?";
}

std::optional<ExClass> ex_class_from_name(const std::string& name) {
    for (std::size_t i = 0; i < kExClassCount; ++i) {
        const auto c = static_cast<ExClass>(i);
        if (name == ex_class_name(c)) return c;
    }
    return std::nullopt;
}

std::string reg_name(std::uint8_t r) { return "r" + std::to_string(r); }

std::uint32_t alu_result(ExClass c, std::uint32_t a, std::uint32_t b) {
    switch (c) {
        case ExClass::Add: return a + b;
        case ExClass::Sub: return a - b;
        case ExClass::Cmp: return a - b;  // compare latches the difference
        case ExClass::And: return a & b;
        case ExClass::Or: return a | b;
        case ExClass::Xor: return a ^ b;
        case ExClass::Sll: return a << (b & 31u);
        case ExClass::Srl: return a >> (b & 31u);
        case ExClass::Sra:
            return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                              (b & 31u));
        case ExClass::Mul: return a * b;
        case ExClass::None:
        case ExClass::kCount: break;
    }
    assert(false && "alu_result called for non-ALU class");
    return 0;
}

CmpKind cmp_kind(Op op) {
    switch (op) {
        case Op::SFEQ: case Op::SFEQI: return CmpKind::Eq;
        case Op::SFNE: case Op::SFNEI: return CmpKind::Ne;
        case Op::SFGTU: case Op::SFGTUI: return CmpKind::Gtu;
        case Op::SFGEU: case Op::SFGEUI: return CmpKind::Geu;
        case Op::SFLTU: case Op::SFLTUI: return CmpKind::Ltu;
        case Op::SFLEU: case Op::SFLEUI: return CmpKind::Leu;
        case Op::SFGTS: case Op::SFGTSI: return CmpKind::Gts;
        case Op::SFGES: case Op::SFGESI: return CmpKind::Ges;
        case Op::SFLTS: case Op::SFLTSI: return CmpKind::Lts;
        case Op::SFLES: case Op::SFLESI: return CmpKind::Les;
        default:
            assert(false && "not a set-flag opcode");
            return CmpKind::Eq;
    }
}

bool compare_flag(Op op, std::uint32_t a, std::uint32_t b) {
    const bool eq = a == b;
    const bool lt_u = a < b;
    const bool lt_s = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
    return flag_from(cmp_kind(op), eq, lt_s, lt_u);
}

bool compare_flag_from_diff(Op op, std::uint32_t a, std::uint32_t b,
                            std::uint32_t diff) {
    return compare_flag_from_diff_kind(cmp_kind(op), a, b, diff);
}

}  // namespace sfi
