#include "isa/assembler.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "isa/encoding.hpp"

namespace sfi {

std::size_t Program::byte_size() const {
    std::size_t total = 0;
    for (const auto& s : sections) total += s.bytes.size();
    return total;
}

std::uint32_t Program::symbol(const std::string& name) const {
    const auto it = symbols.find(name);
    if (it == symbols.end())
        throw std::out_of_range("undefined symbol: " + name);
    return it->second;
}

AsmError::AsmError(std::size_t line_no, const std::string& message)
    : std::runtime_error("line " + std::to_string(line_no) + ": " + message),
      line(line_no) {}

std::optional<Op> op_from_mnemonic(const std::string& mnemonic) {
    for (std::size_t i = 0; i < kOpCount; ++i) {
        const auto op = static_cast<Op>(i);
        if (mnemonic == op_info(op).mnemonic) return op;
    }
    return std::nullopt;
}

namespace {

std::string strip(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/// Splits a comma-separated operand list, honoring parentheses so that
/// "0(r4),r5" splits into {"0(r4)", "r5"}.
std::vector<std::string> split_operands(const std::string& s) {
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '(') ++depth;
        if (c == ')') --depth;
        if (c == ',' && depth == 0) {
            out.push_back(strip(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = strip(cur);
    if (!cur.empty()) out.push_back(cur);
    return out;
}

bool is_ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

struct Statement {
    std::size_t line = 0;
    std::vector<std::string> labels;
    std::string head;                 // mnemonic or directive (lowercased)
    std::vector<std::string> operands;
};

std::vector<Statement> tokenize(const std::string& source) {
    std::vector<Statement> out;
    std::istringstream in(source);
    std::string raw;
    std::size_t line_no = 0;
    std::vector<std::string> pending_labels;
    while (std::getline(in, raw)) {
        ++line_no;
        const auto hash = raw.find_first_of("#;");
        if (hash != std::string::npos) raw.resize(hash);
        std::string line = strip(raw);
        // Peel off any leading "label:" prefixes.
        while (!line.empty()) {
            const auto colon = line.find(':');
            if (colon == std::string::npos) break;
            const std::string candidate = strip(line.substr(0, colon));
            if (candidate.empty() || !is_ident_start(candidate[0]) ||
                !std::all_of(candidate.begin(), candidate.end(), is_ident_char))
                break;
            pending_labels.push_back(candidate);
            line = strip(line.substr(colon + 1));
        }
        if (line.empty()) continue;
        Statement st;
        st.line = line_no;
        st.labels = std::move(pending_labels);
        pending_labels.clear();
        const auto space = line.find_first_of(" \t");
        st.head = lower(line.substr(0, space));
        if (space != std::string::npos)
            st.operands = split_operands(strip(line.substr(space + 1)));
        out.push_back(std::move(st));
    }
    if (!pending_labels.empty()) {
        // Trailing labels attach to an empty end-of-program statement.
        Statement st;
        st.line = line_no;
        st.labels = std::move(pending_labels);
        st.head = ".end-labels";
        out.push_back(std::move(st));
    }
    return out;
}

class AssemblerImpl {
public:
    Program run(const std::string& source) {
        statements_ = tokenize(source);
        pass(/*emit=*/false);
        pass(/*emit=*/true);
        finish_section();
        prog_.symbols = symbols_;
        if (!entry_symbol_.empty()) prog_.entry = resolve_symbol(entry_symbol_, entry_line_);
        return std::move(prog_);
    }

private:
    // ---- expression evaluation ------------------------------------------
    // expr := term (('+'|'-') term)*
    // term := number | symbol | hi(expr) | lo(expr)
    std::int64_t eval(const std::string& text, std::size_t line, bool allow_undef) {
        std::size_t pos = 0;
        const std::int64_t v = eval_expr(text, pos, line, allow_undef);
        skip_ws(text, pos);
        if (pos != text.size())
            throw AsmError(line, "trailing characters in expression: '" + text + "'");
        return v;
    }

    static void skip_ws(const std::string& s, std::size_t& pos) {
        while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
    }

    std::int64_t eval_expr(const std::string& s, std::size_t& pos,
                           std::size_t line, bool allow_undef) {
        std::int64_t v = eval_term(s, pos, line, allow_undef);
        for (;;) {
            skip_ws(s, pos);
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
                const char op = s[pos++];
                const std::int64_t rhs = eval_term(s, pos, line, allow_undef);
                v = op == '+' ? v + rhs : v - rhs;
            } else {
                return v;
            }
        }
    }

    std::int64_t eval_term(const std::string& s, std::size_t& pos,
                           std::size_t line, bool allow_undef) {
        skip_ws(s, pos);
        if (pos >= s.size()) throw AsmError(line, "expected expression");
        if (s[pos] == '-') {
            ++pos;
            return -eval_term(s, pos, line, allow_undef);
        }
        if (std::isdigit(static_cast<unsigned char>(s[pos]))) {
            char* end = nullptr;
            const std::int64_t v =
                std::strtoll(s.c_str() + pos, &end, 0);
            pos = static_cast<std::size_t>(end - s.c_str());
            return v;
        }
        if (is_ident_start(s[pos])) {
            std::size_t b = pos;
            while (pos < s.size() && is_ident_char(s[pos])) ++pos;
            std::string name = s.substr(b, pos - b);
            skip_ws(s, pos);
            const std::string fn = lower(name);
            if ((fn == "hi" || fn == "lo") && pos < s.size() && s[pos] == '(') {
                ++pos;
                const std::int64_t inner = eval_expr(s, pos, line, allow_undef);
                skip_ws(s, pos);
                if (pos >= s.size() || s[pos] != ')')
                    throw AsmError(line, "missing ')' in " + fn + "()");
                ++pos;
                const auto u = static_cast<std::uint32_t>(inner);
                return fn == "hi" ? (u >> 16) : (u & 0xffffu);
            }
            if (allow_undef && !symbols_.count(name) && !equates_.count(name))
                return 0;  // pass 1: size does not depend on the value
            return resolve_symbol(name, line);
        }
        throw AsmError(line, std::string("unexpected character '") + s[pos] + "'");
    }

    std::int64_t resolve_symbol(const std::string& name, std::size_t line) {
        if (const auto it = equates_.find(name); it != equates_.end())
            return it->second;
        if (const auto it = symbols_.find(name); it != symbols_.end())
            return it->second;
        throw AsmError(line, "undefined symbol: " + name);
    }

    // ---- operand parsing --------------------------------------------------
    std::uint8_t parse_reg(const std::string& text, std::size_t line) {
        const std::string t = lower(strip(text));
        if (t.size() < 2 || t[0] != 'r')
            throw AsmError(line, "expected register, got '" + text + "'");
        char* end = nullptr;
        const long v = std::strtol(t.c_str() + 1, &end, 10);
        if (*end != '\0' || v < 0 || v > 31)
            throw AsmError(line, "bad register '" + text + "'");
        return static_cast<std::uint8_t>(v);
    }

    /// Parses "imm(rA)" used by loads and stores.
    std::pair<std::int32_t, std::uint8_t> parse_mem(const std::string& text,
                                                    std::size_t line, bool emit) {
        const auto open = text.rfind('(');
        const auto close = text.rfind(')');
        if (open == std::string::npos || close == std::string::npos || close < open)
            throw AsmError(line, "expected mem operand imm(rA), got '" + text + "'");
        const std::string imm_text = strip(text.substr(0, open));
        const std::uint8_t ra = parse_reg(text.substr(open + 1, close - open - 1), line);
        const std::int64_t imm =
            imm_text.empty() ? 0 : eval(imm_text, line, /*allow_undef=*/!emit);
        return {static_cast<std::int32_t>(imm), ra};
    }

    /// Branch target: label (-> relative word offset) or literal offset.
    std::int32_t parse_branch_target(const std::string& text, std::size_t line,
                                     bool emit) {
        const std::string t = strip(text);
        const bool literal = !t.empty() && (std::isdigit(static_cast<unsigned char>(t[0])) ||
                                            t[0] == '-' || t[0] == '+');
        if (literal) return static_cast<std::int32_t>(eval(t, line, !emit));
        if (!emit) return 0;
        const std::int64_t target = resolve_symbol(t, line);
        const std::int64_t delta = target - static_cast<std::int64_t>(pc_);
        if (delta % 4 != 0) throw AsmError(line, "misaligned branch target " + t);
        return static_cast<std::int32_t>(delta / 4);
    }

    // ---- emission -----------------------------------------------------------
    void finish_section() {
        if (!cur_bytes_.empty()) {
            prog_.sections.push_back({cur_base_, std::move(cur_bytes_)});
            cur_bytes_.clear();
        }
    }

    void set_pc(std::uint32_t addr, std::size_t line) {
        if (addr % 4 != 0) throw AsmError(line, ".org address must be word-aligned");
        finish_section();
        cur_base_ = addr;
        pc_ = addr;
    }

    void emit_bytes(const std::uint8_t* data, std::size_t n, bool emit) {
        if (emit) {
            if (cur_bytes_.empty()) cur_base_ = pc_;
            cur_bytes_.insert(cur_bytes_.end(), data, data + n);
        }
        pc_ += static_cast<std::uint32_t>(n);
    }

    void emit_word(std::uint32_t w, bool emit) {
        const std::uint8_t bytes[4] = {
            static_cast<std::uint8_t>(w), static_cast<std::uint8_t>(w >> 8),
            static_cast<std::uint8_t>(w >> 16), static_cast<std::uint8_t>(w >> 24)};
        emit_bytes(bytes, 4, emit);
    }

    void emit_zero(std::size_t n, bool emit) {
        const std::uint8_t z = 0;
        for (std::size_t i = 0; i < n; ++i) emit_bytes(&z, 1, emit);
    }

    // ---- statement handling ---------------------------------------------
    void pass(bool emit) {
        pc_ = 0;
        cur_base_ = 0;
        cur_bytes_.clear();
        prog_.sections.clear();
        for (const Statement& st : statements_) {
            for (const std::string& label : st.labels) define_label(label, st.line, emit);
            if (st.head == ".end-labels") continue;
            if (st.head[0] == '.')
                directive(st, emit);
            else
                instruction(st, emit);
        }
    }

    void define_label(const std::string& name, std::size_t line, bool emit) {
        if (emit) return;  // defined during pass 1 only
        if (symbols_.count(name) || equates_.count(name))
            throw AsmError(line, "duplicate symbol: " + name);
        symbols_[name] = pc_;
    }

    void directive(const Statement& st, bool emit) {
        const std::string& d = st.head;
        auto need = [&](std::size_t n) {
            if (st.operands.size() != n)
                throw AsmError(st.line, d + " expects " + std::to_string(n) + " operand(s)");
        };
        if (d == ".org") {
            need(1);
            set_pc(static_cast<std::uint32_t>(eval(st.operands[0], st.line, !emit)),
                   st.line);
        } else if (d == ".entry") {
            need(1);
            entry_symbol_ = strip(st.operands[0]);
            entry_line_ = st.line;
        } else if (d == ".equ") {
            need(2);
            if (!emit) {
                const std::string name = strip(st.operands[0]);
                if (symbols_.count(name) || equates_.count(name))
                    throw AsmError(st.line, "duplicate symbol: " + name);
                equates_[name] = eval(st.operands[1], st.line, false);
            }
        } else if (d == ".word") {
            for (const auto& o : st.operands)
                emit_word(static_cast<std::uint32_t>(eval(o, st.line, !emit)), emit);
        } else if (d == ".half") {
            for (const auto& o : st.operands) {
                const auto v = static_cast<std::uint32_t>(eval(o, st.line, !emit));
                const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                                           static_cast<std::uint8_t>(v >> 8)};
                emit_bytes(b, 2, emit);
            }
        } else if (d == ".byte") {
            for (const auto& o : st.operands) {
                const auto v = static_cast<std::uint8_t>(eval(o, st.line, !emit));
                emit_bytes(&v, 1, emit);
            }
        } else if (d == ".space") {
            need(1);
            emit_zero(static_cast<std::size_t>(eval(st.operands[0], st.line, false)),
                      emit);
        } else if (d == ".align") {
            need(1);
            const auto a = static_cast<std::uint32_t>(eval(st.operands[0], st.line, false));
            if (a == 0 || (a & (a - 1)) != 0)
                throw AsmError(st.line, ".align must be a power of two");
            emit_zero((a - (pc_ % a)) % a, emit);
        } else {
            throw AsmError(st.line, "unknown directive " + d);
        }
    }

    void instruction(const Statement& st, bool emit) {
        const auto op = op_from_mnemonic(st.head);
        if (!op) throw AsmError(st.line, "unknown mnemonic '" + st.head + "'");
        Instr i;
        i.op = *op;
        const OpInfo& info = op_info(*op);
        const auto& ops = st.operands;
        auto need = [&](std::size_t n) {
            if (ops.size() != n)
                throw AsmError(st.line, st.head + " expects " + std::to_string(n) +
                                            " operand(s), got " +
                                            std::to_string(ops.size()));
        };
        const bool undef_ok = !emit;
        switch (*op) {
            case Op::J: case Op::JAL: case Op::BF: case Op::BNF:
                need(1);
                i.imm = parse_branch_target(ops[0], st.line, emit);
                break;
            case Op::JR: case Op::JALR:
                need(1);
                i.rb = parse_reg(ops[0], st.line);
                break;
            case Op::NOP:
                if (ops.size() > 1) need(1);
                i.imm = ops.empty() ? 0
                                    : static_cast<std::int32_t>(
                                          eval(ops[0], st.line, undef_ok));
                break;
            case Op::MOVHI:
                need(2);
                i.rd = parse_reg(ops[0], st.line);
                i.imm = static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(eval(ops[1], st.line, undef_ok)) & 0xffffu);
                break;
            case Op::LWZ: case Op::LBZ: case Op::LHZ: {
                need(2);
                i.rd = parse_reg(ops[0], st.line);
                const auto [imm, ra] = parse_mem(ops[1], st.line, emit);
                i.imm = imm;
                i.ra = ra;
                break;
            }
            case Op::SW: case Op::SB: case Op::SH: {
                need(2);
                const auto [imm, ra] = parse_mem(ops[0], st.line, emit);
                i.imm = imm;
                i.ra = ra;
                i.rb = parse_reg(ops[1], st.line);
                break;
            }
            default:
                if (info.sets_flag) {
                    need(2);
                    i.ra = parse_reg(ops[0], st.line);
                    if (info.has_imm)
                        i.imm = static_cast<std::int32_t>(eval(ops[1], st.line, undef_ok));
                    else
                        i.rb = parse_reg(ops[1], st.line);
                } else {
                    need(3);
                    i.rd = parse_reg(ops[0], st.line);
                    i.ra = parse_reg(ops[1], st.line);
                    if (info.has_imm)
                        i.imm = static_cast<std::int32_t>(eval(ops[2], st.line, undef_ok));
                    else
                        i.rb = parse_reg(ops[2], st.line);
                }
                break;
        }
        std::uint32_t word = 0;
        if (emit) {
            try {
                word = encode(i);
            } catch (const std::out_of_range& e) {
                throw AsmError(st.line, e.what());
            }
        }
        emit_word(word, emit);
    }

    std::vector<Statement> statements_;
    std::map<std::string, std::uint32_t> symbols_;
    std::map<std::string, std::int64_t> equates_;
    std::string entry_symbol_;
    std::size_t entry_line_ = 0;
    Program prog_;
    std::uint32_t pc_ = 0;
    std::uint32_t cur_base_ = 0;
    std::vector<std::uint8_t> cur_bytes_;
};

}  // namespace

Program assemble(const std::string& source) {
    static std::atomic<std::uint64_t> next_build_id{1};
    AssemblerImpl impl;
    Program program = impl.run(source);
    program.build_id = next_build_id.fetch_add(1, std::memory_order_relaxed);
    return program;
}

}  // namespace sfi
