#include "timing/vdd_model.hpp"

#include <cmath>
#include <stdexcept>

namespace sfi {

VddDelayLaw::VddDelayLaw(Params params) : params_(params) {
    if (params_.vref <= params_.vth)
        throw std::invalid_argument("VddDelayLaw: vref must exceed vth");
    norm_ = params_.vref / std::pow(params_.vref - params_.vth, params_.alpha);
}

double VddDelayLaw::factor(double v) const {
    if (v <= params_.vth + 0.01)
        throw std::domain_error("VddDelayLaw: voltage too close to threshold");
    return (v / std::pow(v - params_.vth, params_.alpha)) / norm_;
}

VddDelayFit::VddDelayFit(std::vector<double> voltages, std::vector<double> factors)
    : voltages_(std::move(voltages)), factors_(std::move(factors)) {
    if (voltages_.size() < 2 || voltages_.size() != factors_.size())
        throw std::invalid_argument("VddDelayFit: need >= 2 matching samples");
    for (std::size_t i = 1; i < voltages_.size(); ++i)
        if (voltages_[i] <= voltages_[i - 1])
            throw std::invalid_argument("VddDelayFit: voltages must increase");
    log_factors_.reserve(factors_.size());
    for (double f : factors_) {
        if (f <= 0.0) throw std::invalid_argument("VddDelayFit: factors must be positive");
        log_factors_.push_back(std::log(f));
    }
}

VddDelayFit VddDelayFit::from_law(const VddDelayLaw& law) {
    std::vector<double> volts(kLibraryVoltages.begin(), kLibraryVoltages.end());
    std::vector<double> facts;
    facts.reserve(volts.size());
    for (double v : volts) facts.push_back(law.factor(v));
    return VddDelayFit(std::move(volts), std::move(facts));
}

double VddDelayFit::factor(double v) const {
    // Piecewise-linear interpolation of log(factor); end-slope
    // extrapolation below/above the sampled range.
    std::size_t hi = 1;
    while (hi + 1 < voltages_.size() && voltages_[hi] < v) ++hi;
    const std::size_t lo = hi - 1;
    const double t = (v - voltages_[lo]) / (voltages_[hi] - voltages_[lo]);
    const double lf = log_factors_[lo] + t * (log_factors_[hi] - log_factors_[lo]);
    return std::exp(lf);
}

double VddDelayFit::noise_scale(double v, double dv) const {
    return factor(v + dv) / factor(v);
}

}  // namespace sfi
