#include "timing/const_prop.hpp"

namespace sfi {

namespace {

constexpr NetConst kX = NetConst::Variable;

NetConst nc(bool v) { return v ? NetConst::One : NetConst::Zero; }

NetConst eval3(CellType type, NetConst a, NetConst b, NetConst c) {
    switch (type) {
        case CellType::Input: return kX;  // overwritten by caller for fixed bits
        case CellType::Tie0: return NetConst::Zero;
        case CellType::Tie1: return NetConst::One;
        case CellType::Buf: return a;
        case CellType::Inv:
            return a == kX ? kX : nc(a == NetConst::Zero);
        case CellType::And2:
            if (a == NetConst::Zero || b == NetConst::Zero) return NetConst::Zero;
            if (a == NetConst::One && b == NetConst::One) return NetConst::One;
            return kX;
        case CellType::Nand2:
            if (a == NetConst::Zero || b == NetConst::Zero) return NetConst::One;
            if (a == NetConst::One && b == NetConst::One) return NetConst::Zero;
            return kX;
        case CellType::Or2:
            if (a == NetConst::One || b == NetConst::One) return NetConst::One;
            if (a == NetConst::Zero && b == NetConst::Zero) return NetConst::Zero;
            return kX;
        case CellType::Nor2:
            if (a == NetConst::One || b == NetConst::One) return NetConst::Zero;
            if (a == NetConst::Zero && b == NetConst::Zero) return NetConst::One;
            return kX;
        case CellType::Xor2:
            if (a == kX || b == kX) return kX;
            return nc(a != b);
        case CellType::Xnor2:
            if (a == kX || b == kX) return kX;
            return nc(a == b);
        case CellType::Mux2:  // a=sel, b=d0, c=d1
            if (a == NetConst::Zero) return b;
            if (a == NetConst::One) return c;
            if (b != kX && b == c) return b;  // both data inputs agree
            return kX;
        case CellType::kCount: break;
    }
    return kX;
}

}  // namespace

std::vector<NetConst> propagate_constants(
    const Netlist& netlist,
    const std::map<std::string, std::uint64_t>& fixed_inputs) {
    std::vector<NetConst> state(netlist.cell_count(), kX);
    // Pin the fixed input bits first (creation order = topological order,
    // so a single forward sweep afterwards is exact).
    for (const auto& [bus, value] : fixed_inputs) {
        const auto& nets = netlist.input_bus(bus);
        for (std::size_t bit = 0; bit < nets.size(); ++bit)
            if (nets[bit] != kNoNet) state[nets[bit]] = nc((value >> bit) & 1u);
    }
    for (NetId id = 0; id < netlist.cell_count(); ++id) {
        const Cell& cell = netlist.cell(id);
        if (cell.type == CellType::Input) continue;  // keep pinned/X state
        const NetConst a = cell.fanin[0] != kNoNet ? state[cell.fanin[0]] : kX;
        const NetConst b = cell.fanin[1] != kNoNet ? state[cell.fanin[1]] : kX;
        const NetConst c = cell.fanin[2] != kNoNet ? state[cell.fanin[2]] : kX;
        state[id] = eval3(cell.type, a, b, c);
    }
    return state;
}

std::size_t count_variable(const std::vector<NetConst>& state) {
    std::size_t n = 0;
    for (NetConst s : state)
        if (s == NetConst::Variable) ++n;
    return n;
}

}  // namespace sfi
