// Event-driven gate-level timing simulation with inertial delays.
//
// This is the "dynamic timing analysis" engine (paper §3.4, following
// [14]): for each simulated cycle the operand inputs switch from their
// previous values to new values at the clock edge (plus clk->q), events
// propagate through the netlist with per-cell rise/fall delays, and the
// *last* transition time observed at each endpoint is its data arrival
// time for that cycle. Glitches propagate (inertial filtering only
// suppresses pulses shorter than a cell's own delay, as real gates do).
//
// Inputs fixed at construction (the ALU "op" bus) are constant-propagated
// first; only the variable cone is simulated, so characterizing e.g. the
// add instruction never touches the multiplier array.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "timing/timing_lib.hpp"

namespace sfi {

struct EventSimConfig {
    /// Launch delay of the operand registers; negative = use the value
    /// annotated in the timing library (the default, keeps STA and event
    /// simulation in the same time reference).
    double clk_to_q_ps = -1.0;
};

class EventSim {
public:
    /// `fixed_inputs` pins buses for the lifetime of the simulator.
    /// `watch_bus` names the output bus whose arrival times are recorded.
    EventSim(const Netlist& netlist, const InstanceTiming& timing,
             std::map<std::string, std::uint64_t> fixed_inputs,
             std::string watch_bus = "y", EventSimConfig config = {});

    /// Stages a new value for a variable input bus (applied by settle()).
    void set_input(const std::string& bus, std::uint64_t value);

    /// Establishes a known steady state from the staged inputs without
    /// timing (functional evaluation). Call once before the first settle().
    void initialize();

    /// Simulates one cycle: staged input changes switch at clk->q, events
    /// propagate to quiescence. Returns per-watched-bit arrival times in
    /// ps (0.0 for bits that did not toggle, i.e. cannot mis-capture).
    const std::vector<double>& settle();

    /// Current logic value of watched bit `bit`.
    bool watched_value(std::size_t bit) const;

    std::size_t active_cell_count() const { return active_cells_; }
    std::uint64_t total_events() const { return total_events_; }
    std::size_t watch_width() const { return arrival_ps_.size(); }

private:
    struct Event {
        std::int64_t time_fs;
        NetId net;
        std::uint8_t value;
        std::uint32_t seq;
        bool operator>(const Event& other) const { return time_fs > other.time_fs; }
    };

    bool eval_cell(NetId id) const;
    void schedule_input_change(NetId net, bool value);
    void propagate(NetId net, std::int64_t now_fs);

    const Netlist* netlist_;
    std::vector<std::uint8_t> value_;
    std::vector<std::uint8_t> pending_valid_;
    std::vector<std::uint8_t> pending_value_;
    std::vector<std::uint32_t> seq_;
    std::vector<std::int64_t> rise_fs_;
    std::vector<std::int64_t> fall_fs_;

    // Active-cone fanout adjacency (CSR layout).
    std::vector<std::uint32_t> fanout_offset_;
    std::vector<NetId> fanout_edges_;
    std::vector<std::uint8_t> is_active_;

    std::vector<Event> heap_;  // std::push_heap/pop_heap min-heap
    std::vector<std::int32_t> watch_index_;
    std::vector<double> arrival_ps_;
    std::vector<NetId> watch_nets_;

    // Variable input buses and staged values.
    std::map<std::string, std::pair<std::vector<NetId>, std::uint64_t>> staged_;
    std::map<std::string, std::uint64_t> fixed_inputs_;

    std::int64_t clk_to_q_fs_;
    std::size_t active_cells_ = 0;
    std::uint64_t total_events_ = 0;
    bool initialized_ = false;
};

}  // namespace sfi
