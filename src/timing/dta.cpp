#include "timing/dta.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace sfi {

DtaClassResult run_dta_class(const Alu& alu, const InstanceTiming& timing,
                             ExClass cls, const DtaConfig& config,
                             perf::PhaseProfile* profile) {
    const perf::ScopedPhaseTimer dta_timer(profile, perf::Phase::DtaEval,
                                           config.cycles);
    DtaClassResult result;
    result.cls = cls;

    EventSimConfig sim_config;
    sim_config.clk_to_q_ps = config.clk_to_q_ps;
    EventSim sim(alu.netlist, timing,
                 {{"op", Alu::op_code(cls)}}, "y", sim_config);
    result.active_cells = sim.active_cell_count();

    const std::size_t width = sim.watch_width();
    result.arrivals_ps.assign(width, {});
    for (auto& per_endpoint : result.arrivals_ps)
        per_endpoint.reserve(config.cycles);

    // Seed per class so adding classes never perturbs existing statistics.
    Rng rng(config.seed ^ (static_cast<std::uint64_t>(cls) * 0x9e3779b97f4a7c15ULL));
    const std::uint32_t mask =
        config.operand_bits >= 32 ? 0xffffffffu
                                  : ((1u << config.operand_bits) - 1u);

    sim.set_input("a", rng.u32() & mask);
    sim.set_input("b", rng.u32() & mask);
    sim.initialize();

    {
        const perf::ScopedPhaseTimer settle_timer(
            profile, perf::Phase::EventSimSettle, config.cycles);
        for (std::size_t cycle = 0; cycle < config.cycles; ++cycle) {
            sim.set_input("a", rng.u32() & mask);
            sim.set_input("b", rng.u32() & mask);
            const std::vector<double>& arrivals = sim.settle();
            for (std::size_t bit = 0; bit < width; ++bit) {
                const double a = arrivals[bit];
                result.arrivals_ps[bit].push_back(static_cast<float>(a));
                result.max_arrival_ps = std::max(result.max_arrival_ps, a);
            }
        }
    }
    result.events = sim.total_events();
    return result;
}

DtaResult run_dta(const Alu& alu, const InstanceTiming& timing,
                  const DtaConfig& config, perf::PhaseProfile* profile) {
    DtaResult result;
    result.setup_ps = timing.setup_ps();
    result.cycles = config.cycles;
    for (const ExClass cls : Alu::instruction_classes()) {
        result.classes.push_back(
            run_dta_class(alu, timing, cls, config, profile));
        result.worst_arrival_ps =
            std::max(result.worst_arrival_ps, result.classes.back().max_arrival_ps);
    }
    return result;
}

}  // namespace sfi
