// Static timing analysis: topological worst-case arrival times.
//
// This is the timing view behind fault model B (paper §3.2): per-endpoint
// worst-case path delays, independent of data and (optionally) of the
// executed instruction. Arrival times are at the reference voltage;
// operating-point scaling is applied by the caller via VddDelayFit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "timing/timing_lib.hpp"

namespace sfi {

struct StaResult {
    /// Worst-case arrival per net (ps @ Vref); 0 for constant/input nets.
    std::vector<double> arrival_ps;
    /// Worst-case arrival per bit of the analysed output bus.
    std::vector<double> endpoint_ps;
    /// Worst endpoint arrival (max of endpoint_ps).
    double worst_ps = 0.0;
    /// Flip-flop setup time (ps @ Vref) to add before comparing to clocks.
    double setup_ps = 0.0;
    /// Nets of the critical path, input to worst endpoint.
    std::vector<NetId> critical_path;

    /// Maximum safe clock frequency in MHz when operating at a supply
    /// point with the given delay factor (factor 1.0 = Vref).
    double fmax_mhz(double delay_factor = 1.0) const;
    /// Minimum safe clock period (ps) at the given delay factor.
    double min_period_ps(double delay_factor = 1.0) const;
};

/// Full-netlist STA on output bus `out_bus`.
StaResult run_sta(const Netlist& netlist, const InstanceTiming& timing,
                  const std::string& out_bus = "y");

/// Instruction-conditioned STA: nets made constant by `fixed_inputs`
/// (e.g. the ALU op code) neither delay nor propagate transitions.
StaResult run_sta(const Netlist& netlist, const InstanceTiming& timing,
                  const std::map<std::string, std::uint64_t>& fixed_inputs,
                  const std::string& out_bus = "y");

}  // namespace sfi
