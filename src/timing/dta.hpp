// Dynamic timing analysis of the ALU (paper §3.4, method of [14]).
//
// For every ALU instruction class, an N-cycle characterization kernel
// applies fresh uniformly random operands each cycle and records the
// event-driven arrival time at each of the 32 endpoints. The resulting
// per-(instruction, endpoint) arrival-time samples are the raw material
// for the timing-error-probability CDFs of fault model C:
//     P_{E,V,I}(f) = v_f / n_I
// with v_f the number of cycles whose arrival (+ setup) exceeds 1/f.
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/alu.hpp"
#include "perf/perf.hpp"
#include "timing/event_sim.hpp"
#include "timing/timing_lib.hpp"

namespace sfi {

struct DtaConfig {
    std::size_t cycles = 8192;  ///< characterization kernel length (paper: 8 k)
    std::uint64_t seed = 0xD7A0C0DEULL;
    double clk_to_q_ps = -1.0;  ///< negative: use the library's clk->Q
    /// Restrict operands to this many low bits (32 = full range). Used by
    /// the instruction-characterization experiment (16-bit adds, Fig. 4).
    unsigned operand_bits = 32;
};

struct DtaClassResult {
    ExClass cls = ExClass::None;
    /// arrivals_ps[endpoint][cycle], ps at Vref; 0 when the endpoint did
    /// not toggle that cycle (cannot mis-capture).
    std::vector<std::vector<float>> arrivals_ps;
    double max_arrival_ps = 0.0;   ///< worst observed arrival (dynamic slack)
    std::size_t active_cells = 0;  ///< size of the instruction's logic cone
    std::uint64_t events = 0;      ///< simulation effort, for reports
};

struct DtaResult {
    std::vector<DtaClassResult> classes;  ///< in Alu::instruction_classes() order
    double setup_ps = 0.0;
    std::size_t cycles = 0;
    double worst_arrival_ps = 0.0;  ///< max over classes
};

/// Characterizes every instruction class of `alu`. When `profile` is
/// non-null it receives one Phase::DtaEval record per class (items =
/// kernel cycles) and the aggregated Phase::EventSimSettle cost of the
/// settle loop inside each class.
DtaResult run_dta(const Alu& alu, const InstanceTiming& timing,
                  const DtaConfig& config = {},
                  perf::PhaseProfile* profile = nullptr);

/// Characterizes a single class (used by tests and focused experiments).
DtaClassResult run_dta_class(const Alu& alu, const InstanceTiming& timing,
                             ExClass cls, const DtaConfig& config = {},
                             perf::PhaseProfile* profile = nullptr);

}  // namespace sfi
