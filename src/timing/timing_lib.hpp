// Standard-cell timing library and per-instance delay annotation.
//
// TimingLib plays the role of the foundry Liberty views: per-cell-type
// intrinsic rise/fall delays (28 nm-flavoured), a fanout-load derate, a
// flip-flop setup time, and the voltage law used to characterize the
// library corners. All annotated delays are expressed at the reference
// voltage (1.0 V); operating-point and noise effects enter later as a
// single multiplicative delay factor (see vdd_model.hpp), which matches
// the paper's approximation that paths scale uniformly with voltage.
//
// InstanceTiming binds a library to one netlist: every cell gets
//   delay = intrinsic * (1 + load_per_fanout * (fanout - 1))
//           * process_factor(cell) * calibration_scale(cell)
// where process_factor is a deterministic per-cell lognormal sample
// (process variation across the die) and calibration_scale is set by the
// synthesis-emulation calibration (see calibration.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "timing/vdd_model.hpp"

namespace sfi {

struct TimingLibConfig {
    double load_per_fanout = 0.12;  ///< fractional delay per extra fanout
    double process_sigma = 0.03;    ///< lognormal sigma of per-cell variation
    std::uint64_t process_seed = 0x5f12c0deULL;
    double ff_setup_ps = 45.0;      ///< endpoint flip-flop setup @ Vref
    double clk_to_q_ps = 50.0;      ///< operand register launch delay @ Vref
    VddDelayLaw::Params vdd;        ///< voltage law for corner generation
    /// Per-cell-type spread of the voltage-law exponent: with a non-zero
    /// spread, cell types scale slightly differently with voltage (gates
    /// of different stack heights really do), so paths no longer scale
    /// uniformly. Used to *validate* the paper's uniform-scaling
    /// approximation (footnote 1): see per-voltage DTA in fi/multi_vdd.hpp
    /// and the voltage ablation bench.
    double cell_alpha_spread = 0.0;
};

class TimingLib {
public:
    explicit TimingLib(TimingLibConfig config = {});

    /// Intrinsic (zero-extra-load) delays at Vref, picoseconds.
    double intrinsic_rise_ps(CellType type) const;
    double intrinsic_fall_ps(CellType type) const;

    double ff_setup_ps() const { return config_.ff_setup_ps; }
    const TimingLibConfig& config() const { return config_; }
    const VddDelayLaw& law() const { return law_; }

    /// The voltage fit the simulator uses (five-corner interpolation of
    /// the law, paper §3.3).
    const VddDelayFit& fit() const { return fit_; }

    /// Per-cell-type delay factor at voltage `v` relative to Vref. Equals
    /// law().factor(v) for every type when cell_alpha_spread is zero.
    double voltage_factor(CellType type, double v) const;

private:
    TimingLibConfig config_;
    VddDelayLaw law_;
    VddDelayFit fit_;
    std::vector<VddDelayLaw> per_type_law_;  // indexed by CellType
};

/// Per-cell annotated delays for one netlist, at Vref.
class InstanceTiming {
public:
    InstanceTiming(const Netlist& netlist, const TimingLib& lib);

    double rise_ps(NetId id) const { return rise_[id]; }
    double fall_ps(NetId id) const { return fall_[id]; }
    double max_ps(NetId id) const { return rise_[id] > fall_[id] ? rise_[id] : fall_[id]; }
    double setup_ps() const { return setup_ps_; }
    double clk_to_q_ps() const { return clk_to_q_ps_; }
    std::size_t cell_count() const { return rise_.size(); }

    /// Applies (multiplies in) per-cell calibration scale factors.
    /// `scale` must have one entry per cell.
    void apply_cell_scale(const std::vector<double>& scale);

    /// Re-characterizes this instance at supply voltage `v`: every cell's
    /// delays are multiplied by its type's voltage factor, and setup /
    /// clk->Q scale with the base law. Arrival times computed from the
    /// result are in absolute picoseconds at that voltage.
    InstanceTiming at_voltage(double v) const;

    const TimingLib& lib() const { return *lib_; }
    const Netlist& netlist() const { return *netlist_; }

private:
    const Netlist* netlist_;
    const TimingLib* lib_;
    std::vector<double> rise_;
    std::vector<double> fall_;
    double setup_ps_;
    double clk_to_q_ps_;
};

}  // namespace sfi
