#include "timing/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "timing/const_prop.hpp"

namespace sfi {

namespace {

AluUnit unit_of_class(ExClass cls) {
    switch (cls) {
        case ExClass::Add:
        case ExClass::Sub:
        case ExClass::Cmp: return AluUnit::Adder;
        case ExClass::And:
        case ExClass::Or:
        case ExClass::Xor: return AluUnit::Logic;
        case ExClass::Sll:
        case ExClass::Srl:
        case ExClass::Sra: return AluUnit::Shifter;
        case ExClass::Mul: return AluUnit::Multiplier;
        case ExClass::None:
        case ExClass::kCount: break;
    }
    throw std::invalid_argument("unit_of_class: not an ALU class");
}

double unit_target_ps(const CalibrationTargets& targets, AluUnit unit) {
    switch (unit) {
        case AluUnit::Adder: return targets.add_period_ps;
        case AluUnit::Logic: return targets.logic_period_ps;
        case AluUnit::Shifter: return targets.shift_period_ps;
        case AluUnit::Multiplier: return targets.mul_period_ps;
        default: throw std::invalid_argument("unit_target_ps: no target for unit");
    }
}

/// Worst complete input->endpoint path length through every cell, for one
/// instruction class (ps @ Vref, launch included; 0 for cells outside the
/// class cone). Forward arrival pass + reverse longest-tail pass, both
/// honoring constant nets and constant-select mux blocking.
std::vector<double> path_through_cells(const Alu& alu,
                                       const InstanceTiming& timing,
                                       ExClass cls) {
    const Netlist& netlist = alu.netlist;
    const std::size_t count = netlist.cell_count();
    const auto constants =
        propagate_constants(netlist, {{"op", Alu::op_code(cls)}});
    auto is_const = [&](NetId id) { return constants[id] != NetConst::Variable; };
    auto blocked_pin = [&](const Cell& cell, unsigned pin) {
        if (cell.type != CellType::Mux2 || pin == 0) return false;
        if (!is_const(cell.fanin[0])) return false;
        const bool sel = constants[cell.fanin[0]] == NetConst::One;
        return (sel && pin == 1) || (!sel && pin == 2);
    };

    std::vector<double> arrival(count, -1.0);
    for (NetId id = 0; id < count; ++id) {
        const Cell& cell = netlist.cell(id);
        const unsigned n = cell_fanin_count(cell.type);
        if (n == 0) {
            if (cell.type == CellType::Input) arrival[id] = timing.clk_to_q_ps();
            continue;
        }
        if (is_const(id)) continue;
        double best = -1.0;
        for (unsigned i = 0; i < n; ++i) {
            const NetId in = cell.fanin[i];
            if (is_const(in) || blocked_pin(cell, i)) continue;
            best = std::max(best, arrival[in]);
        }
        if (best >= 0.0) arrival[id] = best + timing.max_ps(id);
    }

    // Longest tail from each cell's output to any endpoint.
    std::vector<double> tail(count, -1.0);
    for (const NetId net : netlist.output_bus("y"))
        if (net != kNoNet && !is_const(net)) tail[net] = 0.0;
    for (NetId id = static_cast<NetId>(count); id-- > 0;) {
        if (tail[id] < 0.0) continue;
        const Cell& cell = netlist.cell(id);
        const unsigned n = cell_fanin_count(cell.type);
        for (unsigned i = 0; i < n; ++i) {
            const NetId in = cell.fanin[i];
            if (is_const(in) || blocked_pin(cell, i)) continue;
            tail[in] = std::max(tail[in], tail[id] + timing.max_ps(id));
        }
    }

    std::vector<double> through(count, 0.0);
    for (NetId id = 0; id < count; ++id)
        if (arrival[id] >= 0.0 && tail[id] >= 0.0)
            through[id] = arrival[id] + tail[id];
    return through;
}

}  // namespace

double CalibrationResult::class_fmax_mhz(ExClass cls) const {
    const auto it = class_period_ps.find(cls);
    if (it == class_period_ps.end())
        throw std::out_of_range("class_fmax_mhz: class not calibrated");
    return 1.0e6 / it->second;
}

CalibrationResult calibrate_alu(const Alu& alu, InstanceTiming& timing,
                                const CalibrationTargets& targets) {
    const TimingLib& lib = timing.lib();
    const double vf = lib.law().factor(targets.vdd);

    std::map<AluUnit, double> unit_scale = {
        {AluUnit::Adder, 1.0},
        {AluUnit::Logic, 1.0},
        {AluUnit::Shifter, 1.0},
        {AluUnit::Multiplier, 1.0},
        {AluUnit::Shared, 1.0},
    };

    // Per-cell slack-compression factors (>= 1, synthesis area recovery).
    std::vector<double> compression(alu.netlist.cell_count(), 1.0);

    auto make_scaled = [&](const std::map<AluUnit, double>& scales) {
        InstanceTiming scaled(alu.netlist, lib);
        std::vector<double> cell_scale(alu.netlist.cell_count());
        for (std::size_t id = 0; id < cell_scale.size(); ++id)
            cell_scale[id] = scales.at(alu.unit_of[id]) * compression[id];
        scaled.apply_cell_scale(cell_scale);
        return std::pair(std::move(scaled), std::move(cell_scale));
    };

    // Per-unit period at vdd = worst over the unit's instruction classes of
    // instruction-conditioned STA (shared mux cells included in the path).
    auto unit_periods = [&](const InstanceTiming& t) {
        std::map<AluUnit, double> worst;
        for (const ExClass cls : Alu::instruction_classes()) {
            const StaResult sta =
                run_sta(alu.netlist, t, {{"op", Alu::op_code(cls)}});
            const double period = sta.min_period_ps(vf);
            auto [it, inserted] = worst.emplace(unit_of_class(cls), period);
            if (!inserted && period > it->second) it->second = period;
        }
        return worst;
    };

    // Fixed-point iteration: shared-mux delay is part of each path but is
    // not scaled, so a plain multiplicative update converges geometrically.
    auto fit_unit_scales = [&] {
        for (unsigned iter = 0; iter < targets.iterations; ++iter) {
            auto [scaled, cell_scale] = make_scaled(unit_scale);
            const auto periods = unit_periods(scaled);
            for (auto& [unit, scale] : unit_scale) {
                if (unit == AluUnit::Shared) continue;
                const double current = periods.at(unit);
                if (current <= 0.0)
                    throw std::logic_error("calibrate_alu: degenerate unit period");
                scale *= unit_target_ps(targets, unit) / current;
            }
        }
    };
    fit_unit_scales();

    // Slack compression (synthesis area-recovery emulation): every cell is
    // slowed toward the point where its worst complete path meets the
    // block constraint, with exponent `compression` in [0, 1]. Paths
    // shared between cells couple the updates, so a few damped iterations
    // are used, followed by a unit-scale refit to pin the block targets.
    if (targets.compression > 0.0) {
        const double kappa = std::min(targets.compression, 1.0);
        for (unsigned iter = 0; iter < targets.compression_iterations; ++iter) {
            auto [scaled, cell_scale] = make_scaled(unit_scale);
            std::vector<double> worst_through(alu.netlist.cell_count(), 0.0);
            std::vector<double> cell_target(alu.netlist.cell_count(), 0.0);
            for (const ExClass cls : Alu::instruction_classes()) {
                const auto through = path_through_cells(alu, scaled, cls);
                // Window target at Vref for this class's unit constraint.
                const double window =
                    unit_target_ps(targets, unit_of_class(cls)) / vf -
                    scaled.setup_ps();
                for (NetId id = 0; id < through.size(); ++id) {
                    if (through[id] <= worst_through[id]) continue;
                    worst_through[id] = through[id];
                    cell_target[id] = window;
                }
            }
            for (NetId id = 0; id < compression.size(); ++id) {
                if (alu.unit_of[id] == AluUnit::Shared) continue;
                if (worst_through[id] <= 0.0 || cell_target[id] <= 0.0) continue;
                const double ratio = cell_target[id] / worst_through[id];
                if (ratio <= 1.0) continue;  // already at/over the constraint
                compression[id] =
                    std::min(compression[id] * std::pow(ratio, kappa), 8.0);
            }
        }
        fit_unit_scales();
    }

    auto [scaled, cell_scale] = make_scaled(unit_scale);
    CalibrationResult result;
    result.unit_scale = unit_scale;
    result.cell_scale = cell_scale;
    result.vdd = targets.vdd;
    result.non_alu_threshold_mhz = targets.non_alu_threshold_mhz;
    for (const ExClass cls : Alu::instruction_classes()) {
        const StaResult sta =
            run_sta(alu.netlist, scaled, {{"op", Alu::op_code(cls)}});
        result.class_period_ps[cls] = sta.min_period_ps(vf);
    }
    const StaResult full = endpoint_worst_sta(alu, scaled);
    result.sta_period_ps = full.min_period_ps(vf);
    result.sta_fmax_mhz = full.fmax_mhz(vf);

    timing = std::move(scaled);
    return result;
}

StaResult endpoint_worst_sta(const Alu& alu, const InstanceTiming& timing) {
    StaResult worst;
    worst.setup_ps = timing.setup_ps();
    for (const ExClass cls : Alu::instruction_classes()) {
        StaResult sta = run_sta(alu.netlist, timing, {{"op", Alu::op_code(cls)}});
        if (worst.endpoint_ps.empty())
            worst.endpoint_ps.assign(sta.endpoint_ps.size(), 0.0);
        for (std::size_t e = 0; e < sta.endpoint_ps.size(); ++e)
            worst.endpoint_ps[e] = std::max(worst.endpoint_ps[e], sta.endpoint_ps[e]);
        if (sta.worst_ps > worst.worst_ps) {
            worst.worst_ps = sta.worst_ps;
            worst.critical_path = std::move(sta.critical_path);
            worst.arrival_ps = std::move(sta.arrival_ps);
        }
    }
    return worst;
}

}  // namespace sfi
