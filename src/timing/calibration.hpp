// Synthesis-emulation calibration of the ALU timing.
//
// The paper's core is implemented with the constraint strategy of [14]:
// synthesis balances the block-level critical paths so that only the ALU
// endpoints limit fmax (707 MHz @ 0.7 V) while everything else is safe
// below a much higher threshold (1.15 GHz @ 0.7 V). We cannot run a
// commercial synthesizer, so this stage reproduces its *timing outcome*:
// each functional unit's cells are scaled by a single factor until the
// unit's instruction-conditioned STA matches a block-level target period.
// The delay *distribution inside* each unit — which determines the CDF
// shapes of model C — still comes from the real gate structure.
//
// Targets are minimum clock periods (including flip-flop setup) at the
// calibration voltage. Defaults reproduce the paper's operating point.
#pragma once

#include <map>
#include <vector>

#include "circuits/alu.hpp"
#include "timing/sta.hpp"
#include "timing/timing_lib.hpp"

namespace sfi {

struct CalibrationTargets {
    double vdd = 0.7;            ///< calibration voltage
    double mul_period_ps = 1414.4;    ///< -> f_STA = 707 MHz
    double add_period_ps = 1390.0;    ///< adder close behind (constraint strategy)
    double shift_period_ps = 1150.0;
    double logic_period_ps = 950.0;
    /// All non-ALU pipeline paths are constrained below this period; the
    /// paper's threshold frequency is 1.15 GHz @ 0.7 V.
    double non_alu_threshold_mhz = 1150.0;
    unsigned iterations = 10;    ///< fixed-point iterations
    /// Slack-compression strength emulating synthesis area recovery:
    /// cells on non-critical paths are downsized (slowed) toward the
    /// block constraint, so low-significance endpoints move closer to the
    /// timing wall, as in the paper's Fig. 2. 0 = none (raw structural
    /// delays), 1 = every path pushed onto the constraint (which erases
    /// the dynamic-slack transition regions entirely — see the
    /// compression ablation bench). The default narrows the per-bit
    /// spread while preserving the paper's PoFF gains and gradual
    /// failure behaviour.
    double compression = 0.35;
    /// Compression passes. One pass slows each cell by (target/path)^k,
    /// shrinking the per-endpoint spread to spread^(1-k); additional
    /// passes converge toward full compression regardless of k.
    unsigned compression_iterations = 1;
};

struct CalibrationResult {
    /// Per-cell scale factors that were applied to the InstanceTiming.
    std::vector<double> cell_scale;
    std::map<AluUnit, double> unit_scale;
    /// Per-class minimum period (ps, incl. setup) at the target voltage.
    std::map<ExClass, double> class_period_ps;
    /// Full-netlist (instruction-oblivious) STA limit at the target
    /// voltage — the "STA" line of the paper's figures.
    double sta_period_ps = 0.0;
    double sta_fmax_mhz = 0.0;
    double vdd = 0.0;
    double non_alu_threshold_mhz = 0.0;

    /// Per-class maximum safe frequency (MHz) at the calibration voltage.
    double class_fmax_mhz(ExClass cls) const;
};

/// Scales `timing` in place; returns the applied scales and the post-
/// calibration timing summary.
CalibrationResult calibrate_alu(const Alu& alu, InstanceTiming& timing,
                                const CalibrationTargets& targets = {});

/// Design STA view of the ALU endpoints: per-endpoint worst-case delay as
/// the element-wise maximum over all instruction-conditioned analyses.
/// This is what fault model B consumes (paper §3.2). Paths launched from
/// the function-select register (e.g. select -> operand-isolation ->
/// array) are excluded, reflecting the constraint strategy of [14] that
/// keeps control paths non-critical by construction.
StaResult endpoint_worst_sta(const Alu& alu, const InstanceTiming& timing);

}  // namespace sfi
