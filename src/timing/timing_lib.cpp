#include "timing/timing_lib.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace sfi {

namespace {

// Intrinsic delays at Vref=1.0 V, FO1, picoseconds. Values are
// representative of a 28 nm standard-Vt library (regular drive cells);
// absolute accuracy is not required because the calibration stage scales
// whole units to the paper's block-level targets — the *ratios* between
// cell types are what shapes the path-delay distributions.
struct BaseDelay {
    double rise, fall;
};

BaseDelay base_delay(CellType type) {
    switch (type) {
        case CellType::Input:
        case CellType::Tie0:
        case CellType::Tie1: return {0.0, 0.0};
        case CellType::Buf: return {16.0, 16.0};
        case CellType::Inv: return {9.0, 7.0};
        case CellType::Nand2: return {12.0, 10.0};
        case CellType::Nor2: return {16.0, 11.0};
        case CellType::And2: return {18.0, 16.0};
        case CellType::Or2: return {20.0, 17.0};
        case CellType::Xor2: return {26.0, 24.0};
        case CellType::Xnor2: return {26.0, 24.0};
        case CellType::Mux2: return {24.0, 22.0};
        case CellType::kCount: break;
    }
    throw std::invalid_argument("base_delay: bad cell type");
}

}  // namespace

TimingLib::TimingLib(TimingLibConfig config)
    : config_(config), law_(config.vdd), fit_(VddDelayFit::from_law(law_)) {
    if (config_.load_per_fanout < 0.0 || config_.process_sigma < 0.0 ||
        config_.ff_setup_ps < 0.0 || config_.clk_to_q_ps < 0.0)
        throw std::invalid_argument("TimingLib: negative config parameter");
    per_type_law_.reserve(static_cast<std::size_t>(CellType::kCount));
    for (std::size_t t = 0; t < static_cast<std::size_t>(CellType::kCount); ++t) {
        VddDelayLaw::Params params = config_.vdd;
        if (config_.cell_alpha_spread > 0.0) {
            // Deterministic per-type offset in [-1, 1]: splitmix-style hash
            // of the type index, so the assignment is stable across runs.
            std::uint64_t z = (t + 1) * 0x9e3779b97f4a7c15ULL;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            const double unit =
                static_cast<double>(z >> 11) * 0x1.0p-53 * 2.0 - 1.0;
            params.alpha *= 1.0 + config_.cell_alpha_spread * unit;
        }
        per_type_law_.emplace_back(params);
    }
}

double TimingLib::voltage_factor(CellType type, double v) const {
    return per_type_law_[static_cast<std::size_t>(type)].factor(v);
}

double TimingLib::intrinsic_rise_ps(CellType type) const {
    return base_delay(type).rise;
}

double TimingLib::intrinsic_fall_ps(CellType type) const {
    return base_delay(type).fall;
}

InstanceTiming::InstanceTiming(const Netlist& netlist, const TimingLib& lib)
    : netlist_(&netlist),
      lib_(&lib),
      setup_ps_(lib.ff_setup_ps()),
      clk_to_q_ps_(lib.config().clk_to_q_ps) {
    const std::size_t count = netlist.cell_count();
    rise_.resize(count);
    fall_.resize(count);
    const auto& fanout = netlist.fanout_counts();
    Rng rng(lib.config().process_seed);
    const double sigma = lib.config().process_sigma;
    const double load = lib.config().load_per_fanout;
    for (NetId id = 0; id < count; ++id) {
        const CellType type = netlist.cell(id).type;
        // One normal draw per cell keeps the process assignment
        // deterministic and independent of which delays are queried.
        const double process = std::exp(sigma * rng.normal());
        const double extra = fanout[id] > 1
                                 ? 1.0 + load * static_cast<double>(fanout[id] - 1)
                                 : 1.0;
        rise_[id] = lib.intrinsic_rise_ps(type) * extra * process;
        fall_[id] = lib.intrinsic_fall_ps(type) * extra * process;
    }
}

InstanceTiming InstanceTiming::at_voltage(double v) const {
    InstanceTiming scaled = *this;
    for (NetId id = 0; id < scaled.rise_.size(); ++id) {
        const double factor = lib_->voltage_factor(netlist_->cell(id).type, v);
        scaled.rise_[id] *= factor;
        scaled.fall_[id] *= factor;
    }
    const double base = lib_->law().factor(v);
    scaled.setup_ps_ *= base;
    scaled.clk_to_q_ps_ *= base;
    return scaled;
}

void InstanceTiming::apply_cell_scale(const std::vector<double>& scale) {
    if (scale.size() != rise_.size())
        throw std::invalid_argument("apply_cell_scale: size mismatch");
    for (std::size_t id = 0; id < scale.size(); ++id) {
        if (scale[id] <= 0.0)
            throw std::invalid_argument("apply_cell_scale: non-positive scale");
        rise_[id] *= scale[id];
        fall_[id] *= scale[id];
    }
}

}  // namespace sfi
