#include "timing/event_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "timing/const_prop.hpp"

namespace sfi {

EventSim::EventSim(const Netlist& netlist, const InstanceTiming& timing,
                   std::map<std::string, std::uint64_t> fixed_inputs,
                   std::string watch_bus, EventSimConfig config)
    : netlist_(&netlist), fixed_inputs_(std::move(fixed_inputs)) {
    const std::size_t count = netlist.cell_count();
    value_.assign(count, 0);
    pending_valid_.assign(count, 0);
    pending_value_.assign(count, 0);
    seq_.assign(count, 0);
    rise_fs_.resize(count);
    fall_fs_.resize(count);
    for (NetId id = 0; id < count; ++id) {
        rise_fs_[id] = std::llround(timing.rise_ps(id) * 1000.0);
        fall_fs_[id] = std::llround(timing.fall_ps(id) * 1000.0);
    }
    clk_to_q_fs_ = std::llround(
        (config.clk_to_q_ps < 0.0 ? timing.clk_to_q_ps() : config.clk_to_q_ps) *
        1000.0);

    // Constant-propagate the fixed inputs; only variable cells are active.
    const auto constants = propagate_constants(netlist, fixed_inputs_);
    is_active_.assign(count, 0);
    for (NetId id = 0; id < count; ++id)
        is_active_[id] = constants[id] == NetConst::Variable;
    active_cells_ = static_cast<std::size_t>(
        std::count(is_active_.begin(), is_active_.end(), std::uint8_t{1}));
    // One live pending event per active cell is the steady-state load
    // (cancelled entries linger until popped, so the true peak can exceed
    // it); reserving that much up front makes settle() growth-free in the
    // common case.
    heap_.reserve(active_cells_ + 1);

    // CSR fanout adjacency restricted to active sinks.
    std::vector<std::uint32_t> degree(count, 0);
    for (NetId id = 0; id < count; ++id) {
        if (!is_active_[id]) continue;
        const Cell& cell = netlist.cell(id);
        const unsigned n = cell_fanin_count(cell.type);
        for (unsigned i = 0; i < n; ++i) ++degree[cell.fanin[i]];
    }
    fanout_offset_.assign(count + 1, 0);
    for (NetId id = 0; id < count; ++id)
        fanout_offset_[id + 1] = fanout_offset_[id] + degree[id];
    fanout_edges_.resize(fanout_offset_[count]);
    std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                      fanout_offset_.end() - 1);
    for (NetId id = 0; id < count; ++id) {
        if (!is_active_[id]) continue;
        const Cell& cell = netlist.cell(id);
        const unsigned n = cell_fanin_count(cell.type);
        for (unsigned i = 0; i < n; ++i)
            fanout_edges_[cursor[cell.fanin[i]]++] = id;
    }

    // Watch list.
    watch_nets_ = netlist.output_bus(watch_bus);
    watch_index_.assign(count, -1);
    for (std::size_t bit = 0; bit < watch_nets_.size(); ++bit)
        if (watch_nets_[bit] != kNoNet)
            watch_index_[watch_nets_[bit]] = static_cast<std::int32_t>(bit);
    arrival_ps_.assign(watch_nets_.size(), 0.0);

    // Register the variable input buses (everything not fixed).
    for (const auto& [bus, nets] : netlist.input_buses())
        if (!fixed_inputs_.count(bus)) staged_[bus] = {nets, 0};
}

void EventSim::set_input(const std::string& bus, std::uint64_t value) {
    const auto it = staged_.find(bus);
    if (it == staged_.end())
        throw std::invalid_argument("EventSim: unknown or fixed input bus " + bus);
    it->second.second = value;
}

bool EventSim::eval_cell(NetId id) const {
    const Cell& cell = netlist_->cell(id);
    const bool a = cell.fanin[0] != kNoNet && value_[cell.fanin[0]];
    const bool b = cell.fanin[1] != kNoNet && value_[cell.fanin[1]];
    const bool c = cell.fanin[2] != kNoNet && value_[cell.fanin[2]];
    return cell_eval(cell.type, a, b, c);
}

void EventSim::initialize() {
    // Re-establish the steady state in the persistent value buffer — no
    // per-call allocation, so re-initializing a simulator (DTA warm
    // restarts, multi-seed characterization) reuses the settle buffers.
    std::fill(value_.begin(), value_.end(), 0);
    for (const auto& [bus, value] : fixed_inputs_) {
        const auto& nets = netlist_->input_bus(bus);
        for (std::size_t bit = 0; bit < nets.size(); ++bit)
            if (nets[bit] != kNoNet) value_[nets[bit]] = (value >> bit) & 1u;
    }
    for (const auto& [bus, staged] : staged_) {
        const auto& [nets, value] = staged;
        for (std::size_t bit = 0; bit < nets.size(); ++bit)
            if (nets[bit] != kNoNet) value_[nets[bit]] = (value >> bit) & 1u;
    }
    netlist_->eval_into(value_);
    std::fill(pending_valid_.begin(), pending_valid_.end(), 0);
    heap_.clear();
    initialized_ = true;
}

void EventSim::schedule_input_change(NetId net, bool value) {
    if (value_[net] == static_cast<std::uint8_t>(value)) return;
    ++seq_[net];
    pending_valid_[net] = 1;
    pending_value_[net] = value;
    heap_.push_back(Event{clk_to_q_fs_, net, static_cast<std::uint8_t>(value),
                          seq_[net]});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void EventSim::propagate(NetId net, std::int64_t now_fs) {
    for (std::uint32_t e = fanout_offset_[net]; e < fanout_offset_[net + 1]; ++e) {
        const NetId gate = fanout_edges_[e];
        const bool target = eval_cell(gate);
        const std::uint8_t effective =
            pending_valid_[gate] ? pending_value_[gate] : value_[gate];
        if (static_cast<std::uint8_t>(target) == effective) continue;
        if (static_cast<std::uint8_t>(target) == value_[gate]) {
            // Inertial cancellation: the pending pulse never happens.
            ++seq_[gate];
            pending_valid_[gate] = 0;
            continue;
        }
        ++seq_[gate];
        pending_valid_[gate] = 1;
        pending_value_[gate] = target;
        const std::int64_t delay = target ? rise_fs_[gate] : fall_fs_[gate];
        heap_.push_back(Event{now_fs + delay, gate,
                              static_cast<std::uint8_t>(target), seq_[gate]});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
}

const std::vector<double>& EventSim::settle() {
    assert(initialized_ && "EventSim::initialize() must be called first");
    std::fill(arrival_ps_.begin(), arrival_ps_.end(), 0.0);
    for (const auto& [bus, staged] : staged_) {
        const auto& [nets, value] = staged;
        for (std::size_t bit = 0; bit < nets.size(); ++bit)
            if (nets[bit] != kNoNet)
                schedule_input_change(nets[bit], (value >> bit) & 1u);
    }
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        const Event ev = heap_.back();
        heap_.pop_back();
        if (ev.seq != seq_[ev.net]) continue;  // cancelled
        pending_valid_[ev.net] = 0;
        if (value_[ev.net] == ev.value) continue;
        value_[ev.net] = ev.value;
        ++total_events_;
        const std::int32_t w = watch_index_[ev.net];
        if (w >= 0)
            arrival_ps_[static_cast<std::size_t>(w)] =
                static_cast<double>(ev.time_fs) / 1000.0;
        propagate(ev.net, ev.time_fs);
    }
    return arrival_ps_;
}

bool EventSim::watched_value(std::size_t bit) const {
    const NetId net = watch_nets_.at(bit);
    return net != kNoNet && value_[net];
}

}  // namespace sfi
