// Three-valued constant propagation over a netlist.
//
// Given fixed values for some input buses (typically the ALU "op" bus,
// which is stable while an instruction computes), determines which nets
// are constant. Instruction-conditioned STA and the event-driven timing
// simulator both use this to restrict themselves to the logic cone a
// given instruction class can actually exercise — the mechanism behind
// the "instruction aware" column of the paper's model table (Table 2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sfi {

/// Per-net constant state.
enum class NetConst : std::int8_t { Zero = 0, One = 1, Variable = -1 };

/// Propagates `fixed_inputs` (bus name -> packed value) through the
/// netlist. Input bits not covered by `fixed_inputs` are Variable.
/// Unknown bus names throw std::out_of_range.
std::vector<NetConst> propagate_constants(
    const Netlist& netlist,
    const std::map<std::string, std::uint64_t>& fixed_inputs);

/// Number of Variable nets in a propagation result.
std::size_t count_variable(const std::vector<NetConst>& state);

}  // namespace sfi
