#include "timing/sta.hpp"

#include <algorithm>

#include "timing/const_prop.hpp"

namespace sfi {

double StaResult::min_period_ps(double delay_factor) const {
    return (worst_ps + setup_ps) * delay_factor;
}

double StaResult::fmax_mhz(double delay_factor) const {
    const double period = min_period_ps(delay_factor);
    return period > 0.0 ? 1.0e6 / period : 0.0;
}

namespace {

StaResult sta_impl(const Netlist& netlist, const InstanceTiming& timing,
                   const std::vector<NetConst>* constants,
                   const std::string& out_bus) {
    const std::size_t count = netlist.cell_count();
    StaResult result;
    result.setup_ps = timing.setup_ps();
    result.arrival_ps.assign(count, 0.0);
    std::vector<NetId> pred(count, kNoNet);

    auto is_const = [&](NetId id) {
        return constants && (*constants)[id] != NetConst::Variable;
    };

    for (NetId id = 0; id < count; ++id) {
        const Cell& cell = netlist.cell(id);
        const unsigned n = cell_fanin_count(cell.type);
        if (n == 0) {
            // Primary inputs launch at the register clk->Q delay.
            if (cell.type == CellType::Input)
                result.arrival_ps[id] = timing.clk_to_q_ps();
            continue;
        }
        if (is_const(id)) continue;  // constant nets never transition
        double best = -1.0;
        NetId best_pred = kNoNet;
        for (unsigned i = 0; i < n; ++i) {
            const NetId in = cell.fanin[i];
            if (is_const(in)) continue;  // constant pins launch no transition
            // A mux with a constant select blocks its de-selected data pin:
            // transitions there cannot reach the output.
            if (cell.type == CellType::Mux2 && i >= 1 && constants &&
                (*constants)[cell.fanin[0]] != NetConst::Variable) {
                const bool sel = (*constants)[cell.fanin[0]] == NetConst::One;
                if ((sel && i == 1) || (!sel && i == 2)) continue;
            }
            if (result.arrival_ps[in] > best) {
                best = result.arrival_ps[in];
                best_pred = in;
            }
        }
        if (best < 0.0) continue;  // all contributing fanins are constant
        result.arrival_ps[id] = best + timing.max_ps(id);
        pred[id] = best_pred;
    }

    const auto& outs = netlist.output_bus(out_bus);
    result.endpoint_ps.assign(outs.size(), 0.0);
    NetId worst_net = kNoNet;
    for (std::size_t bit = 0; bit < outs.size(); ++bit) {
        if (outs[bit] == kNoNet) continue;
        result.endpoint_ps[bit] = result.arrival_ps[outs[bit]];
        if (result.endpoint_ps[bit] >= result.worst_ps) {
            result.worst_ps = result.endpoint_ps[bit];
            worst_net = outs[bit];
        }
    }
    for (NetId at = worst_net; at != kNoNet; at = pred[at])
        result.critical_path.push_back(at);
    std::reverse(result.critical_path.begin(), result.critical_path.end());
    return result;
}

}  // namespace

StaResult run_sta(const Netlist& netlist, const InstanceTiming& timing,
                  const std::string& out_bus) {
    return sta_impl(netlist, timing, nullptr, out_bus);
}

StaResult run_sta(const Netlist& netlist, const InstanceTiming& timing,
                  const std::map<std::string, std::uint64_t>& fixed_inputs,
                  const std::string& out_bus) {
    const auto constants = propagate_constants(netlist, fixed_inputs);
    return sta_impl(netlist, timing, &constants, out_bus);
}

}  // namespace sfi
