// Supply-voltage -> gate-delay modeling.
//
// Two layers, mirroring the paper's methodology (§3.3):
//
//  * VddDelayLaw — the "silicon": an alpha-power-law delay model,
//    delay(V) ∝ V / (V - Vth)^alpha, normalized to 1.0 at Vref. The
//    timing library uses it to characterize cells at discrete voltages.
//    Default parameters are tuned to the paper's measured sensitivity
//    (~3.4 %/10 mV at 0.7 V: model B+ first faults at 661 MHz for
//    sigma = 10 mV and 588 MHz for 25 mV against a 707 MHz STA limit).
//
//  * VddDelayFit — what the simulator *uses*: the delay-vs-voltage curve
//    interpolated from the worst-path delay sampled at the five library
//    corners (0.6 V .. 1.0 V in 100 mV steps), exactly as the paper fits
//    it. Piecewise-linear in log(delay), with slope extrapolation. The
//    small law-vs-fit discrepancy is intentional realism.
#pragma once

#include <array>
#include <vector>

namespace sfi {

struct VddLawParams {
    double vref = 1.0;    ///< voltage where the factor is 1.0
    double vth = 0.42;    ///< effective threshold voltage [V]
    double alpha = 1.37;  ///< velocity-saturation exponent
};

class VddDelayLaw {
public:
    using Params = VddLawParams;

    explicit VddDelayLaw(Params params = {});

    /// Delay multiplier at voltage `v` relative to Vref. Monotonically
    /// decreasing in v; throws std::domain_error for v <= Vth + 10 mV.
    double factor(double v) const;

    const Params& params() const { return params_; }

private:
    Params params_;
    double norm_;
};

/// The five characterization corners used throughout (paper §3.3).
inline constexpr std::array<double, 5> kLibraryVoltages = {0.6, 0.7, 0.8, 0.9, 1.0};

class VddDelayFit {
public:
    /// Builds the fit from (voltage, delay-factor) samples; at least two
    /// samples, strictly increasing voltages.
    VddDelayFit(std::vector<double> voltages, std::vector<double> factors);

    /// Convenience: samples `law` at the five library corners.
    static VddDelayFit from_law(const VddDelayLaw& law);

    /// Interpolated delay factor at voltage `v` (linear in log-factor,
    /// end-slope extrapolation outside the sampled range).
    double factor(double v) const;

    /// Relative delay change for a small supply excursion `dv` around `v`:
    /// factor(v + dv) / factor(v). This is the "CDF scaling-factor" input
    /// of model C (Fig. 3) and the path-delay modulation of model B+.
    double noise_scale(double v, double dv) const;

    const std::vector<double>& voltages() const { return voltages_; }
    const std::vector<double>& factors() const { return factors_; }

private:
    std::vector<double> voltages_;
    std::vector<double> factors_;
    std::vector<double> log_factors_;
};

}  // namespace sfi
