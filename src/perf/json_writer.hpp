// Minimal streaming JSON emitter with a *stable* output format: keys are
// written in call order, numbers in a fixed round-trippable format, and
// indentation is deterministic — emitting the same data twice yields
// byte-identical text. That stability is what lets CI diff BENCH_*.json
// artifacts across commits and lets scripts/check_perf_regression.py
// parse them without a schema migration story.
//
// The campaign manifest writer (src/campaign/runner.cpp) predates this
// class and hand-rolls its JSON; new JSON producers should use JsonWriter.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sfi::perf {

class JsonWriter {
public:
    /// Writes to `os` with two-space indentation. The writer does not own
    /// the stream; the document must be closed (all begin_* matched) before
    /// the stream is used elsewhere.
    explicit JsonWriter(std::ostream& os);

    // Structure. A document is one top-level value (usually an object).
    void begin_object();
    void end_object();
    void begin_array();
    void end_array();

    /// Names the next value inside an object.
    void key(std::string_view name);

    // Scalars.
    void value(std::string_view text);
    void value(const char* text) { value(std::string_view(text)); }
    void value(double number);
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    void value(bool flag);
    void null();

    // key() + value() in one call.
    template <typename T>
    void field(std::string_view name, T v) {
        key(name);
        value(v);
    }
    void null_field(std::string_view name) {
        key(name);
        null();
    }

    /// JSON string escaping (quotes not included).
    static std::string escape(std::string_view text);

private:
    void before_value();
    void newline_indent();

    std::ostream& os_;
    // One frame per open container: whether it is an array and whether it
    // already holds a value (comma handling).
    struct Frame {
        bool array = false;
        bool has_value = false;
    };
    std::vector<Frame> stack_;
    bool key_pending_ = false;
};

}  // namespace sfi::perf
