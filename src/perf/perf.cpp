#include "perf/perf.hpp"

namespace sfi::perf {

const char* phase_name(Phase phase) {
    switch (phase) {
        case Phase::DtaEval: return "dta_eval";
        case Phase::EventSimSettle: return "event_sim_settle";
        case Phase::FaultSampling: return "fault_sampling";
        case Phase::Decode: return "decode";
        case Phase::TrialRun: return "trial_run";
        case Phase::Aggregation: return "aggregation";
        case Phase::FaultSamplingBatch: return "fault_sampling_batch";
        case Phase::Forensics: return "forensics";
    }
    return "?";
}

void PhaseProfile::merge(const PhaseProfile& other) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        stats_[i].seconds += other.stats_[i].seconds;
        stats_[i].calls += other.stats_[i].calls;
        stats_[i].items += other.stats_[i].items;
    }
}

double PhaseProfile::total_seconds() const {
    double total = 0.0;
    for (const PhaseStats& s : stats_) total += s.seconds;
    return total;
}

}  // namespace sfi::perf
