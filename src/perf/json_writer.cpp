#include "perf/json_writer.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace sfi::perf {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void JsonWriter::newline_indent() {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
    if (stack_.empty()) return;  // top-level value
    Frame& frame = stack_.back();
    if (frame.array) {
        if (frame.has_value) os_ << ',';
        newline_indent();
    } else {
        // Object values must be introduced by key(); key() already wrote
        // the separator and "name": prefix.
        assert(key_pending_ && "JsonWriter: object value without key()");
        key_pending_ = false;
    }
    frame.has_value = true;
}

void JsonWriter::key(std::string_view name) {
    assert(!stack_.empty() && !stack_.back().array &&
           "JsonWriter: key() outside an object");
    assert(!key_pending_ && "JsonWriter: two key() calls in a row");
    if (stack_.back().has_value) os_ << ',';
    newline_indent();
    os_ << '"' << escape(name) << "\": ";
    key_pending_ = true;
}

void JsonWriter::begin_object() {
    before_value();
    os_ << '{';
    stack_.push_back({false, false});
}

void JsonWriter::end_object() {
    assert(!stack_.empty() && !stack_.back().array);
    const bool had_values = stack_.back().has_value;
    stack_.pop_back();
    if (had_values) newline_indent();
    os_ << '}';
    if (stack_.empty()) os_ << '\n';
}

void JsonWriter::begin_array() {
    before_value();
    os_ << '[';
    stack_.push_back({true, false});
}

void JsonWriter::end_array() {
    assert(!stack_.empty() && stack_.back().array);
    const bool had_values = stack_.back().has_value;
    stack_.pop_back();
    if (had_values) newline_indent();
    os_ << ']';
    if (stack_.empty()) os_ << '\n';
}

void JsonWriter::value(std::string_view text) {
    before_value();
    os_ << '"' << escape(text) << '"';
}

void JsonWriter::value(double number) {
    before_value();
    if (!std::isfinite(number)) {
        // JSON has no NaN/Inf; null keeps the document parseable and makes
        // the bad sample visible instead of corrupting the file.
        os_ << "null";
        return;
    }
    // %.17g round-trips every double; trim to the shortest representation
    // that still round-trips so the artifacts stay humanly diffable.
    char buf[32];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, number);
        double parsed = 0.0;
        std::sscanf(buf, "%lf", &parsed);
        if (parsed == number) break;
    }
    os_ << buf;
}

void JsonWriter::value(std::uint64_t number) {
    before_value();
    os_ << number;
}

void JsonWriter::value(std::int64_t number) {
    before_value();
    os_ << number;
}

void JsonWriter::value(bool flag) {
    before_value();
    os_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
    before_value();
    os_ << "null";
}

std::string JsonWriter::escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace sfi::perf
