// Performance instrumentation primitives (ROADMAP: "as fast as the
// hardware allows" needs a measured trajectory, not vibes).
//
// The subsystem separates the two things a perf report mixes:
//
//  * wall-clock time — inherently machine- and run-dependent, measured
//    with monotonic scoped timers (Stopwatch / ScopedPhaseTimer on
//    std::chrono::steady_clock, never the wall clock);
//  * work counters — calls and items per phase, which are a pure function
//    of the workload and therefore deterministic: two runs of the same
//    experiment must report identical counter columns even though their
//    seconds differ. tests/perf/test_perf.cpp pins that contract.
//
// Phases form a fixed taxonomy (the rows of BENCH_core.json): DTA
// evaluation, event-sim settle, fault sampling, micro-op decode, trial
// execution and outcome aggregation. Instrumented code takes a nullable PhaseProfile* —
// a null profile makes every hook a no-op, so the hot paths pay one
// branch when profiling is off.
//
// PhaseProfile is intentionally NOT thread-safe: the instrumented call
// sites (run_dta, MonteCarloRunner::run_point) only touch the profile
// from the dispatching thread, timing whole parallel sections instead of
// letting workers race on shared accumulators. Workers that want their
// own timings use one profile each and merge() afterwards.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace sfi::perf {

/// The phase taxonomy of BENCH_core.json (docs/ARCHITECTURE.md,
/// "Performance instrumentation"). Values index PhaseProfile's table.
enum class Phase : std::uint8_t {
    DtaEval,        ///< DTA characterization of one instruction class
    EventSimSettle, ///< event-driven settle() cycles inside the DTA loop
    FaultSampling,  ///< fault-model corrupt() evaluation (per ALU op)
    Decode,         ///< micro-op lowering for threaded dispatch (per word)
    TrialRun,       ///< Monte-Carlo trial execution (ISS runs)
    Aggregation,    ///< folding TrialOutcomes into PointSummaries
    FaultSamplingBatch,  ///< batched corrupt() evaluation (per ALU op)
    Forensics,      ///< forensic trial re-runs + artifact aggregation
};

inline constexpr std::size_t kPhaseCount = 8;

/// Stable snake_case identifier used in the JSON schema ("dta_eval", ...).
const char* phase_name(Phase phase);

/// Monotonic stopwatch: seconds() can never go backwards between calls
/// (steady_clock), and restart() re-arms it.
class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    void restart() { start_ = Clock::now(); }

    /// Seconds since construction / the last restart (>= 0).
    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Accumulated cost of one phase. `items` counts phase-specific work units
/// (settle cycles, ALU ops, trials, outcomes) — the deterministic column.
struct PhaseStats {
    double seconds = 0.0;
    std::uint64_t calls = 0;
    std::uint64_t items = 0;
};

/// Per-phase accumulator; one instance per profiled run (or per worker,
/// merged afterwards).
class PhaseProfile {
public:
    void add(Phase phase, double seconds, std::uint64_t items = 0) {
        PhaseStats& s = stats_[static_cast<std::size_t>(phase)];
        s.seconds += seconds;
        s.calls += 1;
        s.items += items;
    }

    const PhaseStats& stats(Phase phase) const {
        return stats_[static_cast<std::size_t>(phase)];
    }

    /// Folds another profile in (per-phase sums); used to combine
    /// per-worker profiles into one report.
    void merge(const PhaseProfile& other);

    /// Sum of seconds over all phases. Phases nest (EventSimSettle is
    /// inside DtaEval), so this is an upper bound on distinct wall time.
    double total_seconds() const;

    void clear() { stats_ = {}; }

private:
    std::array<PhaseStats, kPhaseCount> stats_{};
};

/// RAII phase timer: charges the enclosed scope to `profile` (no-op when
/// null). `items` can be set up front or adjusted before destruction.
class ScopedPhaseTimer {
public:
    ScopedPhaseTimer(PhaseProfile* profile, Phase phase,
                     std::uint64_t items = 0)
        : profile_(profile), phase_(phase), items_(items) {}

    ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
    ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

    void set_items(std::uint64_t items) { items_ = items; }

    ~ScopedPhaseTimer() {
        if (profile_) profile_->add(phase_, watch_.seconds(), items_);
    }

private:
    PhaseProfile* profile_;
    Phase phase_;
    std::uint64_t items_;
    Stopwatch watch_;
};

}  // namespace sfi::perf
