#include "perf/report.hpp"

#include <ostream>

#include "perf/json_writer.hpp"

namespace sfi::perf {

void write_bench_core_json(std::ostream& os, const PerfReport& report) {
    JsonWriter json(os);
    json.begin_object();
    json.field("schema", "sfi-bench-core");
    json.field("schema_version", kSchemaVersion);

    json.key("config");
    json.begin_object();
    json.field("seed", report.seed);
    json.field("dta_cycles", report.dta_cycles);
    json.field("trials", report.trials);
    json.field("benchmark", report.benchmark);
    json.field("dispatch", report.dispatch);
    json.end_object();

    json.key("phases");
    json.begin_array();
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        const Phase phase = static_cast<Phase>(i);
        const PhaseStats& stats = report.phases.stats(phase);
        // The forensics row appears only when forensics actually ran:
        // keeps BENCH_core.json byte-identical for forensics-off runs
        // (the zero-overhead-off guarantee, docs/ARCHITECTURE.md).
        if (phase == Phase::Forensics && stats.calls == 0) continue;
        json.begin_object();
        json.field("phase", phase_name(phase));
        json.field("seconds", stats.seconds);
        json.field("calls", stats.calls);
        json.field("items", stats.items);
        json.end_object();
    }
    json.end_array();

    json.key("kernels");
    json.begin_array();
    for (const KernelBench& kernel : report.kernels) {
        json.begin_object();
        json.field("label", kernel.label);
        json.field("model", kernel.model);
        json.field("benchmark", kernel.benchmark);
        json.field("freq_mhz", kernel.freq_mhz);
        json.field("vdd", kernel.vdd);
        json.field("sigma_mv", kernel.sigma_mv);
        json.field("trials", kernel.trials);
        json.field("fast_path", kernel.fast_path);
        json.key("scaling");
        json.begin_array();
        for (const ThreadSample& sample : kernel.scaling) {
            json.begin_object();
            json.field("threads", sample.threads);
            json.field("seconds", sample.seconds);
            json.field("trials_per_sec", sample.trials_per_sec);
            json.end_object();
        }
        json.end_array();
        json.end_object();
    }
    json.end_array();

    json.key("fast_path");
    json.begin_object();
    json.field("sim_trials_per_sec", report.fast_path.sim_trials_per_sec);
    json.field("fastpath_trials_per_sec",
               report.fast_path.fastpath_trials_per_sec);
    json.field("speedup", report.fast_path.speedup);
    json.end_object();

    json.key("fault_sampling");
    json.begin_object();
    json.field("scalar_ops_per_sec", report.fault_sampling.scalar_ops_per_sec);
    json.field("batched_ops_per_sec",
               report.fault_sampling.batched_ops_per_sec);
    json.field("quantized_ops_per_sec",
               report.fault_sampling.quantized_ops_per_sec);
    json.field("batched_speedup", report.fault_sampling.batched_speedup);
    json.field("avx2", report.fault_sampling.avx2);
    json.end_object();

    json.key("metrics");
    json.begin_object();
    json.key("counters");
    json.begin_array();
    for (const auto& [name, value] : report.metrics.counters()) {
        json.begin_object();
        json.field("name", name);
        json.field("value", value);
        json.end_object();
    }
    json.end_array();
    json.key("gauges");
    json.begin_array();
    for (const auto& [name, value] : report.metrics.gauges()) {
        json.begin_object();
        json.field("name", name);
        json.field("value", value);
        json.end_object();
    }
    json.end_array();
    json.end_object();

    if (report.campaign) {
        json.key("campaign");
        json.begin_object();
        json.field("figure", report.campaign->figure);
        json.field("seconds", report.campaign->seconds);
        json.field("trials_spent", report.campaign->trials_spent);
        json.end_object();
    } else {
        json.null_field("campaign");
    }

    json.field("wall_clock_s", report.wall_clock_s);
    json.end_object();
}

}  // namespace sfi::perf
