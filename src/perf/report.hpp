// The BENCH_core.json report: the repo's core perf trajectory artifact,
// produced by bench/sfi_perf.cpp and gated in CI by
// scripts/check_perf_regression.py against scripts/perf_baseline.json.
//
// Schema (stable; bump kSchemaVersion on breaking change):
//
//   {
//     "schema": "sfi-bench-core",
//     "schema_version": 3,
//     "config":   { seed, dta_cycles, trials, benchmark, dispatch },
//                 (v2: "dispatch" records the ISS execution engine the
//                  kernels ran under — the regression gate refuses to
//                  compare legacy-dispatch numbers against a baseline
//                  recorded for the threaded engine)
//     "phases":   [ { phase, seconds, calls, items } x kPhaseCount ],
//                 (v2: the phase list gained "decode" — micro-op lowering
//                  for the threaded-dispatch interpreter; v3: it gained
//                  "fault_sampling_batch" — block-prefetched draw
//                  sampling, fi/sampling_batch.hpp)
//     "kernels":  [ { label, model, benchmark, freq_mhz, vdd, sigma_mv,
//                     trials, fast_path,
//                     scaling: [ { threads, seconds, trials_per_sec } ] } ],
//     "fast_path": { sim_trials_per_sec, fastpath_trials_per_sec, speedup },
//     "fault_sampling": { scalar_ops_per_sec, batched_ops_per_sec,
//                         quantized_ops_per_sec, batched_speedup, avx2 },
//                 (v3: within-run comparison of the draw->index sampling
//                  kernels; batched_speedup is machine-independent like
//                  fast_path.speedup and is held to a baseline floor)
//     "campaign":  { figure, seconds, trials_spent } | null,
//     "metrics":  { counters: [ { name, value } ],
//                   gauges:   [ { name, value } ] },
//                 (v4: the obs::MetricsRegistry the report's campaign
//                  sample accumulated into — named counters in sorted
//                  order, so the block is deterministic for equal work)
//     "wall_clock_s": ...
//   }
//
// "kernels" carries the machine-dependent absolute throughputs (compared
// against the checked-in baseline with a noise margin); "fast_path" is a
// within-run ratio and therefore machine-independent — the regression
// gate holds it to a hard floor.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "perf/perf.hpp"

namespace sfi::perf {

inline constexpr int kSchemaVersion = 4;

/// One (thread count, duration) sample of a kernel bench.
struct ThreadSample {
    std::size_t threads = 1;
    double seconds = 0.0;
    double trials_per_sec = 0.0;
};

/// Trial-kernel throughput for one fault model at one operating point.
struct KernelBench {
    std::string label;      ///< stable identifier, the baseline join key
    std::string model;      ///< FaultModel::name() ("A", "B", "B+", "C")
    std::string benchmark;  ///< application kernel (e.g. "median")
    double freq_mhz = 0.0;
    double vdd = 0.0;
    double sigma_mv = 0.0;
    std::size_t trials = 0;         ///< trials per sample
    bool fast_path = true;          ///< zero-fault fast path enabled?
    std::vector<ThreadSample> scaling;
};

/// Within-run effect of the zero-fault trial fast path at a sub-threshold
/// operating point: same trials, fast path off vs. on.
struct FastPathResult {
    double sim_trials_per_sec = 0.0;       ///< fast path disabled
    double fastpath_trials_per_sec = 0.0;  ///< fast path enabled
    double speedup = 0.0;                  ///< fastpath / sim
};

/// Within-run throughput of the draw -> table-index sampling paths
/// (bench_fault_sampling in bench/sfi_perf.cpp): synthetic ALU-op streams
/// through model B+ under each FaultSamplingMode. batched_speedup
/// (batched / scalar) is machine-independent, like FastPathResult's
/// ratio, so the regression gate holds it to a hard floor.
struct FaultSamplingResult {
    double scalar_ops_per_sec = 0.0;
    double batched_ops_per_sec = 0.0;
    double quantized_ops_per_sec = 0.0;
    double batched_speedup = 0.0;  ///< batched / scalar
    bool avx2 = false;  ///< AVX2 conversion kernel compiled in and active
};

/// Wall clock of a small end-to-end figure campaign (store disabled, so
/// every point is computed).
struct CampaignSample {
    std::string figure;
    double seconds = 0.0;
    std::uint64_t trials_spent = 0;
};

struct PerfReport {
    std::uint64_t seed = 1;
    std::size_t dta_cycles = 0;
    std::size_t trials = 0;
    std::string benchmark;
    std::string dispatch;  ///< cpu_dispatch_name() of the engine benched
    PhaseProfile phases;
    std::vector<KernelBench> kernels;
    FastPathResult fast_path;
    FaultSamplingResult fault_sampling;
    std::optional<CampaignSample> campaign;
    /// Campaign counters/gauges (v4) — what the report's campaign sample
    /// accumulated through obs::MetricsRegistry; empty when no campaign
    /// figure was run.
    obs::MetricsRegistry metrics;
    double wall_clock_s = 0.0;
};

/// Emits the report in the schema above (stable key order, deterministic
/// number formatting — see json_writer.hpp).
void write_bench_core_json(std::ostream& os, const PerfReport& report);

}  // namespace sfi::perf
