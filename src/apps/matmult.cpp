// mat_mult benchmark: dense 16x16 integer matrix multiplication with
// 8-bit or 16-bit operand ranges. Arithmetic-type kernel: multiply/
// accumulate dominated, minimal control.
#include <sstream>

#include "apps/benchmark.hpp"
#include "util/rng.hpp"

namespace sfi {

namespace {

class MatMultBenchmark final : public Benchmark {
public:
    MatMultBenchmark(std::uint64_t seed, unsigned value_bits, std::size_t dim)
        : Benchmark(value_bits == 8 ? "mat_mult_8bit" : "mat_mult_16bit"),
          bits_(value_bits),
          dim_(dim) {
        Rng rng(seed ^ (0x6d6d756cULL + value_bits));
        const std::uint64_t range = (1ULL << bits_);
        a_.resize(dim_ * dim_);
        b_.resize(dim_ * dim_);
        for (auto& v : a_) v = static_cast<std::uint32_t>(rng.bounded(range));
        for (auto& v : b_) v = static_cast<std::uint32_t>(rng.bounded(range));
    }

    Table1Row table1_row() const override {
        return {"arithmetic", "++", "-",
                std::to_string(dim_) + "x" + std::to_string(dim_) + " matr.",
                "mean squared error (MSE)"};
    }

    std::vector<std::uint32_t> golden_output() const override {
        // Results live in containers of the operand width (the paper's
        // 8-/16-bit variants), so accumulators truncate on store — this is
        // what bounds the MSE to the "x10^3" / "x10^6" axis scales of
        // Fig. 6(a)/(b).
        const std::uint32_t result_mask = (bits_ == 8) ? 0xffu : 0xffffu;
        std::vector<std::uint32_t> c(dim_ * dim_, 0);
        for (std::size_t i = 0; i < dim_; ++i)
            for (std::size_t j = 0; j < dim_; ++j) {
                std::uint32_t acc = 0;
                for (std::size_t k = 0; k < dim_; ++k)
                    acc += a_[i * dim_ + k] * b_[k * dim_ + j];
                c[i * dim_ + j] = acc & result_mask;
            }
        return c;
    }

    double output_error(const std::vector<std::uint32_t>& output) const override {
        const std::vector<std::uint32_t> golden = golden_output();
        double sum = 0.0;
        for (std::size_t i = 0; i < golden.size(); ++i) {
            const double diff = static_cast<double>(output.at(i)) -
                                static_cast<double>(golden[i]);
            sum += diff * diff;
        }
        return sum / static_cast<double>(golden.size());
    }

    std::string error_unit() const override { return "MSE"; }

protected:
    std::string generate_asm() const override {
        unsigned row_shift = 2;  // log2(dim * 4)
        while ((std::size_t{1} << (row_shift - 2)) < dim_) ++row_shift;
        const std::size_t row_bytes = dim_ * 4;
        std::ostringstream os;
        os << "# mat_mult_" << bits_ << "bit: " << dim_ << "x" << dim_
           << " integer matrix multiply (generated)\n";
        os << ".entry _start\n";
        os << "_start:\n";
        os << "  l.movhi r16,hi(mat_a)\n  l.ori r16,r16,lo(mat_a)\n";
        os << "  l.movhi r17,hi(mat_b)\n  l.ori r17,r17,lo(mat_b)\n";
        os << "  l.movhi r18,hi(out)\n  l.ori r18,r18,lo(out)\n";
        os << "  l.nop   0x10              # kernel begin\n";
        os << "  l.addi  r6,r0,0           # i\n";
        os << "loop_i:\n";
        os << "  l.addi  r7,r0,0           # j\n";
        os << "loop_j:\n";
        os << "  l.addi  r13,r0,0          # acc\n";
        os << "  l.addi  r14,r0," << dim_ << "  # k count\n";
        os << "  l.slli  r10,r6," << row_shift << "\n";
        os << "  l.add   r4,r16,r10        # pA = A + i*rowbytes\n";
        os << "  l.slli  r10,r7,2\n";
        os << "  l.add   r5,r17,r10        # pB = B + j*4\n";
        os << "loop_k:\n";
        os << "  l.lwz   r10,0(r4)\n";
        os << "  l.lwz   r11,0(r5)\n";
        os << "  l.mul   r12,r10,r11\n";
        os << "  l.add   r13,r13,r12\n";
        os << "  l.addi  r4,r4,4\n";
        os << "  l.addi  r5,r5," << row_bytes << "\n";
        os << "  l.addi  r14,r14,-1\n";
        os << "  l.sfnei r14,0\n";
        os << "  l.bf    loop_k\n";
        os << "  l.slli  r10,r6," << row_shift << "\n";
        os << "  l.slli  r11,r7,2\n";
        os << "  l.add   r10,r10,r11\n";
        os << "  l.add   r10,r10,r18\n";
        // Result elements are stored at word stride but with the operand
        // width (truncating store), like the paper's char/short matrices.
        os << (bits_ == 8 ? "  l.sb    0(r10),r13        # C[i][j] = (u8)acc\n"
                          : "  l.sh    0(r10),r13        # C[i][j] = (u16)acc\n");
        os << "  l.addi  r7,r7,1\n";
        os << "  l.sfeqi r7," << dim_ << "\n";
        os << "  l.bnf   loop_j\n";
        os << "  l.addi  r6,r6,1\n";
        os << "  l.sfeqi r6," << dim_ << "\n";
        os << "  l.bnf   loop_i\n";
        os << "  l.nop   0x11              # kernel end\n";
        os << "  l.addi  r3,r0,0\n";
        os << "  l.nop   0x1               # exit\n";
        os << ".org 0x8000\n";
        os << "mat_a:\n";
        for (std::uint32_t v : a_) os << "  .word " << v << "\n";
        os << "mat_b:\n";
        for (std::uint32_t v : b_) os << "  .word " << v << "\n";
        os << "out:\n  .space " << dim_ * dim_ * 4 << "\n";
        return os.str();
    }

private:
    unsigned bits_;
    std::size_t dim_;
    std::vector<std::uint32_t> a_, b_;
};

}  // namespace

std::unique_ptr<Benchmark> make_mat_mult(std::uint64_t seed, unsigned value_bits,
                                         std::size_t dim) {
    if (value_bits != 8 && value_bits != 16)
        throw std::invalid_argument("mat_mult: value_bits must be 8 or 16");
    if (dim < 2 || (dim & (dim - 1)) != 0)
        throw std::invalid_argument("mat_mult: dim must be a power of two");
    return std::make_unique<MatMultBenchmark>(seed, value_bits, dim);
}

}  // namespace sfi
