// Kernel instruction-mix profiling: quantifies the "compute" vs
// "control" characterization of Table 1 and explains the per-benchmark
// FI-rate differences of Fig. 6 (e.g. k-means' order-of-magnitude lower
// rate comes from its much smaller share of timing-critical multiplies).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

#include "apps/benchmark.hpp"
#include "isa/isa.hpp"

namespace sfi {

struct KernelProfile {
    std::array<std::uint64_t, kOpCount> per_op{};
    std::array<std::uint64_t, kExClassCount> per_class{};
    std::uint64_t instructions = 0;  ///< kernel instructions
    std::uint64_t cycles = 0;        ///< kernel cycles
    std::uint64_t alu_ops = 0;       ///< FI-target instructions
    std::uint64_t branches = 0;
    std::uint64_t taken_branches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    std::uint64_t count(Op op) const {
        return per_op[static_cast<std::size_t>(op)];
    }
    std::uint64_t count(ExClass cls) const {
        return per_class[static_cast<std::size_t>(cls)];
    }
    /// Fraction of kernel instructions in `cls` (0 when empty).
    double fraction(ExClass cls) const;
    /// Fraction of kernel instructions that are FI targets.
    double alu_fraction() const;
    double branch_fraction() const;
};

/// Runs `benchmark` fault-free and collects its kernel profile.
KernelProfile profile_kernel(const Benchmark& benchmark);

/// Pretty-prints the profile (one line per non-zero instruction class).
void print_profile(std::ostream& os, const std::string& name,
                   const KernelProfile& profile);

}  // namespace sfi
