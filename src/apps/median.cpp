// median benchmark: full bubble sort of 129 values, output = middle
// element. Sorting-type kernel: control-dominated, no multiplications.
#include <algorithm>
#include <cmath>
#include <sstream>

#include "apps/benchmark.hpp"
#include "util/rng.hpp"

namespace sfi {

namespace {

class MedianBenchmark final : public Benchmark {
public:
    MedianBenchmark(std::uint64_t seed, std::size_t count)
        : Benchmark("median"), count_(count) {
        Rng rng(seed ^ 0x6d656469ULL);
        values_.resize(count_);
        for (auto& v : values_)
            v = 1 + static_cast<std::uint32_t>(rng.bounded(65535));  // 16-bit, non-zero
    }

    Table1Row table1_row() const override {
        return {"sorting", "-", "+", std::to_string(count_) + " values",
                "relative difference"};
    }

    std::vector<std::uint32_t> golden_output() const override {
        std::vector<std::uint32_t> sorted = values_;
        std::sort(sorted.begin(), sorted.end());
        return {sorted[count_ / 2]};
    }

    double output_error(const std::vector<std::uint32_t>& output) const override {
        const double golden = static_cast<double>(golden_output()[0]);
        const double got = static_cast<double>(output.at(0));
        const double rel = std::abs(got - golden) / golden * 100.0;
        return std::min(rel, 100.0);  // paper's relative-error axis saturates
    }

    std::string error_unit() const override { return "relative error %"; }

protected:
    std::string generate_asm() const override {
        std::ostringstream os;
        os << "# median: bubble sort of " << count_ << " values (generated)\n";
        os << ".entry _start\n";
        os << "_start:\n";
        os << "  l.movhi r4,hi(data)\n";
        os << "  l.ori   r4,r4,lo(data)\n";
        os << "  l.addi  r6,r0," << (count_ - 1) << "\n";  // i = n-1
        os << "  l.nop   0x10              # kernel begin\n";
        os << "loop_i:\n";
        os << "  l.addi  r7,r0,0           # j = 0\n";
        os << "  l.ori   r8,r4,0           # p = data\n";
        os << "loop_j:\n";
        os << "  l.lwz   r10,0(r8)\n";
        os << "  l.lwz   r11,4(r8)\n";
        os << "  l.sfgtu r10,r11\n";
        os << "  l.bnf   noswap\n";
        os << "  l.sw    0(r8),r11\n";
        os << "  l.sw    4(r8),r10\n";
        os << "noswap:\n";
        os << "  l.addi  r8,r8,4\n";
        os << "  l.addi  r7,r7,1\n";
        os << "  l.sflts r7,r6\n";
        os << "  l.bf    loop_j\n";
        os << "  l.addi  r6,r6,-1\n";
        os << "  l.sfgtsi r6,0\n";
        os << "  l.bf    loop_i\n";
        os << "  l.nop   0x11              # kernel end\n";
        os << "  l.lwz   r12," << (count_ / 2) * 4 << "(r4)\n";
        os << "  l.movhi r5,hi(out)\n";
        os << "  l.ori   r5,r5,lo(out)\n";
        os << "  l.sw    0(r5),r12\n";
        os << "  l.addi  r3,r0,0\n";
        os << "  l.nop   0x1               # exit\n";
        os << ".org 0x8000\n";
        os << "data:\n";
        for (std::uint32_t v : values_) os << "  .word " << v << "\n";
        os << "out:\n  .word 0\n";
        return os.str();
    }

private:
    std::size_t count_;
    std::vector<std::uint32_t> values_;
};

}  // namespace

std::unique_ptr<Benchmark> make_median(std::uint64_t seed, std::size_t count) {
    if (count < 3 || count % 2 == 0)
        throw std::invalid_argument("median: count must be odd and >= 3");
    return std::make_unique<MedianBenchmark>(seed, count);
}

}  // namespace sfi
