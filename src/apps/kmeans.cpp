// k-means benchmark: 2-D integer k-means clustering (fixed iteration
// count, software restoring division for the centroid means). Data-mining
// kernel: mixed compute (distance multiplies) and control (assignment
// scan, division loop).
#include <sstream>

#include "apps/benchmark.hpp"
#include "util/rng.hpp"

namespace sfi {

namespace {

class KMeansBenchmark final : public Benchmark {
public:
    KMeansBenchmark(std::uint64_t seed, std::size_t points, std::size_t clusters,
                    std::size_t iterations)
        : Benchmark("kmeans"), n_(points), k_(clusters), iters_(iterations) {
        Rng rng(seed ^ 0x6b6d656eULL);
        px_.resize(n_);
        py_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
            px_[i] = static_cast<std::uint32_t>(rng.bounded(1024));
            py_[i] = static_cast<std::uint32_t>(rng.bounded(1024));
        }
    }

    Table1Row table1_row() const override {
        return {"data mining", "+", "+",
                std::to_string(n_) + " points (2D)", "cluster membership"};
    }

    /// Bit-exact replica of the guest algorithm (integer arithmetic,
    /// truncating division, first-cluster tie-breaking).
    std::vector<std::uint32_t> golden_output() const override {
        std::vector<std::uint32_t> cx(k_), cy(k_), assign(n_, 0);
        for (std::size_t c = 0; c < k_; ++c) {  // centroids start at first k points
            cx[c] = px_[c];
            cy[c] = py_[c];
        }
        for (std::size_t it = 0; it < iters_; ++it) {
            for (std::size_t i = 0; i < n_; ++i) {
                std::uint32_t best_d = 0x7fffffffu, best_c = 0;
                for (std::size_t c = 0; c < k_; ++c) {
                    const std::uint32_t dx = px_[i] - cx[c];
                    const std::uint32_t dy = py_[i] - cy[c];
                    const std::uint32_t d = dx * dx + dy * dy;
                    if (d < best_d) {
                        best_d = d;
                        best_c = static_cast<std::uint32_t>(c);
                    }
                }
                assign[i] = best_c;
            }
            std::vector<std::uint32_t> sx(k_, 0), sy(k_, 0), cnt(k_, 0);
            for (std::size_t i = 0; i < n_; ++i) {
                sx[assign[i]] += px_[i];
                sy[assign[i]] += py_[i];
                ++cnt[assign[i]];
            }
            for (std::size_t c = 0; c < k_; ++c) {
                if (cnt[c] == 0) continue;
                cx[c] = sx[c] / cnt[c];
                cy[c] = sy[c] / cnt[c];
            }
        }
        return assign;
    }

    double output_error(const std::vector<std::uint32_t>& output) const override {
        const std::vector<std::uint32_t> golden = golden_output();
        std::size_t wrong = 0;
        for (std::size_t i = 0; i < golden.size(); ++i)
            if (output.at(i) != golden[i]) ++wrong;
        return 100.0 * static_cast<double>(wrong) /
               static_cast<double>(golden.size());
    }

    std::string error_unit() const override { return "% points w/ clustering errors"; }

protected:
    std::string generate_asm() const override {
        std::ostringstream os;
        os << "# kmeans: " << n_ << " 2-D points, k=" << k_ << ", " << iters_
           << " iterations (generated)\n";
        os << ".entry _start\n";
        os << "_start:\n";
        os << "  l.movhi r16,hi(px)\n  l.ori r16,r16,lo(px)\n";
        os << "  l.movhi r17,hi(py)\n  l.ori r17,r17,lo(py)\n";
        os << "  l.movhi r18,hi(cx)\n  l.ori r18,r18,lo(cx)\n";
        os << "  l.movhi r19,hi(cy)\n  l.ori r19,r19,lo(cy)\n";
        os << "  l.movhi r20,hi(out)\n  l.ori r20,r20,lo(out)\n";
        os << "  l.movhi r21,hi(sx)\n  l.ori r21,r21,lo(sx)\n";
        os << "  l.movhi r22,hi(sy)\n  l.ori r22,r22,lo(sy)\n";
        os << "  l.movhi r23,hi(cnt)\n  l.ori r23,r23,lo(cnt)\n";
        os << "  l.nop   0x10              # kernel begin\n";
        os << "  l.addi  r24,r0," << iters_ << "\n";
        os << "iter_loop:\n";
        // ---- assignment phase
        os << "  l.addi  r6,r0,0\n";
        os << "assign_loop:\n";
        os << "  l.slli  r2,r6,2\n";
        os << "  l.add   r10,r16,r2\n  l.lwz r10,0(r10)   # px[i]\n";
        os << "  l.add   r11,r17,r2\n  l.lwz r11,0(r11)   # py[i]\n";
        os << "  l.movhi r12,0x7fff\n  l.ori r12,r12,0xffff  # best_d\n";
        os << "  l.addi  r13,r0,0          # best_c\n";
        os << "  l.addi  r7,r0,0           # c\n";
        os << "cluster_loop:\n";
        os << "  l.slli  r2,r7,2\n";
        os << "  l.add   r14,r18,r2\n  l.lwz r14,0(r14)   # cx[c]\n";
        os << "  l.add   r15,r19,r2\n  l.lwz r15,0(r15)   # cy[c]\n";
        os << "  l.sub   r14,r10,r14\n";
        os << "  l.sub   r15,r11,r15\n";
        os << "  l.mul   r14,r14,r14\n";
        os << "  l.mul   r15,r15,r15\n";
        os << "  l.add   r14,r14,r15       # d\n";
        os << "  l.sfltu r14,r12\n";
        os << "  l.bnf   no_better\n";
        os << "  l.ori   r12,r14,0\n";
        os << "  l.ori   r13,r7,0\n";
        os << "no_better:\n";
        os << "  l.addi  r7,r7,1\n";
        os << "  l.sfeqi r7," << k_ << "\n";
        os << "  l.bnf   cluster_loop\n";
        os << "  l.slli  r2,r6,2\n";
        os << "  l.add   r14,r20,r2\n";
        os << "  l.sw    0(r14),r13        # assign[i]\n";
        os << "  l.addi  r6,r6,1\n";
        os << "  l.sfeqi r6," << n_ << "\n";
        os << "  l.bnf   assign_loop\n";
        // ---- update phase: clear accumulators
        os << "  l.addi  r7,r0,0\n";
        os << "clear_loop:\n";
        os << "  l.slli  r2,r7,2\n";
        os << "  l.add   r14,r21,r2\n  l.sw 0(r14),r0\n";
        os << "  l.add   r14,r22,r2\n  l.sw 0(r14),r0\n";
        os << "  l.add   r14,r23,r2\n  l.sw 0(r14),r0\n";
        os << "  l.addi  r7,r7,1\n";
        os << "  l.sfeqi r7," << k_ << "\n";
        os << "  l.bnf   clear_loop\n";
        // accumulate
        os << "  l.addi  r6,r0,0\n";
        os << "accum_loop:\n";
        os << "  l.slli  r2,r6,2\n";
        os << "  l.add   r14,r20,r2\n  l.lwz r14,0(r14)   # c = assign[i]\n";
        os << "  l.slli  r14,r14,2\n";
        os << "  l.add   r15,r21,r14\n  l.lwz r12,0(r15)\n";
        os << "  l.add   r10,r16,r2\n  l.lwz r10,0(r10)\n";
        os << "  l.add   r12,r12,r10\n  l.sw 0(r15),r12   # sx[c] += px[i]\n";
        os << "  l.add   r15,r22,r14\n  l.lwz r12,0(r15)\n";
        os << "  l.add   r10,r17,r2\n  l.lwz r10,0(r10)\n";
        os << "  l.add   r12,r12,r10\n  l.sw 0(r15),r12   # sy[c] += py[i]\n";
        os << "  l.add   r15,r23,r14\n  l.lwz r12,0(r15)\n";
        os << "  l.addi  r12,r12,1\n  l.sw 0(r15),r12     # cnt[c]++\n";
        os << "  l.addi  r6,r6,1\n";
        os << "  l.sfeqi r6," << n_ << "\n";
        os << "  l.bnf   accum_loop\n";
        // recompute centroids
        os << "  l.addi  r7,r0,0\n";
        os << "update_loop:\n";
        os << "  l.slli  r2,r7,2\n";
        os << "  l.add   r14,r23,r2\n  l.lwz r11,0(r14)   # cnt[c]\n";
        os << "  l.sfeqi r11,0\n";
        os << "  l.bf    skip_update\n";
        os << "  l.add   r14,r21,r2\n  l.lwz r10,0(r14)   # sx[c]\n";
        os << "  l.jal   udiv\n";
        os << "  l.add   r14,r18,r2\n  l.sw 0(r14),r12    # cx[c]\n";
        os << "  l.add   r14,r22,r2\n  l.lwz r10,0(r14)   # sy[c]\n";
        os << "  l.jal   udiv\n";
        os << "  l.add   r14,r19,r2\n  l.sw 0(r14),r12    # cy[c]\n";
        os << "skip_update:\n";
        os << "  l.addi  r7,r7,1\n";
        os << "  l.sfeqi r7," << k_ << "\n";
        os << "  l.bnf   update_loop\n";
        os << "  l.addi  r24,r24,-1\n";
        os << "  l.sfnei r24,0\n";
        os << "  l.bf    iter_loop\n";
        os << "  l.nop   0x11              # kernel end\n";
        os << "  l.addi  r3,r0,0\n";
        os << "  l.nop   0x1               # exit\n";
        // restoring unsigned division: r12 = r10 / r11 (clobbers r13,r15,r25)
        os << "udiv:\n";
        os << "  l.addi  r12,r0,0\n";
        os << "  l.addi  r13,r0,0\n";
        os << "  l.addi  r25,r0,32\n";
        os << "udiv_loop:\n";
        os << "  l.slli  r13,r13,1\n";
        os << "  l.srli  r15,r10,31\n";
        os << "  l.or    r13,r13,r15\n";
        os << "  l.slli  r10,r10,1\n";
        os << "  l.slli  r12,r12,1\n";
        os << "  l.sfgeu r13,r11\n";
        os << "  l.bnf   udiv_skip\n";
        os << "  l.sub   r13,r13,r11\n";
        os << "  l.ori   r12,r12,1\n";
        os << "udiv_skip:\n";
        os << "  l.addi  r25,r25,-1\n";
        os << "  l.sfnei r25,0\n";
        os << "  l.bf    udiv_loop\n";
        os << "  l.jr    r9\n";
        os << ".org 0x8000\n";
        auto emit = [&](const char* label, const std::vector<std::uint32_t>& data) {
            os << label << ":\n";
            for (std::uint32_t v : data) os << "  .word " << v << "\n";
        };
        emit("px", px_);
        emit("py", py_);
        // Centroids are initialized to the first k points at load time.
        os << "cx:\n";
        for (std::size_t c = 0; c < k_; ++c) os << "  .word " << px_[c] << "\n";
        os << "cy:\n";
        for (std::size_t c = 0; c < k_; ++c) os << "  .word " << py_[c] << "\n";
        os << "sx:\n  .space " << k_ * 4 << "\n";
        os << "sy:\n  .space " << k_ * 4 << "\n";
        os << "cnt:\n  .space " << k_ * 4 << "\n";
        os << "out:\n  .space " << n_ * 4 << "\n";
        return os.str();
    }

private:
    std::size_t n_, k_, iters_;
    std::vector<std::uint32_t> px_, py_;
};

}  // namespace

std::unique_ptr<Benchmark> make_kmeans(std::uint64_t seed, std::size_t points,
                                       std::size_t clusters,
                                       std::size_t iterations) {
    if (clusters == 0 || points < clusters)
        throw std::invalid_argument("kmeans: need at least as many points as clusters");
    return std::make_unique<KMeansBenchmark>(seed, points, clusters, iterations);
}

}  // namespace sfi
