#include "apps/benchmark.hpp"

#include <stdexcept>

namespace sfi {

const char* benchmark_name(BenchmarkId id) {
    switch (id) {
        case BenchmarkId::Median: return "median";
        case BenchmarkId::MatMult8: return "mat_mult_8bit";
        case BenchmarkId::MatMult16: return "mat_mult_16bit";
        case BenchmarkId::KMeans: return "kmeans";
        case BenchmarkId::Dijkstra: return "dijkstra";
    }
    return "?";
}

const std::vector<BenchmarkId>& all_benchmarks() {
    static const std::vector<BenchmarkId> ids = {
        BenchmarkId::Median, BenchmarkId::MatMult8, BenchmarkId::MatMult16,
        BenchmarkId::KMeans, BenchmarkId::Dijkstra};
    return ids;
}

const std::string& Benchmark::asm_source() const {
    if (asm_cache_.empty()) asm_cache_ = generate_asm();
    return asm_cache_;
}

const Program& Benchmark::program() const {
    if (!program_cache_)
        program_cache_ = std::make_unique<Program>(assemble(asm_source()));
    return *program_cache_;
}

std::vector<std::uint32_t> Benchmark::read_output(const Memory& memory) const {
    const std::uint32_t base = program().symbol("out");
    const std::size_t words = golden_output().size();
    std::vector<std::uint32_t> output(words);
    for (std::size_t i = 0; i < words; ++i)
        output[i] = memory.read_u32(base + static_cast<std::uint32_t>(i) * 4);
    return output;
}

std::unique_ptr<Benchmark> make_benchmark(BenchmarkId id, std::uint64_t seed) {
    switch (id) {
        case BenchmarkId::Median: return make_median(seed);
        case BenchmarkId::MatMult8: return make_mat_mult(seed, 8);
        case BenchmarkId::MatMult16: return make_mat_mult(seed, 16);
        case BenchmarkId::KMeans: return make_kmeans(seed);
        case BenchmarkId::Dijkstra: return make_dijkstra(seed);
    }
    throw std::invalid_argument("make_benchmark: bad id");
}

}  // namespace sfi
