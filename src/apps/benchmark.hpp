// The four application kernels of the paper's evaluation (Table 1),
// hand-written in the ORBIS32 subset and assembled by src/isa.
//
//   median        sorting      (control +,  compute -)   129 values
//   mat_mult      arithmetic   (control -,  compute ++)  16x16, 8/16-bit
//   k-means       data mining  (control +,  compute +)   8 points, 2-D, k=2
//   dijkstra      graph search (control ++, compute -)   10 nodes, all pairs
//
// Each benchmark embeds its (seeded, reproducible) input data as .word
// blocks, wraps its kernel in l.nop kernel-begin/end markers so fault
// injection only covers the characteristic code (paper §2.2), writes its
// result to the `out` symbol, and reports the paper's per-benchmark output
// error metric. Golden outputs are computed by bit-exact C++ replicas of
// the integer algorithms.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/memory.hpp"
#include "isa/assembler.hpp"

namespace sfi {

enum class BenchmarkId : std::uint8_t {
    Median,
    MatMult8,
    MatMult16,
    KMeans,
    Dijkstra,
};

const char* benchmark_name(BenchmarkId id);
const std::vector<BenchmarkId>& all_benchmarks();

class Benchmark {
public:
    virtual ~Benchmark() = default;

    const std::string& name() const { return name_; }

    /// Row of the paper's Table 1.
    struct Table1Row {
        std::string type;          ///< workload family ("sorting", ...)
        std::string compute;       ///< compute intensity: "-", "+" or "++"
        std::string control;       ///< control intensity: "-", "+" or "++"
        std::string size;          ///< problem size ("129 values", ...)
        std::string error_metric;  ///< name of the output-error metric
    };
    virtual Table1Row table1_row() const = 0;

    /// Generated assembly (with embedded data); cached.
    const std::string& asm_source() const;
    /// Assembled program; cached.
    const Program& program() const;

    /// Expected output of a fault-free run.
    virtual std::vector<std::uint32_t> golden_output() const = 0;

    /// Reads the output buffer (symbol "out") after a run.
    std::vector<std::uint32_t> read_output(const Memory& memory) const;

    /// The paper's output-error metric for this benchmark, evaluated
    /// against the golden output. Units depend on the benchmark
    /// (relative %, MSE, % mismatching points/pairs).
    virtual double output_error(const std::vector<std::uint32_t>& output) const = 0;
    virtual std::string error_unit() const = 0;

protected:
    explicit Benchmark(std::string name) : name_(std::move(name)) {}
    virtual std::string generate_asm() const = 0;

private:
    std::string name_;
    mutable std::string asm_cache_;
    mutable std::unique_ptr<Program> program_cache_;
};

/// Factory. `seed` controls the generated input data (default: the seed
/// used for all committed experiment numbers).
std::unique_ptr<Benchmark> make_benchmark(BenchmarkId id,
                                          std::uint64_t seed = 42);

// Direct factories with benchmark-specific knobs (used by tests).
std::unique_ptr<Benchmark> make_median(std::uint64_t seed, std::size_t count = 129);
std::unique_ptr<Benchmark> make_mat_mult(std::uint64_t seed, unsigned value_bits,
                                         std::size_t dim = 16);
std::unique_ptr<Benchmark> make_kmeans(std::uint64_t seed, std::size_t points = 8,
                                       std::size_t clusters = 2,
                                       std::size_t iterations = 32);
std::unique_ptr<Benchmark> make_dijkstra(std::uint64_t seed, std::size_t nodes = 10);

}  // namespace sfi
