#include "apps/profile.hpp"

#include <ostream>
#include <stdexcept>

#include "cpu/cpu.hpp"
#include "util/table.hpp"

namespace sfi {

double KernelProfile::fraction(ExClass cls) const {
    return instructions ? static_cast<double>(count(cls)) /
                              static_cast<double>(instructions)
                        : 0.0;
}

double KernelProfile::alu_fraction() const {
    return instructions
               ? static_cast<double>(alu_ops) / static_cast<double>(instructions)
               : 0.0;
}

double KernelProfile::branch_fraction() const {
    return instructions
               ? static_cast<double>(branches) / static_cast<double>(instructions)
               : 0.0;
}

KernelProfile profile_kernel(const Benchmark& benchmark) {
    Memory memory;
    Cpu cpu(memory);
    KernelProfile profile;
    bool have_last_branch = false;
    std::uint32_t branch_pc = 0;
    cpu.set_trace([&](std::uint32_t pc, const Instr& instr, const std::string&) {
        // Taken-branch detection: the previous instruction was a branch
        // and we did not fall through to pc+4.
        if (have_last_branch && cpu.fi_active() && pc != branch_pc + 4)
            ++profile.taken_branches;
        have_last_branch = false;
        if (!cpu.fi_active()) return;
        const OpInfo& info = op_info(instr.op);
        ++profile.instructions;
        ++profile.per_op[static_cast<std::size_t>(instr.op)];
        ++profile.per_class[static_cast<std::size_t>(info.ex_class)];
        if (info.ex_class != ExClass::None) ++profile.alu_ops;
        if (info.is_branch) {
            ++profile.branches;
            have_last_branch = true;
            branch_pc = pc;
        }
        if (info.is_load) ++profile.loads;
        if (info.is_store) ++profile.stores;
    });
    cpu.reset(benchmark.program());
    const RunResult run = cpu.run();
    if (!run.finished())
        throw std::logic_error("profile_kernel: fault-free run did not halt");
    profile.cycles = run.kernel_cycles;
    return profile;
}

void print_profile(std::ostream& os, const std::string& name,
                   const KernelProfile& profile) {
    os << name << ": " << profile.instructions << " kernel instructions, "
       << profile.cycles << " cycles\n";
    TextTable table({"class", "count", "share"});
    for (std::size_t c = 0; c < kExClassCount; ++c) {
        const auto cls = static_cast<ExClass>(c);
        if (profile.count(cls) == 0) continue;
        table.add_row({ex_class_name(cls), std::to_string(profile.count(cls)),
                       fmt_pct(profile.fraction(cls))});
    }
    table.add_row({"(alu total)", std::to_string(profile.alu_ops),
                   fmt_pct(profile.alu_fraction())});
    table.add_row({"(branches)", std::to_string(profile.branches),
                   fmt_pct(profile.branch_fraction())});
    table.add_row({"(loads)", std::to_string(profile.loads), ""});
    table.add_row({"(stores)", std::to_string(profile.stores), ""});
    table.print(os);
}

}  // namespace sfi
