// dijkstra benchmark: all-pairs shortest paths on a small directed graph
// via repeated O(V^2) Dijkstra (one run per source). Graph-search kernel:
// control-dominated (scans, comparisons, branches), no multiplications.
#include <sstream>

#include "apps/benchmark.hpp"
#include "util/rng.hpp"

namespace sfi {

namespace {

constexpr std::uint32_t kInf = 0x3fffffffu;  // far below overflow on relax

class DijkstraBenchmark final : public Benchmark {
public:
    DijkstraBenchmark(std::uint64_t seed, std::size_t nodes)
        : Benchmark("dijkstra"), n_(nodes) {
        Rng rng(seed ^ 0x64696a6bULL);
        adj_.assign(n_ * n_, 0);
        // Ring edges guarantee strong connectivity; extra random edges
        // give the search real work.
        for (std::size_t i = 0; i < n_; ++i)
            adj_[i * n_ + (i + 1) % n_] = 1 + static_cast<std::uint32_t>(rng.bounded(20));
        for (std::size_t i = 0; i < n_; ++i)
            for (std::size_t j = 0; j < n_; ++j) {
                if (i == j || adj_[i * n_ + j] != 0) continue;
                if (rng.chance(0.4))
                    adj_[i * n_ + j] = 1 + static_cast<std::uint32_t>(rng.bounded(20));
            }
    }

    Table1Row table1_row() const override {
        return {"graph search", "-", "++", std::to_string(n_) + " nodes",
                "mismatch in min. distance"};
    }

    /// Bit-exact replica of the guest algorithm (lowest-index strict-min
    /// extraction, 0 = no edge).
    std::vector<std::uint32_t> golden_output() const override {
        std::vector<std::uint32_t> all(n_ * n_, kInf);
        for (std::size_t s = 0; s < n_; ++s) {
            std::vector<std::uint32_t> dist(n_, kInf);
            std::vector<bool> visited(n_, false);
            dist[s] = 0;
            for (std::size_t iter = 0; iter < n_; ++iter) {
                std::uint32_t best = kInf;
                std::size_t u = n_;
                for (std::size_t v = 0; v < n_; ++v)
                    if (!visited[v] && dist[v] < best) {
                        best = dist[v];
                        u = v;
                    }
                if (u == n_) break;
                visited[u] = true;
                for (std::size_t v = 0; v < n_; ++v) {
                    const std::uint32_t w = adj_[u * n_ + v];
                    if (w == 0) continue;
                    const std::uint32_t nd = dist[u] + w;
                    if (nd < dist[v]) dist[v] = nd;
                }
            }
            for (std::size_t v = 0; v < n_; ++v) all[s * n_ + v] = dist[v];
        }
        return all;
    }

    double output_error(const std::vector<std::uint32_t>& output) const override {
        const std::vector<std::uint32_t> golden = golden_output();
        std::size_t wrong = 0;
        for (std::size_t i = 0; i < golden.size(); ++i)
            if (output.at(i) != golden[i]) ++wrong;
        return 100.0 * static_cast<double>(wrong) /
               static_cast<double>(golden.size());
    }

    std::string error_unit() const override {
        return "% node pairs w/ min. distance errors";
    }

protected:
    std::string generate_asm() const override {
        const std::size_t row_bytes = n_ * 4;
        std::ostringstream os;
        os << "# dijkstra: all-pairs shortest paths, " << n_
           << " nodes (generated)\n";
        os << ".entry _start\n";
        os << "_start:\n";
        os << "  l.movhi r16,hi(adj)\n  l.ori r16,r16,lo(adj)\n";
        os << "  l.movhi r18,hi(visited)\n  l.ori r18,r18,lo(visited)\n";
        os << "  l.movhi r20,hi(out)\n  l.ori r20,r20,lo(out)\n";
        os << "  l.movhi r27," << (kInf >> 16) << "\n";
        os << "  l.ori   r27,r27," << (kInf & 0xffffu) << "   # INF\n";
        os << "  l.nop   0x10              # kernel begin\n";
        os << "  l.addi  r26,r0,0          # s = source index\n";
        os << "source_loop:\n";
        // dist row pointer r17 = out + s*row_bytes (row_bytes = n*4,
        // composed from shifts to keep the kernel multiplier-free).
        emit_mul_const(os, "r2", "r26", row_bytes);
        os << "  l.add   r17,r20,r2\n";
        os << "  l.addi  r6,r0,0\n";
        os << "init_loop:\n";
        os << "  l.slli  r2,r6,2\n";
        os << "  l.add   r14,r17,r2\n  l.sw 0(r14),r27    # dist[v] = INF\n";
        os << "  l.add   r14,r18,r2\n  l.sw 0(r14),r0     # visited[v] = 0\n";
        os << "  l.addi  r6,r6,1\n";
        os << "  l.sfeqi r6," << n_ << "\n";
        os << "  l.bnf   init_loop\n";
        os << "  l.slli  r2,r26,2\n";
        os << "  l.add   r14,r17,r2\n  l.sw 0(r14),r0     # dist[s] = 0\n";
        os << "  l.addi  r24,r0," << n_ << "  # main iterations\n";
        os << "dij_iter:\n";
        os << "  l.ori   r12,r27,0         # best = INF\n";
        os << "  l.addi  r13,r0,-1         # u = -1\n";
        os << "  l.addi  r6,r0,0\n";
        os << "find_loop:\n";
        os << "  l.slli  r2,r6,2\n";
        os << "  l.add   r14,r18,r2\n  l.lwz r10,0(r14)   # visited[v]\n";
        os << "  l.sfnei r10,0\n";
        os << "  l.bf    find_next\n";
        os << "  l.add   r14,r17,r2\n  l.lwz r10,0(r14)   # dist[v]\n";
        os << "  l.sfltu r10,r12\n";
        os << "  l.bnf   find_next\n";
        os << "  l.ori   r12,r10,0\n";
        os << "  l.ori   r13,r6,0\n";
        os << "find_next:\n";
        os << "  l.addi  r6,r6,1\n";
        os << "  l.sfeqi r6," << n_ << "\n";
        os << "  l.bnf   find_loop\n";
        os << "  l.sfeqi r13,-1\n";
        os << "  l.bf    dij_done\n";
        os << "  l.slli  r2,r13,2\n";
        os << "  l.addi  r10,r0,1\n";
        os << "  l.add   r14,r18,r2\n  l.sw 0(r14),r10    # visited[u] = 1\n";
        emit_mul_const(os, "r15", "r13", row_bytes);
        os << "  l.add   r15,r16,r15       # adj row of u\n";
        os << "  l.slli  r2,r13,2\n";
        os << "  l.add   r14,r17,r2\n  l.lwz r11,0(r14)   # du = dist[u]\n";
        os << "  l.addi  r6,r0,0\n";
        os << "relax_loop:\n";
        os << "  l.slli  r2,r6,2\n";
        os << "  l.add   r14,r15,r2\n  l.lwz r10,0(r14)   # w = adj[u][v]\n";
        os << "  l.sfeqi r10,0\n";
        os << "  l.bf    relax_next\n";
        os << "  l.add   r10,r10,r11       # nd = du + w\n";
        os << "  l.add   r14,r17,r2\n  l.lwz r12,0(r14)   # dist[v]\n";
        os << "  l.sfltu r10,r12\n";
        os << "  l.bnf   relax_next\n";
        os << "  l.sw    0(r14),r10\n";
        os << "relax_next:\n";
        os << "  l.addi  r6,r6,1\n";
        os << "  l.sfeqi r6," << n_ << "\n";
        os << "  l.bnf   relax_loop\n";
        os << "  l.addi  r24,r24,-1\n";
        os << "  l.sfnei r24,0\n";
        os << "  l.bf    dij_iter\n";
        os << "dij_done:\n";
        os << "  l.addi  r26,r26,1\n";
        os << "  l.sfeqi r26," << n_ << "\n";
        os << "  l.bnf   source_loop\n";
        os << "  l.nop   0x11              # kernel end\n";
        os << "  l.addi  r3,r0,0\n";
        os << "  l.nop   0x1               # exit\n";
        os << ".org 0x8000\n";
        os << "adj:\n";
        for (std::uint32_t v : adj_) os << "  .word " << v << "\n";
        os << "visited:\n  .space " << n_ * 4 << "\n";
        os << "out:\n  .space " << n_ * n_ * 4 << "\n";
        return os.str();
    }

private:
    /// Emits dst = src * constant using shift/add only (the paper's
    /// Dijkstra kernel is compute "-": no multiplier activity).
    static void emit_mul_const(std::ostringstream& os, const char* dst,
                               const char* src, std::size_t constant) {
        bool first = true;
        for (unsigned bit = 0; bit < 31; ++bit) {
            if (!(constant & (std::size_t{1} << bit))) continue;
            if (first) {
                os << "  l.slli  " << dst << "," << src << "," << bit << "\n";
                first = false;
            } else {
                os << "  l.slli  r3," << src << "," << bit << "\n";
                os << "  l.add   " << dst << "," << dst << ",r3\n";
            }
        }
        if (first) os << "  l.addi  " << dst << ",r0,0\n";
    }

    std::size_t n_;
    std::vector<std::uint32_t> adj_;
};

}  // namespace

std::unique_ptr<Benchmark> make_dijkstra(std::uint64_t seed, std::size_t nodes) {
    if (nodes < 2) throw std::invalid_argument("dijkstra: need >= 2 nodes");
    return std::make_unique<DijkstraBenchmark>(seed, nodes);
}

}  // namespace sfi
