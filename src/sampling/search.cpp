#include "sampling/search.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/ledger.hpp"

namespace sfi::sampling {

namespace {

bool probe_fails(const PointSummary& summary) {
    return summary.correct_count != summary.trials;
}

}  // namespace

PoffSearchResult find_poff_bisection(const ProbeFn& probe,
                                     const OperatingPoint& base,
                                     const PoffSearchConfig& config) {
    if (!(config.hi_mhz > config.lo_mhz) || !(config.lo_mhz > 0.0))
        throw std::invalid_argument(
            "find_poff_bisection: bracket must satisfy 0 < lo < hi");
    if (!(config.tol_mhz > 0.0))
        throw std::invalid_argument(
            "find_poff_bisection: tol_mhz must be positive");

    PoffSearchResult result;
    // Wilson upper bound on p_fail after an all-pass probe of n trials;
    // tracked for the probe that ends up defining lo.
    double lo_pass_risk = 0.0;

    const auto run_probe = [&](double freq) {
        OperatingPoint point = base;
        point.freq_mhz = freq;
        PointSummary summary = probe(point);
        ++result.probes;
        result.trials_spent += summary.trials;
        const bool failing = probe_fails(summary);
        const double risk =
            failing ? 0.0
                    : 1.0 - wilson_interval(summary.correct_count,
                                            summary.trials, config.z)
                                .lo;
        if (config.ledger != nullptr)
            config.ledger->instant("probe", {{"freq_mhz", freq},
                                             {"trials", summary.trials},
                                             {"failing", failing}});
        result.sweep.push_back(std::move(summary));
        return std::pair<bool, double>(failing, risk);
    };
    const auto is_cancelled = [&] {
        if (config.cancelled && config.cancelled()) {
            result.cancelled = true;
            return true;
        }
        return false;
    };

    double lo = config.lo_mhz;
    double hi = config.hi_mhz;
    const double width = hi - lo;

    // Establish the bracket: lo must pass, hi must fail. Edges that
    // disagree slide outward by the initial width — a bad initial guess
    // costs O(max_expand) probes, not a failed search.
    bool have_lo = false, have_hi = false;
    for (std::size_t i = 0; i <= config.max_expand && !have_lo; ++i) {
        if (is_cancelled()) return result;
        const auto [failing, risk] = run_probe(lo);
        if (!failing) {
            have_lo = true;
            lo_pass_risk = risk;
        } else {
            // Even this frequency fails: the PoFF is at or below it.
            hi = lo;
            have_hi = true;
            const double next = lo - width;
            if (next <= 0.0) break;
            lo = next;
        }
    }
    for (std::size_t i = 0; i <= config.max_expand && have_lo && !have_hi;
         ++i) {
        if (is_cancelled()) return result;
        const auto [failing, risk] = run_probe(hi);
        if (failing) {
            have_hi = true;
        } else {
            // Still passing: the PoFF is above; remember the new floor.
            lo = hi;
            lo_pass_risk = risk;
            hi += width;
        }
    }
    if (!have_lo || !have_hi) {
        // No crossing inside the expanded range. Report the range that
        // was actually PROBED (lo/hi were already slid one width past
        // the last probe when a loop exhausted its expansion budget),
        // with bracketed = false; every probe is in `sweep`.
        std::sort(result.sweep.begin(), result.sweep.end(),
                  [](const PointSummary& a, const PointSummary& b) {
                      return a.point.freq_mhz < b.point.freq_mhz;
                  });
        result.lo_mhz = result.sweep.front().point.freq_mhz;
        result.hi_mhz = result.sweep.back().point.freq_mhz;
        // No passing probe means the PoFF is certainly at or below every
        // frequency tried — not a 0.0 ("no risk") residual.
        result.pass_risk = have_lo ? lo_pass_risk : 1.0;
        return result;
    }

    // Bisection: halve [lo, hi] until it is tighter than tol.
    while (hi - lo > config.tol_mhz) {
        if (is_cancelled()) break;
        const double mid = 0.5 * (lo + hi);
        const auto [failing, risk] = run_probe(mid);
        if (failing) {
            hi = mid;
        } else {
            lo = mid;
            lo_pass_risk = risk;
        }
    }

    result.bracketed = true;
    result.lo_mhz = lo;
    result.hi_mhz = hi;
    result.pass_risk = lo_pass_risk;
    std::sort(result.sweep.begin(), result.sweep.end(),
              [](const PointSummary& a, const PointSummary& b) {
                  return a.point.freq_mhz < b.point.freq_mhz;
              });
    return result;
}

PoffSearchResult find_poff_bisection(const MonteCarloRunner& runner,
                                     const OperatingPoint& base,
                                     const PoffSearchConfig& config,
                                     const SamplingPolicy& policy,
                                     std::size_t threads) {
    BatchedExecutor executor(runner, threads);
    // Quote pass_risk at the policy's confidence, not the default z —
    // a policy running at z = 3 expects its residual risk bound at the
    // same level its stopping rule used.
    PoffSearchConfig cfg = config;
    cfg.z = policy.z;
    return find_poff_bisection(
        [&](const OperatingPoint& point) {
            return run_point_sequential(executor, point, policy,
                                        runner.config().trials)
                .summary;
        },
        base, cfg);
}

}  // namespace sfi::sampling
