// Adaptive point-of-first-failure extraction: bracketing + bisection
// over clock frequency, with a sequential sampling decision at every
// probe. Replaces a dense FirstFaultWindow grid when the campaign only
// needs the PoFF crossing (paper §4.2) — O(log(range/tol)) probes
// instead of O(range/step) grid points, and each probe spends only what
// its stopping rule demands.
//
// Validity: bisection assumes the failure behavior is monotone in
// frequency — below the PoFF every trial is correct, above it failures
// only get more likely. That is the physics of the timing cliff (longer
// capture window at lower frequency, §4.2); it does NOT hold for sweeps
// along axes where the error rate is non-monotone, which is why the
// search is frequency-only. A probe that observes >= 1 wrong trial is a
// certain "failing" classification; a probe that observes none can still
// sit above the true PoFF with probability (1 - p_fail)^trials — the
// residual captured by PoffSearchResult::pass_risk.
//
// Determinism: the probe sequence is a pure function of the bracket and
// the probe verdicts, which are themselves deterministic (seeded trials,
// integer counts) — so a re-run probes the same frequencies, and
// store-backed probes (campaign/runner.cpp) resume with 100 % hits.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sampling/sequential.hpp"

namespace sfi::sampling {

struct PoffSearchConfig {
    /// Initial bracket. lo is expected to pass (all trials correct) and
    /// hi to fail; edges that disagree are expanded outward by the
    /// bracket width, at most `max_expand` times per side.
    double lo_mhz = 0.0;
    double hi_mhz = 0.0;
    /// Stop bisecting once hi - lo <= tol_mhz.
    double tol_mhz = 2.0;
    std::size_t max_expand = 4;
    /// z-score used for the pass_risk Wilson bound at passing probes.
    /// The policy overload copies SamplingPolicy::z here so the residual
    /// risk is quoted at the same confidence the stopping rule used.
    double z = 1.96;
    /// Checked before every probe; true stops the search cleanly with
    /// the bracket found so far (campaign cancellation hook).
    std::function<bool()> cancelled;
    /// Optional run ledger: every probe emits a "probe" instant with its
    /// frequency and verdict. Probes are part of the *stable* narrative —
    /// the probe sequence is a pure function of the spec and a warm rerun
    /// replays it through store hits — so the events appear in both
    /// logical and wall modes.
    obs::Ledger* ledger = nullptr;
};

struct PoffSearchResult {
    /// True when a passing lo and a failing hi were established (the
    /// interval below is meaningful).
    bool bracketed = false;
    /// Bracketed: highest probed frequency whose trials were all correct
    /// / lowest probed frequency with a failure — the PoFF lies in
    /// (lo, hi], and `hi` is the search's PoFF estimate (like
    /// find_poff_mhz, the lowest frequency at which a failure was
    /// observed). Not bracketed: the lowest / highest frequencies that
    /// were actually probed — the range the search covered without
    /// finding a crossing.
    double lo_mhz = 0.0;
    double hi_mhz = 0.0;
    /// Wilson upper bound (at PoffSearchConfig::z) on the per-trial
    /// failure probability
    /// still compatible with the all-correct observation at the final
    /// passing edge — the residual risk that the true PoFF sits at or
    /// below lo. 1.0 when no probe ever passed (the PoFF certainly is).
    double pass_risk = 0.0;
    bool cancelled = false;
    std::size_t probes = 0;
    std::uint64_t trials_spent = 0;
    /// Every probe's summary, in ascending frequency order — drop-in for
    /// the sweep CSV writers and find_poff_mhz.
    std::vector<PointSummary> sweep;

    double poff_mhz() const { return hi_mhz; }
    double interval_width_mhz() const { return hi_mhz - lo_mhz; }
};

/// Produces the PointSummary of one probe frequency. The campaign layer
/// routes this through the point store; the plain overload below runs a
/// sequential-sampling probe directly.
using ProbeFn = std::function<PointSummary(const OperatingPoint&)>;

/// Core search over an arbitrary probe function. `base` supplies the
/// non-frequency coordinates. A probe "fails" when any of its trials is
/// not correct (the find_poff_mhz criterion).
PoffSearchResult find_poff_bisection(const ProbeFn& probe,
                                     const OperatingPoint& base,
                                     const PoffSearchConfig& config);

/// Convenience overload: probes via run_point_sequential on `runner`
/// under `policy` (fixed-N probes use runner.config().trials).
PoffSearchResult find_poff_bisection(const MonteCarloRunner& runner,
                                     const OperatingPoint& base,
                                     const PoffSearchConfig& config,
                                     const SamplingPolicy& policy,
                                     std::size_t threads);

}  // namespace sfi::sampling
