// Resumable batched trial execution — the bottom layer of the adaptive
// sampling engine (ROADMAP: spend trials only where the statistics still
// need them). A BatchedExecutor runs the trials of one operating point in
// fixed-size, trial-indexed batches so a caller can look at the partial
// PointSummary between batches and decide whether to keep going
// (src/sampling/sequential.hpp) — without ever breaking the PR 2
// determinism contract.
//
// Determinism contract (verified by tests/sampling/test_batch.cpp):
// after k batches the accumulated PointSummary is bit-identical to what a
// serial MonteCarloRunner::run_point over the same trial prefix would
// produce, at any thread count and any batch size. Two ingredients make
// that hold:
//  * trial indices are absolute — batch b covers trials
//    [b*batch, b*batch + n) and trial i always draws from the (seed, i)
//    RNG stream, so batch boundaries cannot shift any trial's content;
//  * each batch's outcomes are folded into the summary in trial-index
//    order via accumulate_trials (src/mc/montecarlo.hpp), i.e. the exact
//    floating-point accumulation sequence of the one-shot path.
//
// Note on RunningStats::merge (src/util/stats.hpp): merging two Welford
// accumulators is algebraically exact (Chan et al.) but rounds
// differently from feeding the same values through one accumulator, so
// the bitwise-contract path above deliberately replays trial-ordered
// add()s instead. merge_point_summaries below — which does use
// RunningStats::merge — is for cross-summary aggregation (PoFF probe
// roll-ups, trial-budget reporting) where counts must be exact but
// bitwise reproduction of a serial pass is not part of the contract.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "mc/parallel.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"

namespace sfi::sampling {

/// Runs trial batches for one MonteCarloRunner, reusing one set of
/// per-worker TrialContexts across all batches (and points) so adaptive
/// sweeps do not pay a model clone per batch.
class BatchedExecutor {
public:
    /// `threads` has McConfig::threads semantics (0 = one worker per
    /// hardware thread, 1 = serial); the summaries are bit-identical at
    /// any value.
    BatchedExecutor(const MonteCarloRunner& runner, std::size_t threads);

    /// Runs the `count` trials following summary.trials at `point` and
    /// folds them into `summary` in trial-index order. The summary after
    /// the call equals a serial run of trials [0, summary.trials + count)
    /// bit for bit (given it did before the call — start from a
    /// default-constructed summary with `point` set, or use run_fixed).
    void run_batch(PointSummary& summary, const OperatingPoint& point,
                   std::size_t count);

    /// Exactly `trials` trials at `point` in batches of `batch_size`
    /// (the last batch is short): byte-identical to
    /// MonteCarloRunner::run_point with config.trials = trials.
    PointSummary run_fixed(const OperatingPoint& point, std::size_t trials,
                           std::size_t batch_size);

    /// Forensic re-run of trials [0, count) at `point` over the executor's
    /// contexts (run_forensic_block). Purely observational: the returned
    /// TrialForensics never feed a PointSummary, and each trial outcome is
    /// bit-identical to what run_batch produced for the same index. The
    /// record stream (results in index order) is bitwise identical at any
    /// thread count.
    std::vector<TrialForensics> run_forensics(const OperatingPoint& point,
                                              std::size_t count);

    const MonteCarloRunner& runner() const { return *runner_; }

    /// Attaches observability sinks (either may be null). Wall-mode
    /// ledgers get a "batch" span per run_batch call, per-worker "trials"
    /// lanes (via run_trial_block) and a "fast_path" instant on points the
    /// zero-fault fast path serves; logical-mode ledgers get nothing here
    /// — batch structure is volatile (a warm rerun has no batches at
    /// all). The registry counts "run.batches" / "run.fastpath_points",
    /// volatile by the "run." naming convention.
    void set_observer(obs::Ledger* ledger, obs::MetricsRegistry* metrics) {
        ledger_ = ledger;
        metrics_ = metrics;
    }
    obs::Ledger* ledger() const { return ledger_; }
    obs::MetricsRegistry* metrics() const { return metrics_; }

private:
    const MonteCarloRunner* runner_;
    std::vector<std::unique_ptr<TrialContext>> contexts_;
    obs::Ledger* ledger_ = nullptr;
    obs::MetricsRegistry* metrics_ = nullptr;
};

/// Merges two summaries over disjoint trial sets: integer counts add
/// exactly, the moment accumulators combine via RunningStats::merge
/// (algebraically exact — see the header comment for why this is not the
/// bitwise-contract path), and the derived means are recomputed. The
/// operating point of `a` is kept, so merging summaries of different
/// points (e.g. rolling up PoFF probes) yields totals labelled with the
/// first probe's point.
PointSummary merge_point_summaries(const PointSummary& a,
                                   const PointSummary& b);

}  // namespace sfi::sampling
