#include "sampling/batch.hpp"

namespace sfi::sampling {

BatchedExecutor::BatchedExecutor(const MonteCarloRunner& runner,
                                 std::size_t threads)
    : runner_(&runner), contexts_(make_trial_contexts(runner, threads)) {}

void BatchedExecutor::run_batch(PointSummary& summary,
                                const OperatingPoint& point,
                                std::size_t count) {
    if (count == 0) return;
    const bool wall = ledger_ != nullptr && !ledger_->logical();
    const bool first_batch = summary.trials == 0;
    if (wall)
        ledger_->begin("batch",
                       {{"first_trial", summary.trials}, {"count", count}});
    const std::vector<TrialOutcome> outcomes =
        run_trial_block(*runner_, point, summary.trials, count, contexts_,
                        wall ? ledger_ : nullptr);
    accumulate_trials(summary, outcomes);
    if (metrics_ != nullptr) metrics_->add("run.batches");
    if ((wall || metrics_ != nullptr) && first_batch && !contexts_.empty() &&
        runner_->fast_path_active(*contexts_.front()->model, point)) {
        if (metrics_ != nullptr) metrics_->add("run.fastpath_points");
        if (wall)
            ledger_->instant("fast_path", {{"freq_mhz", point.freq_mhz}});
    }
    if (wall) ledger_->end("batch", {{"trials", summary.trials}});
}

std::vector<TrialForensics> BatchedExecutor::run_forensics(
    const OperatingPoint& point, std::size_t count) {
    return run_forensic_block(*runner_, point, 0, count, contexts_);
}

PointSummary BatchedExecutor::run_fixed(const OperatingPoint& point,
                                        std::size_t trials,
                                        std::size_t batch_size) {
    if (batch_size == 0) batch_size = trials ? trials : 1;
    PointSummary summary;
    summary.point = point;
    while (summary.trials < trials)
        run_batch(summary, point,
                  std::min(batch_size, trials - summary.trials));
    return summary;
}

PointSummary merge_point_summaries(const PointSummary& a,
                                   const PointSummary& b) {
    PointSummary out = a;
    out.trials += b.trials;
    out.finished_count += b.finished_count;
    out.correct_count += b.correct_count;
    out.error_stats.merge(b.error_stats);
    out.fi_rate_stats.merge(b.fi_rate_stats);
    out.fi_rate = out.fi_rate_stats.mean();
    out.mean_error = out.error_stats.mean();
    return out;
}

}  // namespace sfi::sampling
