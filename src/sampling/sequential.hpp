// Sequential stopping rules on top of the batched executor: run trial
// batches until the Wilson confidence intervals on the point's
// finished/correct fractions are tight enough (or a trial ceiling hits),
// instead of spending the paper's flat "at least 100 simulations"
// (PAPER §2.3) on points that are trivially decided.
//
// A SamplingPolicy is part of a point's identity: the campaign layer
// mixes its fingerprint into the point-store key (campaign/spec.cpp) so
// adaptive summaries and fixed-N summaries never collide in the store.
// FixedN is the identity policy — its fingerprint contribution is empty
// so fixed-N keys (and therefore every pre-adaptive store) stay valid.
//
// Determinism: for a given (runner seed, policy) the whole procedure is
// a pure function — batch b always covers the same absolute trial
// indices, the partial summaries are bit-identical at any thread count
// (src/sampling/batch.hpp), and the stopping decision only reads integer
// counts out of them. Re-running an adaptive point reproduces the same
// trials-spent and the same summary, byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "sampling/batch.hpp"
#include "util/stats.hpp"

namespace sfi::sampling {

/// How many trials to spend on one operating point.
struct SamplingPolicy {
    enum class Kind : std::uint8_t {
        FixedN,    ///< the seed behavior: exactly the configured trials
        TargetCi,  ///< batches until both Wilson half-widths <= ci_half_width
        TwoStage   ///< screen with few trials, stop if decided, else refine
                   ///< like TargetCi
    };

    Kind kind = Kind::FixedN;
    /// Trials per batch for the adaptive kinds (and for fixed-N routed
    /// through the batched executor — any value gives identical bytes).
    std::size_t batch_size = 25;
    /// Adaptive floor: never stop before this many trials, however tight
    /// the interval looks (tiny samples make Wilson intervals lie).
    std::size_t min_trials = 25;
    /// Adaptive ceiling: stop here even if the target was not reached
    /// (the cliff region would otherwise absorb unbounded trials).
    std::size_t max_trials = 1000;
    /// Target half-width of the Wilson intervals on finished_frac and
    /// correct_frac (TargetCi, and TwoStage's refine stage).
    double ci_half_width = 0.05;
    /// Normal quantile of the intervals (1.96 = 95 %).
    double z = 1.96;
    /// TwoStage: trials of the screening stage.
    std::size_t screen_trials = 25;
    /// TwoStage: the screen declares a point decided when the Wilson
    /// interval of each fraction lies entirely in [0, screen_threshold]
    /// or [1 - screen_threshold, 1] — deep in the never-finishes or
    /// always-correct regime, where more trials would not change the
    /// figure. Must be at least the Wilson half-range of a unanimous
    /// screen (z^2 / (screen_trials + z^2), ~0.13 for 25 trials at 95 %)
    /// or the screen can never fire and TwoStage degrades to TargetCi.
    double screen_threshold = 0.15;

    static SamplingPolicy fixed_n();
    static SamplingPolicy target_ci(double ci_half_width,
                                    std::size_t max_trials,
                                    std::size_t batch_size = 25);
    static SamplingPolicy two_stage(std::size_t screen_trials,
                                    double screen_threshold,
                                    double ci_half_width,
                                    std::size_t max_trials);

    bool adaptive() const { return kind != Kind::FixedN; }

    /// Content hash of every knob that can change how many trials a
    /// point receives. FixedN returns 0 — the sentinel the point-key
    /// code uses to leave fixed-N keys exactly as they were before the
    /// sampling engine existed.
    std::uint64_t fingerprint() const;
};

/// Maps a --sampling flag value ("fixed", "ci", "two-stage") to a policy
/// kind; nullopt for anything else.
std::optional<SamplingPolicy::Kind> parse_sampling_kind(
    const std::string& name);

/// The larger of the Wilson half-widths on the summary's finished and
/// correct fractions — the quantity the TargetCi rule drives down.
double max_half_width(const PointSummary& summary, double z = 1.96);

/// Why a point's trial budget stopped where it did.
enum class StopRule : std::uint8_t {
    Fixed,      ///< fixed-N policy: the configured trial count, no rule
    CiMet,      ///< both Wilson half-widths reached the target
    MaxTrials,  ///< the max_trials ceiling cut the refinement off
    Screen,     ///< the TwoStage screen declared the point decided
};
inline constexpr std::size_t kStopRuleCount = 4;

/// Stable short name ("fixed", "ci-met", "max-trials", "screen") — the
/// vocabulary of the campaign manifest and the run ledger.
const char* stop_rule_name(StopRule rule);

/// Re-derives the stopping classification from a *final* summary and the
/// policy that produced it — a pure function, so a summary served from
/// the point store classifies exactly like the run that computed it
/// (tests/campaign/test_obs_campaign.cpp pins the agreement with the
/// engine's own decisions). Only meaningful for summaries that actually
/// came out of run_point_sequential under `policy`.
StopRule classify_stop(const PointSummary& summary,
                       const SamplingPolicy& policy);

struct SequentialResult {
    PointSummary summary;
    std::size_t batches = 0;
    /// True when the stopping rule was satisfied (CI target met or
    /// screen decided); false when the max_trials ceiling cut it off.
    bool converged = false;
    /// The engine's own stopping classification (classify_stop agrees).
    StopRule stop = StopRule::Fixed;
};

/// Runs `point` under `policy` on `executor`:
///  * FixedN: fixed_trials trials through the batched executor —
///    byte-identical to MonteCarloRunner::run_point (the equivalence
///    suite's contract);
///  * TargetCi / TwoStage: batches until the rule above says stop.
/// `fixed_trials` is the fixed-N trial count (typically
/// runner.config().trials); the adaptive kinds ignore it.
SequentialResult run_point_sequential(BatchedExecutor& executor,
                                      const OperatingPoint& point,
                                      const SamplingPolicy& policy,
                                      std::size_t fixed_trials);

/// Convenience wrapper that builds a throwaway executor. Prefer the
/// executor overload inside sweeps — it reuses the worker contexts.
SequentialResult run_point_sequential(const MonteCarloRunner& runner,
                                      const OperatingPoint& point,
                                      const SamplingPolicy& policy,
                                      std::size_t threads);

}  // namespace sfi::sampling
