#include "sampling/sequential.hpp"

#include <algorithm>

#include "util/fingerprint.hpp"

namespace sfi::sampling {

SamplingPolicy SamplingPolicy::fixed_n() { return {}; }

SamplingPolicy SamplingPolicy::target_ci(double ci_half_width,
                                         std::size_t max_trials,
                                         std::size_t batch_size) {
    SamplingPolicy policy;
    policy.kind = Kind::TargetCi;
    policy.ci_half_width = ci_half_width;
    policy.max_trials = max_trials;
    policy.batch_size = batch_size;
    policy.min_trials = std::min(policy.min_trials, max_trials);
    return policy;
}

SamplingPolicy SamplingPolicy::two_stage(std::size_t screen_trials,
                                         double screen_threshold,
                                         double ci_half_width,
                                         std::size_t max_trials) {
    SamplingPolicy policy;
    policy.kind = Kind::TwoStage;
    policy.screen_trials = screen_trials;
    policy.screen_threshold = screen_threshold;
    policy.ci_half_width = ci_half_width;
    policy.max_trials = max_trials;
    policy.min_trials = std::min(policy.min_trials, max_trials);
    return policy;
}

std::uint64_t SamplingPolicy::fingerprint() const {
    if (kind == Kind::FixedN) return 0;  // identity: fixed-N keys unchanged
    // Bumped when the meaning of a policy knob (and therefore of a stored
    // adaptive summary) changes.
    constexpr std::uint64_t kPolicyVersion = 1;
    Fingerprint fp;
    fp.mix(kPolicyVersion);
    fp.mix(kind);
    fp.mix(batch_size);
    fp.mix(min_trials);
    fp.mix(max_trials);
    fp.mix(ci_half_width);
    fp.mix(z);
    if (kind == Kind::TwoStage) {
        fp.mix(screen_trials);
        fp.mix(screen_threshold);
    }
    return fp.value();
}

std::optional<SamplingPolicy::Kind> parse_sampling_kind(
    const std::string& name) {
    if (name == "fixed") return SamplingPolicy::Kind::FixedN;
    if (name == "ci") return SamplingPolicy::Kind::TargetCi;
    if (name == "two-stage") return SamplingPolicy::Kind::TwoStage;
    return std::nullopt;
}

double max_half_width(const PointSummary& summary, double z) {
    const auto half = [&](std::uint64_t successes) {
        const Interval ci = wilson_interval(successes, summary.trials, z);
        return 0.5 * (ci.hi - ci.lo);
    };
    return std::max(half(summary.finished_count), half(summary.correct_count));
}

namespace {

/// TwoStage screen verdict: every fraction's interval pinned to one end.
bool screen_decided(const PointSummary& summary, const SamplingPolicy& policy) {
    const auto decided = [&](std::uint64_t successes) {
        const Interval ci =
            wilson_interval(successes, summary.trials, policy.z);
        return ci.hi <= policy.screen_threshold ||
               ci.lo >= 1.0 - policy.screen_threshold;
    };
    return decided(summary.finished_count) && decided(summary.correct_count);
}

}  // namespace

const char* stop_rule_name(StopRule rule) {
    switch (rule) {
        case StopRule::Fixed: return "fixed";
        case StopRule::CiMet: return "ci-met";
        case StopRule::MaxTrials: return "max-trials";
        case StopRule::Screen: return "screen";
    }
    return "unknown";
}

StopRule classify_stop(const PointSummary& summary,
                       const SamplingPolicy& policy) {
    if (!policy.adaptive()) return StopRule::Fixed;
    // Mirror run_point_sequential's normalization and decision order: the
    // screen is checked only at exactly the screen trial count, and the
    // refine loop tests convergence *before* the ceiling, so a point that
    // converges right at max_trials classifies as CiMet there too.
    const std::size_t ceiling = std::max<std::size_t>(policy.max_trials, 1);
    const std::size_t floor_trials = std::min(policy.min_trials, ceiling);
    if (policy.kind == SamplingPolicy::Kind::TwoStage) {
        const std::size_t screen =
            std::min(std::max<std::size_t>(policy.screen_trials, 1), ceiling);
        if (summary.trials == screen && screen_decided(summary, policy))
            return StopRule::Screen;
    }
    if (summary.trials >= floor_trials &&
        max_half_width(summary, policy.z) <= policy.ci_half_width)
        return StopRule::CiMet;
    return StopRule::MaxTrials;
}

SequentialResult run_point_sequential(BatchedExecutor& executor,
                                      const OperatingPoint& point,
                                      const SamplingPolicy& policy,
                                      std::size_t fixed_trials) {
    SequentialResult result;
    result.summary.point = point;

    if (!policy.adaptive()) {
        result.summary =
            executor.run_fixed(point, fixed_trials, policy.batch_size);
        result.batches = policy.batch_size
                             ? (fixed_trials + policy.batch_size - 1) /
                                   policy.batch_size
                             : (fixed_trials ? 1 : 0);
        result.converged = true;
        result.stop = StopRule::Fixed;
        return result;
    }

    // Stopping-trajectory telemetry is wall-mode only: which batches ran
    // (and their half-width snapshots) is volatile — a warm rerun serves
    // the point from the store without batching at all.
    obs::Ledger* ledger = executor.ledger();
    if (ledger != nullptr && ledger->logical()) ledger = nullptr;
    const auto record_stop = [&](const char* decision) {
        if (ledger != nullptr)
            ledger->instant(
                "stopping",
                {{"trials", result.summary.trials},
                 {"half_width", max_half_width(result.summary, policy.z)},
                 {"decision", decision}});
    };

    const std::size_t batch = std::max<std::size_t>(policy.batch_size, 1);
    const std::size_t ceiling = std::max<std::size_t>(policy.max_trials, 1);
    // Normalize here, not only in the factories: a policy built by hand
    // (or parsed from flags) with min_trials > max_trials must still
    // terminate at the ceiling instead of looping on an unreachable floor.
    const std::size_t floor_trials = std::min(policy.min_trials, ceiling);

    if (policy.kind == SamplingPolicy::Kind::TwoStage) {
        // Stage 1: the screen. One cheap look; if the point is pinned to
        // an end of both scales it is decided and the refine loop below
        // never runs.
        const std::size_t screen =
            std::min(std::max<std::size_t>(policy.screen_trials, 1), ceiling);
        executor.run_batch(result.summary, point, screen);
        ++result.batches;
        if (screen_decided(result.summary, policy)) {
            result.converged = true;
            result.stop = StopRule::Screen;
            record_stop("screen");
            return result;
        }
    }

    // TargetCi loop (also TwoStage's refine stage): batch until both
    // Wilson half-widths are at or below the target, with floor/ceiling.
    for (;;) {
        const std::size_t done = result.summary.trials;
        if (done >= floor_trials &&
            max_half_width(result.summary, policy.z) <= policy.ci_half_width) {
            result.converged = true;
            result.stop = StopRule::CiMet;
            record_stop("ci-met");
            return result;
        }
        if (done >= ceiling) {  // ceiling hit, not converged
            result.stop = StopRule::MaxTrials;
            record_stop("max-trials");
            return result;
        }
        record_stop("continue");
        executor.run_batch(result.summary, point,
                           std::min(batch, ceiling - done));
        ++result.batches;
    }
}

SequentialResult run_point_sequential(const MonteCarloRunner& runner,
                                      const OperatingPoint& point,
                                      const SamplingPolicy& policy,
                                      std::size_t threads) {
    BatchedExecutor executor(runner, threads);
    return run_point_sequential(executor, point, policy,
                                runner.config().trials);
}

}  // namespace sfi::sampling
