// Structural generators for the EX-stage ALU of the case-study core.
//
// The generated netlist has three input buses —
//   "a"[32], "b"[32]  : operand registers (toggle every cycle)
//   "op"[4]           : function select (stable during a cycle)
// — and one output bus "y"[32]: the D-pins of the 32 ALU-endpoint
// flip-flops that limit fmax in the paper's design (§2.1).
//
// Function-select encoding (op[3:2] = unit, op[1:0] = sub-function):
//   0000 add   0001 sub/cmp
//   0100 and   0101 or    0110 xor
//   1000 sll   1001 srl   1010 sra
//   1100 mul
//
// Unit structures are chosen for their *timing* realism:
//  * ripple-carry adder: data-dependent carry chains give broad,
//    bit-position-graded arrival-time distributions (higher bits fail
//    first) — the behaviour model C's CDFs rely on;
//  * truncated 32x32 carry-save array multiplier with ripple CPA: the
//    slowest unit, failing before the adder as in the paper;
//  * 5-stage barrel shifter (shared left/right/arithmetic via input and
//    output reversal);
//  * flat per-bit logic unit.
// A Kogge-Stone adder variant exists for the adder-topology ablation.
// Multiplier inputs are operand-isolated (AND-gated with the mul select),
// the standard low-power idiom; it also lets dynamic timing analysis
// prune the multiplier cone for non-multiply instructions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "netlist/netlist.hpp"

namespace sfi {

enum class AdderKind : std::uint8_t { RippleCarry, KoggeStone };

struct AluConfig {
    /// Kogge-Stone by default: its dynamic-vs-static slack matches the
    /// paper's synthesized core (small PoFF gains, add16/add32 close
    /// together). The ripple-carry variant is kept for the adder-topology
    /// ablation: its long data-dependent carry chains produce much larger
    /// dynamic slack than the paper reports.
    AdderKind adder = AdderKind::KoggeStone;
    bool operand_isolation = true;  ///< AND-gate multiplier inputs
};

/// Identifies a structural unit of the ALU, for per-unit delay calibration.
enum class AluUnit : std::uint8_t { Adder, Logic, Shifter, Multiplier, Shared, kCount };

const char* alu_unit_name(AluUnit unit);

/// A generated ALU netlist plus the metadata calibration and DTA need.
struct Alu {
    Netlist netlist;
    AluConfig config;
    /// Unit membership of every cell (indexed by NetId).
    std::vector<AluUnit> unit_of;

    static constexpr std::size_t kWidth = 32;
    static constexpr std::size_t kOpBits = 4;

    /// op-bus value that selects the function for an instruction class.
    /// Valid for all ALU classes (Add..Cmp); throws for ExClass::None.
    static std::uint32_t op_code(ExClass cls);

    /// All instruction classes the ALU implements, in a stable order.
    static const std::vector<ExClass>& instruction_classes();

    /// Functional reference: evaluates the netlist for one operation.
    /// (Tests check this against sfi::alu_result bit-exactly.)
    std::uint32_t eval(ExClass cls, std::uint32_t a, std::uint32_t b) const;
};

/// Builds the full EX-stage ALU.
Alu build_alu(const AluConfig& config = {});

// Stand-alone unit generators (used by unit tests and the adder ablation).
// Each creates inputs "a"/"b" (and "sub" where noted) and output "y".
Netlist build_ripple_adder(std::size_t width, bool with_sub_input);
Netlist build_kogge_stone_adder(std::size_t width, bool with_sub_input);
Netlist build_array_multiplier(std::size_t width);  ///< low-`width` product
Netlist build_barrel_shifter(std::size_t width);    ///< inputs "a","sh","right","arith"

}  // namespace sfi
