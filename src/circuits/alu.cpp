#include "circuits/alu.hpp"

#include <cassert>
#include <stdexcept>

namespace sfi {

namespace {

using Bus = std::vector<NetId>;

Bus make_inputs(Netlist& n, const std::string& bus, std::size_t width) {
    Bus nets(width);
    for (std::size_t i = 0; i < width; ++i) nets[i] = n.add_input(bus, i);
    return nets;
}

/// Full adder: sum = a ^ b ^ cin, cout = ab + cin(a ^ b). Five cells.
std::pair<NetId, NetId> full_adder(Netlist& n, NetId a, NetId b, NetId cin) {
    const NetId axb = n.xor2(a, b);
    const NetId sum = n.xor2(axb, cin);
    const NetId cout = n.or2(n.and2(a, b), n.and2(axb, cin));
    return {sum, cout};
}

/// Half adder: sum = a ^ b, cout = ab.
std::pair<NetId, NetId> half_adder(Netlist& n, NetId a, NetId b) {
    return {n.xor2(a, b), n.and2(a, b)};
}

/// Ripple-carry adder core. `sub` may be kNoNet for a plain adder.
Bus ripple_adder_core(Netlist& n, const Bus& a, const Bus& b, NetId sub) {
    const std::size_t w = a.size();
    Bus y(w);
    NetId carry = (sub == kNoNet) ? n.add_tie(false) : sub;
    for (std::size_t i = 0; i < w; ++i) {
        const NetId bi = (sub == kNoNet) ? b[i] : n.xor2(b[i], sub);
        auto [s, c] = full_adder(n, a[i], bi, carry);
        y[i] = s;
        carry = c;
    }
    return y;
}

/// Kogge-Stone parallel-prefix adder core.
Bus kogge_stone_core(Netlist& n, const Bus& a, const Bus& b, NetId sub) {
    const std::size_t w = a.size();
    const NetId cin = (sub == kNoNet) ? n.add_tie(false) : sub;
    Bus p(w), g(w);
    for (std::size_t i = 0; i < w; ++i) {
        const NetId bi = (sub == kNoNet) ? b[i] : n.xor2(b[i], sub);
        p[i] = n.xor2(a[i], bi);
        g[i] = n.and2(a[i], bi);
    }
    // Fold the carry-in into position 0: g0' = g0 | (p0 & cin).
    Bus gg = g, pp = p;
    gg[0] = n.or2(g[0], n.and2(p[0], cin));
    for (std::size_t d = 1; d < w; d *= 2) {
        Bus g2 = gg, p2 = pp;
        for (std::size_t i = d; i < w; ++i) {
            g2[i] = n.or2(gg[i], n.and2(pp[i], gg[i - d]));
            p2[i] = n.and2(pp[i], pp[i - d]);
        }
        gg = std::move(g2);
        pp = std::move(p2);
    }
    Bus y(w);
    y[0] = n.xor2(p[0], cin);
    for (std::size_t i = 1; i < w; ++i) y[i] = n.xor2(p[i], gg[i - 1]);
    return y;
}

/// Truncated carry-save array multiplier core: y = (a * b) mod 2^w.
/// Row i's carries ripple diagonally into row i+1, so the truncated
/// low-w product needs no final carry-propagate adder.
Bus array_multiplier_core(Netlist& n, const Bus& a, const Bus& b) {
    const std::size_t w = a.size();
    Bus sum(w);
    for (std::size_t j = 0; j < w; ++j) sum[j] = n.and2(a[0], b[j]);
    Bus carry_prev;  // carries produced by the previous row, indexed by column
    for (std::size_t i = 1; i < w; ++i) {
        Bus carry_new(w, kNoNet);
        for (std::size_t j = i; j < w; ++j) {
            const NetId pp = n.and2(a[i], b[j - i]);
            const NetId cin =
                (j >= 1 && j - 1 < carry_prev.size() && carry_prev[j - 1] != kNoNet)
                    ? carry_prev[j - 1]
                    : kNoNet;
            if (cin == kNoNet) {
                // Row 1 has no incoming carries; use a half adder.
                auto [s, c] = half_adder(n, pp, sum[j]);
                sum[j] = s;
                carry_new[j] = c;
            } else {
                auto [s, c] = full_adder(n, pp, sum[j], cin);
                sum[j] = s;
                carry_new[j] = c;
            }
        }
        carry_prev = std::move(carry_new);
    }
    return sum;
}

/// Universal barrel shifter core. Right/arith select the mode; left shifts
/// reverse the operand before and after a right shift (pure wiring).
Bus barrel_shifter_core(Netlist& n, const Bus& a, const Bus& sh, NetId right,
                        NetId arith) {
    const std::size_t w = a.size();
    // x = right ? a : reverse(a)
    Bus x(w);
    for (std::size_t j = 0; j < w; ++j)
        x[j] = n.mux2(right, a[w - 1 - j], a[j]);
    const NetId fill = n.and2(arith, x[w - 1]);
    for (std::size_t k = 0; k < sh.size(); ++k) {
        const std::size_t dist = std::size_t{1} << k;
        Bus next(w);
        for (std::size_t j = 0; j < w; ++j) {
            const NetId shifted = (j + dist < w) ? x[j + dist] : fill;
            next[j] = n.mux2(sh[k], x[j], shifted);
        }
        x = std::move(next);
    }
    Bus y(w);
    for (std::size_t j = 0; j < w; ++j)
        y[j] = n.mux2(right, x[w - 1 - j], x[j]);
    return y;
}

void set_outputs(Netlist& n, const Bus& y) {
    for (std::size_t j = 0; j < y.size(); ++j) n.set_output("y", j, y[j]);
}

}  // namespace

const char* alu_unit_name(AluUnit unit) {
    switch (unit) {
        case AluUnit::Adder: return "adder";
        case AluUnit::Logic: return "logic";
        case AluUnit::Shifter: return "shifter";
        case AluUnit::Multiplier: return "multiplier";
        case AluUnit::Shared: return "shared";
        case AluUnit::kCount: break;
    }
    return "?";
}

std::uint32_t Alu::op_code(ExClass cls) {
    switch (cls) {
        case ExClass::Add: return 0b0000;
        case ExClass::Sub: return 0b0001;
        case ExClass::Cmp: return 0b0001;  // compare shares the subtract path
        case ExClass::And: return 0b0100;
        case ExClass::Or: return 0b0101;
        case ExClass::Xor: return 0b0110;
        case ExClass::Sll: return 0b1000;
        case ExClass::Srl: return 0b1001;
        case ExClass::Sra: return 0b1010;
        case ExClass::Mul: return 0b1100;
        case ExClass::None:
        case ExClass::kCount: break;
    }
    throw std::invalid_argument("op_code: not an ALU instruction class");
}

const std::vector<ExClass>& Alu::instruction_classes() {
    static const std::vector<ExClass> classes = {
        ExClass::Add, ExClass::Sub, ExClass::And, ExClass::Or,  ExClass::Xor,
        ExClass::Sll, ExClass::Srl, ExClass::Sra, ExClass::Mul, ExClass::Cmp};
    return classes;
}

std::uint32_t Alu::eval(ExClass cls, std::uint32_t a, std::uint32_t b) const {
    const std::map<std::string, std::uint64_t> in = {
        {"a", a}, {"b", b}, {"op", op_code(cls)}};
    return static_cast<std::uint32_t>(netlist.eval(in, "y"));
}

Alu build_alu(const AluConfig& config) {
    Alu alu;
    alu.config = config;
    Netlist& n = alu.netlist;
    std::vector<std::pair<std::size_t, AluUnit>> marks;  // (first cell id, unit)
    auto mark = [&](AluUnit unit) { marks.emplace_back(n.cell_count(), unit); };

    mark(AluUnit::Shared);
    const Bus a = make_inputs(n, "a", Alu::kWidth);
    const Bus b = make_inputs(n, "b", Alu::kWidth);
    const Bus op = make_inputs(n, "op", Alu::kOpBits);

    // Decode (shared): select lines for the result mux and unit controls.
    const NetId sel_mul = n.and2(op[3], op[2]);

    // Adder (add / sub / cmp): subtract when op[0] is set.
    mark(AluUnit::Adder);
    const Bus add_y = (config.adder == AdderKind::RippleCarry)
                          ? ripple_adder_core(n, a, b, op[0])
                          : kogge_stone_core(n, a, b, op[0]);

    // Logic unit: per-bit AND/OR/XOR selected by op[1:0] (00/01/10).
    mark(AluUnit::Logic);
    Bus logic_y(Alu::kWidth);
    for (std::size_t j = 0; j < Alu::kWidth; ++j) {
        const NetId and_j = n.and2(a[j], b[j]);
        const NetId or_j = n.or2(a[j], b[j]);
        const NetId xor_j = n.xor2(a[j], b[j]);
        logic_y[j] = n.mux2(op[1], n.mux2(op[0], and_j, or_j), xor_j);
    }

    // Shifter: sll=00 srl=01 sra=10 -> right = op0|op1, arith = op1.
    mark(AluUnit::Shifter);
    const NetId sh_right = n.or2(op[0], op[1]);
    const NetId sh_arith = n.buf(op[1]);
    const Bus sh = {b[0], b[1], b[2], b[3], b[4]};
    const Bus shift_y = barrel_shifter_core(n, a, sh, sh_right, sh_arith);

    // Multiplier, with optional operand isolation.
    mark(AluUnit::Multiplier);
    Bus ma = a, mb = b;
    if (config.operand_isolation) {
        for (std::size_t j = 0; j < Alu::kWidth; ++j) {
            ma[j] = n.and2(a[j], sel_mul);
            mb[j] = n.and2(b[j], sel_mul);
        }
    }
    const Bus mul_y = array_multiplier_core(n, ma, mb);

    // Result mux (shared): op[3:2] selects the unit.
    mark(AluUnit::Shared);
    Bus y(Alu::kWidth);
    for (std::size_t j = 0; j < Alu::kWidth; ++j) {
        const NetId low = n.mux2(op[2], add_y[j], logic_y[j]);
        const NetId high = n.mux2(op[2], shift_y[j], mul_y[j]);
        y[j] = n.mux2(op[3], low, high);
    }
    set_outputs(n, y);

    // Resolve unit membership from the build-order marks.
    alu.unit_of.assign(n.cell_count(), AluUnit::Shared);
    for (std::size_t m = 0; m < marks.size(); ++m) {
        const std::size_t begin = marks[m].first;
        const std::size_t end =
            (m + 1 < marks.size()) ? marks[m + 1].first : n.cell_count();
        for (std::size_t id = begin; id < end; ++id)
            alu.unit_of[id] = marks[m].second;
    }
    return alu;
}

Netlist build_ripple_adder(std::size_t width, bool with_sub_input) {
    Netlist n;
    const Bus a = make_inputs(n, "a", width);
    const Bus b = make_inputs(n, "b", width);
    const NetId sub = with_sub_input ? n.add_input("sub", 0) : kNoNet;
    set_outputs(n, ripple_adder_core(n, a, b, sub));
    return n;
}

Netlist build_kogge_stone_adder(std::size_t width, bool with_sub_input) {
    Netlist n;
    const Bus a = make_inputs(n, "a", width);
    const Bus b = make_inputs(n, "b", width);
    const NetId sub = with_sub_input ? n.add_input("sub", 0) : kNoNet;
    set_outputs(n, kogge_stone_core(n, a, b, sub));
    return n;
}

Netlist build_array_multiplier(std::size_t width) {
    Netlist n;
    const Bus a = make_inputs(n, "a", width);
    const Bus b = make_inputs(n, "b", width);
    set_outputs(n, array_multiplier_core(n, a, b));
    return n;
}

Netlist build_barrel_shifter(std::size_t width) {
    Netlist n;
    const Bus a = make_inputs(n, "a", width);
    std::size_t sh_bits = 0;
    while ((std::size_t{1} << sh_bits) < width) ++sh_bits;
    const Bus sh = make_inputs(n, "sh", sh_bits);
    const NetId right = n.add_input("right", 0);
    const NetId arith = n.add_input("arith", 0);
    set_outputs(n, barrel_shifter_core(n, a, sh, right, arith));
    return n;
}

}  // namespace sfi
