// Umbrella public header for the sfi library: statistical fault injection
// for impact-evaluation of timing errors on application performance
// (reproduction of Constantin et al., DAC 2016).
//
// Typical use (see examples/quickstart.cpp):
//
//   sfi::CharacterizedCore core;                     // ALU + STA + DTA
//   auto model = core.make_model_c();                // statistical FI
//   auto bench = sfi::make_benchmark(sfi::BenchmarkId::Median);
//   sfi::MonteCarloRunner runner(*bench, *model);
//   auto point = runner.run_point({.freq_mhz = 750, .vdd = 0.7,
//                                  .noise = {.sigma_mv = 10}});
//
// docs/ARCHITECTURE.md walks through the pipeline behind these types;
// DESIGN.md records the deviations from the paper's exact setup.
#pragma once

#include "apps/benchmark.hpp"
#include "campaign/figures.hpp"
#include "campaign/point_store.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "circuits/alu.hpp"
#include "cpu/cpu.hpp"
#include "cpu/memory.hpp"
#include "fi/cdf.hpp"
#include "fi/core_model.hpp"
#include "fi/cwc.hpp"
#include "fi/forensics.hpp"
#include "fi/mitigation.hpp"
#include "fi/models.hpp"
#include "fi/noise.hpp"
#include "fi/sampling_batch.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "isa/isa.hpp"
#include "mc/montecarlo.hpp"
#include "mc/parallel.hpp"
#include "mc/report.hpp"
#include "mc/sweep.hpp"
#include "netlist/netlist.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "perf/json_writer.hpp"
#include "perf/perf.hpp"
#include "perf/report.hpp"
#include "power/power_model.hpp"
#include "sampling/batch.hpp"
#include "sampling/search.hpp"
#include "sampling/sequential.hpp"
#include "timing/calibration.hpp"
#include "timing/const_prop.hpp"
#include "timing/dta.hpp"
#include "timing/event_sim.hpp"
#include "timing/sta.hpp"
#include "timing/timing_lib.hpp"
#include "timing/vdd_model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/fingerprint.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
