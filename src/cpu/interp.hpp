// Decode-once threaded-dispatch interpreter for the ISS (ROADMAP:
// "threaded-dispatch interpreter" — the next hardware-limit step after the
// zero-fault trial fast path made faulting trials ~100x cheaper than full
// simulation, leaving golden runs and clean-sim trials as the wall-clock
// floor of every campaign).
//
// The idea (classic bytecode-VM technique): lower each fetched memory word
// ONCE into a dense micro-op — operand register indices pre-resolved,
// immediates sign-extended, branch targets pre-computed as absolute byte
// PCs, the r0 write sink pre-applied — and run trials over that stream via
// a kernel table (computed goto under GCC/Clang, a switch elsewhere)
// instead of re-walking decode() + op_info() per retired instruction.
//
// Equality contract: Cpu::run() under CpuDispatch::Threaded is
// bit-identical to CpuDispatch::Legacy in everything observable —
// architectural state, RunResult (cycles included), FiStats, fault-
// injection hook call sequences, and therefore every PointSummary, CSV and
// campaign store key. tests/cpu/test_differential.cpp fuzzes that contract
// with thousands of generated programs per fault model.
//
// The micro-op stream persists across Cpu::reset() with the *same*
// program (content-hashed), so a Monte-Carlo operating point pays decode
// once, not once per trial. Self-modifying stores invalidate per word and
// additionally flag the stream for wholesale invalidation at the next
// reset when a word was re-lowered after a store (the re-lowered entry
// describes the modified byte content, which reset reverts).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace sfi {

struct Program;  // isa/assembler.hpp

/// Execution engine selector for Cpu::run(). Both modes are bit-identical
/// (see the equality contract above); Threaded is the fast default for
/// Monte-Carlo work, Legacy is the reference semantics and the only mode
/// that honours Cpu::set_trace.
enum class CpuDispatch : std::uint8_t {
    Legacy,    ///< per-step decode-cache interpreter (Cpu::step)
    Threaded,  ///< decode-once micro-op stream + kernel table
};

inline const char* cpu_dispatch_name(CpuDispatch dispatch) {
    switch (dispatch) {
        case CpuDispatch::Legacy: return "legacy";
        case CpuDispatch::Threaded: return "threaded";
    }
    return "?";
}

/// Parses a --dispatch flag value ("legacy" / "threaded").
inline std::optional<CpuDispatch> parse_cpu_dispatch(const std::string& name) {
    if (name == "legacy") return CpuDispatch::Legacy;
    if (name == "threaded") return CpuDispatch::Threaded;
    return std::nullopt;
}

/// Micro-op kinds: one kernel per kind. ALU kinds are specialized per
/// ExClass and operand form so each kernel body is a single expression
/// instead of a switch; compare kinds stay generic over the ten l.sf*
/// predicates (MicroOp::op carries the predicate for
/// compare_flag_from_diff). Jump/branch kinds with a statically known
/// self-loop (imm == 0) are lowered to dedicated stop kinds.
enum class UopKind : std::uint8_t {
    Illegal,  ///< word does not decode; must stay kind 0 (zero-init)
    Nop,      ///< plain l.nop / l.nop 0x2 (report)
    NopExit,
    NopKernelBegin,
    NopKernelEnd,
    Movhi,
    J,
    JSelfLoop,  ///< l.j 0 — unconditional jump-to-self (StopReason::SelfLoop)
    Jal,
    Jr,
    Jalr,
    Bf,
    BfSelfLoop,  ///< l.bf 0 — self-loop iff taken
    Bnf,
    BnfSelfLoop,
    Lwz,
    Lbz,
    Lhz,
    Sw,
    Sb,
    Sh,
    AddReg, SubReg, AndReg, OrReg, XorReg, SllReg, SrlReg, SraReg, MulReg,
    AddImm, SubImm, AndImm, OrImm, XorImm, SllImm, SrlImm, SraImm, MulImm,
    CmpReg,  ///< l.sf* register form (flag from compare_flag_from_diff)
    CmpImm,  ///< l.sf*i immediate form
    kCount,
};

inline constexpr std::size_t kUopKindCount =
    static_cast<std::size_t>(UopKind::kCount);

/// Hazard metadata bits (MicroOp::flags): which register operands the
/// instruction reads, pre-resolved from OpInfo so the load-use check in
/// the dispatch loop is two ANDs instead of an op_info() lookup.
inline constexpr std::uint8_t kUopReadsRa = 1u << 0;
inline constexpr std::uint8_t kUopReadsRb = 1u << 1;

/// Index of the r0 write sink in the interpreter's 33-slot register file:
/// writes with rd == 0 are re-pointed here at lowering time, so kernels
/// store unconditionally and slot 0 stays hardwired to zero.
inline constexpr std::uint8_t kUopRegSink = 32;

/// One lowered instruction word. Fixed 20-byte layout, one per memory
/// word (like the legacy decode cache); valid iff gen == InterpState::gen.
struct MicroOp {
    UopKind kind = UopKind::Illegal;
    std::uint8_t rd = 0;     ///< destination, r0 remapped to kUopRegSink
    std::uint8_t ra = 0;     ///< raw source index (0..31)
    std::uint8_t rb = 0;     ///< raw source index (0..31)
    std::uint8_t flags = 0;  ///< kUopReadsRa | kUopReadsRb
    Op op = Op::NOP;         ///< original opcode (ExEvent)
    ExClass cls = ExClass::None;  ///< timing class tag (ExEvent)
    std::uint8_t aux = 0;    ///< CmpKind for compare kinds (pre-resolved)
    std::int32_t imm = 0;         ///< sign-extended immediate / b operand
    std::uint32_t target = 0;     ///< absolute branch target (byte PC)
    std::uint32_t gen = 0;        ///< validity stamp (0 = never valid)
};

/// Lowers one decoded instruction at byte address `pc` into `out`
/// (everything except the validity stamp). Exposed for the lowering-table
/// unit tests; the interpreter calls it through Cpu's lazy/prime paths.
void lower_uop(const Instr& instr, std::uint32_t pc, MicroOp& out);

/// Per-Cpu state of the threaded interpreter: the micro-op stream plus
/// the bookkeeping that decides when it may persist across resets.
struct InterpState {
    std::vector<MicroOp> uops;  ///< one per memory word

    /// Entries are valid iff entry.gen == gen. Starts at 1 (0 is the
    /// permanent "invalid" stamp fresh entries carry); bump_gen() handles
    /// wraparound by wiping every entry back to 0 — exercised by
    /// tests/cpu/test_decode_cache.cpp via the Cpu debug hooks.
    std::uint32_t gen = 1;

    /// Content hash (FNV-1a over entry point + sections) of the program
    /// the stream was lowered against; 0 means "unknown" and forces a
    /// wholesale invalidation at the next reset.
    std::uint64_t program_hash = 0;

    /// True once reset() has synchronized memory with the hashed program;
    /// false after prime_decode() on a not-yet-reset Cpu, which makes
    /// run_threaded() distrust the stream until a reset happens.
    bool synced = false;

    /// Memory::write_generation() value expected if every write since the
    /// last sync went through this Cpu (reset + one bump per executed
    /// store). A mismatch at run entry means some external writer touched
    /// memory behind our back: the stream is invalidated wholesale, which
    /// restores the legacy path's semantics for that (test-only) pattern.
    std::uint64_t expected_write_gen = 0;

    /// A store executed since the last reset. Only relevant combined with
    /// re-lowering: see relower_risk.
    bool store_seen = false;

    /// A word was lowered *after* a store in the current reset epoch. Such
    /// an entry describes post-store byte content; reset() reverts memory
    /// to the pristine program image, so the stream must not survive it.
    bool relower_risk = false;

    /// Inclusive word span holding micro-ops stamped at the current gen
    /// (empty when live_lo > live_hi). The store path consults it to skip
    /// the uop array entirely for data stores — see
    /// Cpu::invalidate_decode().
    std::uint32_t live_lo = ~std::uint32_t{0};
    std::uint32_t live_hi = 0;

    void note_lowered(std::uint32_t word) {
        if (word < live_lo) live_lo = word;
        if (word > live_hi) live_hi = word;
    }

    void bump_gen() {
        if (++gen == 0) {
            for (MicroOp& uop : uops) uop.gen = 0;
            gen = 1;
        }
        live_lo = ~std::uint32_t{0};
        live_hi = 0;
    }
};

/// FNV-1a content hash of a program image (entry + section layout +
/// bytes); the identity test that lets the micro-op stream survive
/// Cpu::reset() with the same program. Never returns 0 (the "unknown"
/// sentinel in InterpState::program_hash).
std::uint64_t hash_program(const Program& program);

}  // namespace sfi
