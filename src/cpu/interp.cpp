// Threaded-dispatch interpreter implementation (see interp.hpp for the
// design and the bit-identity contract against the legacy Cpu::step path).
//
// The dispatch loop is a template over a hook policy so the four hook
// situations compile to four specialized loops:
//
//   NullHookPolicy    — no hook installed; pure architectural simulation.
//   CleanModelPolicy  — FaultModel with can_inject() == false: every EX
//                       result provably latches correctly, so per-op hook
//                       calls collapse into two O(1) batch calls at exit.
//   ModelPolicy       — injecting FaultModel: per-op on_ex_result (the
//                       corruption/RNG stream must match legacy exactly),
//                       cycle accounting batched at exit.
//   GenericHookPolicy — unknown ExFaultHook: the legacy call sequence is
//                       reproduced verbatim (on_cycles at every spend
//                       site, on_ex_result per FI-active ALU op).

#include "cpu/interp.hpp"

#include <cassert>
#include <cstring>
#include <memory>

#include "cpu/cpu.hpp"
#include "fi/models.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "perf/perf.hpp"

// Computed goto (a GNU extension, also supported by Clang) removes the
// bounds check and the shared indirect-branch site a switch would emit.
// The switch fallback is semantically identical and covered in CI by the
// dispatch-equivalence job building with SFI_FORCE_SWITCH_DISPATCH.
#if defined(__GNUC__) && !defined(SFI_FORCE_SWITCH_DISPATCH)
#define SFI_COMPUTED_GOTO 1
#else
#define SFI_COMPUTED_GOTO 0
#endif

namespace sfi {

// The ALU micro-op kinds mirror the ExClass declaration order so lowering
// is base + (class - Add); pin that correspondence.
static_assert(static_cast<int>(UopKind::SubReg) - static_cast<int>(UopKind::AddReg) ==
              static_cast<int>(ExClass::Sub) - static_cast<int>(ExClass::Add));
static_assert(static_cast<int>(UopKind::XorReg) - static_cast<int>(UopKind::AddReg) ==
              static_cast<int>(ExClass::Xor) - static_cast<int>(ExClass::Add));
static_assert(static_cast<int>(UopKind::SraReg) - static_cast<int>(UopKind::AddReg) ==
              static_cast<int>(ExClass::Sra) - static_cast<int>(ExClass::Add));
static_assert(static_cast<int>(UopKind::MulReg) - static_cast<int>(UopKind::AddReg) ==
              static_cast<int>(ExClass::Mul) - static_cast<int>(ExClass::Add));
static_assert(static_cast<int>(UopKind::MulImm) - static_cast<int>(UopKind::AddImm) ==
              static_cast<int>(ExClass::Mul) - static_cast<int>(ExClass::Add));

namespace {

inline void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ULL;
    }
}

inline void fnv_u32(std::uint64_t& h, std::uint32_t value) {
    fnv_bytes(h, &value, sizeof value);
}

}  // namespace

std::uint64_t hash_program(const Program& program) {
    std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
    fnv_u32(h, program.entry);
    for (const auto& section : program.sections) {
        fnv_u32(h, section.addr);
        fnv_u32(h, static_cast<std::uint32_t>(section.bytes.size()));
        fnv_bytes(h, section.bytes.data(), section.bytes.size());
    }
    if (h == 0) h = 14695981039346656037ULL;  // 0 is the "unknown" sentinel
    return h;
}

void lower_uop(const Instr& instr, std::uint32_t pc, MicroOp& out) {
    const OpInfo& info = op_info(instr.op);
    out.rd = instr.rd == 0 ? kUopRegSink : instr.rd;
    out.ra = instr.ra;
    out.rb = instr.rb;
    out.flags = static_cast<std::uint8_t>((info.reads_ra ? kUopReadsRa : 0) |
                                          (info.reads_rb ? kUopReadsRb : 0));
    out.op = instr.op;
    out.cls = info.ex_class;
    out.imm = instr.imm;
    out.target = pc + static_cast<std::uint32_t>(instr.imm) * 4;
    switch (instr.op) {
        case Op::NOP:
            // The kernel-begin marker compares the full immediate (the
            // legacy pre-switch check); exit and kernel-end compare the
            // low 16 bits (the legacy dispatch switch).
            if (instr.imm == kNopKernelBegin) {
                out.kind = UopKind::NopKernelBegin;
                break;
            }
            switch (static_cast<std::uint16_t>(instr.imm)) {
                case kNopExit: out.kind = UopKind::NopExit; break;
                case kNopKernelEnd: out.kind = UopKind::NopKernelEnd; break;
                default: out.kind = UopKind::Nop; break;
            }
            break;
        case Op::MOVHI:
            out.kind = UopKind::Movhi;
            // Pre-shift so the kernel is a plain register store.
            out.imm = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(instr.imm) << 16);
            break;
        case Op::J:
            out.kind = instr.imm == 0 ? UopKind::JSelfLoop : UopKind::J;
            break;
        case Op::JAL:
            out.kind = UopKind::Jal;
            out.rd = 9;  // link register, fixed by the ISA
            break;
        case Op::JR: out.kind = UopKind::Jr; break;
        case Op::JALR: out.kind = UopKind::Jalr; break;
        case Op::BF:
            out.kind = instr.imm == 0 ? UopKind::BfSelfLoop : UopKind::Bf;
            break;
        case Op::BNF:
            out.kind = instr.imm == 0 ? UopKind::BnfSelfLoop : UopKind::Bnf;
            break;
        case Op::LWZ: out.kind = UopKind::Lwz; break;
        case Op::LBZ: out.kind = UopKind::Lbz; break;
        case Op::LHZ: out.kind = UopKind::Lhz; break;
        case Op::SW: out.kind = UopKind::Sw; break;
        case Op::SB: out.kind = UopKind::Sb; break;
        case Op::SH: out.kind = UopKind::Sh; break;
        default: {
            assert(info.ex_class != ExClass::None);
            if (info.sets_flag) {
                out.kind = info.has_imm ? UopKind::CmpImm : UopKind::CmpReg;
                // Resolve the predicate once; the compare kernel evaluates
                // it inline instead of re-deriving it from the opcode.
                out.aux = static_cast<std::uint8_t>(cmp_kind(instr.op));
                break;
            }
            const auto cls_offset = static_cast<std::size_t>(info.ex_class) -
                                    static_cast<std::size_t>(ExClass::Add);
            const auto base = static_cast<std::size_t>(
                info.has_imm ? UopKind::AddImm : UopKind::AddReg);
            out.kind = static_cast<UopKind>(base + cls_offset);
            break;
        }
    }
}

InterpState& Cpu::ensure_interp() {
    if (!interp_) interp_ = std::make_unique<InterpState>();
    InterpState& state = *interp_;
    const std::size_t words = mem_.size() / 4;
    if (state.uops.size() != words) {
        state.uops.assign(words, MicroOp{});
        state.gen = 1;
        state.program_hash = 0;
        state.synced = false;
        state.store_seen = false;
        state.relower_risk = false;
        state.live_lo = ~std::uint32_t{0};
        state.live_hi = 0;
    }
    return state;
}

void Cpu::sync_interp_on_reset(const Program& program,
                               std::uint64_t program_hash) {
    InterpState& state = ensure_interp();
    // The caller (reset) hashes the program once and caches it; trials
    // re-resetting the same program pass the cached value instead of
    // paying an FNV pass over the whole image every reset.
    const std::uint64_t hash =
        program_hash != 0 ? program_hash : hash_program(program);
    // A hash change means a different program image altogether; a
    // re-lowered-after-store entry describes byte content this reset just
    // reverted. Either way the stream cannot be trusted.
    if (state.program_hash != hash || state.relower_risk) state.bump_gen();
    state.program_hash = hash;
    state.synced = true;
    state.store_seen = false;
    state.relower_risk = false;
    state.expected_write_gen = mem_.write_generation();
}

std::size_t Cpu::prime_decode(const Program& program) {
    if (dispatch_ != CpuDispatch::Threaded) return 0;
    InterpState& state = ensure_interp();
    const std::uint64_t hash = hash_program(program);
    if (state.program_hash == hash && !state.relower_risk) return 0;
    state.bump_gen();
    state.program_hash = hash;
    state.store_seen = false;
    state.relower_risk = false;
    // Lowered from the program image, not from memory, so priming is legal
    // before the first reset(). The stream stays untrusted (synced =
    // false) until a reset synchronizes memory with this image.
    state.synced = false;
    std::size_t lowered = 0;
    for (const auto& section : program.sections) {
        if (section.addr % 4 != 0) continue;  // words unreachable as PCs
        const std::size_t whole_words = section.bytes.size() / 4 * 4;
        for (std::size_t off = 0; off < whole_words; off += 4) {
            const auto addr = section.addr + static_cast<std::uint32_t>(off);
            const std::uint32_t index = addr / 4;
            if (index >= state.uops.size()) break;
            std::uint32_t word;
            std::memcpy(&word, section.bytes.data() + off, sizeof word);
            MicroOp& slot = state.uops[index];
            if (const auto decoded = decode(word)) {
                lower_uop(*decoded, addr, slot);
                slot.gen = state.gen;
                state.note_lowered(index);
            } else {
                // Undecodable words are never stamped valid — the dispatch
                // fast path relies on "gen match implies dispatchable" and
                // routes them through the slow path, which stops.
                slot.kind = UopKind::Illegal;
            }
            ++lowered;
        }
    }
    return lowered;
}

std::uint32_t Cpu::debug_interp_generation() const {
    return interp_ ? interp_->gen : 0;
}

void Cpu::debug_set_interp_generation(std::uint32_t gen) {
    ensure_interp().gen = gen;
}

namespace {

struct NullHookPolicy {
    static constexpr bool kWantsEx = false;
    static constexpr bool kNullSpend = true;
    static void spend(std::uint64_t, bool) {}
    static void clean_alu() {}
    static void window_begin() {}
    static void window_end() {}
    static void finish(std::uint64_t) {}
};

// can_inject() == false guarantees corrupt() returns `correct` for every
// possible draw (the same guarantee behind the zero-fault trial fast
// path), so on_ex_result reduces to alu_ops accounting and on_cycle to
// fi_cycles accounting — both pure accumulations, batched here into two
// calls at run exit. The model's RNG is not advanced where legacy's
// corrupt() would have drawn noise; that is unobservable because every
// Monte-Carlo trial reseeds the model before running.
struct CleanModelPolicy {
    FaultModel* model;
    // ALU ops are counted unconditionally (no per-op `if (fi)` branch);
    // the in-window share is folded at the same FI transitions as the
    // kernel cycle counters (see run_threaded_impl).
    std::uint64_t alu_total = 0;
    std::uint64_t alu_base = 0;
    std::uint64_t clean_ops = 0;
    static constexpr bool kWantsEx = false;
    static constexpr bool kNullSpend = true;
    static void spend(std::uint64_t, bool) {}
    void clean_alu() { ++alu_total; }
    void window_begin() { alu_base = alu_total; }
    void window_end() { clean_ops += alu_total - alu_base; }
    void finish(std::uint64_t kernel_cycles) {
        model->on_cycles(kernel_cycles, true);
        model->count_clean_ops(clean_ops);
    }
};

struct ModelPolicy {
    FaultModel* model;
    static constexpr bool kWantsEx = true;
    static constexpr bool kNullSpend = true;
    static void spend(std::uint64_t, bool) {}
    static void window_begin() {}
    static void window_end() {}
    std::uint32_t ex(const ExEvent& ev, std::uint32_t correct) {
        return model->on_ex_result(ev, correct);
    }
    void finish(std::uint64_t kernel_cycles) {
        model->on_cycles(kernel_cycles, true);
    }
};

struct GenericHookPolicy {
    ExFaultHook* hook;
    static constexpr bool kWantsEx = true;
    static constexpr bool kNullSpend = false;  // per-instruction on_cycles
    void spend(std::uint64_t n, bool fi) { hook->on_cycles(n, fi); }
    static void window_begin() {}
    static void window_end() {}
    std::uint32_t ex(const ExEvent& ev, std::uint32_t correct) {
        return hook->on_ex_result(ev, correct);
    }
    static void finish(std::uint64_t) {}
};

}  // namespace

// Dispatch-loop helper macros. They reference the locals of
// run_threaded_impl by name and are #undef'd right after it.

// Kernel-window (FI) cycle/instruction accounting is *folded*, not
// accumulated: while fi is set, `kcyc_base`/`kin_base` remember the
// window entry values and every exit from the window (kernel-end marker,
// run exit) adds the delta. That keeps `if (fi)` bookkeeping out of the
// per-instruction path entirely.
#define SFI_SPEND(n)                       \
    do {                                   \
        const std::uint64_t spend_n = (n); \
        cycles += spend_n;                 \
        policy.spend(spend_n, fi);         \
    } while (0)

#define SFI_STOP(reason)        \
    do {                        \
        stop_reason = (reason); \
        goto done;              \
    } while (0)

#define SFI_RETIRE_LINEAR() \
    do {                    \
        ++instructions;     \
        pc += 4;            \
        SFI_NEXT();         \
    } while (0)

#define SFI_RETIRE_TAKEN(t) \
    do {                    \
        ++instructions;     \
        SFI_SPEND(flush);   \
        pc = (t);           \
        SFI_NEXT();         \
    } while (0)

// Legacy only consults the hook for ALU results inside the FI window;
// outside it (or with a provably clean model) the correct result stands.
#define SFI_EX(result_var, a_var, b_var)        \
    do {                                        \
        if constexpr (Policy::kWantsEx) {       \
            if (fi) {                           \
                ExEvent ev;                     \
                ev.op = up->op;                 \
                ev.cls = up->cls;               \
                ev.operand_a = (a_var);         \
                ev.operand_b = (b_var);         \
                ev.prev_result = prev;          \
                ev.cycle = cycles;              \
                ev.pc = pc;                     \
                ev.window = static_cast<std::uint32_t>(fi_windows); \
                result_var = policy.ex(ev, result_var); \
            }                                   \
        } else {                                \
            policy.clean_alu();                 \
        }                                       \
    } while (0)

#if SFI_COMPUTED_GOTO
#define SFI_KERNEL(name) K_##name:
// Replicated dispatch: every retire site carries its own fetch + indirect
// jump, so the branch predictor keys each jump on the *retiring* kernel
// and learns per-pair successor patterns — the actual win of threaded
// code over a switch, whose single shared dispatch site it otherwise
// degenerates into. Slow cases (lazy lowering) bail to the shared `top:`
// copy, which keeps these expansions small.
// `ld_dest >= 0` only ever holds at the dispatch immediately following a
// load kernel's retirement (or at run entry, which routes through `top:`)
// — every other kernel retires through this hazard-free fast form.
#define SFI_NEXT()                                                    \
    do {                                                              \
        if (cycles >= max_cycles) SFI_STOP(StopReason::Watchdog);     \
        if ((pc & 3u) != 0u || pc >= mem_bytes) {                     \
            fault_addr_ = pc;                                         \
            SFI_STOP(StopReason::FetchFault);                         \
        }                                                             \
        up = &uops[pc / 4];                                           \
        /* Undecodable words are never stamped valid (see `top:`), so  \
           a gen match implies a dispatchable kind: the slow path owns \
           both lazy lowering and the IllegalInstr stop. */           \
        if (up->gen != gen) goto top;                                 \
        if constexpr (!Policy::kNullSpend) bubbles = 1;               \
        goto* kDispatchTable[static_cast<std::size_t>(up->kind)];     \
    } while (0)

// Load retirement: identical, plus the load-use hazard check against the
// instruction being dispatched.
#define SFI_NEXT_AFTER_LOAD()                                         \
    do {                                                              \
        if (cycles >= max_cycles) SFI_STOP(StopReason::Watchdog);     \
        if ((pc & 3u) != 0u || pc >= mem_bytes) {                     \
            fault_addr_ = pc;                                         \
            SFI_STOP(StopReason::FetchFault);                         \
        }                                                             \
        up = &uops[pc / 4];                                           \
        if (up->gen != gen) goto top;                                 \
        if constexpr (!Policy::kNullSpend) bubbles = 1;               \
        if (((up->flags & kUopReadsRa) && up->ra == ld_dest) ||       \
            ((up->flags & kUopReadsRb) && up->rb == ld_dest)) {       \
            /* Same cycle totals either way; only a per-instruction    \
               spend() observer needs the stall folded into bubbles. */\
            if constexpr (Policy::kNullSpend) cycles += stall;        \
            else bubbles += stall;                                    \
        }                                                             \
        ld_dest = -1;                                                 \
        goto* kDispatchTable[static_cast<std::size_t>(up->kind)];     \
    } while (0)
#else
#define SFI_KERNEL(name) case UopKind::name:
// The switch fallback has exactly one dispatch site by construction;
// `top:` carries the full prologue including the hazard check.
#define SFI_NEXT() goto top
#define SFI_NEXT_AFTER_LOAD() goto top
#endif

#define SFI_RETIRE_LINEAR_LOAD() \
    do {                         \
        ++instructions;          \
        pc += 4;                 \
        SFI_NEXT_AFTER_LOAD();   \
    } while (0)

#define SFI_LOAD_KERNEL(name, width, read_expr)                           \
    SFI_KERNEL(name) {                                                    \
        SFI_SPEND(bubbles);                                               \
        const std::uint32_t addr =                                        \
            r[up->ra] + static_cast<std::uint32_t>(up->imm);                  \
        if (!mem.access_ok(addr, width)) {                                \
            fault_addr_ = addr;                                           \
            SFI_STOP(StopReason::MemFault);                               \
        }                                                                 \
        r[up->rd] = (read_expr);                                            \
        ld_dest = up->rd;                                                   \
        SFI_RETIRE_LINEAR_LOAD();                                         \
    }

#define SFI_STORE_KERNEL(name, width, write_stmt)                         \
    SFI_KERNEL(name) {                                                    \
        SFI_SPEND(bubbles);                                               \
        const std::uint32_t addr =                                        \
            r[up->ra] + static_cast<std::uint32_t>(up->imm);                  \
        if (!mem.access_ok(addr, width)) {                                \
            fault_addr_ = addr;                                           \
            SFI_STOP(StopReason::MemFault);                               \
        }                                                                 \
        write_stmt;                                                       \
        invalidate_decode(addr);                                          \
        SFI_RETIRE_LINEAR();                                              \
    }

#define SFI_ALU_KERNEL(name, form, b_expr, expr) \
    SFI_KERNEL(name##form) {                     \
        SFI_SPEND(bubbles);                      \
        const std::uint32_t a = r[up->ra];         \
        const std::uint32_t b = (b_expr);        \
        std::uint32_t result = (expr);           \
        SFI_EX(result, a, b);                    \
        prev = result;                           \
        r[up->rd] = result;                        \
        SFI_RETIRE_LINEAR();                     \
    }

#define SFI_ALU_KERNEL_PAIR(name, expr)                                \
    SFI_ALU_KERNEL(name, Reg, r[up->rb], expr)                           \
    SFI_ALU_KERNEL(name, Imm, static_cast<std::uint32_t>(up->imm), expr)

#define SFI_CMP_KERNEL(form, b_expr)                         \
    SFI_KERNEL(Cmp##form) {                                  \
        SFI_SPEND(bubbles);                                  \
        const std::uint32_t a = r[up->ra];                     \
        const std::uint32_t b = (b_expr);                    \
        std::uint32_t result = a - b; /* ExClass::Cmp */     \
        SFI_EX(result, a, b);                                \
        prev = result;                                       \
        flag = compare_flag_from_diff_kind(                    \
            static_cast<CmpKind>(up->aux), a, b, result);      \
        SFI_RETIRE_LINEAR();                                 \
    }

#if SFI_COMPUTED_GOTO
// &&label / goto* are GNU extensions; -Wpedantic (werror CI job) and
// Clang's dedicated diagnostic must not reject them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
#ifdef __clang__
#pragma clang diagnostic ignored "-Wgnu-label-as-value"
#endif
#endif

template <typename Policy>
RunResult Cpu::run_threaded_impl(std::uint64_t max_cycles, Policy policy) {
    InterpState& state = *interp_;  // run_threaded() ensured it

#if SFI_COMPUTED_GOTO
    // Order must match UopKind exactly.
    static const void* const kDispatchTable[] = {
        &&K_Illegal, &&K_Nop, &&K_NopExit, &&K_NopKernelBegin,
        &&K_NopKernelEnd, &&K_Movhi, &&K_J, &&K_JSelfLoop, &&K_Jal, &&K_Jr,
        &&K_Jalr, &&K_Bf, &&K_BfSelfLoop, &&K_Bnf, &&K_BnfSelfLoop, &&K_Lwz,
        &&K_Lbz, &&K_Lhz, &&K_Sw, &&K_Sb, &&K_Sh,
        &&K_AddReg, &&K_SubReg, &&K_AndReg, &&K_OrReg, &&K_XorReg,
        &&K_SllReg, &&K_SrlReg, &&K_SraReg, &&K_MulReg,
        &&K_AddImm, &&K_SubImm, &&K_AndImm, &&K_OrImm, &&K_XorImm,
        &&K_SllImm, &&K_SrlImm, &&K_SraImm, &&K_MulImm,
        &&K_CmpReg, &&K_CmpImm,
    };
    static_assert(sizeof(kDispatchTable) / sizeof(kDispatchTable[0]) ==
                  kUopKindCount);
#endif

    // Local mirrors of the architectural state: the dispatch loop runs on
    // locals and every exit path syncs them back at `done:`. Slot 32 of
    // the register file is the r0 write sink (see kUopRegSink).
    std::uint32_t r[33];
    std::memcpy(r, regs_.data(), sizeof(std::uint32_t) * 32);
    r[kUopRegSink] = 0;
    std::uint32_t pc = pc_;
    bool flag = flag_;
    std::uint32_t prev = prev_ex_result_;
    bool fi = fi_active_;
    std::uint64_t fi_windows = fi_windows_;
    std::uint64_t cycles = cycles_;
    std::uint64_t instructions = instructions_;
    std::uint64_t kcycles = kernel_cycles_;
    std::uint64_t kinstr = kernel_instructions_;
    const std::uint64_t kcycles_at_entry = kcycles;
    // FI-window fold bases (see the SFI_SPEND comment): meaningful only
    // while `fi` is set. A run can enter mid-window (a watchdog stop can
    // split a window across run() calls), so they are armed here too.
    std::uint64_t kcyc_base = cycles;
    std::uint64_t kin_base = instructions;

    // Load-use hazard state: destination slot of the previous retired
    // instruction iff it was a load, else -1. A load to r0 maps to the
    // sink slot, which can never match a raw source index — exactly the
    // legacy `last_load_dest_ != 0` guard.
    int ld_dest = -1;
    if (last_was_load_)
        ld_dest = last_load_dest_ == 0 ? kUopRegSink
                                       : static_cast<int>(last_load_dest_);

    const std::uint64_t stall = timing_.load_use_stall;
    const std::uint64_t flush = timing_.taken_branch_flush;
    const std::uint32_t mem_words =
        static_cast<std::uint32_t>(state.uops.size());
    const std::uint32_t mem_bytes = mem_words * 4;
    const std::uint32_t gen = state.gen;
    MicroOp* const uops = state.uops.data();
    Memory& mem = mem_;

    std::uint64_t lazy_lowered = 0;
    StopReason stop_reason = StopReason::Halted;
    // Pointer into the uop stream: kernels only read it, and a store
    // kernel invalidating a slot touches nothing but its gen stamp, which
    // no kernel reads after dispatch — so no defensive copy is needed.
    const MicroOp* up = nullptr;
    // Constant 1 for policies with a no-op spend() (the stall premium goes
    // straight to `cycles` at dispatch); per-instruction otherwise.
    std::uint64_t bubbles = 1;

top:
    if (cycles >= max_cycles) SFI_STOP(StopReason::Watchdog);
    if ((pc & 3u) != 0u || pc >= mem_bytes) {
        fault_addr_ = pc;
        SFI_STOP(StopReason::FetchFault);
    }
    {
        MicroOp& slot = uops[pc / 4];
        if (slot.gen != gen) {
            if (const auto decoded = decode(mem.read_u32_unchecked(pc))) {
                lower_uop(*decoded, pc, slot);
            } else {
                slot.kind = UopKind::Illegal;
            }
            ++lazy_lowered;
            // Invariant the dispatch fast path relies on: an undecodable
            // word is never stamped valid, so every visit stops here —
            // pre-dispatch like the legacy fetch path, leaving the hazard
            // state untouched by a faulting fetch.
            if (slot.kind == UopKind::Illegal) {
                fault_addr_ = pc;
                SFI_STOP(StopReason::IllegalInstr);
            }
            slot.gen = gen;
            state.note_lowered(pc / 4);
            // Lowered from post-store memory: the entry must not survive
            // the next reset (which reverts to the pristine image).
            if (state.store_seen) state.relower_risk = true;
        } else if (slot.kind == UopKind::Illegal) {
            // Reachable only via the entry dispatch (the in-loop fast path
            // bails to the lowering branch above before this can match):
            // a stale-but-matching stamp cannot occur, but a prime_decode
            // stream predating this invariant could; stop identically.
            fault_addr_ = pc;
            SFI_STOP(StopReason::IllegalInstr);
        }
        up = &slot;
    }
    if constexpr (!Policy::kNullSpend) bubbles = 1;
    if (ld_dest >= 0) {
        if (((up->flags & kUopReadsRa) && up->ra == ld_dest) ||
            ((up->flags & kUopReadsRb) && up->rb == ld_dest)) {
            if constexpr (Policy::kNullSpend) cycles += stall;
            else bubbles += stall;
        }
        ld_dest = -1;
    }

#if SFI_COMPUTED_GOTO
    goto* kDispatchTable[static_cast<std::size_t>(up->kind)];
#else
    switch (up->kind) {
#endif

    SFI_KERNEL(Illegal) {
        // Unreachable: the prologue stops on Illegal before dispatch.
        fault_addr_ = pc;
        SFI_STOP(StopReason::IllegalInstr);
    }

    SFI_KERNEL(Nop) {
        SFI_SPEND(bubbles);
        SFI_RETIRE_LINEAR();
    }

    SFI_KERNEL(NopExit) {
        SFI_SPEND(bubbles);
        exit_code_ = r[3];
        ++instructions;  // before `done:` folds the window: counts inside
        SFI_STOP(StopReason::Halted);
    }

    SFI_KERNEL(NopKernelBegin) {
        if (!fi) {  // duplicate begin markers are no-ops, like legacy
            fi = true;
            ++fi_windows;
            // Bases precede the spend and the retirement: the begin
            // marker's cycle and instruction both count inside the window.
            kcyc_base = cycles;
            kin_base = instructions;
            policy.window_begin();
        }
        SFI_SPEND(bubbles);
        SFI_RETIRE_LINEAR();
    }

    SFI_KERNEL(NopKernelEnd) {
        SFI_SPEND(bubbles);
        if (fi) {
            fi = false;
            // Folded after the spend (the end marker's cycle counts
            // inside) but before the retirement below (its instruction
            // does not) — exactly the legacy accounting order.
            kcycles += cycles - kcyc_base;
            kinstr += instructions - kin_base;
            policy.window_end();
        }
        SFI_RETIRE_LINEAR();
    }

    SFI_KERNEL(Movhi) {
        SFI_SPEND(bubbles);
        r[up->rd] = static_cast<std::uint32_t>(up->imm);  // pre-shifted
        SFI_RETIRE_LINEAR();
    }

    SFI_KERNEL(J) {
        SFI_SPEND(bubbles);
        SFI_RETIRE_TAKEN(up->target);
    }

    SFI_KERNEL(JSelfLoop) {
        SFI_SPEND(bubbles);
        SFI_STOP(StopReason::SelfLoop);  // no retirement, like legacy
    }

    SFI_KERNEL(Jal) {
        SFI_SPEND(bubbles);
        r[up->rd] = pc + 4;  // rd lowered to the link register
        SFI_RETIRE_TAKEN(up->target);
    }

    SFI_KERNEL(Jr) {
        SFI_SPEND(bubbles);
        const std::uint32_t target = r[up->rb];
        if (target == pc) SFI_STOP(StopReason::SelfLoop);
        SFI_RETIRE_TAKEN(target);
    }

    SFI_KERNEL(Jalr) {
        SFI_SPEND(bubbles);
        r[9] = pc + 4;  // link written before rb is read (legacy order)
        const std::uint32_t target = r[up->rb];
        if (target == pc) SFI_STOP(StopReason::SelfLoop);
        SFI_RETIRE_TAKEN(target);
    }

    SFI_KERNEL(Bf) {
        SFI_SPEND(bubbles);
        if (flag) SFI_RETIRE_TAKEN(up->target);
        SFI_RETIRE_LINEAR();
    }

    SFI_KERNEL(BfSelfLoop) {
        SFI_SPEND(bubbles);
        if (flag) SFI_STOP(StopReason::SelfLoop);
        SFI_RETIRE_LINEAR();
    }

    SFI_KERNEL(Bnf) {
        SFI_SPEND(bubbles);
        if (!flag) SFI_RETIRE_TAKEN(up->target);
        SFI_RETIRE_LINEAR();
    }

    SFI_KERNEL(BnfSelfLoop) {
        SFI_SPEND(bubbles);
        if (!flag) SFI_STOP(StopReason::SelfLoop);
        SFI_RETIRE_LINEAR();
    }

    SFI_LOAD_KERNEL(Lwz, 4, mem.read_u32_unchecked(addr))
    SFI_LOAD_KERNEL(Lbz, 1, mem.read_u8_unchecked(addr))
    SFI_LOAD_KERNEL(Lhz, 2, mem.read_u16_unchecked(addr))

    SFI_STORE_KERNEL(Sw, 4, mem.write_u32_unchecked(addr, r[up->rb]))
    SFI_STORE_KERNEL(Sb, 1,
                     mem.write_u8_unchecked(
                         addr, static_cast<std::uint8_t>(r[up->rb])))
    SFI_STORE_KERNEL(Sh, 2,
                     mem.write_u16_unchecked(
                         addr, static_cast<std::uint16_t>(r[up->rb])))

    SFI_ALU_KERNEL_PAIR(Add, a + b)
    SFI_ALU_KERNEL_PAIR(Sub, a - b)
    SFI_ALU_KERNEL_PAIR(And, a & b)
    SFI_ALU_KERNEL_PAIR(Or, a | b)
    SFI_ALU_KERNEL_PAIR(Xor, a ^ b)
    SFI_ALU_KERNEL_PAIR(Sll, a << (b & 31u))
    SFI_ALU_KERNEL_PAIR(Srl, a >> (b & 31u))
    SFI_ALU_KERNEL_PAIR(
        Sra, static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                        (b & 31u)))
    SFI_ALU_KERNEL_PAIR(Mul, a * b)

    SFI_CMP_KERNEL(Reg, r[up->rb])
    SFI_CMP_KERNEL(Imm, static_cast<std::uint32_t>(up->imm))

#if !SFI_COMPUTED_GOTO
    default:
        assert(false && "unlowered micro-op kind");
        fault_addr_ = pc;
        SFI_STOP(StopReason::IllegalInstr);
    }
#endif

done:
    // Fold the open FI window (runs that stop mid-window resume it on the
    // next run() call via the entry-armed bases).
    if (fi) {
        kcycles += cycles - kcyc_base;
        kinstr += instructions - kin_base;
        policy.window_end();
    }
    std::memcpy(regs_.data(), r, sizeof(std::uint32_t) * 32);
    pc_ = pc;
    flag_ = flag;
    prev_ex_result_ = prev;
    fi_active_ = fi;
    fi_windows_ = fi_windows;
    cycles_ = cycles;
    instructions_ = instructions;
    kernel_cycles_ = kcycles;
    kernel_instructions_ = kinstr;
    last_was_load_ = ld_dest >= 0;
    last_load_dest_ =
        ld_dest < 0 || ld_dest == kUopRegSink
            ? 0
            : static_cast<std::uint8_t>(ld_dest);

    policy.finish(kcycles - kcycles_at_entry);

    // Lazy re-lowering (store-to-code, unprimed streams) is charged by
    // item count; its wall time is interleaved with execution and not
    // separable without per-word clock reads, so priming carries the
    // measured decode seconds.
    if (lazy_lowered != 0 && profile_ != nullptr)
        profile_->add(perf::Phase::Decode, 0.0, lazy_lowered);

    RunResult result;
    result.stop = stop_reason;
    result.exit_code = exit_code_;
    result.cycles = cycles_;
    result.instructions = instructions_;
    result.kernel_cycles = kernel_cycles_;
    result.kernel_instructions = kernel_instructions_;
    result.fault_addr = fault_addr_;
    return result;
}

#if SFI_COMPUTED_GOTO
#pragma GCC diagnostic pop
#endif

#undef SFI_SPEND
#undef SFI_STOP
#undef SFI_RETIRE_LINEAR
#undef SFI_RETIRE_TAKEN
#undef SFI_EX
#undef SFI_KERNEL
#undef SFI_NEXT
#undef SFI_NEXT_AFTER_LOAD
#undef SFI_RETIRE_LINEAR_LOAD
#undef SFI_LOAD_KERNEL
#undef SFI_STORE_KERNEL
#undef SFI_ALU_KERNEL
#undef SFI_ALU_KERNEL_PAIR
#undef SFI_CMP_KERNEL

RunResult Cpu::run_threaded(std::uint64_t max_cycles) {
    if (max_cycles == 0) max_cycles = 100'000'000ULL;
    InterpState& state = ensure_interp();
    // The stream is only trustworthy when (a) a reset() synchronized
    // memory with the hashed program image and (b) every write since then
    // went through this Cpu (reset + one write-generation tick per
    // executed store). Anything else — priming without a reset, an
    // external Memory::write_* from test code — invalidates wholesale;
    // entries are then re-lowered lazily from current memory, which is
    // exactly what the legacy decode cache would have read.
    if (!state.synced || state.expected_write_gen != mem_.write_generation()) {
        state.bump_gen();
        state.program_hash = 0;
        state.synced = true;
        state.store_seen = false;
        state.relower_risk = false;
        state.expected_write_gen = mem_.write_generation();
    }

    if (hook_ == nullptr)
        return run_threaded_impl(max_cycles, NullHookPolicy{});
    if (auto* model = dynamic_cast<FaultModel*>(hook_)) {
        if (!model->can_inject())
            return run_threaded_impl(max_cycles, CleanModelPolicy{model});
        return run_threaded_impl(max_cycles, ModelPolicy{model});
    }
    return run_threaded_impl(max_cycles, GenericHookPolicy{hook_});
}

}  // namespace sfi
