#include "cpu/pipeline.hpp"

#include <sstream>

#include "isa/encoding.hpp"

namespace sfi {

PipelineCpu::PipelineCpu(Memory& memory) : mem_(memory) {}

void PipelineCpu::reset(const Program& program) {
    mem_.clear();
    mem_.load(program);
    regs_.fill(0);
    flag_ = false;
    prev_ex_result_ = 0;
    fetch_pc_ = program.entry;
    if1_ = If1Latch{};
    if2_ = If2Latch{};
    id_ = IdLatch{};
    ex_ = IdLatch{};
    mem_stage_ = ExOut{};
    wb_ = MemOut{};
    cycles_ = instructions_ = kernel_cycles_ = kernel_instructions_ = 0;
    fi_active_ = false;
    exit_code_ = 0;
    fault_addr_ = 0;
}

std::uint32_t PipelineCpu::read_operand(std::uint8_t reg,
                                        const MemOut& forwarding) const {
    if (reg == 0) return 0;  // r0 hardwired
    if (forwarding.valid && forwarding.writes && forwarding.dest == reg)
        return forwarding.value;  // bypass from the instruction one ahead
    return regs_[reg];
}

std::optional<StopReason> PipelineCpu::exec_ex(const IdLatch& id, ExOut& out,
                                               bool& flush,
                                               std::uint32_t& redirect) {
    out = ExOut{};
    flush = false;
    if (!id.valid) return std::nullopt;
    if (id.poison == Poison::Fetch) {
        fault_addr_ = id.pc;
        return StopReason::FetchFault;
    }
    if (id.poison == Poison::Illegal) {
        fault_addr_ = id.pc;
        return StopReason::IllegalInstr;
    }
    const Instr& instr = id.instr;
    const OpInfo& info = op_info(instr.op);
    // `wb_` at this point holds the value of the instruction one ahead
    // (its MEM stage completed earlier in this cycle).
    const MemOut& fwd = wb_;

    out.valid = true;
    out.instr = instr;

    switch (instr.op) {
        case Op::NOP:
            switch (static_cast<std::uint16_t>(instr.imm)) {
                case kNopExit:
                    exit_code_ = read_operand(3, fwd);
                    ++instructions_;
                    if (fi_active_) ++kernel_instructions_;
                    return StopReason::Halted;
                case kNopKernelBegin: fi_active_ = true; break;
                case kNopKernelEnd: fi_active_ = false; break;
                default: break;
            }
            break;
        case Op::MOVHI:
            out.dest = instr.rd;
            out.writes = true;
            out.result = static_cast<std::uint32_t>(instr.imm) << 16;
            break;
        case Op::J:
        case Op::JAL:
            if (instr.op == Op::J && instr.imm == 0) return StopReason::SelfLoop;
            if (instr.op == Op::JAL) {
                out.dest = 9;
                out.writes = true;
                out.result = id.pc + 4;
            }
            flush = true;
            redirect = id.pc + static_cast<std::uint32_t>(instr.imm) * 4;
            break;
        case Op::JR:
        case Op::JALR: {
            const std::uint32_t target = read_operand(instr.rb, fwd);
            if (target == id.pc) return StopReason::SelfLoop;
            if (instr.op == Op::JALR) {
                out.dest = 9;
                out.writes = true;
                out.result = id.pc + 4;
            }
            flush = true;
            redirect = target;
            break;
        }
        case Op::BF:
        case Op::BNF: {
            const bool cond = (instr.op == Op::BF) ? flag_ : !flag_;
            if (cond) {
                if (instr.imm == 0) return StopReason::SelfLoop;
                flush = true;
                redirect = id.pc + static_cast<std::uint32_t>(instr.imm) * 4;
            }
            break;
        }
        case Op::LWZ:
        case Op::LBZ:
        case Op::LHZ:
            out.dest = instr.rd;
            out.writes = true;
            out.mem_addr =
                read_operand(instr.ra, fwd) + static_cast<std::uint32_t>(instr.imm);
            break;
        case Op::SW:
        case Op::SB:
        case Op::SH:
            out.mem_addr =
                read_operand(instr.ra, fwd) + static_cast<std::uint32_t>(instr.imm);
            out.store_data = read_operand(instr.rb, fwd);
            break;
        default: {
            // ALU-class instruction.
            const std::uint32_t a = read_operand(instr.ra, fwd);
            const std::uint32_t b = info.has_imm
                                        ? static_cast<std::uint32_t>(instr.imm)
                                        : read_operand(instr.rb, fwd);
            const ExClass cls = info.ex_class;
            const std::uint32_t correct = alu_result(cls, a, b);
            std::uint32_t result = correct;
            if (hook_ && fi_active_) {
                ExEvent ev;
                ev.op = instr.op;
                ev.cls = cls;
                ev.operand_a = a;
                ev.operand_b = b;
                ev.prev_result = prev_ex_result_;
                ev.cycle = cycles_;
                result = hook_->on_ex_result(ev, correct);
            }
            prev_ex_result_ = result;
            if (info.sets_flag) {
                flag_ = compare_flag_from_diff(instr.op, a, b, result);
            } else {
                out.dest = instr.rd;
                out.writes = true;
                out.result = result;
            }
            break;
        }
    }
    ++instructions_;
    if (fi_active_) ++kernel_instructions_;
    return std::nullopt;
}

std::optional<StopReason> PipelineCpu::step_cycle() {
    ++cycles_;
    if (fi_active_) ++kernel_cycles_;
    if (hook_) hook_->on_cycle(fi_active_);

    // ---- WB: commit the oldest instruction's value.
    if (wb_.valid && wb_.writes && wb_.dest != 0) regs_[wb_.dest] = wb_.value;

    // ---- MEM: data-memory access of the instruction after it.
    MemOut new_wb;
    if (mem_stage_.valid) {
        const Instr& instr = mem_stage_.instr;
        new_wb.valid = true;
        new_wb.dest = mem_stage_.dest;
        new_wb.writes = mem_stage_.writes;
        new_wb.value = mem_stage_.result;
        try {
            switch (instr.op) {
                case Op::LWZ: new_wb.value = mem_.read_u32(mem_stage_.mem_addr); break;
                case Op::LHZ: new_wb.value = mem_.read_u16(mem_stage_.mem_addr); break;
                case Op::LBZ: new_wb.value = mem_.read_u8(mem_stage_.mem_addr); break;
                case Op::SW:
                    mem_.write_u32(mem_stage_.mem_addr, mem_stage_.store_data);
                    break;
                case Op::SH:
                    mem_.write_u16(mem_stage_.mem_addr,
                                   static_cast<std::uint16_t>(mem_stage_.store_data));
                    break;
                case Op::SB:
                    mem_.write_u8(mem_stage_.mem_addr,
                                  static_cast<std::uint8_t>(mem_stage_.store_data));
                    break;
                default: break;
            }
        } catch (const MemFault& fault) {
            fault_addr_ = fault.addr;
            return StopReason::MemFault;
        }
    }
    wb_ = new_wb;

    // ---- EX: execute, resolve branches, run the FI hook.
    ExOut new_mem;
    bool flush = false;
    std::uint32_t redirect = 0;
    if (const auto stop = exec_ex(ex_, new_mem, flush, redirect)) {
        // On a clean halt the older instruction still in flight (its MEM
        // stage completed this cycle) must retire before the core stops;
        // faults abandon the pipeline as-is.
        if (*stop == StopReason::Halted && wb_.valid && wb_.writes &&
            wb_.dest != 0)
            regs_[wb_.dest] = wb_.value;
        return stop;
    }

    // ---- hazard: load in EX feeding the instruction waiting in ID.
    const bool ex_is_load = ex_.valid && ex_.poison == Poison::None &&
                            op_info(ex_.instr.op).is_load;
    bool stall = false;
    if (ex_is_load && ex_.instr.rd != 0 && id_.valid &&
        id_.poison == Poison::None) {
        const OpInfo& info = op_info(id_.instr.op);
        stall = (info.reads_ra && id_.instr.ra == ex_.instr.rd) ||
                (info.reads_rb && id_.instr.rb == ex_.instr.rd);
    }

    mem_stage_ = new_mem;

    if (flush) {
        // Taken branch resolved in EX: squash the three younger stages and
        // present the redirect PC to the fetch stage in the same cycle
        // (3 bubble cycles before the target reaches EX, as in the fast
        // ISS's timing model).
        ex_ = IdLatch{};
        id_ = IdLatch{};
        if2_ = If2Latch{};
        if1_ = If1Latch{true, redirect};
        fetch_pc_ = redirect + 4;
        return std::nullopt;
    }
    if (stall) {
        ex_ = IdLatch{};  // bubble; ID/IF latches and fetch PC hold
        return std::nullopt;
    }

    // ---- advance ID -> EX, IF2 -> ID, IF1 -> IF2, fetch -> IF1.
    ex_ = id_;
    id_ = IdLatch{};
    if (if2_.valid) {
        id_.valid = true;
        id_.pc = if2_.pc;
        id_.poison = if2_.poison;
        if (if2_.poison == Poison::None) {
            const auto decoded = decode(if2_.word);
            if (decoded)
                id_.instr = *decoded;
            else
                id_.poison = Poison::Illegal;
        }
    }
    if2_ = If2Latch{};
    if (if1_.valid) {
        if2_.valid = true;
        if2_.pc = if1_.pc;
        if (if1_.pc % 4 != 0 || if1_.pc + 4 > mem_.size())
            if2_.poison = Poison::Fetch;
        else
            if2_.word = mem_.read_u32(if1_.pc);
    }
    if1_ = If1Latch{true, fetch_pc_};
    fetch_pc_ += 4;
    return std::nullopt;
}

RunResult PipelineCpu::run(std::uint64_t max_cycles) {
    if (max_cycles == 0) max_cycles = 100'000'000ULL;
    std::optional<StopReason> stop;
    while (!stop) {
        if (cycles_ >= max_cycles) {
            stop = StopReason::Watchdog;
            break;
        }
        stop = step_cycle();
    }
    RunResult result;
    result.stop = *stop;
    result.exit_code = exit_code_;
    result.cycles = cycles_;
    result.instructions = instructions_;
    result.kernel_cycles = kernel_cycles_;
    result.kernel_instructions = kernel_instructions_;
    result.fault_addr = fault_addr_;
    return result;
}

std::string PipelineCpu::stage_snapshot() const {
    std::ostringstream os;
    auto hex = [](std::uint32_t v) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "0x%x", v);
        return std::string(buf);
    };
    os << "IF1:" << (if1_.valid ? hex(if1_.pc) : "-");
    os << " IF2:" << (if2_.valid ? hex(if2_.pc) : "-");
    os << " ID:" << (id_.valid ? (id_.poison == Poison::None
                                      ? disassemble(id_.instr)
                                      : std::string("<poison>"))
                               : "-");
    os << " EX:" << (ex_.valid ? (ex_.poison == Poison::None
                                      ? disassemble(ex_.instr)
                                      : std::string("<poison>"))
                               : "-");
    os << " MEM:" << (mem_stage_.valid ? disassemble(mem_stage_.instr) : "-");
    os << " WB:" << (wb_.valid ? "v" : "-");
    return os.str();
}

}  // namespace sfi
