#include "cpu/memory.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

namespace sfi {

MemFault::MemFault(std::uint32_t fault_addr, const char* what_kind)
    : std::runtime_error(std::string(what_kind) + " at address 0x" +
                         [](std::uint32_t a) {
                             char buf[16];
                             std::snprintf(buf, sizeof buf, "%08x", a);
                             return std::string(buf);
                         }(fault_addr)),
      addr(fault_addr) {}

Memory::Memory(std::uint32_t size) : bytes_(size, 0) {
    if (size == 0 || size % 4 != 0)
        throw std::invalid_argument("Memory size must be a positive word multiple");
}

void Memory::load(const Program& program) {
    for (const auto& section : program.sections) {
        if (section.bytes.empty()) continue;
        const auto n = static_cast<std::uint32_t>(section.bytes.size());
        if (section.addr > bytes_.size() || bytes_.size() - section.addr < n)
            throw MemFault(section.addr, "program section outside memory");
        std::memcpy(bytes_.data() + section.addr, section.bytes.data(),
                    section.bytes.size());
        touch(section.addr, n);
    }
    ++write_gen_;
}

void Memory::check(std::uint32_t addr, std::uint32_t n) const {
    if (addr > bytes_.size() || bytes_.size() - addr < n)
        throw MemFault(addr, "out-of-range access");
    if (n > 1 && addr % n != 0) throw MemFault(addr, "misaligned access");
}

std::uint32_t Memory::read_u32(std::uint32_t addr) const {
    check(addr, 4);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + addr, 4);
    return v;  // host is little-endian (static_assert below)
}

std::uint16_t Memory::read_u16(std::uint32_t addr) const {
    check(addr, 2);
    std::uint16_t v;
    std::memcpy(&v, bytes_.data() + addr, 2);
    return v;
}

std::uint8_t Memory::read_u8(std::uint32_t addr) const {
    check(addr, 1);
    return bytes_[addr];
}

void Memory::write_u32(std::uint32_t addr, std::uint32_t value) {
    check(addr, 4);
    std::memcpy(bytes_.data() + addr, &value, 4);
    touch(addr, 4);
    ++write_gen_;
}

void Memory::write_u16(std::uint32_t addr, std::uint16_t value) {
    check(addr, 2);
    std::memcpy(bytes_.data() + addr, &value, 2);
    touch(addr, 2);
    ++write_gen_;
}

void Memory::write_u8(std::uint32_t addr, std::uint8_t value) {
    check(addr, 1);
    bytes_[addr] = value;
    touch(addr, 1);
    ++write_gen_;
}

void Memory::clear() {
    std::fill(bytes_.begin() + dirty_lo_, bytes_.begin() + dirty_hi_, 0);
    dirty_lo_ = dirty_hi_ = 0;
    ++write_gen_;
}

static_assert(std::endian::native == std::endian::little,
              "sfi assumes a little-endian host for memcpy-based accessors");

}  // namespace sfi
