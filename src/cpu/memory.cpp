#include "cpu/memory.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

namespace sfi {

MemFault::MemFault(std::uint32_t fault_addr, const char* what_kind)
    : std::runtime_error(std::string(what_kind) + " at address 0x" +
                         [](std::uint32_t a) {
                             char buf[16];
                             std::snprintf(buf, sizeof buf, "%08x", a);
                             return std::string(buf);
                         }(fault_addr)),
      addr(fault_addr) {}

Memory::Memory(std::uint32_t size) : bytes_(size, 0) {
    if (size == 0 || size % 4 != 0)
        throw std::invalid_argument("Memory size must be a positive word multiple");
}

void Memory::load(const Program& program) {
    for (const auto& section : program.sections) {
        if (section.bytes.empty()) continue;
        const auto n = static_cast<std::uint32_t>(section.bytes.size());
        if (section.addr > bytes_.size() || bytes_.size() - section.addr < n)
            throw MemFault(section.addr, "program section outside memory");
        std::memcpy(bytes_.data() + section.addr, section.bytes.data(),
                    section.bytes.size());
        touch(section.addr, n);
    }
    ++write_gen_;
}

void Memory::clear() {
    std::fill(bytes_.begin() + dirty_lo_, bytes_.begin() + dirty_hi_, 0);
    dirty_lo_ = dirty_hi_ = 0;
    sc_lo_ = sc_hi_ = 0;
    has_image_ = false;
    image_.clear();
    ++write_gen_;
}

void Memory::checkpoint_image() {
    image_lo_ = dirty_lo_;
    image_hi_ = dirty_hi_;
    image_.assign(bytes_.begin() + image_lo_, bytes_.begin() + image_hi_);
    sc_lo_ = sc_hi_ = 0;
    has_image_ = true;
}

bool Memory::restore_image() {
    if (!has_image_) return false;
    if (sc_lo_ != sc_hi_) {
        // Everything written since the checkpoint: zero it, then put back
        // the slice of the image it overlapped. Bytes outside the written
        // range are unchanged since the checkpoint by the touch()
        // invariant, so this reconstructs the checkpoint state exactly.
        std::fill(bytes_.begin() + sc_lo_, bytes_.begin() + sc_hi_, 0);
        const std::uint32_t lo = std::max(sc_lo_, image_lo_);
        const std::uint32_t hi = std::min(sc_hi_, image_hi_);
        if (lo < hi)
            std::memcpy(bytes_.data() + lo, image_.data() + (lo - image_lo_),
                        hi - lo);
        ++write_gen_;
        sc_lo_ = sc_hi_ = 0;
    }
    dirty_lo_ = image_lo_;
    dirty_hi_ = image_hi_;
    return true;
}

static_assert(std::endian::native == std::endian::little,
              "sfi assumes a little-endian host for memcpy-based accessors");

}  // namespace sfi
