#include "cpu/cpu.hpp"

#include <cassert>

#include "isa/encoding.hpp"

namespace sfi {

const char* stop_reason_name(StopReason reason) {
    switch (reason) {
        case StopReason::Halted: return "halted";
        case StopReason::Watchdog: return "watchdog";
        case StopReason::SelfLoop: return "self-loop";
        case StopReason::MemFault: return "mem-fault";
        case StopReason::FetchFault: return "fetch-fault";
        case StopReason::IllegalInstr: return "illegal-instr";
    }
    return "?";
}

Cpu::Cpu(Memory& memory, PipelineTiming timing) : mem_(memory), timing_(timing) {}

Cpu::~Cpu() = default;  // here: InterpState is complete in this TU

std::uint64_t Cpu::reset_identity_sig(const Program& program) const {
    // FNV-1a over the build id, entry point and each section's (addr,
    // size, data pointer). O(#sections), so it is cheap enough for every
    // reset — unlike hash_program, which walks all the bytes. The build
    // id is what makes this sound: a re-assembled program can land its
    // object AND heap buffers at recycled addresses, so pointers alone
    // cannot distinguish it from the cached one.
    std::uint64_t h = 14695981039346656037ULL;
    const auto mix = [&h](std::uint64_t value) {
        h ^= value;
        h *= 1099511628211ULL;
    };
    mix(program.build_id);
    mix(program.entry);
    for (const auto& section : program.sections) {
        mix(section.addr);
        mix(section.bytes.size());
        mix(reinterpret_cast<std::uintptr_t>(section.bytes.data()));
    }
    return h;
}

void Cpu::reset(const Program& program) {
    // Fast path for the Monte-Carlo trial loop, which resets the same
    // program thousands of times: restore the checkpointed post-load
    // memory image (O(bytes written last run)) instead of clear+load, and
    // reuse the cached program hash instead of re-hashing the image for
    // the threaded stream's coherence check.
    const std::uint64_t sig = reset_identity_sig(program);
    const bool same_program =
        reset_program_ == &program && reset_program_sig_ == sig;
    if (!(same_program && mem_.restore_image())) {
        mem_.clear();
        mem_.load(program);
        mem_.checkpoint_image();
        reset_program_ = &program;
        reset_program_sig_ = sig;
        reset_program_hash_ = hash_program(program);
    }
    regs_.fill(0);
    pc_ = program.entry;
    flag_ = false;
    prev_ex_result_ = 0;
    cycles_ = instructions_ = kernel_cycles_ = kernel_instructions_ = 0;
    fi_active_ = false;
    fi_windows_ = 0;
    pending_stop_.reset();
    exit_code_ = 0;
    fault_addr_ = 0;
    last_was_load_ = false;
    last_load_dest_ = 0;
    // Invalidate by generation bump: O(1) per reset instead of re-zeroing
    // one DecodeEntry per memory word (a multi-MB fill that used to
    // dominate short Monte-Carlo trials). Entries are lazily re-decoded on
    // first fetch because their stamp no longer matches.
    if (decode_cache_.size() != mem_.size() / 4) {
        decode_cache_.assign(mem_.size() / 4, DecodeEntry{});
        decode_gen_ = 0;
    }
    if (++decode_gen_ == 0) {
        // Stamp rollover: 0 must stay the permanent "invalid" stamp, so
        // wipe every entry back to it and restart at 1 (unreachable in
        // real runs; tests/cpu/test_decode_cache.cpp fast-forwards here).
        for (DecodeEntry& entry : decode_cache_) entry.gen = 0;
        decode_gen_ = 1;
    }
    // Nothing is decoded at the fresh generation yet.
    decode_live_lo_ = ~std::uint32_t{0};
    decode_live_hi_ = 0;
    if (interp_) sync_interp_on_reset(program, reset_program_hash_);
}

void Cpu::set_reg(std::uint8_t index, std::uint32_t value) {
    assert(index < 32);
    if (index != 0) regs_[index] = value;  // r0 is hardwired to zero
}

const Instr* Cpu::fetch_decoded(std::uint32_t pc, bool& illegal) {
    illegal = false;
    if (pc % 4 != 0 || pc + 4 > mem_.size()) return nullptr;
    const std::uint32_t word = pc / 4;
    DecodeEntry& entry = decode_cache_[word];
    if (entry.gen != decode_gen_) {
        const auto decoded = decode(mem_.read_u32(pc));
        entry.gen = decode_gen_;
        if (word < decode_live_lo_) decode_live_lo_ = word;
        if (word > decode_live_hi_) decode_live_hi_ = word;
        entry.illegal = !decoded.has_value();
        if (decoded) entry.instr = *decoded;
    }
    if (entry.illegal) {
        illegal = true;
        return nullptr;
    }
    return &entry.instr;
}

void Cpu::spend_cycles(std::uint64_t n) {
    cycles_ += n;
    if (fi_active_) kernel_cycles_ += n;
    // Batched handover: the default on_cycles loops on_cycle n times, so
    // hooks that don't override it observe the exact legacy sequence.
    if (hook_) hook_->on_cycles(n, fi_active_);
}

std::uint32_t Cpu::exec_alu(const Instr& instr, std::uint32_t a, std::uint32_t b) {
    const ExClass cls = op_info(instr.op).ex_class;
    const std::uint32_t correct = alu_result(cls, a, b);
    std::uint32_t result = correct;
    if (hook_ && fi_active_) {
        ExEvent ev;
        ev.op = instr.op;
        ev.cls = cls;
        ev.operand_a = a;
        ev.operand_b = b;
        ev.prev_result = prev_ex_result_;
        ev.cycle = cycles_;
        ev.pc = pc_;
        ev.window = static_cast<std::uint32_t>(fi_windows_);
        result = hook_->on_ex_result(ev, correct);
    }
    prev_ex_result_ = result;
    return result;
}

std::optional<StopReason> Cpu::step() {
    bool illegal = false;
    const Instr* instr_ptr = fetch_decoded(pc_, illegal);
    if (!instr_ptr) {
        fault_addr_ = pc_;
        return illegal ? StopReason::IllegalInstr : StopReason::FetchFault;
    }
    const Instr instr = *instr_ptr;  // copy: stores may invalidate the cache
    const OpInfo& info = op_info(instr.op);

    if (trace_) trace_(pc_, instr, disassemble(instr));

    // Load-use hazard: one bubble when the previous instruction was a load
    // and this one consumes its destination (r0 never creates a hazard).
    std::uint64_t bubbles = 0;
    if (last_was_load_ && last_load_dest_ != 0) {
        const bool uses = (info.reads_ra && instr.ra == last_load_dest_) ||
                          (info.reads_rb && instr.rb == last_load_dest_);
        if (uses) bubbles += timing_.load_use_stall;
    }
    last_was_load_ = false;

    // Kernel-window toggling happens before the cycle is spent so the
    // marker's own cycle is attributed consistently (begin: inside).
    if (instr.op == Op::NOP && instr.imm == kNopKernelBegin) {
        if (!fi_active_) ++fi_windows_;
        fi_active_ = true;
    }

    spend_cycles(bubbles + 1);

    std::uint32_t next_pc = pc_ + 4;
    bool taken = false;

    switch (instr.op) {
        case Op::NOP:
            switch (static_cast<std::uint16_t>(instr.imm)) {
                case kNopExit:
                    exit_code_ = regs_[3];
                    ++instructions_;
                    if (fi_active_) ++kernel_instructions_;
                    return StopReason::Halted;
                case kNopKernelEnd:
                    fi_active_ = false;
                    break;
                default:
                    break;  // plain nop / report / begin (handled above)
            }
            break;
        case Op::MOVHI:
            set_reg(instr.rd, static_cast<std::uint32_t>(instr.imm) << 16);
            break;
        case Op::J:
            if (instr.imm == 0) return StopReason::SelfLoop;
            next_pc = pc_ + static_cast<std::uint32_t>(instr.imm) * 4;
            taken = true;
            break;
        case Op::JAL:
            set_reg(9, pc_ + 4);
            next_pc = pc_ + static_cast<std::uint32_t>(instr.imm) * 4;
            taken = true;
            break;
        case Op::JR:
            next_pc = regs_[instr.rb];
            if (next_pc == pc_) return StopReason::SelfLoop;
            taken = true;
            break;
        case Op::JALR:
            set_reg(9, pc_ + 4);
            next_pc = regs_[instr.rb];
            if (next_pc == pc_) return StopReason::SelfLoop;
            taken = true;
            break;
        case Op::BF:
        case Op::BNF: {
            const bool cond = (instr.op == Op::BF) ? flag_ : !flag_;
            if (cond) {
                if (instr.imm == 0) return StopReason::SelfLoop;
                next_pc = pc_ + static_cast<std::uint32_t>(instr.imm) * 4;
                taken = true;
            }
            break;
        }
        case Op::LWZ:
        case Op::LBZ:
        case Op::LHZ: {
            const std::uint32_t addr =
                regs_[instr.ra] + static_cast<std::uint32_t>(instr.imm);
            try {
                std::uint32_t value = 0;
                if (instr.op == Op::LWZ) value = mem_.read_u32(addr);
                else if (instr.op == Op::LHZ) value = mem_.read_u16(addr);
                else value = mem_.read_u8(addr);
                set_reg(instr.rd, value);
            } catch (const MemFault& fault) {
                fault_addr_ = fault.addr;
                return StopReason::MemFault;
            }
            last_was_load_ = true;
            last_load_dest_ = instr.rd;
            break;
        }
        case Op::SW:
        case Op::SB:
        case Op::SH: {
            const std::uint32_t addr =
                regs_[instr.ra] + static_cast<std::uint32_t>(instr.imm);
            try {
                if (instr.op == Op::SW)
                    mem_.write_u32(addr, regs_[instr.rb]);
                else if (instr.op == Op::SH)
                    mem_.write_u16(addr, static_cast<std::uint16_t>(regs_[instr.rb]));
                else
                    mem_.write_u8(addr, static_cast<std::uint8_t>(regs_[instr.rb]));
                invalidate_decode(addr);
            } catch (const MemFault& fault) {
                fault_addr_ = fault.addr;
                return StopReason::MemFault;
            }
            break;
        }
        default: {
            // ALU-class instruction (register or immediate form).
            assert(info.ex_class != ExClass::None);
            const std::uint32_t a = regs_[instr.ra];
            const std::uint32_t b = info.has_imm
                                        ? static_cast<std::uint32_t>(instr.imm)
                                        : regs_[instr.rb];
            const std::uint32_t result = exec_alu(instr, a, b);
            if (info.sets_flag) {
                // Flag logic consumes the latched (possibly corrupted)
                // difference, exactly like the hardware downstream of the
                // 32 ALU endpoints.
                flag_ = compare_flag_from_diff(instr.op, a, b, result);
            } else {
                set_reg(instr.rd, result);
            }
            break;
        }
    }

    ++instructions_;
    if (fi_active_) ++kernel_instructions_;

    if (taken) spend_cycles(timing_.taken_branch_flush);
    pc_ = next_pc;
    return std::nullopt;
}

RunResult Cpu::run(std::uint64_t max_cycles) {
    // Tracing needs the per-step disassembly callback, which only the
    // legacy loop provides; everything else observable is bit-identical
    // between the two engines (see src/cpu/interp.hpp).
    if (dispatch_ == CpuDispatch::Threaded && !trace_)
        return run_threaded(max_cycles);
    if (max_cycles == 0) max_cycles = 100'000'000ULL;
    RunResult result;
    std::optional<StopReason> stop;
    while (!stop) {
        if (cycles_ >= max_cycles) {
            stop = StopReason::Watchdog;
            break;
        }
        stop = step();
    }
    result.stop = *stop;
    result.exit_code = exit_code_;
    result.cycles = cycles_;
    result.instructions = instructions_;
    result.kernel_cycles = kernel_cycles_;
    result.kernel_instructions = kernel_instructions_;
    result.fault_addr = fault_addr_;
    return result;
}

}  // namespace sfi
