// Cycle-accurate instruction-set simulator of the case-study core:
// a 32-bit OpenRISC-style 6-stage in-order pipeline (IF1/IF2/ID/EX/MEM/WB)
// with single-cycle multiplication and single-cycle SRAMs (paper §2.1/2.2).
//
// Execution is functional (one instruction retired per step) with an exact
// pipeline *timing* model layered on top: load-use hazards stall one
// cycle, taken branches flush the three fetch/decode stages. This yields
// the same per-cycle EX-stage occupancy as a stage-by-stage simulation —
// which is all the fault-injection models observe — at interpreter speed.
//
// Fault injection (paper §2.2): an ExFaultHook receives one callback per
// simulated clock cycle plus one callback per ALU operation that computes
// in the EX stage while the benchmark kernel is active. The hook may
// corrupt the 32-bit EX result; corrupted compare results propagate into
// the flag via the same downstream logic as the hardware
// (compare_flag_from_diff), so wrong branching behaviour emerges naturally.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cpu/interp.hpp"
#include "cpu/memory.hpp"
#include "isa/isa.hpp"

namespace sfi {

namespace perf {
class PhaseProfile;  // perf/perf.hpp
}

/// One EX-stage ALU computation offered to the fault-injection hook.
struct ExEvent {
    Op op = Op::NOP;
    ExClass cls = ExClass::None;
    std::uint32_t operand_a = 0;
    std::uint32_t operand_b = 0;   ///< post-mux operand (immediate already selected)
    std::uint32_t prev_result = 0; ///< value latched at the ALU endpoints last time
    std::uint64_t cycle = 0;       ///< absolute cycle index of the EX computation
    std::uint32_t pc = 0;          ///< address of the computing instruction
    std::uint32_t window = 0;      ///< FI-window ordinal (Cpu::fi_windows())
};

/// Receives per-cycle and per-ALU-operation callbacks from the ISS.
class ExFaultHook {
public:
    virtual ~ExFaultHook() = default;

    /// Called once per simulated clock cycle (including stall/flush
    /// bubbles). `fi_active` is true inside the benchmark kernel window.
    virtual void on_cycle(bool fi_active) = 0;

    /// Batched form: must behave exactly like calling on_cycle(fi_active)
    /// `n` times, which is what the default does. Hooks whose per-cycle
    /// behavior is a pure accumulation (FaultModel, the golden-run
    /// counter) override it with O(1) arithmetic so the ISS can hand over
    /// a whole stall/flush group — or, in threaded dispatch, an entire
    /// run's kernel window — in one virtual call.
    virtual void on_cycles(std::uint64_t n, bool fi_active) {
        for (std::uint64_t i = 0; i < n; ++i) on_cycle(fi_active);
    }

    /// Called for every ALU-class instruction computing in EX during an
    /// FI-active cycle. Returns the (possibly corrupted) 32-bit result.
    virtual std::uint32_t on_ex_result(const ExEvent& ev,
                                       std::uint32_t correct) = 0;

protected:
    ExFaultHook() = default;
    // Copyable only through derived classes (FaultModel::clone()).
    ExFaultHook(const ExFaultHook&) = default;
    ExFaultHook& operator=(const ExFaultHook&) = default;
};

/// Why a run stopped.
enum class StopReason : std::uint8_t {
    Halted,        ///< l.nop 0x1 executed
    Watchdog,      ///< cycle limit exceeded (infinite-loop safeguard)
    SelfLoop,      ///< obvious fatal error: unconditional jump-to-self
    MemFault,      ///< out-of-range / misaligned data access
    FetchFault,    ///< PC left the memory image or was misaligned
    IllegalInstr,  ///< undecodable instruction word reached EX
};

const char* stop_reason_name(StopReason reason);

struct RunResult {
    StopReason stop = StopReason::Halted;
    std::uint32_t exit_code = 0;      ///< r3 at l.nop 0x1
    std::uint64_t cycles = 0;         ///< total simulated clock cycles
    std::uint64_t instructions = 0;   ///< retired instructions
    std::uint64_t kernel_cycles = 0;  ///< cycles inside the FI window
    std::uint64_t kernel_instructions = 0;
    std::uint32_t fault_addr = 0;     ///< for MemFault / FetchFault

    bool finished() const { return stop == StopReason::Halted; }
    double ipc() const {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/// Pipeline timing parameters (defaults model the case-study core).
struct PipelineTiming {
    unsigned load_use_stall = 1;   ///< bubbles between a load and a dependent use
    unsigned taken_branch_flush = 3;  ///< bubbles after a taken branch / jump
};

class Cpu {
public:
    explicit Cpu(Memory& memory, PipelineTiming timing = {});
    ~Cpu();  // out-of-line: InterpState is incomplete here

    /// Resets architectural state and loads `program` (entry -> PC).
    void reset(const Program& program);

    /// Installs / removes the fault-injection hook (may be null).
    void set_fault_hook(ExFaultHook* hook) { hook_ = hook; }

    /// Selects the execution engine for run(): Legacy (per-step decode
    /// cache, the reference semantics) or Threaded (decode-once micro-op
    /// stream + kernel table, bit-identical and ~5x faster on clean
    /// simulation — see src/cpu/interp.hpp for the equality contract).
    /// Threaded runs fall back to the legacy loop while a trace callback
    /// is installed; step() always executes the legacy path.
    void set_dispatch(CpuDispatch dispatch) { dispatch_ = dispatch; }
    CpuDispatch dispatch() const { return dispatch_; }

    /// Eagerly lowers every word of `program`'s sections into the
    /// micro-op stream (threaded dispatch only; a no-op when the stream
    /// already matches the program's content hash). Returns the number of
    /// words lowered — the Phase::Decode item count. Safe to call before
    /// reset(): the stream is not trusted until a reset synchronizes
    /// memory with the program image.
    std::size_t prime_decode(const Program& program);

    /// Attaches a perf profile (null detaches); threaded runs charge lazy
    /// micro-op lowering to Phase::Decode. Dispatch-thread only — give
    /// each worker Cpu its own profile (or none), never a shared one.
    void set_perf_profile(perf::PhaseProfile* profile) { profile_ = profile; }

    /// Runs until halt / fault / watchdog. `max_cycles` bounds total
    /// simulated cycles (0 means the built-in default of 100M).
    RunResult run(std::uint64_t max_cycles = 0);

    /// Executes exactly one instruction (for tests and tracing);
    /// returns the stop reason if the program terminated on this step.
    std::optional<StopReason> step();

    // Architectural state access (tests, benchmark result extraction).
    std::uint32_t reg(std::uint8_t index) const { return regs_[index]; }
    void set_reg(std::uint8_t index, std::uint32_t value);
    std::uint32_t pc() const { return pc_; }
    void set_pc(std::uint32_t pc) { pc_ = pc; }
    bool flag() const { return flag_; }
    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t instructions() const { return instructions_; }
    bool fi_active() const { return fi_active_; }
    /// FI windows entered since reset (kernel-begin markers that actually
    /// opened a window); the ordinal stamped into ExEvent::window.
    std::uint64_t fi_windows() const { return fi_windows_; }
    Memory& memory() { return mem_; }
    const Memory& memory() const { return mem_; }

    /// Enables an instruction trace (disassembly + state) to the given
    /// callback; pass nullptr to disable.
    using TraceFn = std::function<void(std::uint32_t pc, const Instr&,
                                       const std::string& disasm)>;
    void set_trace(TraceFn fn) { trace_ = std::move(fn); }

    // Generation-stamp debug hooks for the rollover tests
    // (tests/cpu/test_decode_cache.cpp): both caches mark validity with a
    // monotone stamp and must survive the stamp wrapping to 0, which no
    // realistic run reaches — the tests fast-forward it here.
    std::uint64_t debug_decode_generation() const { return decode_gen_; }
    void debug_set_decode_generation(std::uint64_t gen) { decode_gen_ = gen; }
    std::uint32_t debug_interp_generation() const;  // 0: no stream yet
    void debug_set_interp_generation(std::uint32_t gen);

private:
    struct DecodeEntry {
        Instr instr;
        /// Entry is valid iff gen == decode_gen_. reset() bumps the
        /// generation instead of re-zeroing the multi-MB cache, so a trial
        /// only pays decode for the words it actually fetches. 0 is the
        /// permanent "invalid" stamp (decode_gen_ starts at 1).
        std::uint64_t gen = 0;
        bool illegal = false;
    };

    const Instr* fetch_decoded(std::uint32_t pc, bool& illegal);
    void spend_cycles(std::uint64_t n);
    std::uint32_t exec_alu(const Instr& instr, std::uint32_t a, std::uint32_t b);

    // Threaded-dispatch engine (src/cpu/interp.cpp). The impl is a
    // template over the hook policy (null / clean fault model / injecting
    // fault model / generic hook) so the dispatch loop specializes away
    // hook branches; all instantiations live in interp.cpp.
    RunResult run_threaded(std::uint64_t max_cycles);
    template <typename Policy>
    RunResult run_threaded_impl(std::uint64_t max_cycles, Policy policy);
    InterpState& ensure_interp();
    void sync_interp_on_reset(const Program& program,
                              std::uint64_t program_hash);

    Memory& mem_;
    PipelineTiming timing_;
    ExFaultHook* hook_ = nullptr;
    TraceFn trace_;
    CpuDispatch dispatch_ = CpuDispatch::Legacy;
    perf::PhaseProfile* profile_ = nullptr;
    std::unique_ptr<InterpState> interp_;  // lazily allocated (threaded only)

    std::array<std::uint32_t, 32> regs_{};
    std::uint32_t pc_ = 0;
    bool flag_ = false;
    std::uint32_t prev_ex_result_ = 0;

    std::uint64_t cycles_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t kernel_cycles_ = 0;
    std::uint64_t kernel_instructions_ = 0;
    bool fi_active_ = false;
    std::uint64_t fi_windows_ = 0;

    // Exit bookkeeping for the current run.
    std::optional<StopReason> pending_stop_;
    std::uint32_t exit_code_ = 0;
    std::uint32_t fault_addr_ = 0;

    // Load-use hazard tracking: destination of a load in the previous step.
    std::uint8_t last_load_dest_ = 0;
    bool last_was_load_ = false;

    // reset() fast-path cache: the program of the previous reset, its
    // content hash (so the threaded stream's coherence check skips
    // re-hashing every trial) and an identity signature over the entry
    // point and every section's (addr, size, data pointer). A repeat
    // reset of the same program restores the checkpointed memory image
    // instead of clear+load. A rebuilt Program fails the signature (fresh
    // byte buffers give fresh data pointers) even at a reused object
    // address; the one uncovered case is overwriting section bytes in
    // place without reallocating — contract: don't mutate a Program's
    // bytes between resets (no in-tree caller does).
    std::uint64_t reset_identity_sig(const Program& program) const;
    const Program* reset_program_ = nullptr;
    std::uint64_t reset_program_hash_ = 0;
    std::uint64_t reset_program_sig_ = 0;

    // Decode cache (one entry per word), invalidated by data stores and
    // wholesale (generation bump) by reset().
    std::vector<DecodeEntry> decode_cache_;
    std::uint64_t decode_gen_ = 0;
    // Inclusive word span holding entries stamped at decode_gen_ (empty
    // when lo > hi). Lets the store path skip the cache when the target
    // was never decoded this generation — see invalidate_decode().
    std::uint32_t decode_live_lo_ = ~std::uint32_t{0};
    std::uint32_t decode_live_hi_ = 0;

    // Inline: sits on the store kernels' per-instruction path in both
    // dispatch modes, where an out-of-line call per store is measurable.
    void invalidate_decode(std::uint32_t addr) {
        const std::uint32_t word = addr / 4;
        // Only words decoded at the *current* generation can hold a trusted
        // entry, and both caches track that live span. Data stores — the
        // overwhelming majority — land outside it and skip the arrays
        // entirely, instead of dirtying a random cache line of a multi-MB
        // vector on every store. (An empty span has lo > hi, so the guarded
        // indexing below is always in bounds.)
        if (word >= decode_live_lo_ && word <= decode_live_hi_)
            decode_cache_[word].gen = 0;
        if (interp_) {
            InterpState& state = *interp_;
            if (word >= state.live_lo && word <= state.live_hi)
                state.uops[word].gen = 0;
            // Track the store for the threaded stream's coherence protocol:
            // expected_write_gen mirrors the one write-generation tick this
            // store produced, and store_seen arms the relower_risk check (a
            // word lowered from post-store content must not survive reset).
            state.store_seen = true;
            ++state.expected_write_gen;
        }
    }
};

}  // namespace sfi
