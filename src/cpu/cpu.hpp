// Cycle-accurate instruction-set simulator of the case-study core:
// a 32-bit OpenRISC-style 6-stage in-order pipeline (IF1/IF2/ID/EX/MEM/WB)
// with single-cycle multiplication and single-cycle SRAMs (paper §2.1/2.2).
//
// Execution is functional (one instruction retired per step) with an exact
// pipeline *timing* model layered on top: load-use hazards stall one
// cycle, taken branches flush the three fetch/decode stages. This yields
// the same per-cycle EX-stage occupancy as a stage-by-stage simulation —
// which is all the fault-injection models observe — at interpreter speed.
//
// Fault injection (paper §2.2): an ExFaultHook receives one callback per
// simulated clock cycle plus one callback per ALU operation that computes
// in the EX stage while the benchmark kernel is active. The hook may
// corrupt the 32-bit EX result; corrupted compare results propagate into
// the flag via the same downstream logic as the hardware
// (compare_flag_from_diff), so wrong branching behaviour emerges naturally.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "cpu/memory.hpp"
#include "isa/isa.hpp"

namespace sfi {

/// One EX-stage ALU computation offered to the fault-injection hook.
struct ExEvent {
    Op op = Op::NOP;
    ExClass cls = ExClass::None;
    std::uint32_t operand_a = 0;
    std::uint32_t operand_b = 0;   ///< post-mux operand (immediate already selected)
    std::uint32_t prev_result = 0; ///< value latched at the ALU endpoints last time
    std::uint64_t cycle = 0;       ///< absolute cycle index of the EX computation
};

/// Receives per-cycle and per-ALU-operation callbacks from the ISS.
class ExFaultHook {
public:
    virtual ~ExFaultHook() = default;

    /// Called once per simulated clock cycle (including stall/flush
    /// bubbles). `fi_active` is true inside the benchmark kernel window.
    virtual void on_cycle(bool fi_active) = 0;

    /// Called for every ALU-class instruction computing in EX during an
    /// FI-active cycle. Returns the (possibly corrupted) 32-bit result.
    virtual std::uint32_t on_ex_result(const ExEvent& ev,
                                       std::uint32_t correct) = 0;

protected:
    ExFaultHook() = default;
    // Copyable only through derived classes (FaultModel::clone()).
    ExFaultHook(const ExFaultHook&) = default;
    ExFaultHook& operator=(const ExFaultHook&) = default;
};

/// Why a run stopped.
enum class StopReason : std::uint8_t {
    Halted,        ///< l.nop 0x1 executed
    Watchdog,      ///< cycle limit exceeded (infinite-loop safeguard)
    SelfLoop,      ///< obvious fatal error: unconditional jump-to-self
    MemFault,      ///< out-of-range / misaligned data access
    FetchFault,    ///< PC left the memory image or was misaligned
    IllegalInstr,  ///< undecodable instruction word reached EX
};

const char* stop_reason_name(StopReason reason);

struct RunResult {
    StopReason stop = StopReason::Halted;
    std::uint32_t exit_code = 0;      ///< r3 at l.nop 0x1
    std::uint64_t cycles = 0;         ///< total simulated clock cycles
    std::uint64_t instructions = 0;   ///< retired instructions
    std::uint64_t kernel_cycles = 0;  ///< cycles inside the FI window
    std::uint64_t kernel_instructions = 0;
    std::uint32_t fault_addr = 0;     ///< for MemFault / FetchFault

    bool finished() const { return stop == StopReason::Halted; }
    double ipc() const {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/// Pipeline timing parameters (defaults model the case-study core).
struct PipelineTiming {
    unsigned load_use_stall = 1;   ///< bubbles between a load and a dependent use
    unsigned taken_branch_flush = 3;  ///< bubbles after a taken branch / jump
};

class Cpu {
public:
    explicit Cpu(Memory& memory, PipelineTiming timing = {});

    /// Resets architectural state and loads `program` (entry -> PC).
    void reset(const Program& program);

    /// Installs / removes the fault-injection hook (may be null).
    void set_fault_hook(ExFaultHook* hook) { hook_ = hook; }

    /// Runs until halt / fault / watchdog. `max_cycles` bounds total
    /// simulated cycles (0 means the built-in default of 100M).
    RunResult run(std::uint64_t max_cycles = 0);

    /// Executes exactly one instruction (for tests and tracing);
    /// returns the stop reason if the program terminated on this step.
    std::optional<StopReason> step();

    // Architectural state access (tests, benchmark result extraction).
    std::uint32_t reg(std::uint8_t index) const { return regs_[index]; }
    void set_reg(std::uint8_t index, std::uint32_t value);
    std::uint32_t pc() const { return pc_; }
    void set_pc(std::uint32_t pc) { pc_ = pc; }
    bool flag() const { return flag_; }
    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t instructions() const { return instructions_; }
    bool fi_active() const { return fi_active_; }
    Memory& memory() { return mem_; }
    const Memory& memory() const { return mem_; }

    /// Enables an instruction trace (disassembly + state) to the given
    /// callback; pass nullptr to disable.
    using TraceFn = std::function<void(std::uint32_t pc, const Instr&,
                                       const std::string& disasm)>;
    void set_trace(TraceFn fn) { trace_ = std::move(fn); }

private:
    struct DecodeEntry {
        Instr instr;
        /// Entry is valid iff gen == decode_gen_. reset() bumps the
        /// generation instead of re-zeroing the multi-MB cache, so a trial
        /// only pays decode for the words it actually fetches. 0 is the
        /// permanent "invalid" stamp (decode_gen_ starts at 1).
        std::uint64_t gen = 0;
        bool illegal = false;
    };

    const Instr* fetch_decoded(std::uint32_t pc, bool& illegal);
    void spend_cycles(std::uint64_t n);
    std::uint32_t exec_alu(const Instr& instr, std::uint32_t a, std::uint32_t b);

    Memory& mem_;
    PipelineTiming timing_;
    ExFaultHook* hook_ = nullptr;
    TraceFn trace_;

    std::array<std::uint32_t, 32> regs_{};
    std::uint32_t pc_ = 0;
    bool flag_ = false;
    std::uint32_t prev_ex_result_ = 0;

    std::uint64_t cycles_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t kernel_cycles_ = 0;
    std::uint64_t kernel_instructions_ = 0;
    bool fi_active_ = false;

    // Exit bookkeeping for the current run.
    std::optional<StopReason> pending_stop_;
    std::uint32_t exit_code_ = 0;
    std::uint32_t fault_addr_ = 0;

    // Load-use hazard tracking: destination of a load in the previous step.
    std::uint8_t last_load_dest_ = 0;
    bool last_was_load_ = false;

    // Decode cache (one entry per word), invalidated by data stores and
    // wholesale (generation bump) by reset().
    std::vector<DecodeEntry> decode_cache_;
    std::uint64_t decode_gen_ = 0;
    void invalidate_decode(std::uint32_t addr);
};

}  // namespace sfi
