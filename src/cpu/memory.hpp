// Flat byte-addressable memory modeling the single-cycle SRAM macros of
// the case-study core (paper §2.1). Accesses outside the configured size
// or with bad alignment raise MemFault, which the ISS turns into a
// "did not finish" program outcome.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "isa/assembler.hpp"

namespace sfi {

/// Thrown on out-of-range or misaligned accesses.
struct MemFault : std::runtime_error {
    MemFault(std::uint32_t addr, const char* what_kind);
    std::uint32_t addr;
};

class Memory {
public:
    /// Creates a zero-initialized memory of `size` bytes (word multiple).
    explicit Memory(std::uint32_t size = kDefaultSize);

    static constexpr std::uint32_t kDefaultSize = 1u << 20;  // 1 MiB

    std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }

    /// Copies all sections of an assembled program into memory.
    void load(const Program& program);

    // Little-endian accessors. Word/half accesses must be aligned.
    // Defined inline: they sit on the per-instruction path of both ISS
    // dispatch modes, where an out-of-line call per load/store is
    // measurable against the rest of the interpreter loop.
    std::uint32_t read_u32(std::uint32_t addr) const {
        check(addr, 4);
        return read_u32_unchecked(addr);
    }
    std::uint16_t read_u16(std::uint32_t addr) const {
        check(addr, 2);
        return read_u16_unchecked(addr);
    }
    std::uint8_t read_u8(std::uint32_t addr) const {
        check(addr, 1);
        return bytes_[addr];
    }
    void write_u32(std::uint32_t addr, std::uint32_t value) {
        check(addr, 4);
        write_u32_unchecked(addr, value);
    }
    void write_u16(std::uint32_t addr, std::uint16_t value) {
        check(addr, 2);
        write_u16_unchecked(addr, value);
    }
    void write_u8(std::uint32_t addr, std::uint8_t value) {
        check(addr, 1);
        write_u8_unchecked(addr, value);
    }

    /// The validity predicate of check() without the throw: true iff an
    /// `n`-byte access at `addr` is in range and (for n > 1) aligned. The
    /// threaded-dispatch kernels branch on this and fault via
    /// StopReason::MemFault with fault_addr = addr — exactly the address
    /// check() would have put in the thrown MemFault.
    bool access_ok(std::uint32_t addr, std::uint32_t n) const {
        return !(addr > bytes_.size() || bytes_.size() - addr < n) &&
               !(n > 1 && addr % n != 0);
    }

    // Unchecked forms for callers that already verified access_ok();
    // writes still maintain the dirty range and the write generation.
    std::uint32_t read_u32_unchecked(std::uint32_t addr) const {
        std::uint32_t v;
        std::memcpy(&v, bytes_.data() + addr, 4);
        return v;  // host is little-endian (static_assert in memory.cpp)
    }
    std::uint16_t read_u16_unchecked(std::uint32_t addr) const {
        std::uint16_t v;
        std::memcpy(&v, bytes_.data() + addr, 2);
        return v;
    }
    std::uint8_t read_u8_unchecked(std::uint32_t addr) const {
        return bytes_[addr];
    }
    void write_u32_unchecked(std::uint32_t addr, std::uint32_t value) {
        std::memcpy(bytes_.data() + addr, &value, 4);
        touch(addr, 4);
        ++write_gen_;
    }
    void write_u16_unchecked(std::uint32_t addr, std::uint16_t value) {
        std::memcpy(bytes_.data() + addr, &value, 2);
        touch(addr, 2);
        ++write_gen_;
    }
    void write_u8_unchecked(std::uint32_t addr, std::uint8_t value) {
        bytes_[addr] = value;
        touch(addr, 1);
        ++write_gen_;
    }

    /// Monotone counter bumped on every write; the ISS decode cache uses it
    /// to stay coherent without per-store invalidation bookkeeping.
    std::uint64_t write_generation() const { return write_gen_; }

    /// Resets contents to zero (keeps size). O(dirty footprint), not
    /// O(size): only the byte range touched since the last clear is
    /// re-zeroed — everything outside it is zero by the class invariant.
    /// This is what makes per-trial Cpu::reset cost proportional to the
    /// benchmark's working set instead of the full 1 MiB image.
    /// Also discards any checkpoint image (its bytes are gone).
    void clear();

    /// Snapshots the current contents as the restore image for
    /// restore_image() — in practice the post-load program image, taken
    /// by Cpu::reset. O(dirty footprint). Every later mutation funnels
    /// through touch(), which tracks the written range, so a restore can
    /// reconstruct this exact state from the deltas alone.
    void checkpoint_image();

    /// Reverts contents to the last checkpoint_image() state, in O(bytes
    /// written since the checkpoint) — zero the written range, re-copy
    /// the part of the image it overlapped. Returns false (doing
    /// nothing) when no checkpoint exists. The write generation advances
    /// only if memory actually changed. This is the per-trial fast path
    /// of Cpu::reset: trials re-running one program skip the full
    /// clear+load.
    bool restore_image();

    bool has_image() const { return has_image_; }

    /// Bytes the next clear() will re-zero (the dirty range; testing aid).
    std::uint32_t dirty_bytes() const { return dirty_hi_ - dirty_lo_; }

    /// Dirty-range bounds: bytes outside [dirty_lo(), dirty_hi()) are
    /// guaranteed zero, so a state diff only has to walk the union of two
    /// dirty ranges (fault forensics leans on this).
    std::uint32_t dirty_lo() const { return dirty_lo_; }
    std::uint32_t dirty_hi() const { return dirty_hi_; }

    /// Bytes written since the last checkpoint_image() (testing aid).
    std::uint32_t bytes_since_checkpoint() const { return sc_hi_ - sc_lo_; }

private:
    void check(std::uint32_t addr, std::uint32_t n) const {
        if (addr > bytes_.size() || bytes_.size() - addr < n)
            throw MemFault(addr, "out-of-range access");
        if (n > 1 && addr % n != 0) throw MemFault(addr, "misaligned access");
    }

    /// Extends the dirty range (and the since-checkpoint range) to cover
    /// [addr, addr + n). Every mutation of bytes_ must pass through here
    /// to uphold the clear() and restore_image() invariants.
    void touch(std::uint32_t addr, std::uint32_t n) {
        if (dirty_lo_ == dirty_hi_) {
            dirty_lo_ = addr;
            dirty_hi_ = addr + n;
        } else {
            if (addr < dirty_lo_) dirty_lo_ = addr;
            if (addr + n > dirty_hi_) dirty_hi_ = addr + n;
        }
        if (sc_lo_ == sc_hi_) {
            sc_lo_ = addr;
            sc_hi_ = addr + n;
        } else {
            if (addr < sc_lo_) sc_lo_ = addr;
            if (addr + n > sc_hi_) sc_hi_ = addr + n;
        }
    }

    std::vector<std::uint8_t> bytes_;
    std::uint64_t write_gen_ = 0;
    // Invariant: bytes_ outside [dirty_lo_, dirty_hi_) are all zero.
    std::uint32_t dirty_lo_ = 0;
    std::uint32_t dirty_hi_ = 0;
    // Invariant: while has_image_, bytes_ outside [sc_lo_, sc_hi_) are
    // unchanged since checkpoint_image() — clear() is the one mutation
    // that bypasses touch(), and it drops the image.
    std::uint32_t sc_lo_ = 0;
    std::uint32_t sc_hi_ = 0;
    bool has_image_ = false;
    std::vector<std::uint8_t> image_;  // copy of [image_lo_, image_hi_)
    std::uint32_t image_lo_ = 0;
    std::uint32_t image_hi_ = 0;
};

}  // namespace sfi
