// Explicit stage-by-stage model of the 6-stage in-order pipeline
// (IF1 / IF2 / ID / EX / MEM / WB), with result forwarding, a load-use
// interlock and EX-resolved branches.
//
// This is the reference microarchitecture behind the fast ISS in cpu.hpp:
// the two engines must agree on architectural results and — up to the
// constant 4-cycle fill of the stages in front of EX — on cycle counts
// (verified by the equivalence tests in tests/cpu/test_pipeline.cpp).
// The fault-injection hook fires
// in the EX stage exactly as in the fast engine, so fault-model RNG
// streams line up event-for-event between the two.
//
// Use PipelineCpu when inspecting per-stage behaviour; use Cpu for
// Monte-Carlo throughput.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "cpu/cpu.hpp"
#include "cpu/memory.hpp"
#include "isa/isa.hpp"

namespace sfi {

class PipelineCpu {
public:
    explicit PipelineCpu(Memory& memory);

    void reset(const Program& program);
    void set_fault_hook(ExFaultHook* hook) { hook_ = hook; }

    /// Runs to halt / fault / watchdog. Cycle counts include the pipeline
    /// fill (fast-ISS cycles + 4 for identical programs).
    RunResult run(std::uint64_t max_cycles = 0);

    /// Advances the pipeline by one clock cycle; returns the stop reason
    /// when the program terminated on this cycle.
    std::optional<StopReason> step_cycle();

    std::uint32_t reg(std::uint8_t index) const { return regs_[index]; }
    bool flag() const { return flag_; }
    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t instructions() const { return instructions_; }
    bool fi_active() const { return fi_active_; }

    /// One-line occupancy snapshot ("IF2:0x104 ID:l.add ..."), for debug.
    std::string stage_snapshot() const;

private:
    enum class Poison : std::uint8_t { None, Fetch, Illegal };

    struct If1Latch {
        bool valid = false;
        std::uint32_t pc = 0;
    };
    struct If2Latch {
        bool valid = false;
        std::uint32_t pc = 0;
        std::uint32_t word = 0;
        Poison poison = Poison::None;
    };
    struct IdLatch {
        bool valid = false;
        std::uint32_t pc = 0;
        Instr instr;
        Poison poison = Poison::None;
    };
    struct ExOut {  // EX -> MEM latch
        bool valid = false;
        Instr instr;
        std::uint8_t dest = 0;       ///< resolved destination (r9 for jal)
        bool writes = false;
        std::uint32_t result = 0;    ///< ALU result / link / movhi value
        std::uint32_t mem_addr = 0;
        std::uint32_t store_data = 0;
    };
    struct MemOut {  // MEM -> WB latch
        bool valid = false;
        std::uint8_t dest = 0;
        bool writes = false;
        std::uint32_t value = 0;
    };

    std::optional<StopReason> exec_ex(const IdLatch& id, ExOut& out,
                                      bool& flush, std::uint32_t& redirect);
    std::uint32_t read_operand(std::uint8_t reg, const MemOut& forwarding) const;

    Memory& mem_;
    ExFaultHook* hook_ = nullptr;

    std::array<std::uint32_t, 32> regs_{};
    bool flag_ = false;
    std::uint32_t prev_ex_result_ = 0;

    std::uint32_t fetch_pc_ = 0;
    If1Latch if1_;
    If2Latch if2_;
    IdLatch id_;
    IdLatch ex_;   // instruction currently in EX (same payload as ID latch)
    ExOut mem_stage_;
    MemOut wb_;

    std::uint64_t cycles_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t kernel_cycles_ = 0;
    std::uint64_t kernel_instructions_ = 0;
    bool fi_active_ = false;
    std::uint32_t exit_code_ = 0;
    std::uint32_t fault_addr_ = 0;
};

}  // namespace sfi
