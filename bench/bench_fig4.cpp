// Fig. 4 reproduction: MSE vs. clock frequency for isolated addition and
// multiplication instruction streams at Vdd = 0.7 V with sigma = 10 mV
// supply noise (model C).
//
// Three series, as in the paper (§4.1):
//   l.add 16-bit : operands with a 16-bit value range (16-bit result)
//   l.add 32-bit : full-range operands
//   l.mul 32-bit : operands with a 16-bit value range, 32-bit result
// The 16-bit series use DTA characterizations with matching operand
// profiles — this is what exposes the single-bit granularity of the model
// (high endpoints never toggle for narrow operands, so the PoFF moves up).
//
// Expected shape: PoFF ordering mul < add32 < add16 (paper: 685 / 746 /
// 877 MHz), and MSE saturating near the operand-width maximum within
// ~15 % above the PoFF.
#include "bench_common.hpp"

namespace {

struct Series {
    const char* label;
    sfi::ExClass cls;
    unsigned operand_bits;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);
    const CharacterizedCore core = ctx.make_core();

    const std::vector<Series> series = {
        {"l.add 16-bit", ExClass::Add, 16},
        {"l.add 32-bit", ExClass::Add, 32},
        {"l.mul 32-bit", ExClass::Mul, 16},
    };

    // Operand-profile-conditioned characterizations.
    std::vector<std::shared_ptr<const TimingErrorCdfs>> stores;
    for (const Series& s : series) {
        DtaConfig dta = core.config().dta;
        dta.operand_bits = s.operand_bits;
        DtaResult result;
        result.setup_ps = core.timing().setup_ps();
        result.cycles = dta.cycles;
        result.classes = {run_dta_class(core.alu(), core.timing(), s.cls, dta)};
        result.worst_arrival_ps = result.classes[0].max_arrival_ps;
        stores.push_back(
            std::make_shared<TimingErrorCdfs>(TimingErrorCdfs::from_dta(result)));
    }

    OperatingPoint base;
    base.vdd = 0.7;
    base.noise.sigma_mv = 10.0;

    const std::size_t ops_per_trial = 2048;
    const auto freqs = linspace(650.0, 1250.0, 25);

    std::cout << "Fig. 4: MSE vs frequency for add/mul instruction streams "
                 "(Vdd = 0.7 V, sigma = 10 mV)\n\n";
    TextTable table({"f [MHz]", series[0].label, series[1].label,
                     series[2].label});
    std::unique_ptr<CsvWriter> csv;
    if (!ctx.csv_dir.empty()) {
        csv = std::make_unique<CsvWriter>(ctx.csv_path("fig4_mse.csv"));
        csv->header({"freq_mhz", "mse_add16", "mse_add32", "mse_mul32"});
    }

    std::vector<double> poff(series.size(), 0.0);
    for (const double f : freqs) {
        std::vector<std::string> row = {fmt_fixed(f, 0)};
        std::vector<double> csv_row = {f};
        for (std::size_t si = 0; si < series.size(); ++si) {
            ModelC model(stores[si], core.lib().fit());
            OperatingPoint point = base;
            point.freq_mhz = f;
            model.set_operating_point(point);
            model.reseed(ctx.seed + si);
            Rng operands(0xF16'4'000 + si);
            const std::uint32_t mask = series[si].operand_bits >= 32
                                           ? 0xffffffffu
                                           : ((1u << series[si].operand_bits) - 1);
            double sum_sq = 0.0;
            std::uint64_t n = 0;
            for (std::size_t t = 0; t < ctx.trials; ++t) {
                for (std::size_t i = 0; i < ops_per_trial; ++i) {
                    model.on_cycle(true);
                    ExEvent ev;
                    ev.cls = series[si].cls;
                    ev.operand_a = operands.u32() & mask;
                    ev.operand_b = operands.u32() & mask;
                    const std::uint32_t correct =
                        alu_result(ev.cls, ev.operand_a, ev.operand_b);
                    const std::uint32_t got = model.on_ex_result(ev, correct);
                    const double diff = static_cast<double>(got) -
                                        static_cast<double>(correct);
                    sum_sq += diff * diff;
                    ++n;
                }
            }
            const double mse = sum_sq / static_cast<double>(n);
            if (mse > 0.0 && poff[si] == 0.0) poff[si] = f;
            row.push_back(mse > 0.0 ? fmt_sci(mse, 3) : "0");
            csv_row.push_back(mse);
        }
        table.add_row(row);
        if (csv) csv->row(csv_row);
    }
    table.print(std::cout);

    std::cout << "\npoints of first calculation error (MSE > 0):\n";
    for (std::size_t si = 0; si < series.size(); ++si)
        std::cout << "  " << series[si].label << " : "
                  << (poff[si] > 0.0 ? fmt_fixed(poff[si], 0) + " MHz"
                                     : std::string("none in range"))
                  << "\n";
    std::cout << "paper: 877 MHz (add16), 746 MHz (add32), 685 MHz (mul32)\n";
    ctx.footer();
    return 0;
}
