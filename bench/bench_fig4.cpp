// Fig. 4 reproduction: MSE vs. clock frequency for isolated addition and
// multiplication instruction streams at Vdd = 0.7 V with sigma = 10 mV
// supply noise (model C).
//
// Three series, as in the paper (§4.1):
//   l.add 16-bit : operands with a 16-bit value range (16-bit result)
//   l.add 32-bit : full-range operands
//   l.mul 32-bit : operands with a 16-bit value range, 32-bit result
// The 16-bit series use DTA characterizations with matching operand
// profiles — this is what exposes the single-bit granularity of the model
// (high endpoints never toggle for narrow operands, so the PoFF moves up).
//
// Expected shape: PoFF ordering mul < add32 < add16 (paper: 685 / 746 /
// 877 MHz), and MSE saturating near the operand-width maximum within
// ~15 % above the PoFF.
//
// The series are OpStream panels of the declarative fig4 campaign — the
// campaign engine owns the conditioned characterizations, the point
// store and one standard sweep CSV per series (fig4_add16/add32/mul32);
// this driver renders the combined three-column console table.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);

    campaign::CampaignSpec spec =
        campaign::figures::fig4(ctx.core_config, ctx.trials, ctx.seed);
    ctx.apply_to(spec);
    for (campaign::PanelSpec& panel : spec.panels)
        panel.print_table = false;  // combined table below instead

    campaign::RunOptions options = ctx.campaign_options();
    campaign::CampaignRunner runner(spec, std::move(options));
    const campaign::CampaignResult result = runner.run();

    const std::vector<std::string> labels = {"l.add 16-bit", "l.add 32-bit",
                                             "l.mul 32-bit"};
    std::cout << "Fig. 4: MSE vs frequency for add/mul instruction streams "
                 "(Vdd = 0.7 V, sigma = 10 mV)\n\n";
    TextTable table({"f [MHz]", labels[0], labels[1], labels[2]});

    // All three series share the frequency grid; walk them in lock-step.
    const std::size_t points = result.panels.at(0).sweep.size();
    std::vector<double> poff(result.panels.size(), 0.0);
    for (std::size_t i = 0; i < points; ++i) {
        const double f = result.panels[0].sweep[i].point.freq_mhz;
        std::vector<std::string> row = {fmt_fixed(f, 0)};
        for (std::size_t si = 0; si < result.panels.size(); ++si) {
            const double mse = result.panels[si].sweep[i].mean_error;
            if (mse > 0.0 && poff[si] == 0.0) poff[si] = f;
            row.push_back(mse > 0.0 ? fmt_sci(mse, 3) : "0");
        }
        table.add_row(row);
    }
    table.print(std::cout);

    std::cout << "\npoints of first calculation error (MSE > 0):\n";
    for (std::size_t si = 0; si < result.panels.size(); ++si)
        std::cout << "  " << labels[si] << " : "
                  << (poff[si] > 0.0 ? fmt_fixed(poff[si], 0) + " MHz"
                                     : std::string("none in range"))
                  << "\n";
    std::cout << "paper: 877 MHz (add16), 746 MHz (add32), 685 MHz (mul32)\n";
    ctx.footer();
    return 0;
}
