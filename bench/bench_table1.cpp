// Table 1 reproduction: overview of benchmark properties, including the
// measured kernel cycle counts of our hand-written ORBIS32 kernels (the
// paper's counts come from its own compiler/ISA variant; see
// EXPERIMENTS.md for the comparison).
#include "bench_common.hpp"

#include <optional>

#include "apps/profile.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    // --benchmark NAME restricts the table to one kernel (declared in the
    // known-flag vocabulary so an unknown flag warns instead of passing
    // silently; a bad name exits 2 before any output).
    bench::Context ctx(argc, argv, /*default_trials=*/1, {"benchmark"});
    std::optional<BenchmarkId> only;
    if (ctx.cli.has("benchmark"))
        only = bench::checked_benchmark(ctx.cli.get("benchmark", ""));

    std::cout << "Table 1: overview of benchmark properties\n\n";
    TextTable table({"benchmark", "type", "compute", "control", "size",
                     "kernel cycles", "IPC", "%ALU", "%mul", "%branch",
                     "output error metric"});

    Memory memory;
    Cpu cpu(memory);
    for (const BenchmarkId id : all_benchmarks()) {
        if (only && id != *only) continue;
        const auto bench = make_benchmark(id);
        cpu.reset(bench->program());
        const RunResult run = cpu.run();
        if (!run.finished()) {
            std::cerr << "golden run failed for " << bench->name() << "\n";
            return 1;
        }
        // The kernel instruction mix backs the qualitative compute /
        // control classification with data (and explains Fig. 6's
        // per-benchmark FI-rate differences).
        const KernelProfile profile = profile_kernel(*bench);
        const auto row = bench->table1_row();
        table.add_row({bench->name(), row.type, row.compute, row.control,
                       row.size, std::to_string(run.kernel_cycles),
                       fmt_fixed(run.ipc(), 2), fmt_pct(profile.alu_fraction()),
                       fmt_pct(profile.fraction(ExClass::Mul)),
                       fmt_pct(profile.branch_fraction()), row.error_metric});
    }
    table.print(std::cout);

    std::cout << "\npaper reference cycles: median 216 k, mat.mult 60 k, "
                 "k-means 351 k, dijkstra 984 k\n"
              << "(compiled OR1K code with delay slots vs. our hand-written "
                 "delay-slot-free kernels)\n";
    ctx.footer();
    return 0;
}
