// Ablation: DTA characterization-kernel length. The paper uses 8 kCycles
// of randomized operands per instruction. Short kernels under-sample the
// arrival-time tails (the rare worst-case excitations), which moves the
// apparent dynamic limits up and distorts the onset of the CDFs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    // Pure characterization study (no Monte-Carlo points), so it stays
    // off the campaign engine / point store.
    bench::Context ctx(argc, argv, /*default_trials=*/1);

    std::cout << "DTA kernel length vs dynamic limits (Vdd = 0.7 V)\n\n";
    TextTable table({"cycles", "mul fmax [MHz]", "add fmax [MHz]",
                     "cmp fmax [MHz]", "mul P(f=740MHz,b31)",
                     "DTA time [s]"});
    for (const std::size_t cycles : {512u, 2048u, 8192u, 32768u}) {
        CoreModelConfig config = ctx.core_config;
        config.dta.cycles = cycles;
        config.cdf_cache_path.clear();
        const auto t0 = std::chrono::steady_clock::now();
        const CharacterizedCore core(config);
        const double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        const double window =
            (1.0e6 / 740.0) / core.lib().fit().factor(0.7);
        table.add_row({std::to_string(cycles),
                       fmt_fixed(core.dynamic_fmax_mhz(ExClass::Mul, 0.7), 1),
                       fmt_fixed(core.dynamic_fmax_mhz(ExClass::Add, 0.7), 1),
                       fmt_fixed(core.dynamic_fmax_mhz(ExClass::Cmp, 0.7), 1),
                       fmt_sci(core.cdfs()->violation_prob(ExClass::Mul, 31,
                                                           window),
                               3),
                       fmt_fixed(dt, 1)});
    }
    table.print(std::cout);
    std::cout << "\nlonger kernels sample deeper into the arrival tail: the\n"
                 "dynamic fmax estimates decrease monotonically and converge\n"
                 "toward the true data-dependent limits.\n";
    ctx.footer();
    return 0;
}
