// Fig. 2 reproduction: cumulative distribution functions of the timing
// error probabilities extracted by DTA, for the l.add and l.mul
// instructions, endpoints bit[3] and bit[24], at 0.7 V and 0.8 V.
//
// Expected shapes: mul starts failing at lower frequency than add for the
// same endpoint/voltage; higher-significance bits fail earlier than
// lower-significance ones; a higher supply voltage shifts every CDF to
// the right.
//
// The curve family is described by the declarative fig2 campaign; the
// runner evaluates it straight from the CDF store (no Monte-Carlo, no
// point store) and writes the CSV. This driver renders the console table
// and the onset summary from the returned matrix.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/1);

    campaign::CampaignSpec spec = campaign::figures::fig2(ctx.core_config);
    campaign::RunOptions options = ctx.campaign_options();
    options.console = nullptr;  // the table below needs percent formatting
    campaign::CampaignRunner runner(spec, std::move(options));
    const CharacterizedCore& core = runner.core();
    const campaign::CampaignResult result = runner.run();
    const campaign::CdfPanelResult& panel = result.cdf_panels.at(0);

    TextTable table(panel.columns);
    for (const std::vector<double>& row : panel.rows) {
        std::vector<std::string> cells = {fmt_fixed(row[0], 0)};
        for (std::size_t i = 1; i < row.size(); ++i)
            cells.push_back(fmt_fixed(100.0 * row[i], 1) + "%");
        table.add_row(cells);
    }
    std::cout << "Fig. 2: timing-error-probability CDFs from DTA\n\n";
    table.print(std::cout);

    // Onset summary: frequency of first non-zero error probability.
    const TimingErrorCdfs& cdfs = *core.cdfs();
    std::cout << "\nfirst-failure frequencies (P > 0):\n";
    for (const campaign::CdfCurveSpec& c : spec.cdf_panels.at(0).curves) {
        const double window = cdfs.endpoint_max_window_ps(c.cls, c.bit);
        const double f0 = 1.0e6 / (window * core.lib().fit().factor(c.vdd));
        std::cout << "  " << ex_class_name(c.cls) << " bit[" << c.bit << "] @ "
                  << fmt_fixed(c.vdd, 1) << " V : " << fmt_fixed(f0, 0)
                  << " MHz\n";
    }
    ctx.footer();
    return 0;
}
