// Fig. 2 reproduction: cumulative distribution functions of the timing
// error probabilities extracted by DTA, for the l.add and l.mul
// instructions, endpoints bit[3] and bit[24], at 0.7 V and 0.8 V.
//
// Expected shapes: mul starts failing at lower frequency than add for the
// same endpoint/voltage; higher-significance bits fail earlier than
// lower-significance ones; a higher supply voltage shifts every CDF to
// the right.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/1);
    const CharacterizedCore core = ctx.make_core();
    const TimingErrorCdfs& cdfs = *core.cdfs();

    struct Curve {
        ExClass cls;
        std::size_t bit;
        double vdd;
    };
    const std::vector<Curve> curves = {
        {ExClass::Add, 3, 0.7},  {ExClass::Add, 3, 0.8},
        {ExClass::Add, 24, 0.7}, {ExClass::Add, 24, 0.8},
        {ExClass::Mul, 3, 0.7},  {ExClass::Mul, 3, 0.8},
        {ExClass::Mul, 24, 0.7}, {ExClass::Mul, 24, 0.8},
    };

    const auto freqs = linspace(600.0, 2400.0, 37);
    std::vector<std::string> columns = {"f [MHz]"};
    for (const Curve& c : curves) {
        char label[48];
        std::snprintf(label, sizeof label, "%s b%zu %.1fV",
                      ex_class_name(c.cls), c.bit, c.vdd);
        columns.push_back(label);
    }
    TextTable table(columns);

    std::unique_ptr<CsvWriter> csv;
    if (!ctx.csv_path("").empty()) {
        csv = std::make_unique<CsvWriter>(ctx.csv_path("fig2_cdfs.csv"));
        csv->header(columns);
    }
    for (const double f : freqs) {
        std::vector<std::string> row = {fmt_fixed(f, 0)};
        std::vector<double> csv_row = {f};
        for (const Curve& c : curves) {
            const double window =
                (1.0e6 / f) / core.lib().fit().factor(c.vdd);
            const double p = cdfs.violation_prob(c.cls, c.bit, window);
            row.push_back(fmt_fixed(100.0 * p, 1) + "%");
            csv_row.push_back(p);
        }
        table.add_row(row);
        if (csv) csv->row(csv_row);
    }
    std::cout << "Fig. 2: timing-error-probability CDFs from DTA\n\n";
    table.print(std::cout);

    // Onset summary: frequency of first non-zero error probability.
    std::cout << "\nfirst-failure frequencies (P > 0):\n";
    for (const Curve& c : curves) {
        const double window = cdfs.endpoint_max_window_ps(c.cls, c.bit);
        const double f0 = 1.0e6 / (window * core.lib().fit().factor(c.vdd));
        std::cout << "  " << ex_class_name(c.cls) << " bit[" << c.bit << "] @ "
                  << fmt_fixed(c.vdd, 1) << " V : " << fmt_fixed(f0, 0)
                  << " MHz\n";
    }
    ctx.footer();
    return 0;
}
