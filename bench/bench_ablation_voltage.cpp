// Ablation: uniform voltage scaling vs. true per-voltage characterization.
//
// The paper (footnote 1) approximates that all paths scale equally with
// supply voltage, so one DTA characterization plus a scalar delay factor
// covers every operating point. Here we give each cell type a slightly
// different voltage exponent (gates of different stack heights really do
// scale differently), re-run DTA at the library corners, and quantify how
// far the scaled single-characterization CDFs deviate from the per-corner
// ground truth.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    // Pure characterization study (no Monte-Carlo points), so it stays
    // off the campaign engine; --alpha-spread is its declared extra flag.
    bench::Context ctx(argc, argv, /*default_trials=*/1, {"alpha-spread"});

    const double spread = ctx.cli.get_double("alpha-spread", 0.06);
    CoreModelConfig config = ctx.core_config;
    config.lib.cell_alpha_spread = spread;
    config.cdf_cache_path.clear();
    config.dta.cycles = std::min<std::size_t>(config.dta.cycles, 4096);
    const CharacterizedCore core(config);

    std::cout << "per-cell-type voltage-exponent spread: "
              << fmt_fixed(100.0 * spread, 1) << "%\n\n";

    DtaConfig dta = config.dta;
    std::cout << "instruction-class dynamic f_max [MHz]: uniform-scaling "
                 "approximation vs per-voltage DTA\n\n";
    TextTable table({"class", "Vdd [V]", "approx [MHz]", "true [MHz]",
                     "error"});
    RunningStats rel_errors;
    for (const double vdd : {0.6, 0.8, 1.0}) {
        // Ground truth: event-driven DTA on delays characterized at vdd.
        const InstanceTiming timing_at_v = core.timing().at_voltage(vdd);
        for (const ExClass cls : {ExClass::Add, ExClass::Mul, ExClass::Cmp}) {
            const DtaClassResult truth =
                run_dta_class(core.alu(), timing_at_v, cls, dta);
            const double f_true =
                1.0e6 / (truth.max_arrival_ps + timing_at_v.setup_ps());
            const double f_approx = core.dynamic_fmax_mhz(cls, vdd);
            const double rel = f_approx / f_true - 1.0;
            rel_errors.add(std::abs(rel));
            table.add_row({ex_class_name(cls), fmt_fixed(vdd, 1),
                           fmt_fixed(f_approx, 1), fmt_fixed(f_true, 1),
                           fmt_fixed(100.0 * rel, 2) + "%"});
        }
    }
    table.print(std::cout);
    std::cout << "\nmean |error| = " << fmt_fixed(100.0 * rel_errors.mean(), 2)
              << "%, max = " << fmt_fixed(100.0 * rel_errors.max(), 2)
              << "% — the paper's approximation holds to within a few "
                 "percent near the characterized corner and degrades "
                 "gracefully away from it.\n";
    ctx.footer();
    return 0;
}
