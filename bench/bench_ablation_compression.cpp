// Ablation: synthesis slack-compression emulation (calibration stage).
//
// compression = 0   : raw structural delays — wide per-bit spread, large
//                     dynamic slack, PoFF gains well above the paper's;
// compression = 0.35: default — per-bit spread and PoFF gains in the
//                     paper's range;
// compression = 0.8 : near-full timing wall — every instruction fails at
//                     its block constraint, transition regions collapse
//                     (model C degenerates toward model B behaviour).
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/60);

    for (const double kappa : {0.0, 0.35, 0.8}) {
        CoreModelConfig config = ctx.core_config;
        config.calibration.compression = kappa;
        config.cdf_cache_path.clear();
        config.dta.cycles = std::min<std::size_t>(config.dta.cycles, 4096);
        const CharacterizedCore core(config);
        const double fsta = core.sta_fmax_mhz(0.7);

        std::cout << "=== compression = " << fmt_fixed(kappa, 2)
                  << " (f_STA " << fmt_fixed(fsta, 1) << " MHz) ===\n";
        const auto& cdfs = *core.cdfs();
        std::cout << "  mul endpoint max windows [ps @ Vref]: bit3="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Mul, 3), 0)
                  << " bit15="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Mul, 15), 0)
                  << " bit24="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Mul, 24), 0)
                  << " bit31="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Mul, 31), 0)
                  << "\n";
        std::cout << "  dynamic fmax [MHz]: mul "
                  << fmt_fixed(core.dynamic_fmax_mhz(ExClass::Mul, 0.7), 0)
                  << ", add "
                  << fmt_fixed(core.dynamic_fmax_mhz(ExClass::Add, 0.7), 0)
                  << ", cmp "
                  << fmt_fixed(core.dynamic_fmax_mhz(ExClass::Cmp, 0.7), 0)
                  << "\n";

        const auto bench = make_benchmark(BenchmarkId::Median);
        auto model = core.make_model_c();
        MonteCarloRunner runner(*bench, *model, ctx.mc_config());
        OperatingPoint base;
        base.vdd = 0.7;
        base.noise.sigma_mv = 10.0;
        const auto sweep = frequency_sweep(
            runner, base, bench::span(fsta * 0.98, fsta * 1.35, 10));
        if (const auto poff = find_poff_mhz(sweep))
            std::cout << "  median PoFF (sigma=10mV): " << fmt_fixed(*poff, 1)
                      << " MHz (" << fmt_fixed(poff_gain_percent(*poff, fsta), 1)
                      << "% vs STA; paper: +3.3%)\n";
        else
            std::cout << "  median PoFF beyond swept range\n";
        // Transition width: span between last fully-correct and first
        // fully-dead point.
        double f_last_ok = 0.0, f_first_dead = 0.0;
        for (const PointSummary& p : sweep) {
            if (p.correct_count == p.trials) f_last_ok = p.point.freq_mhz;
            if (f_first_dead == 0.0 && p.finished_count == 0)
                f_first_dead = p.point.freq_mhz;
        }
        if (f_last_ok > 0.0 && f_first_dead > 0.0)
            std::cout << "  transition width: "
                      << fmt_fixed(f_first_dead - f_last_ok, 1) << " MHz\n";
        std::cout << "\n";
    }
    ctx.footer();
    return 0;
}
