// Ablation: synthesis slack-compression emulation (calibration stage).
//
// compression = 0   : raw structural delays — wide per-bit spread, large
//                     dynamic slack, PoFF gains well above the paper's;
// compression = 0.35: default — per-bit spread and PoFF gains in the
//                     paper's range;
// compression = 0.8 : near-full timing wall — every instruction fails at
//                     its block constraint, transition regions collapse
//                     (model C degenerates toward model B behaviour).
//
// One store-backed campaign panel (with a core override) per compression
// level; the driver prints the characterization spread before each panel
// and the transition width after the run.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/60);

    campaign::CampaignSpec spec = campaign::figures::ablation_compression(
        ctx.core_config, ctx.trials, ctx.seed);
    ctx.apply_to(spec);
    for (campaign::PanelSpec& panel : spec.panels) panel.title.clear();

    campaign::RunOptions options = ctx.campaign_options();
    options.on_panel_start = [](const campaign::PanelSpec& panel,
                                const CharacterizedCore& core) {
        const double vdd = panel.base.vdd;
        std::cout << "=== compression = "
                  << fmt_fixed(core.config().calibration.compression, 2)
                  << " (f_STA " << fmt_fixed(core.sta_fmax_mhz(vdd), 1)
                  << " MHz) ===\n";
        const auto& cdfs = *core.cdfs();
        std::cout << "  mul endpoint max windows [ps @ Vref]: bit3="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Mul, 3), 0)
                  << " bit15="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Mul, 15), 0)
                  << " bit24="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Mul, 24), 0)
                  << " bit31="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Mul, 31), 0)
                  << "\n";
        std::cout << "  dynamic fmax [MHz]: mul "
                  << fmt_fixed(core.dynamic_fmax_mhz(ExClass::Mul, vdd), 0)
                  << ", add "
                  << fmt_fixed(core.dynamic_fmax_mhz(ExClass::Add, vdd), 0)
                  << ", cmp "
                  << fmt_fixed(core.dynamic_fmax_mhz(ExClass::Cmp, vdd), 0)
                  << "  (paper median PoFF gain at sigma=10mV: +3.3%)\n";
    };
    campaign::CampaignRunner runner(std::move(spec), std::move(options));
    const campaign::CampaignResult result = runner.run();

    std::cout << "transition widths (last fully-correct to first fully-dead "
                 "point):\n";
    for (const campaign::PanelResult& panel : result.panels) {
        double f_last_ok = 0.0, f_first_dead = 0.0;
        for (const PointSummary& p : panel.sweep) {
            if (p.correct_count == p.trials) f_last_ok = p.point.freq_mhz;
            if (f_first_dead == 0.0 && p.finished_count == 0)
                f_first_dead = p.point.freq_mhz;
        }
        std::cout << "  " << panel.name << ": ";
        if (f_last_ok > 0.0 && f_first_dead > 0.0)
            std::cout << fmt_fixed(f_first_dead - f_last_ok, 1) << " MHz\n";
        else
            std::cout << "outside swept range\n";
    }
    ctx.footer();
    return 0;
}
