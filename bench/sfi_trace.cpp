// sfi_trace: analysis tool for --trace run ledgers (src/obs/ledger.hpp).
//
//   sfi_trace LEDGER.jsonl                 run summary on stdout
//   sfi_trace LEDGER.jsonl --export-chrome OUT.json
//                                          Chrome trace-event conversion
//                                          (load OUT.json in Perfetto or
//                                          chrome://tracing)
//
// The summary reports, per panel: points, Monte-Carlo trials, stopping
// classifications and probe counts; campaign-wide it reports the point
// store hit ratio, worker-lane utilization and the accuracy of the live
// ETA estimates. Ratio/utilization/ETA sections need wall-mode data and
// print "n/a (logical ledger)" on a logical-mode file. When a forensic
// artifact (forensics_points.csv from bench --forensics) sits next to the
// ledger, the panel table grows per-panel outcome-class tallies.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sfi/sfi.hpp"

namespace {

using sfi::obs::LedgerEvent;
using sfi::obs::LedgerFile;

struct PanelRow {
    std::string name;
    std::string kind;
    std::string model;
    std::string kernel;
    std::uint64_t points = 0;
    std::uint64_t trials = 0;
    std::uint64_t probes = 0;
    std::map<std::string, std::uint64_t> stops;  ///< stop rule -> points
    bool completed = true;
};

struct Summary {
    std::string campaign;
    std::string fingerprint;
    std::string mode;
    bool completed = true;
    bool cancelled = false;
    std::uint64_t trials_spent = 0;
    double span_us = 0.0;  ///< campaign B -> E (wall mode)
    std::vector<PanelRow> panels;
    std::map<std::string, std::uint64_t> counters;  ///< ledger "C" events
    std::map<std::uint64_t, double> worker_busy_us;
    std::vector<std::pair<double, double>> eta;  ///< (ts_us, eta_s) samples
    std::vector<std::string> warnings;
};

Summary summarize(const LedgerFile& file) {
    Summary s;
    s.mode = sfi::obs::trace_mode_name(file.mode);
    // Panels never nest, so B/E "panel" events pair up in stream order;
    // the same holds for the single "campaign" span.
    PanelRow* open_panel = nullptr;
    for (const LedgerEvent& ev : file.events) {
        if (ev.name == "campaign") {
            if (ev.ph == 'B') {
                s.campaign = ev.arg_string("name");
                s.fingerprint = ev.arg_string("spec_fingerprint");
            } else if (ev.ph == 'E') {
                s.trials_spent = ev.arg_uint("trials_spent");
                s.completed = ev.arg_bool("completed");
                s.span_us = ev.ts_us;
            }
        } else if (ev.name == "panel") {
            if (ev.ph == 'B') {
                PanelRow row;
                row.name = ev.arg_string("name");
                row.kind = ev.arg_string("kind");
                row.model = ev.arg_string("model");
                row.kernel = ev.arg_string("kernel");
                s.panels.push_back(std::move(row));
                open_panel = &s.panels.back();
            } else if (ev.ph == 'E' && open_panel != nullptr) {
                open_panel->points = ev.arg_uint("points");
                open_panel->trials = ev.arg_uint("trials_spent");
                if (ev.has_arg("completed"))
                    open_panel->completed = ev.arg_bool("completed");
                open_panel = nullptr;
            }
        } else if (ev.name == "point" && ev.ph == 'E') {
            if (open_panel != nullptr)
                ++open_panel->stops[ev.arg_string("stop")];
        } else if (ev.name == "probe") {
            if (open_panel != nullptr) ++open_panel->probes;
        } else if (ev.name == "cancelled") {
            s.cancelled = true;
        } else if (ev.name == "store_warning") {
            s.warnings.push_back(ev.arg_string("kind") + " on " +
                                 ev.arg_string("path"));
        } else if (ev.name == "progress" && ev.ph == 'i') {
            const double eta_s = ev.arg_double("eta_s", -1.0);
            if (eta_s >= 0.0) s.eta.emplace_back(ev.ts_us, eta_s);
        } else if (ev.ph == 'C') {
            s.counters[ev.name] =
                static_cast<std::uint64_t>(ev.arg_double("value", 0.0));
        } else if (ev.ph == 'X' && ev.tid >= 1) {
            s.worker_busy_us[ev.tid] += ev.dur_us;
        }
    }
    return s;
}

// Per-panel outcome-class tallies, printed only when a forensic artifact
// was found next to the ledger (tallies keyed by panel name).
void print_forensics(
    const Summary& s,
    const std::map<std::string, sfi::ForensicPanelTally>& tallies) {
    if (tallies.empty()) return;
    std::printf("%-24s %7s %7s %7s %5s %5s %9s\n", "forensics", "trials",
                "masked", "latent", "sdc", "hang", "detected");
    const auto cls = [](const sfi::ForensicPanelTally& t,
                        sfi::OutcomeClass c) -> unsigned long long {
        return t.outcomes[static_cast<std::size_t>(c)];
    };
    const auto print_row = [&](const std::string& name,
                               const sfi::ForensicPanelTally& t) {
        std::printf("%-24s %7llu %7llu %7llu %5llu %5llu %9llu\n",
                    name.c_str(), static_cast<unsigned long long>(t.trials),
                    cls(t, sfi::OutcomeClass::Masked),
                    cls(t, sfi::OutcomeClass::LatentCorrupt),
                    cls(t, sfi::OutcomeClass::SDC),
                    cls(t, sfi::OutcomeClass::Hang),
                    cls(t, sfi::OutcomeClass::Detected));
    };
    // Ledger panel order first, then any tallies the ledger never saw
    // (e.g. an sfi_forensics artifact dropped next to a foreign ledger).
    std::map<std::string, sfi::ForensicPanelTally> rest = tallies;
    for (const PanelRow& row : s.panels) {
        const auto it = rest.find(row.name);
        if (it == rest.end()) continue;
        print_row(it->first, it->second);
        rest.erase(it);
    }
    for (const auto& [name, tally] : rest) print_row(name, tally);
    std::printf("\n");
}

void print_summary(const Summary& s,
                   const std::map<std::string, sfi::ForensicPanelTally>&
                       forensic_tallies) {
    std::printf("campaign %s  (%s)\n",
                s.campaign.empty() ? "<unnamed>" : s.campaign.c_str(),
                s.fingerprint.c_str());
    std::printf("mode     %s\n", s.mode.c_str());
    std::printf("status   %s\n", s.cancelled          ? "cancelled"
                                 : s.completed        ? "completed"
                                                      : "incomplete");
    std::printf("trials   %llu\n\n",
                static_cast<unsigned long long>(s.trials_spent));

    if (!s.panels.empty()) {
        std::printf("%-24s %-8s %-5s %-10s %7s %10s  %s\n", "panel", "kind",
                    "model", "kernel", "points", "trials", "stopping");
        for (const PanelRow& row : s.panels) {
            std::string stops;
            for (const auto& [rule, count] : row.stops) {
                if (!stops.empty()) stops += ", ";
                stops += rule + ":" + std::to_string(count);
            }
            if (row.probes > 0)
                stops += (stops.empty() ? "" : ", ") + std::string("probes:") +
                         std::to_string(row.probes);
            if (!row.completed) stops += " (incomplete)";
            std::printf("%-24s %-8s %-5s %-10s %7llu %10llu  %s\n",
                        row.name.c_str(), row.kind.c_str(), row.model.c_str(),
                        row.kernel.c_str(),
                        static_cast<unsigned long long>(row.points),
                        static_cast<unsigned long long>(row.trials),
                        stops.c_str());
        }
        std::printf("\n");
    }

    print_forensics(s, forensic_tallies);

    // The volatile sections: store traffic, lane utilization and ETA
    // accuracy only exist in wall-mode ledgers (logical mode records the
    // spec narrative only — see obs/ledger.hpp).
    const bool logical = s.mode == "logical";
    const auto counter = [&](const char* name) -> std::uint64_t {
        const auto it = s.counters.find(name);
        return it == s.counters.end() ? 0 : it->second;
    };
    const std::uint64_t hits = counter("run.store_hits");
    const std::uint64_t misses = counter("run.store_misses");
    if (logical)
        std::printf("store    n/a (logical ledger)\n");
    else if (hits + misses == 0)
        std::printf("store    no lookups recorded\n");
    else
        std::printf("store    %llu hits / %llu misses (%.1f%% hit ratio)\n",
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses),
                    100.0 * static_cast<double>(hits) /
                        static_cast<double>(hits + misses));

    if (logical) {
        std::printf("workers  n/a (logical ledger)\n");
    } else if (s.worker_busy_us.empty()) {
        std::printf("workers  no worker lanes recorded\n");
    } else {
        std::printf("workers  %zu lanes", s.worker_busy_us.size());
        if (s.span_us > 0.0) {
            double busy = 0.0;
            for (const auto& [tid, us] : s.worker_busy_us) busy += us;
            const double util =
                busy / (s.span_us *
                        static_cast<double>(s.worker_busy_us.size()));
            std::printf(", %.1f%% mean utilization over the campaign span",
                        100.0 * util);
        }
        std::printf("\n");
    }

    if (logical) {
        std::printf("eta      n/a (logical ledger)\n");
    } else if (s.eta.size() < 2 || s.span_us <= 0.0) {
        std::printf("eta      not enough progress samples\n");
    } else {
        // Each progress instant predicted the remaining time; the ledger
        // knows the actual remainder (campaign end minus the instant).
        double abs_err_s = 0.0;
        std::size_t n = 0;
        for (const auto& [ts_us, eta_s] : s.eta) {
            if (ts_us >= s.span_us) continue;
            const double actual_s = (s.span_us - ts_us) / 1e6;
            abs_err_s += std::fabs(eta_s - actual_s);
            ++n;
        }
        if (n == 0)
            std::printf("eta      not enough progress samples\n");
        else
            std::printf("eta      %zu estimates, mean abs error %.2f s\n", n,
                        abs_err_s / static_cast<double>(n));
    }

    for (const std::string& warning : s.warnings)
        std::printf("warning  store recovery: %s\n", warning.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    const sfi::Cli cli(argc, argv, {"export-chrome"});
    for (const std::string& flag : cli.unknown_flags())
        std::fprintf(stderr, "warning: unknown flag --%s (ignored)\n",
                     flag.c_str());
    if (cli.positional().size() != 1) {
        std::fprintf(stderr,
                     "usage: %s LEDGER.jsonl [--export-chrome OUT.json]\n",
                     cli.program().c_str());
        return 2;
    }
    const std::string& path = cli.positional().front();

    LedgerFile file;
    try {
        file = sfi::obs::read_ledger_file(path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    const std::string out = cli.get("export-chrome", "");
    if (!out.empty()) {
        std::ofstream os(out);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
            return 1;
        }
        sfi::obs::export_chrome_trace(file, os);
        os.flush();
        if (!os) {
            std::fprintf(stderr, "error: write to %s failed\n", out.c_str());
            return 1;
        }
        std::printf("[chrome-trace] %zu events -> %s\n", file.events.size(),
                    out.c_str());
        return 0;
    }

    // A forensic artifact next to the ledger enriches the summary with
    // per-panel outcome-class tallies; absence is silent (empty map).
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    print_summary(summarize(file),
                  sfi::read_forensic_panel_tallies(dir +
                                                   "/forensics_points.csv"));
    return 0;
}
