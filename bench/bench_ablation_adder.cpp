// Ablation: adder topology (Kogge-Stone default vs. ripple-carry).
//
// The paper's synthesized core shows small dynamic slack on the adder
// (PoFF gains of a few to ~11 %). A parallel-prefix adder reproduces
// that; a ripple-carry adder's data-dependent carry chains leave huge
// dynamic slack (random operands rarely excite the full chain), inflating
// the apparent PoFF gain far beyond the paper's. This bench quantifies
// the difference on the DTA statistics and on the median benchmark.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/60);

    for (const AdderKind kind : {AdderKind::KoggeStone, AdderKind::RippleCarry}) {
        CoreModelConfig config = ctx.core_config;
        config.alu.adder = kind;
        config.cdf_cache_path.clear();  // distinct configs; skip the cache
        config.dta.cycles = std::min<std::size_t>(config.dta.cycles, 4096);
        const CharacterizedCore core(config);
        const char* name =
            kind == AdderKind::KoggeStone ? "kogge-stone" : "ripple-carry";

        std::cout << "=== adder = " << name << " ===\n";
        std::cout << "  adder cells: ";
        std::size_t adder_cells = 0;
        for (const AluUnit unit : core.alu().unit_of)
            if (unit == AluUnit::Adder) ++adder_cells;
        std::cout << adder_cells
                  << ", ALU depth: " << core.alu().netlist.logic_depth() << "\n";

        const double fsta = core.sta_fmax_mhz(0.7);
        std::cout << "  f_STA(0.7V) = " << fmt_fixed(fsta, 1) << " MHz\n";
        for (const ExClass cls : {ExClass::Add, ExClass::Sub, ExClass::Cmp}) {
            const double dyn = core.dynamic_fmax_mhz(cls, 0.7);
            std::cout << "  " << ex_class_name(cls)
                      << ": dynamic fmax = " << fmt_fixed(dyn, 1)
                      << " MHz (dynamic slack "
                      << fmt_fixed(100.0 * (dyn / fsta - 1.0), 1) << "% vs STA)\n";
        }

        // Per-bit spread of the add CDF (Fig. 2 structure).
        const auto& cdfs = *core.cdfs();
        std::cout << "  add endpoint max windows [ps @ Vref]: bit3="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Add, 3), 1)
                  << " bit15="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Add, 15), 1)
                  << " bit24="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Add, 24), 1)
                  << " bit31="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Add, 31), 1)
                  << "\n";

        // Median PoFF under each topology.
        const auto bench = make_benchmark(BenchmarkId::Median);
        auto model = core.make_model_c();
        MonteCarloRunner runner(*bench, *model, ctx.mc_config());
        OperatingPoint base;
        base.vdd = 0.7;
        const auto sweep = frequency_sweep(
            runner, base, bench::span(fsta, fsta * 1.6, 14));
        if (const auto poff = find_poff_mhz(sweep))
            std::cout << "  median PoFF (sigma=0): " << fmt_fixed(*poff, 1)
                      << " MHz (+"
                      << fmt_fixed(poff_gain_percent(*poff, fsta), 1)
                      << "% vs STA; paper: +11.4%)\n";
        else
            std::cout << "  median PoFF beyond +60% of STA\n";
        std::cout << "\n";
    }
    ctx.footer();
    return 0;
}
