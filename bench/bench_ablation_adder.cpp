// Ablation: adder topology (Kogge-Stone default vs. ripple-carry).
//
// The paper's synthesized core shows small dynamic slack on the adder
// (PoFF gains of a few to ~11 %). A parallel-prefix adder reproduces
// that; a ripple-carry adder's data-dependent carry chains leave huge
// dynamic slack (random operands rarely excite the full chain), inflating
// the apparent PoFF gain far beyond the paper's. This bench quantifies
// the difference on the DTA statistics and on the median benchmark.
//
// The per-topology median sweeps are store-backed panels of the
// ablation_adder campaign (one core override per adder kind); the
// characterization statistics are printed per panel from its core.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/60);

    campaign::CampaignSpec spec =
        campaign::figures::ablation_adder(ctx.core_config, ctx.trials, ctx.seed);
    ctx.apply_to(spec);

    campaign::RunOptions options = ctx.campaign_options();
    options.on_panel_start = [](const campaign::PanelSpec& panel,
                                const CharacterizedCore& core) {
        const bool kogge =
            core.config().alu.adder == AdderKind::KoggeStone;
        std::cout << "=== adder = "
                  << (kogge ? "kogge-stone" : "ripple-carry") << " ===\n";
        std::size_t adder_cells = 0;
        for (const AluUnit unit : core.alu().unit_of)
            if (unit == AluUnit::Adder) ++adder_cells;
        std::cout << "  adder cells: " << adder_cells
                  << ", ALU depth: " << core.alu().netlist.logic_depth() << "\n";

        const double fsta = core.sta_fmax_mhz(panel.base.vdd);
        std::cout << "  f_STA(0.7V) = " << fmt_fixed(fsta, 1) << " MHz\n";
        for (const ExClass cls : {ExClass::Add, ExClass::Sub, ExClass::Cmp}) {
            const double dyn = core.dynamic_fmax_mhz(cls, panel.base.vdd);
            std::cout << "  " << ex_class_name(cls)
                      << ": dynamic fmax = " << fmt_fixed(dyn, 1)
                      << " MHz (dynamic slack "
                      << fmt_fixed(100.0 * (dyn / fsta - 1.0), 1)
                      << "% vs STA)\n";
        }

        // Per-bit spread of the add CDF (Fig. 2 structure).
        const auto& cdfs = *core.cdfs();
        std::cout << "  add endpoint max windows [ps @ Vref]: bit3="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Add, 3), 1)
                  << " bit15="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Add, 15), 1)
                  << " bit24="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Add, 24), 1)
                  << " bit31="
                  << fmt_fixed(cdfs.endpoint_max_window_ps(ExClass::Add, 31), 1)
                  << "\n";
        std::cout << "  (paper median PoFF gain at sigma=0: +11.4%)\n";
    };
    campaign::CampaignRunner runner(std::move(spec), std::move(options));
    runner.run();
    ctx.footer();
    return 0;
}
