// Ablation: supply-noise clipping. The paper saturates the Gaussian noise
// at 2 sigma "to avoid the occurrence of large, physically unrealistic,
// spikes due to the tails of the distribution". This bench shows what the
// clip level does to the model B+ first-fault frequency and to model C
// application behaviour below the nominal threshold.
//
// The model C points (one per clip level, at the STA limit) are
// store-backed campaign panels; the B+ thresholds are deterministic and
// computed directly from the core.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/80);

    campaign::CampaignSpec spec = campaign::figures::ablation_noise_clip(
        ctx.core_config, ctx.trials, ctx.seed);
    ctx.apply_to(spec);
    for (campaign::PanelSpec& panel : spec.panels)
        panel.print_table = false;  // combined tables below instead

    campaign::RunOptions options = ctx.campaign_options();
    campaign::CampaignRunner runner(std::move(spec), std::move(options));

    const CharacterizedCore& core = runner.core();
    const double fsta = core.sta_fmax_mhz(0.7);
    std::cout << "model B+ first-fault frequency vs clip level "
                 "(Vdd = 0.7 V, sigma = 10 mV)\n\n";
    TextTable threshold_table({"clip [sigma]", "first fault [MHz]",
                               "shift vs STA"});
    for (const double clip : {1.0, 2.0, 3.0, 4.0}) {
        OperatingPoint point;
        point.vdd = 0.7;
        point.noise.sigma_mv = 10.0;
        point.noise.clip_sigmas = clip;
        const double f0 =
            campaign::first_fault_mhz(core, campaign::ModelSpec::b(), point);
        threshold_table.add_row({fmt_fixed(clip, 1), fmt_fixed(f0, 1),
                                 fmt_fixed(100.0 * (f0 / fsta - 1.0), 1) + "%"});
    }
    threshold_table.print(std::cout);

    const campaign::CampaignResult result = runner.run();
    std::cout << "\nmodel C on median at f = STA limit (" << fmt_fixed(fsta, 1)
              << " MHz), sigma = 25 mV\n\n";
    TextTable app_table({"clip [sigma]", "finished", "correct", "FI/kCycle"});
    for (const campaign::PanelResult& panel : result.panels) {
        const PointSummary& s = panel.sweep.at(0);
        app_table.add_row({fmt_fixed(s.point.noise.clip_sigmas, 1),
                           fmt_pct(s.finished_frac()),
                           fmt_pct(s.correct_frac()), fmt_sci(s.fi_rate, 3)});
    }
    app_table.print(std::cout);
    ctx.footer();
    return 0;
}
