// Ablation: supply-noise clipping. The paper saturates the Gaussian noise
// at 2 sigma "to avoid the occurrence of large, physically unrealistic,
// spikes due to the tails of the distribution". This bench shows what the
// clip level does to the model B+ first-fault frequency and to model C
// application behaviour below the nominal threshold.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/80);
    const CharacterizedCore core = ctx.make_core();
    const auto bench = make_benchmark(BenchmarkId::Median);
    const double fsta = core.sta_fmax_mhz(0.7);

    std::cout << "model B+ first-fault frequency vs clip level "
                 "(Vdd = 0.7 V, sigma = 10 mV)\n\n";
    TextTable threshold_table({"clip [sigma]", "first fault [MHz]",
                               "shift vs STA"});
    for (const double clip : {1.0, 2.0, 3.0, 4.0}) {
        auto model = core.make_model_b();
        OperatingPoint point;
        point.vdd = 0.7;
        point.noise.sigma_mv = 10.0;
        point.noise.clip_sigmas = clip;
        model->set_operating_point(point);
        const double f0 = model->first_fault_frequency_mhz();
        threshold_table.add_row({fmt_fixed(clip, 1), fmt_fixed(f0, 1),
                                 fmt_fixed(100.0 * (f0 / fsta - 1.0), 1) + "%"});
    }
    threshold_table.print(std::cout);

    std::cout << "\nmodel C on median at f = STA limit (" << fmt_fixed(fsta, 1)
              << " MHz), sigma = 25 mV\n\n";
    TextTable app_table({"clip [sigma]", "finished", "correct", "FI/kCycle"});
    for (const double clip : {1.0, 2.0, 3.0, 4.0}) {
        auto model = core.make_model_c();
        MonteCarloRunner runner(*bench, *model, ctx.mc_config());
        OperatingPoint point;
        point.freq_mhz = fsta;
        point.vdd = 0.7;
        point.noise.sigma_mv = 25.0;
        point.noise.clip_sigmas = clip;
        const PointSummary s = runner.run_point(point);
        app_table.add_row({fmt_fixed(clip, 1), fmt_pct(s.finished_frac()),
                           fmt_pct(s.correct_frac()), fmt_sci(s.fi_rate, 3)});
    }
    app_table.print(std::cout);
    ctx.footer();
    return 0;
}
