// Mitigation comparison campaign (docs/MITIGATIONS.md, EXPERIMENTS.md
// "Mitigation comparison"): CWC weight-check detection vs Razor replay vs
// the bare fault models A/B+/C on the app kernels, as a fig1-style
// frequency sweep around the STA limit at 0.7 V with 10 mV supply noise.
//
// Per (kernel, detector) panel the driver emits the ordinary sweep CSV
// via the campaign engine (point store, resume, forensics all apply),
// then joins the per-point detection counters from the forensic pass with
// the sweeps into cwc_compare.csv — finished/correct/FI rate plus the
// throughput/energy economics of each detector:
//
//   effective_mhz = (f / (1 + latency_frac)) * K / (K + detections * penalty)
//   power_uw      = PowerModel(vdd, f) * (1 + energy_frac)
//
// with K the golden kernel cycle count, penalty the per-detection replay
// (Razor, 11 cycles) or recovery (CWC, 2 cycles) cost, and the static
// fractions the per-detector overhead model (Razor pays energy for the
// shadow latches; CWC pays clock rate and energy for the widened
// datapath). cwc_poff.csv holds the per-detector PoFF and STA gain, and
// cwc_coverage.csv the exact a-priori CWC coverage table that
// scripts/check_cwc.py re-derives by brute force.
//
// Extra flags:
//   --benchmark NAME|all  kernel selection (default median)
//   --mitigation M        detector panels to run next to the bare models:
//                         "all" (default), "razor", "cwc", "none"
//   --points N            frequencies per sweep (default 7)
//   --block-bits K        CWC protected-block width (default 8)
//
// Expected qualitative result: CWC holds throughput at high FI rates
// (2-cycle recovery, no replay storm) but its balanced-flip coverage
// holes let some corruptions escape where Razor's flat coverage catches
// them — coverage holes traded against zero replay cycles.
#include "bench_common.hpp"

namespace {

using namespace sfi;

struct DetectorSpec {
    std::string tag;             ///< panel-name component
    campaign::ModelSpec model;
    double latency_frac = 0.0;   ///< static clock-rate derating
    double energy_frac = 0.0;    ///< static power overhead
    unsigned penalty_cycles = 0; ///< per-detection replay/recovery cost
};

struct PointRow {
    double freq_mhz = 0.0;
    double finished = 0.0;
    double correct = 0.0;
    double fi_rate = 0.0;
    std::size_t trials = 0;
    std::uint64_t probe_trials = 0;
    std::uint64_t detected = 0;
    std::uint64_t escaped = 0;
    double effective_mhz = 0.0;
    double power_uw = 0.0;
};

std::string panel_name(const std::string& kernel, const std::string& tag) {
    return "cwc_" + kernel + "_" + tag;
}

}  // namespace

int main(int argc, char** argv) {
    bench::Context ctx(argc, argv, /*default_trials=*/40,
                       {"benchmark", "mitigation", "points", "block-bits"});

    const std::string bench_flag = ctx.cli.get("benchmark", "median");
    std::vector<BenchmarkId> kernels;
    if (bench_flag == "all")
        for (const BenchmarkId id : all_benchmarks()) kernels.push_back(id);
    else
        kernels.push_back(bench::checked_benchmark(bench_flag));

    const std::string mitigation = ctx.cli.get("mitigation", "all");
    if (mitigation != "all" && mitigation != "razor" && mitigation != "cwc" &&
        mitigation != "none") {
        std::cerr << "error: --mitigation must be one of all, razor, cwc, "
                     "none (got \"" << mitigation << "\")\n";
        return 2;
    }
    const std::size_t points =
        static_cast<std::size_t>(ctx.checked_uint("points", 7));
    const unsigned block_bits =
        static_cast<unsigned>(ctx.checked_uint("block-bits", 8));
    CwcCode code;
    try {
        code = CwcCode::for_block_bits(block_bits);
    } catch (const std::exception& e) {
        std::cerr << "error: --block-bits: " << e.what() << "\n";
        return 2;
    }

    // The detector roster: the three bare models anchor the comparison,
    // the decorated model-C panels carry the mitigation trade-off.
    const RazorConfig razor_defaults;
    const double cwc_check_bits = static_cast<double>(code.n - code.k);
    const double cwc_latency_frac = 0.01 * cwc_check_bits;
    const double cwc_energy_frac =
        0.5 * cwc_check_bits / static_cast<double>(code.k);
    std::vector<DetectorSpec> detectors = {
        {"bareA", campaign::ModelSpec::a(1e-4)},
        {"bareB", campaign::ModelSpec::b()},
        {"bareC", campaign::ModelSpec::c()},
    };
    if (mitigation == "all" || mitigation == "razor")
        detectors.push_back({"razor",
                             campaign::ModelSpec::c().with_razor(
                                 razor_defaults.detection_coverage,
                                 razor_defaults.replay_penalty_cycles),
                             0.0, razor_defaults.energy_overhead_frac,
                             razor_defaults.replay_penalty_cycles});
    if (mitigation == "all" || mitigation == "cwc")
        detectors.push_back(
            {"cwc" + std::to_string(code.k),
             campaign::ModelSpec::c().with_cwc(code.k,
                                               /*recovery_cycles=*/2),
             cwc_latency_frac, cwc_energy_frac, /*penalty_cycles=*/2});

    std::cout << "Mitigation comparison: CWC(" << code.k << "," << code.n
              << "," << code.w << ") vs Razor vs bare A/B+/C\n\n";
    CharacterizedCore core = ctx.make_core();

    OperatingPoint base;
    base.vdd = 0.7;
    base.noise.sigma_mv = 10.0;

    campaign::CampaignSpec spec;
    spec.name = "cwc_compare";
    spec.core = ctx.core_config;
    spec.trials = ctx.trials;
    spec.seed = ctx.seed;
    ctx.apply_to(spec);
    std::uint64_t offset = 0;
    for (const BenchmarkId kernel : kernels)
        for (const DetectorSpec& detector : detectors) {
            campaign::PanelSpec panel;
            panel.name = panel_name(benchmark_name(kernel), detector.tag);
            panel.title = panel.name;
            panel.kernel = campaign::KernelSpec::bench(kernel);
            panel.model = detector.model;
            panel.base = base;
            panel.grid = campaign::GridSpec::sta_linspace(0.94, 1.12, points);
            panel.seed_offset = offset++;
            spec.panels.push_back(std::move(panel));
        }

    // The detection counters come from the forensic pass, so it is on by
    // default for this bench (into the CSV directory unless --forensics
    // chose a destination). PointSummary stays the frozen store payload.
    campaign::RunOptions options = ctx.campaign_options();
    if (options.forensics_dir.empty())
        options.forensics_dir = ctx.csv_path("cwc_forensics");

    const std::string forensics_dir = options.forensics_dir;
    campaign::CampaignRunner runner(spec, std::move(options));
    const campaign::CampaignResult result = runner.run();
    if (!result.completed) {
        ctx.footer();
        return 1;
    }

    // Join: sweeps (in-memory) x forensic per-point counters (artifact),
    // keyed by panel name + point order.
    std::vector<ForensicPointRow> forensic_rows;
    if (!forensics_dir.empty())
        forensic_rows = read_forensic_points(forensics_dir +
                                             "/forensics_points.csv");

    const PowerModel power;
    const double fsta = core.sta_fmax_mhz(base.vdd);

    CsvWriter compare(ctx.csv_path("cwc_compare.csv").empty()
                          ? "cwc_compare.csv"
                          : ctx.csv_path("cwc_compare.csv"));
    compare.header({"kernel", "detector", "freq_mhz", "vdd", "sigma_mv",
                    "finished", "correct", "fi_per_kcycle", "trials",
                    "probe_trials", "detected", "escaped",
                    "detected_per_trial", "effective_mhz", "power_uw",
                    "uw_per_mhz"});
    CsvWriter poff_csv(ctx.csv_path("cwc_poff.csv").empty()
                           ? "cwc_poff.csv"
                           : ctx.csv_path("cwc_poff.csv"));
    poff_csv.header({"kernel", "detector", "poff_mhz", "sta_mhz",
                     "gain_pct"});

    for (const BenchmarkId kernel : kernels) {
        const std::string kernel_name = benchmark_name(kernel);
        // Golden kernel length for the cycle-dilation model: one clean
        // run, no faults (model A at probability zero).
        const auto bench_app = make_benchmark(kernel);
        const auto clean = core.make_model_a(0.0);
        McConfig golden_config = ctx.mc_config();
        golden_config.trials = 1;
        const MonteCarloRunner golden(*bench_app, *clean, golden_config);
        const std::uint64_t kernel_cycles = golden.golden_run().kernel_cycles;

        std::cout << kernel_name << " (kernel " << kernel_cycles
                  << " cycles, STA " << fmt_fixed(fsta, 1) << " MHz):\n";
        TextTable table({"detector", "PoFF [MHz]", "gain %",
                         "eff. MHz @ top", "det/trial @ top",
                         "uW/MHz @ top"});

        for (const DetectorSpec& detector : detectors) {
            const std::string name = panel_name(kernel_name, detector.tag);
            const campaign::PanelResult& panel = result.panel(name);

            // Forensic rows for this panel, in point order.
            std::vector<const ForensicPointRow*> probe;
            for (const ForensicPointRow& row : forensic_rows)
                if (row.panel == name) probe.push_back(&row);

            std::vector<PointRow> rows;
            for (std::size_t i = 0; i < panel.sweep.size(); ++i) {
                const PointSummary& summary = panel.sweep[i];
                PointRow row;
                row.freq_mhz = summary.point.freq_mhz;
                row.finished = summary.finished_frac();
                row.correct = summary.correct_frac();
                row.fi_rate = summary.fi_rate;
                row.trials = summary.trials;
                if (i < probe.size()) {
                    row.probe_trials = probe[i]->trials;
                    row.detected = probe[i]->razor_detected;
                    row.escaped = probe[i]->razor_escaped;
                }
                const double per_trial =
                    row.probe_trials
                        ? static_cast<double>(row.detected) /
                              static_cast<double>(row.probe_trials)
                        : 0.0;
                const double derated =
                    row.freq_mhz / (1.0 + detector.latency_frac);
                const double dilation =
                    static_cast<double>(kernel_cycles) /
                    (static_cast<double>(kernel_cycles) +
                     per_trial * detector.penalty_cycles);
                row.effective_mhz = derated * dilation;
                row.power_uw =
                    power.core_power_uw(summary.point.vdd, row.freq_mhz) *
                    (1.0 + detector.energy_frac);
                rows.push_back(row);

                compare.cell(kernel_name)
                    .cell(detector.tag)
                    .cell(row.freq_mhz)
                    .cell(summary.point.vdd)
                    .cell(summary.point.noise.sigma_mv)
                    .cell(row.finished)
                    .cell(row.correct)
                    .cell(row.fi_rate)
                    .cell(static_cast<std::uint64_t>(row.trials))
                    .cell(row.probe_trials)
                    .cell(row.detected)
                    .cell(row.escaped)
                    .cell(per_trial)
                    .cell(row.effective_mhz)
                    .cell(row.power_uw)
                    .cell(row.effective_mhz > 0.0
                              ? row.power_uw / row.effective_mhz
                              : 0.0);
                compare.end_row();
            }

            const auto poff = find_poff_mhz(panel.sweep);
            poff_csv.cell(kernel_name).cell(detector.tag);
            if (poff)
                poff_csv.cell(*poff).cell(fsta).cell(
                    poff_gain_percent(*poff, fsta));
            else
                poff_csv.cell(std::string()).cell(fsta).cell(std::string());
            poff_csv.end_row();

            const PointRow* top = rows.empty() ? nullptr : &rows.back();
            table.add_row(
                {detector.tag,
                 poff ? fmt_fixed(*poff, 1) : std::string("> grid"),
                 poff ? fmt_fixed(poff_gain_percent(*poff, fsta), 1)
                      : std::string("n/a"),
                 top ? fmt_fixed(top->effective_mhz, 1) : "n/a",
                 top && top->probe_trials
                     ? fmt_fixed(static_cast<double>(top->detected) /
                                     static_cast<double>(top->probe_trials),
                                 2)
                     : "n/a",
                 top && top->effective_mhz > 0.0
                     ? fmt_fixed(top->power_uw / top->effective_mhz, 2)
                     : "n/a"});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    compare.close();
    poff_csv.close();

    // The exact a-priori coverage table (4-bit operand enumeration keeps
    // the brute-force CI check fast) — scripts/check_cwc.py validates it.
    const std::string coverage_path = ctx.csv_path("cwc_coverage.csv").empty()
                                          ? "cwc_coverage.csv"
                                          : ctx.csv_path("cwc_coverage.csv");
    write_cwc_coverage_csv(coverage_path, code, /*operand_bits=*/4);
    std::cout << "coverage table: " << coverage_path << "\n";

    ctx.footer();
    return 0;
}
