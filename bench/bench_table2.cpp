// Table 2 reproduction: overview of timing error models & features,
// generated from the fault-model implementations themselves.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    // --sigma sets the supply noise used to exhibit the B+/C noise
    // features (declared extra flag; > 0 keeps B+ reporting as B+).
    bench::Context ctx(argc, argv, /*default_trials=*/1, {"sigma"});
    const double sigma_mv = ctx.checked_positive_double("sigma", 10.0);
    ctx.core_config.dta.cycles = 256;  // features only; keep startup instant
    const CharacterizedCore core = ctx.make_core();

    auto model_a = core.make_model_a(0.001);
    auto model_b = core.make_model_b();
    auto model_bp = core.make_model_b();
    auto model_c = core.make_model_c();

    OperatingPoint noisy;
    noisy.noise.sigma_mv = sigma_mv;
    model_bp->set_operating_point(noisy);  // B with noise reports as B+
    model_c->set_operating_point(noisy);

    std::cout << "Table 2: overview of timing error models & features\n\n";
    TextTable table({"model", "fault injection technique", "timing data",
                     "multi-Vdd", "Vdd noise", "gate-level aware",
                     "instruction aware"});
    const std::vector<const FaultModel*> models = {
        model_a.get(), model_b.get(), model_bp.get(), model_c.get()};
    for (const FaultModel* model : models) {
        const ModelFeatures f = model->features();
        auto yn = [](bool v) { return v ? std::string("yes") : std::string("no"); };
        table.add_row({model->name(), f.technique, f.timing_data,
                       yn(f.multi_vdd), yn(f.vdd_noise), f.gate_level_aware,
                       yn(f.instruction_aware)});
    }
    table.print(std::cout);
    ctx.footer();
    return 0;
}
