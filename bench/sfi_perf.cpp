// Perf trajectory driver: benches the Monte-Carlo trial kernel (the
// hardware-limit axis of the ROADMAP north star) and emits BENCH_core.json
// in the stable schema of src/perf/report.hpp.
//
// What is measured:
//   * characterization phases — DTA evaluation and event-sim settle cost
//     (skipped on a CDF-cache hit: delete the cache for a cold timing);
//   * fault-sampling ops/sec — the models' corrupt() path in isolation;
//   * trial-kernel throughput (trials/sec) for models A, B, B+ and C at
//     fig. 1-style operating points, with per-thread scaling;
//   * the zero-fault fast path — the same sub-threshold point with the
//     fast path off vs. on (a machine-independent within-run ratio);
//   * a small end-to-end fig1 campaign (store disabled: every point is
//     computed).
//
// CI runs this under scripts/check_perf_regression.py against
// scripts/perf_baseline.json; see docs/ARCHITECTURE.md ("Performance
// instrumentation") for the schema and the gate's tolerance model.
//
// Extra flags: --out PATH (default BENCH_core.json), --max-threads N
// (scaling sweep ceiling; default --threads, i.e. hardware), --benchmark
// NAME (default median, the fig. 1 kernel), --campaign-trials N
// (default 10), --no-campaign.
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"

namespace {

using namespace sfi;

// One timed run_point: returns the ThreadSample for `threads` workers.
perf::ThreadSample time_point(const Benchmark& bench, FaultModel& model,
                              const OperatingPoint& point, McConfig config,
                              std::size_t threads,
                              perf::PhaseProfile* profile) {
    config.threads = threads;
    MonteCarloRunner runner(bench, model, config);
    runner.run_point(point);  // warm-up: page in code, clone contexts once
    // Attach the profile only now so the phases table counts exactly the
    // measured samples, not the warm-ups.
    runner.set_perf_profile(profile);
    perf::Stopwatch watch;
    runner.run_point(point);
    perf::ThreadSample sample;
    sample.threads = threads;
    sample.seconds = watch.seconds();
    sample.trials_per_sec =
        sample.seconds > 0.0
            ? static_cast<double>(config.trials) / sample.seconds
            : 0.0;
    return sample;
}

// Doubling thread counts up to `max_threads`, always including the top.
std::vector<std::size_t> thread_ladder(std::size_t max_threads) {
    std::vector<std::size_t> ladder;
    for (std::size_t t = 1; t < max_threads; t *= 2) ladder.push_back(t);
    ladder.push_back(max_threads);
    return ladder;
}

perf::KernelBench bench_kernel(const std::string& label, const Benchmark& bench,
                               FaultModel& model, const OperatingPoint& point,
                               McConfig config,
                               const std::vector<std::size_t>& threads,
                               perf::PhaseProfile* profile) {
    perf::KernelBench kernel;
    kernel.label = label;
    model.set_operating_point(point);
    kernel.model = model.name();
    kernel.benchmark = bench.name();
    kernel.freq_mhz = point.freq_mhz;
    kernel.vdd = point.vdd;
    kernel.sigma_mv = point.noise.sigma_mv;
    kernel.trials = config.trials;
    kernel.fast_path = config.zero_fault_fast_path;
    for (const std::size_t t : threads)
        kernel.scaling.push_back(
            time_point(bench, model, point, config, t, profile));
    const perf::ThreadSample& serial = kernel.scaling.front();
    std::printf("  %-26s %-6s f=%7.1f MHz sigma=%4.1f  %9.1f trials/s @1thr",
                label.c_str(), kernel.model.c_str(), kernel.freq_mhz,
                kernel.sigma_mv, serial.trials_per_sec);
    if (kernel.scaling.size() > 1) {
        const perf::ThreadSample& top = kernel.scaling.back();
        std::printf("  %9.1f @%zuthr", top.trials_per_sec, top.threads);
    }
    std::printf("\n");
    return kernel;
}

// The models' corrupt() path in isolation: synthetic add-class events.
// Scalar runs charge Phase::FaultSampling; batched/quantized runs charge
// Phase::FaultSamplingBatch. Returns the measured ops/sec.
double bench_fault_sampling(FaultModel& model, const OperatingPoint& point,
                            std::size_t ops, perf::PhaseProfile& profile,
                            perf::Phase phase) {
    model.set_operating_point(point);
    model.reset_stats();
    model.reseed(0xFA57ULL);
    ExEvent ev;
    ev.op = Op::ADD;
    ev.cls = ExClass::Add;
    Rng rng(42);
    perf::Stopwatch watch;
    std::uint32_t sink = 0;
    for (std::size_t i = 0; i < ops; ++i) {
        ev.operand_a = rng.u32();
        ev.operand_b = rng.u32();
        ev.prev_result = sink;
        sink = model.on_ex_result(ev, ev.operand_a + ev.operand_b);
    }
    const double seconds = watch.seconds();
    profile.add(phase, seconds, ops);
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/256,
                       {"out", "max-threads", "benchmark", "campaign-trials",
                        "no-campaign"});

    const std::string out_path = ctx.cli.get("out", "BENCH_core.json");
    // Ceiling of the scaling ladder: --max-threads, else --threads
    // (0 = one per hardware thread, like McConfig::threads).
    const std::size_t max_threads = resolve_thread_count(
        static_cast<std::size_t>(ctx.checked_uint("max-threads", ctx.threads)));
    const BenchmarkId bench_id =
        bench::checked_benchmark(ctx.cli.get("benchmark", "median"));

    perf::PerfReport report;
    report.seed = ctx.seed;
    report.dta_cycles = ctx.core_config.dta.cycles;
    report.trials = ctx.trials;
    report.dispatch = cpu_dispatch_name(ctx.dispatch);
    perf::Stopwatch total_watch;

    // Characterization (DTA phases land in the profile on a cache miss).
    perf::Stopwatch core_watch;
    CharacterizedCore core(ctx.core_config, &report.phases);
    const double core_s = core_watch.seconds();
    std::printf("[core] %zu cells, f_STA(0.7 V) = %.1f MHz, DTA %zu "
                "cycles/class, characterization %.1f s\n",
                core.alu().netlist.cell_count(), core.sta_fmax_mhz(0.7),
                ctx.core_config.dta.cycles, core_s);

    const auto bench = make_benchmark(bench_id);
    report.benchmark = bench->name();
    McConfig mc = ctx.mc_config();

    auto model_a = core.make_model_a(1e-4);
    auto model_b = core.make_model_b();
    auto model_c = core.make_model_c();

    // Fig. 1-style anchors at 0.7 V: the models' first-fault frequencies.
    OperatingPoint base;
    base.vdd = 0.7;
    base.noise = {};
    model_b->set_operating_point(base);
    const double f0_b = model_b->first_fault_frequency_mhz();
    OperatingPoint bplus_base = base;
    bplus_base.noise.sigma_mv = 10.0;
    model_b->set_operating_point(bplus_base);
    const double f0_bplus = model_b->first_fault_frequency_mhz();
    double f0_c = 0.0;
    model_c->set_operating_point(base);
    for (const ExClass cls : Alu::instruction_classes()) {
        const double f = model_c->first_fault_frequency_mhz(cls);
        f0_c = f0_c == 0.0 ? f : std::min(f0_c, f);
    }

    std::printf("\n[fault sampling] %zu synthetic ALU ops/model\n", ctx.trials * 1000);
    const std::size_t sampling_ops = ctx.trials * 1000;
    OperatingPoint fault_b = base;
    fault_b.freq_mhz = f0_b * 1.002;
    OperatingPoint fault_bplus = bplus_base;
    fault_bplus.freq_mhz = f0_bplus * 1.01;
    OperatingPoint fault_c = base;
    fault_c.freq_mhz = f0_c * 1.02;
    bench_fault_sampling(*model_a, fault_b, sampling_ops, report.phases,
                         perf::Phase::FaultSampling);
    // Model B+ under each sampling mode — the within-run comparison that
    // feeds the report's "fault_sampling" object (ratio gated in CI).
    model_b->set_sampling_mode(FaultSamplingMode::Scalar);
    report.fault_sampling.scalar_ops_per_sec =
        bench_fault_sampling(*model_b, fault_bplus, sampling_ops,
                             report.phases, perf::Phase::FaultSampling);
    model_b->set_sampling_mode(FaultSamplingMode::Batched);
    report.fault_sampling.batched_ops_per_sec =
        bench_fault_sampling(*model_b, fault_bplus, sampling_ops,
                             report.phases, perf::Phase::FaultSamplingBatch);
    model_b->set_sampling_mode(FaultSamplingMode::Quantized);
    report.fault_sampling.quantized_ops_per_sec =
        bench_fault_sampling(*model_b, fault_bplus, sampling_ops,
                             report.phases, perf::Phase::FaultSamplingBatch);
    model_b->set_sampling_mode(ctx.core_config.fault_sampling);
    report.fault_sampling.batched_speedup =
        report.fault_sampling.scalar_ops_per_sec > 0.0
            ? report.fault_sampling.batched_ops_per_sec /
                  report.fault_sampling.scalar_ops_per_sec
            : 0.0;
    report.fault_sampling.avx2 = noise_conversion_uses_avx2();
    std::printf("  B+ corrupt(): scalar %.2e, batched %.2e (%.2fx), "
                "quantized %.2e ops/s%s\n",
                report.fault_sampling.scalar_ops_per_sec,
                report.fault_sampling.batched_ops_per_sec,
                report.fault_sampling.batched_speedup,
                report.fault_sampling.quantized_ops_per_sec,
                report.fault_sampling.avx2 ? " [avx2]" : "");
    bench_fault_sampling(*model_c, fault_c, sampling_ops, report.phases,
                         perf::Phase::FaultSamplingBatch);

    std::printf("\n[trial kernels] %zu trials/sample, %s benchmark\n",
                ctx.trials, report.benchmark.c_str());
    const std::vector<std::size_t> ladder = thread_ladder(max_threads);
    OperatingPoint clean_b = base;
    clean_b.freq_mhz = f0_b * 0.97;

    report.kernels.push_back(bench_kernel("fig1-modelB-fault", *bench,
                                          *model_b, fault_b, mc, ladder,
                                          &report.phases));
    {
        // The fig1 model-B workhorse: a sub-threshold clean run with the
        // fast path disabled, i.e. the full ISS simulation cost per trial.
        McConfig sim_mc = mc;
        sim_mc.zero_fault_fast_path = false;
        report.kernels.push_back(bench_kernel("fig1-modelB-clean-sim", *bench,
                                              *model_b, clean_b, sim_mc,
                                              ladder, &report.phases));
    }
    report.kernels.push_back(bench_kernel("fig1-modelBplus-sigma10", *bench,
                                          *model_b, fault_bplus, mc, ladder,
                                          &report.phases));
    {
        // Same point under the quantized (B-q) sampling variant. The
        // runner stamps the mode from McConfig, so it needs its own
        // config; the model is stamped up front so the label reads "B-q".
        McConfig q_mc = mc;
        q_mc.fault_sampling = FaultSamplingMode::Quantized;
        model_b->set_sampling_mode(FaultSamplingMode::Quantized);
        report.kernels.push_back(bench_kernel("fig1-modelBplus-sigma10-q",
                                              *bench, *model_b, fault_bplus,
                                              q_mc, {1}, &report.phases));
        model_b->set_sampling_mode(ctx.core_config.fault_sampling);
    }
    report.kernels.push_back(bench_kernel("modelC-fault", *bench, *model_c,
                                          fault_c, mc, {1}, &report.phases));
    report.kernels.push_back(bench_kernel("modelA-p1e-4", *bench, *model_a,
                                          fault_b, mc, {1}, &report.phases));
    {
        // CWC decorator cost on top of model C: same point as modelC-fault,
        // so the delta is the per-op weight-check overhead.
        CwcDetectionModel cwc(core.make_model_c(), CwcConfig{});
        report.kernels.push_back(bench_kernel("modelC-cwc8", *bench, cwc,
                                              fault_c, mc, {1},
                                              &report.phases));
    }

    // Zero-fault fast path: same point, fast path off vs. on (serial).
    {
        McConfig sim_mc = mc;
        sim_mc.zero_fault_fast_path = false;
        const perf::ThreadSample sim =
            time_point(*bench, *model_b, clean_b, sim_mc, 1, nullptr);
        const perf::ThreadSample fast =
            time_point(*bench, *model_b, clean_b, mc, 1, nullptr);
        report.fast_path.sim_trials_per_sec = sim.trials_per_sec;
        report.fast_path.fastpath_trials_per_sec = fast.trials_per_sec;
        report.fast_path.speedup =
            sim.trials_per_sec > 0.0
                ? fast.trials_per_sec / sim.trials_per_sec
                : 0.0;
        std::printf("\n[fast path] sub-threshold model B: %.1f -> %.1f "
                    "trials/s (%.0fx)\n",
                    sim.trials_per_sec, fast.trials_per_sec,
                    report.fast_path.speedup);
    }

    // End-to-end fig1 campaign, store disabled so every point computes.
    if (!ctx.cli.get_bool("no-campaign", false)) {
        const std::size_t campaign_trials =
            static_cast<std::size_t>(ctx.checked_uint("campaign-trials", 10));
        campaign::CampaignSpec spec = campaign::figures::fig1(
            ctx.core_config, campaign_trials, ctx.seed);
        ctx.apply_to(spec);
        campaign::RunOptions options;
        options.threads = ctx.threads;
        options.dispatch = ctx.dispatch;
        // Campaign counters land in the report's v4 "metrics" block (and
        // in the --trace ledger when one is attached).
        options.metrics = &report.metrics;
        options.ledger = ctx.ledger.get();
        perf::Stopwatch watch;
        campaign::CampaignRunner runner(std::move(spec), std::move(options));
        const campaign::CampaignResult result = runner.run();
        perf::CampaignSample sample;
        sample.figure = "fig1";
        sample.seconds = watch.seconds();
        sample.trials_spent = result.trials_spent;
        report.campaign = sample;
        std::printf("\n[campaign] fig1, %zu trials/point: %llu trials in "
                    "%.2f s\n",
                    campaign_trials,
                    static_cast<unsigned long long>(sample.trials_spent),
                    sample.seconds);
    }

    report.wall_clock_s = total_watch.seconds();
    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 1;
    }
    perf::write_bench_core_json(os, report);
    std::printf("\n[report] %s\n", out_path.c_str());
    ctx.footer();
    return 0;
}
