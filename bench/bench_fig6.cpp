// Fig. 6 reproduction: program performance of mat_mult (8- and 16-bit),
// k-means and dijkstra under model C at Vdd = 0.7 V, sigma = 10 mV, with
// the model B+ hard threshold shown for contrast.
//
// Expected shapes (paper §4.3):
//  * mat_mult 8/16-bit behave alike, with the lower bit-width keeping
//    more runs fully correct below the STA limit; the MSE magnitudes
//    differ by a large constant factor (operand/result ranges);
//  * k-means sees a far lower FI rate than mat_mult at equal frequency
//    yet still loses 30-40 % of its quality metric while finishing;
//  * dijkstra has a very narrow transition: small PoFF gain, then a few
//    percent more frequency kill it completely at < 1 FI/kCycle;
//  * model B+ fails all benchmarks identically at its threshold,
//    providing none of this per-application detail.
//
// Thin driver over the declarative fig6 campaign (one store-backed panel
// per benchmark); the model-B+ contrast threshold is computed here.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);

    campaign::CampaignSpec spec =
        campaign::figures::fig6(ctx.core_config, ctx.trials, ctx.seed);
    ctx.apply_to(spec);
    for (campaign::PanelSpec& panel : spec.panels) panel.title.clear();

    campaign::RunOptions options = ctx.campaign_options();
    options.on_panel_start = [](const campaign::PanelSpec& panel,
                                const CharacterizedCore& core) {
        // Model B+ threshold for contrast (same base operating point).
        const double bplus = campaign::first_fault_mhz(
            core, campaign::ModelSpec::b(), panel.base);
        std::cout << "Fig. 6  " << benchmark_name(panel.kernel.benchmark)
                  << "  (Vdd = 0.7 V, sigma = 10 mV; STA "
                  << fmt_fixed(core.sta_fmax_mhz(panel.base.vdd), 1)
                  << " MHz; model B+ fails all benchmarks at "
                  << fmt_fixed(bplus, 1) << " MHz)\n";
    };
    campaign::CampaignRunner runner(std::move(spec), std::move(options));
    runner.run();
    ctx.footer();
    return 0;
}
