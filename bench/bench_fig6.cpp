// Fig. 6 reproduction: program performance of mat_mult (8- and 16-bit),
// k-means and dijkstra under model C at Vdd = 0.7 V, sigma = 10 mV, with
// the model B+ hard threshold shown for contrast.
//
// Expected shapes (paper §4.3):
//  * mat_mult 8/16-bit behave alike, with the lower bit-width keeping
//    more runs fully correct below the STA limit; the MSE magnitudes
//    differ by a large constant factor (operand/result ranges);
//  * k-means sees a far lower FI rate than mat_mult at equal frequency
//    yet still loses 30-40 % of its quality metric while finishing;
//  * dijkstra has a very narrow transition: small PoFF gain, then a few
//    percent more frequency kill it completely at < 1 FI/kCycle;
//  * model B+ fails all benchmarks identically at its threshold,
//    providing none of this per-application detail.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);
    const CharacterizedCore core = ctx.make_core();

    OperatingPoint base;
    base.vdd = 0.7;
    base.noise.sigma_mv = 10.0;

    // Model B+ threshold for contrast.
    auto model_bp = core.make_model_b();
    model_bp->set_operating_point(base);
    const double bplus_threshold = model_bp->first_fault_frequency_mhz();
    const double fsta = core.sta_fmax_mhz(0.7);

    struct Panel {
        BenchmarkId id;
        double lo, hi;       // sweep range relative to fSTA
        std::size_t points;
    };
    const std::vector<Panel> panels = {
        {BenchmarkId::MatMult8, 0.97, 1.30, 18},
        {BenchmarkId::MatMult16, 0.97, 1.30, 18},
        {BenchmarkId::KMeans, 0.97, 1.35, 18},
        {BenchmarkId::Dijkstra, 0.99, 1.22, 20},  // narrow: higher resolution
    };

    for (const Panel& panel : panels) {
        const auto bench = make_benchmark(panel.id);
        auto model = core.make_model_c();
        MonteCarloRunner runner(*bench, *model, ctx.mc_config());
        const auto sweep = frequency_sweep(
            runner, base,
            bench::span(fsta * panel.lo, fsta * panel.hi, panel.points));

        std::cout << "Fig. 6  " << bench->name()
                  << "  (Vdd = 0.7 V, sigma = 10 mV; STA "
                  << fmt_fixed(fsta, 1) << " MHz; model B+ fails all "
                  << "benchmarks at " << fmt_fixed(bplus_threshold, 1)
                  << " MHz)\n";
        print_sweep(std::cout, "", sweep, bench->error_unit());
        if (const auto poff = find_poff_mhz(sweep)) {
            std::cout << "PoFF = " << fmt_fixed(*poff, 1) << " MHz ("
                      << fmt_fixed(poff_gain_percent(*poff, fsta), 1)
                      << "% vs STA)\n";
        }
        std::cout << "\n";
        write_sweep_csv(ctx.csv_path("fig6_" + bench->name() + ".csv"), sweep);
    }
    ctx.footer();
    return 0;
}
