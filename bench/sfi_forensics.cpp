// Fault-forensics driver: runs models A / B / B+ / C (plus a razor-
// decorated B) at a fig1-style operating point just past model B's
// first-fault threshold, re-runs every trial under the forensic probe and
// reconciles the per-trial outcome taxonomy against the point summaries:
//
//   hang                       == trials - finished
//   sdc                        == finished - correct
//   masked + latent + detected == correct
//   (non-razor) sum(records per trial) == sum(FiStats.injections)
//   (razor)     probe detected+escaped == FiStats.injections per trial
//
// Exits 1 on any mismatch — CI runs it as the taxonomy acceptance gate —
// and writes the ForensicSink artifacts (records.bin, forensics.json,
// CSV tables) so the record stream can be byte-compared across thread
// counts (--threads N changes nothing; see src/fi/forensics.hpp).
#include "bench_common.hpp"

#include <cstdio>

namespace {

struct VariantResult {
    std::string name;
    sfi::PointSummary summary;
    std::array<std::uint64_t, sfi::kOutcomeClassCount> outcomes{};
    std::uint64_t records = 0;
    std::uint64_t detected = 0;
    std::uint64_t escaped = 0;
    bool ok = true;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100, {"benchmark"});
    const BenchmarkId bench_id =
        bench::checked_benchmark(ctx.cli.get("benchmark", "median"));
    const std::string forensics_dir =
        ctx.forensics_dir.empty() ? "bench_forensics" : ctx.forensics_dir;

    const CharacterizedCore core = ctx.make_core();

    // Fig1-style point: just past model B's deterministic first-fault
    // threshold at 0.7 V, so every model injects but trials still finish.
    OperatingPoint base;
    base.vdd = 0.7;
    {
        auto model_b = core.make_model_b();
        model_b->set_operating_point(base);
        base.freq_mhz = model_b->first_fault_frequency_mhz() + 1.0;
    }
    std::printf("[point] f = %.1f MHz, Vdd = %.2f V (%s)\n\n", base.freq_mhz,
                base.vdd, benchmark_name(bench_id));

    struct Variant {
        std::string name;
        std::unique_ptr<FaultModel> model;
        double sigma_mv = 0.0;
        bool razor = false;
    };
    std::vector<Variant> variants;
    variants.push_back({"A", core.make_model_a(1e-5), 0.0, false});
    variants.push_back({"B", core.make_model_b(), 0.0, false});
    variants.push_back({"B+", core.make_model_b(), 10.0, false});
    variants.push_back({"C", core.make_model_c(), 0.0, false});
    // Full coverage: every corruption replays, so trials finish correct
    // and classify Detected — the taxonomy's detection path; a partial
    // coverage (0.9) variant exercises escapes feeding Hang/SDC instead.
    variants.push_back({"razor(B)",
                        std::make_unique<ErrorDetectionModel>(
                            core.make_model_b(), RazorConfig{1.0, 11}),
                        0.0, true});
    variants.push_back({"razor(B,.9)",
                        std::make_unique<ErrorDetectionModel>(
                            core.make_model_b(), RazorConfig{0.9, 11}),
                        0.0, true});

    const auto bench_app = make_benchmark(bench_id);
    ForensicSink sink;
    perf::PhaseProfile profile;
    std::vector<VariantResult> results;
    bool all_ok = true;

    for (Variant& variant : variants) {
        OperatingPoint point = base;
        point.noise.sigma_mv = variant.sigma_mv;

        MonteCarloRunner mc(*bench_app, *variant.model, ctx.mc_config());
        mc.set_perf_profile(&profile);
        sampling::BatchedExecutor executor(mc, ctx.threads);

        // Summary via the ordinary path, then the forensic re-run of the
        // same trial indices — the pair the taxonomy must reconcile with.
        VariantResult res;
        res.name = variant.name;
        res.summary = executor.run_fixed(point, ctx.trials, ctx.trials);

        std::vector<TrialForensics> fxs;
        {
            const perf::ScopedPhaseTimer timer(&profile,
                                               perf::Phase::Forensics,
                                               ctx.trials);
            fxs = executor.run_forensics(point, ctx.trials);
        }

        const std::uint32_t pid = sink.begin_point(
            variant.name, variant.name, benchmark_name(bench_id), point);
        std::uint64_t finished = 0, correct = 0, fi_injections = 0;
        for (TrialForensics& fx : fxs) {
            ++res.outcomes[static_cast<std::size_t>(fx.cls)];
            res.records += fx.records.size();
            res.detected += fx.razor_detected;
            res.escaped += fx.razor_escaped;
            if (fx.outcome.finished) ++finished;
            if (fx.outcome.correct) ++correct;
            fi_injections += fx.outcome.fi.injections;
            if (variant.razor &&
                fx.razor_detected + fx.razor_escaped !=
                    fx.outcome.fi.injections) {
                std::printf("  MISMATCH [%s]: razor verdicts %llu != "
                            "FiStats injections %llu\n",
                            variant.name.c_str(),
                            static_cast<unsigned long long>(
                                fx.razor_detected + fx.razor_escaped),
                            static_cast<unsigned long long>(
                                fx.outcome.fi.injections));
                res.ok = false;
            }
            sink.add_trial(pid, fx.cls, fx.outcome.finished,
                           fx.outcome.correct, fx.razor_detected,
                           fx.razor_escaped, std::move(fx.records),
                           fx.detection_latencies);
        }

        const auto cls = [&res](OutcomeClass c) {
            return res.outcomes[static_cast<std::size_t>(c)];
        };
        const auto check = [&res](bool cond, const char* what) {
            if (cond) return;
            std::printf("  MISMATCH [%s]: %s\n", res.name.c_str(), what);
            res.ok = false;
        };
        check(finished == res.summary.finished_count,
              "forensic finished != summary finished");
        check(correct == res.summary.correct_count,
              "forensic correct != summary correct");
        check(cls(OutcomeClass::Hang) ==
                  res.summary.trials - res.summary.finished_count,
              "hang != trials - finished");
        check(cls(OutcomeClass::SDC) ==
                  res.summary.finished_count - res.summary.correct_count,
              "sdc != finished - correct");
        check(cls(OutcomeClass::Masked) + cls(OutcomeClass::LatentCorrupt) +
                      cls(OutcomeClass::Detected) ==
                  res.summary.correct_count,
              "masked + latent + detected != correct");
        if (!variant.razor)
            check(res.records == fi_injections,
                  "record count != FiStats injections");
        if (!variant.razor)
            check(res.detected == 0 && res.escaped == 0,
                  "razor counters nonzero without a razor stage");

        all_ok = all_ok && res.ok;
        results.push_back(std::move(res));
    }

    std::printf("%-11s %7s %9s %8s %7s %7s %5s %9s %8s %9s\n", "model",
                "trials", "finished", "correct", "masked", "latent", "sdc",
                "hang", "detected", "records");
    for (const VariantResult& res : results) {
        const auto cls = [&res](OutcomeClass c) {
            return res.outcomes[static_cast<std::size_t>(c)];
        };
        std::printf("%-11s %7zu %9zu %8zu %7llu %7llu %5llu %9llu %8llu %9llu\n",
                    res.name.c_str(), res.summary.trials,
                    res.summary.finished_count, res.summary.correct_count,
                    static_cast<unsigned long long>(cls(OutcomeClass::Masked)),
                    static_cast<unsigned long long>(
                        cls(OutcomeClass::LatentCorrupt)),
                    static_cast<unsigned long long>(cls(OutcomeClass::SDC)),
                    static_cast<unsigned long long>(cls(OutcomeClass::Hang)),
                    static_cast<unsigned long long>(
                        cls(OutcomeClass::Detected)),
                    static_cast<unsigned long long>(res.records));
    }

    sink.write_artifacts(forensics_dir);
    std::printf("\n[forensics] %llu records over %llu trials -> %s "
                "(forensics phase: %.2f s)\n",
                static_cast<unsigned long long>(sink.records().size()),
                static_cast<unsigned long long>(sink.trials_recorded()),
                forensics_dir.c_str(),
                profile.stats(perf::Phase::Forensics).seconds);
    std::printf("[reconciliation] %s\n", all_ok ? "OK" : "FAILED");
    ctx.footer();
    return all_ok ? 0 : 1;
}
