// Ablation: fault policy at a violated endpoint — bit-flip (the paper's
// choice) vs. stale capture (the flip-flop keeps its previous value).
//
// Stale capture corrupts only when the previous latched bit differs from
// the correct one (~50 % of violations), so its effective error rate and
// application impact sit visibly below bit-flip at the same operating
// point.
//
// One store-backed campaign panel per (benchmark, policy); the driver
// interleaves the two policies per frequency in the historical table
// shape.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/80);

    campaign::CampaignSpec spec = campaign::figures::ablation_policy(
        ctx.core_config, ctx.trials, ctx.seed);
    ctx.apply_to(spec);
    for (campaign::PanelSpec& panel : spec.panels)
        panel.print_table = false;  // interleaved tables below instead

    campaign::RunOptions options = ctx.campaign_options();
    campaign::CampaignRunner runner(std::move(spec), std::move(options));
    const campaign::CampaignResult result = runner.run();

    for (const BenchmarkId id : {BenchmarkId::KMeans, BenchmarkId::Median}) {
        const auto bench = make_benchmark(id);
        std::cout << "=== " << bench->name() << " ===\n";
        TextTable table({"f [MHz]", "policy", "finished", "correct",
                         "FI/kCycle", bench->error_unit()});
        const campaign::PanelResult& flips = result.panel(
            std::string("ablation_policy_") + benchmark_name(id) + "_bitflip");
        const campaign::PanelResult& stale = result.panel(
            std::string("ablation_policy_") + benchmark_name(id) + "_stale");
        for (std::size_t i = 0; i < flips.sweep.size(); ++i) {
            for (const auto* panel : {&flips, &stale}) {
                const PointSummary& s = panel->sweep.at(i);
                table.add_row({fmt_fixed(s.point.freq_mhz, 1),
                               panel == &flips ? "bit-flip" : "stale-capture",
                               fmt_pct(s.finished_frac()),
                               fmt_pct(s.correct_frac()), fmt_sci(s.fi_rate, 3),
                               fmt_sci(s.mean_error, 3)});
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    ctx.footer();
    return 0;
}
