// Ablation: fault policy at a violated endpoint — bit-flip (the paper's
// choice) vs. stale capture (the flip-flop keeps its previous value).
//
// Stale capture corrupts only when the previous latched bit differs from
// the correct one (~50 % of violations), so its effective error rate and
// application impact sit visibly below bit-flip at the same operating
// point.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/80);
    const CharacterizedCore core = ctx.make_core();

    OperatingPoint base;
    base.vdd = 0.7;
    base.noise.sigma_mv = 10.0;
    const double fsta = core.sta_fmax_mhz(0.7);

    for (const BenchmarkId id : {BenchmarkId::KMeans, BenchmarkId::Median}) {
        const auto bench = make_benchmark(id);
        std::cout << "=== " << bench->name() << " ===\n";
        TextTable table({"f [MHz]", "policy", "finished", "correct",
                         "FI/kCycle", bench->error_unit()});
        for (const double f :
             {fsta * 1.00, fsta * 1.05, fsta * 1.10, fsta * 1.15}) {
            for (const FaultPolicy policy :
                 {FaultPolicy::BitFlip, FaultPolicy::StaleCapture}) {
                auto model = core.make_model_c();
                model->set_policy(policy);
                MonteCarloRunner runner(*bench, *model, ctx.mc_config());
                OperatingPoint point = base;
                point.freq_mhz = f;
                const PointSummary s = runner.run_point(point);
                table.add_row({fmt_fixed(f, 1),
                               policy == FaultPolicy::BitFlip ? "bit-flip"
                                                              : "stale-capture",
                               fmt_pct(s.finished_frac()),
                               fmt_pct(s.correct_frac()), fmt_sci(s.fi_rate, 3),
                               fmt_sci(s.mean_error, 3)});
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    ctx.footer();
    return 0;
}
