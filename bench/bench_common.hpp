// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --trials N       Monte-Carlo trials per data point (default varies)
//   --threads N      MC worker threads per data point (default 0 = one per
//                    hardware thread; results are bit-identical at any N)
//   --dta-cycles N   DTA characterization kernel length (default 8192)
//   --seed S         Monte-Carlo base seed
//   --cache PATH     CDF cache file (default sfi_cdf_cache.bin in cwd)
//   --store PATH     campaign point store (default sfi_point_store.bin;
//                    completed Monte-Carlo points are persisted there and
//                    re-runs with the same parameters are served from it)
//   --no-store       disable the point store (recompute everything)
//   --csv-dir DIR    directory for CSV dumps (default bench_csv)
//   --no-csv         disable CSV output
//
// Flags outside this set (plus a bench's declared extras) produce a
// warning on stderr but are still parsed — typos like `--trails` no
// longer pass silently, while binaries that forward foreign flags keep
// working. Negative --trials/--seed/--dta-cycles are rejected with a
// clear message instead of wrapping to huge unsigned values (the same
// rationale as Cli::get_threads's clamping).
#pragma once

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sfi/sfi.hpp"

namespace sfi::bench {

inline std::vector<std::string> known_flags(std::vector<std::string> extra) {
    std::vector<std::string> known = {"trials", "threads", "dta-cycles",
                                      "seed",   "cache",   "store",
                                      "no-store", "csv-dir", "no-csv"};
    known.insert(known.end(), std::make_move_iterator(extra.begin()),
                 std::make_move_iterator(extra.end()));
    return known;
}

struct Context {
    Cli cli;
    CoreModelConfig core_config;
    std::size_t trials = 0;
    std::uint64_t seed = 1;
    std::size_t threads = 0;
    std::string csv_dir;
    std::string store_path;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();

    /// `extra_known` declares bench-specific flags (e.g. fig5's --points)
    /// so they are not reported as unknown.
    Context(int argc, char** argv, std::size_t default_trials,
            std::vector<std::string> extra_known = {})
        : cli(argc, argv, known_flags(std::move(extra_known))) {
        for (const std::string& flag : cli.unknown_flags())
            std::cerr << "warning: unknown flag --" << flag
                      << " (ignored; see bench/README.md for the flag list)\n";
        trials = static_cast<std::size_t>(
            checked_uint("trials", static_cast<std::uint64_t>(default_trials)));
        seed = checked_uint("seed", 1);
        threads = cli.get_threads();
        core_config.dta.cycles =
            static_cast<std::size_t>(checked_uint("dta-cycles", 8192));
        core_config.cdf_cache_path = cli.get("cache", "sfi_cdf_cache.bin");
        // No eager mkdir: the CSV sinks (CsvWriter, CampaignRunner)
        // create missing directories themselves, so pure-query
        // invocations leave the filesystem untouched.
        if (!cli.get_bool("no-csv", false))
            csv_dir = cli.get("csv-dir", "bench_csv");
        if (!cli.get_bool("no-store", false))
            store_path = cli.get("store", "sfi_point_store.bin");
    }

    /// Builds the characterized core (prints a one-line summary).
    CharacterizedCore make_core() const {
        const auto t0 = std::chrono::steady_clock::now();
        CharacterizedCore core(core_config);
        const double dt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        std::cout << "[core] " << core.alu().netlist.cell_count()
                  << " cells, f_STA(0.7 V) = " << fmt_fixed(core.sta_fmax_mhz(0.7), 1)
                  << " MHz, DTA " << core_config.dta.cycles
                  << " cycles/class, characterization " << fmt_fixed(dt, 1)
                  << " s\n\n";
        return core;
    }

    McConfig mc_config() const {
        McConfig config;
        config.trials = trials;
        config.seed = seed;
        config.threads = threads;  // parallel MC; output is bit-identical
        return config;
    }

    /// Store/CSV/threads wiring for a campaign run from this bench.
    campaign::RunOptions campaign_options() const {
        campaign::RunOptions options;
        options.store_path = store_path;
        options.csv_dir = csv_dir;
        options.threads = threads;
        options.console = &std::cout;
        return options;
    }

    std::string csv_path(const std::string& name) const {
        return csv_dir.empty() ? std::string{} : csv_dir + "/" + name;
    }

    void footer() const {
        const double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        std::cout << "\n[done in " << fmt_fixed(dt, 1) << " s]\n";
    }

    /// get_uint with CLI-grade error reporting: a bad value prints the
    /// reason and exits 2 instead of running a nonsense experiment.
    /// Bench-specific count flags (fig5's --points) go through this too.
    std::uint64_t checked_uint(const char* name, std::uint64_t def) const {
        try {
            return cli.get_uint(name, def);
        } catch (const std::invalid_argument& e) {
            std::cerr << "error: " << e.what() << "\n";
            std::exit(2);
        }
    }
};

/// Frequencies spanning [lo, hi] with roughly `points` samples.
inline std::vector<double> span(double lo, double hi, std::size_t points) {
    return linspace(lo, hi, points);
}

}  // namespace sfi::bench
