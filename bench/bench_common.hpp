// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --trials N       Monte-Carlo trials per data point (default varies)
//   --threads N      MC worker threads per data point (default 0 = one per
//                    hardware thread; results are bit-identical at any N)
//   --dta-cycles N   DTA characterization kernel length (default 8192)
//   --seed S         Monte-Carlo base seed
//   --watchdog-factor F  watchdog limit as a multiple of the fault-free
//                    kernel run time (default 8; finite, > 0)
//   --sampling MODE  trial-budget policy for campaign points: "fixed"
//                    (the paper's flat trial count, default), "ci"
//                    (batches until the Wilson intervals are tighter than
//                    --ci-target), "two-stage" (cheap screen, refine only
//                    undecided points)
//   --ci-target H    target Wilson half-width for adaptive sampling
//                    (default 0.05; finite, > 0)
//   --max-trials N   adaptive trial ceiling per point (default 1000)
//   --batch N        trials per adaptive batch (default 25)
//   --cache PATH     CDF cache file (default sfi_cdf_cache.bin in cwd)
//   --store PATH     campaign point store (default sfi_point_store.bin;
//                    completed Monte-Carlo points are persisted there and
//                    re-runs with the same parameters are served from it)
//   --no-store       disable the point store (recompute everything)
//   --csv-dir DIR    directory for CSV dumps (default bench_csv)
//   --no-csv         disable CSV output
//   --dispatch MODE  CPU execution engine: "threaded" (decode-once
//                    micro-op interpreter, default) or "legacy"
//                    (reference fetch/decode/execute loop). Results are
//                    bit-identical either way; the flag exists for A/B
//                    perf measurement and semantic cross-checks.
//   --fault-sampling MODE  noise-draw sampling path for models B/B+/C:
//                    "batched" (block-prefetched draws, bit-identical to
//                    scalar, default), "scalar" (per-op reference path),
//                    or "quantized" (alias-table index sampling; faster
//                    but a distinct sampling distribution variant — model
//                    names gain a "-q" suffix and store/cache keys are
//                    salted so results never collide with exact runs).
//   --forensics DIR  opt-in fault forensics: every Benchmark-kernel
//                    campaign point re-runs its first --forensics-trials
//                    trials under the forensic probe and the
//                    vulnerability-report artifacts (records.bin,
//                    forensics.json, CSV tables) land in DIR. Off by
//                    default; off means byte-identical artifacts and no
//                    extra work (src/fi/forensics.hpp).
//   --forensics-trials K  trials forensically sampled per point
//                    (default 32, clamped to the point's trial count)
//   --trace PATH     write a JSONL run ledger (src/obs/ledger.hpp) of the
//                    campaign — spans, probes, stopping decisions,
//                    counters. Analyze or convert it with bench/sfi_trace.
//   --trace-mode M   "wall" (default: full event stream with wall-clock
//                    timestamps) or "logical" (byte-stable spec narrative
//                    for CI diffing; timestamps zeroed)
//   --quiet          suppress the live `point k/N, trials/s, ETA` stderr
//                    progress line (it is TTY-gated anyway)
//
// Tracing never changes results: CSVs and manifests are byte-identical
// with --trace on or off (ledger emission is observation-only).
//
// Flags outside this set (plus a bench's declared extras) produce a
// warning on stderr but are still parsed — typos like `--trails` no
// longer pass silently, while binaries that forward foreign flags keep
// working. Negative --trials/--seed/--dta-cycles and non-finite or
// non-positive --watchdog-factor/--ci-target are rejected with a clear
// message instead of running a nonsense experiment (the same rationale
// as Cli::get_threads's clamping).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sfi/sfi.hpp"

namespace sfi::bench {

inline std::vector<std::string> known_flags(std::vector<std::string> extra) {
    std::vector<std::string> known = {"trials", "threads", "dta-cycles",
                                      "seed",   "cache",   "store",
                                      "no-store", "csv-dir", "no-csv",
                                      "watchdog-factor", "sampling",
                                      "ci-target", "max-trials", "batch",
                                      "dispatch", "fault-sampling",
                                      "forensics", "forensics-trials",
                                      "trace", "trace-mode", "quiet"};
    known.insert(known.end(), std::make_move_iterator(extra.begin()),
                 std::make_move_iterator(extra.end()));
    return known;
}

struct Context {
    Cli cli;
    CoreModelConfig core_config;
    std::size_t trials = 0;
    std::uint64_t seed = 1;
    std::size_t threads = 0;
    double watchdog_factor = 8.0;
    CpuDispatch dispatch = CpuDispatch::Threaded;
    sampling::SamplingPolicy sampling;
    std::string csv_dir;
    std::string store_path;
    std::string forensics_dir;  ///< empty = forensics off (the default)
    std::size_t forensics_trials = 32;
    /// Run ledger (--trace); null unless the flag was given. Owned here so
    /// it outlives the campaign and flushes/closes at Context destruction.
    std::unique_ptr<obs::Ledger> ledger;
    bool quiet = false;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();

    /// `extra_known` declares bench-specific flags (e.g. fig5's --points)
    /// so they are not reported as unknown.
    Context(int argc, char** argv, std::size_t default_trials,
            std::vector<std::string> extra_known = {})
        : cli(argc, argv, known_flags(std::move(extra_known))) {
        for (const std::string& flag : cli.unknown_flags())
            std::cerr << "warning: unknown flag --" << flag
                      << " (ignored; see bench/README.md for the flag list)\n";
        trials = static_cast<std::size_t>(
            checked_uint("trials", static_cast<std::uint64_t>(default_trials)));
        seed = checked_uint("seed", 1);
        threads = cli.get_threads();
        watchdog_factor = checked_positive_double("watchdog-factor", 8.0);
        dispatch = parse_dispatch_flag();
        core_config.fault_sampling = parse_fault_sampling_flag();
        sampling = parse_sampling_policy();
        core_config.dta.cycles =
            static_cast<std::size_t>(checked_uint("dta-cycles", 8192));
        core_config.cdf_cache_path = cli.get("cache", "sfi_cdf_cache.bin");
        // No eager mkdir: the CSV sinks (CsvWriter, CampaignRunner)
        // create missing directories themselves, so pure-query
        // invocations leave the filesystem untouched.
        if (!cli.get_bool("no-csv", false))
            csv_dir = cli.get("csv-dir", "bench_csv");
        if (!cli.get_bool("no-store", false))
            store_path = cli.get("store", "sfi_point_store.bin");
        quiet = cli.get_bool("quiet", false);
        forensics_dir = cli.get("forensics", "");
        forensics_trials = static_cast<std::size_t>(
            checked_uint("forensics-trials", 32));
        if (!forensics_dir.empty() && forensics_trials == 0) {
            std::cerr << "error: --forensics-trials must be positive\n";
            std::exit(2);
        }
        if (const std::string trace = cli.get("trace", ""); !trace.empty()) {
            const std::string mode_name = cli.get("trace-mode", "wall");
            const auto mode = obs::parse_trace_mode(mode_name);
            if (!mode) {
                std::cerr << "error: --trace-mode must be one of logical, "
                             "wall (got \"" << mode_name << "\")\n";
                std::exit(2);
            }
            try {
                ledger = std::make_unique<obs::Ledger>(trace, *mode);
            } catch (const std::exception& e) {
                std::cerr << "error: " << e.what() << "\n";
                std::exit(2);
            }
        }
    }

    /// Builds the characterized core (prints a one-line summary).
    CharacterizedCore make_core() const {
        const auto t0 = std::chrono::steady_clock::now();
        CharacterizedCore core(core_config);
        const double dt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        std::cout << "[core] " << core.alu().netlist.cell_count()
                  << " cells, f_STA(0.7 V) = " << fmt_fixed(core.sta_fmax_mhz(0.7), 1)
                  << " MHz, DTA " << core_config.dta.cycles
                  << " cycles/class, characterization " << fmt_fixed(dt, 1)
                  << " s\n\n";
        return core;
    }

    McConfig mc_config() const {
        McConfig config;
        config.trials = trials;
        config.seed = seed;
        config.watchdog_factor = watchdog_factor;
        config.threads = threads;  // parallel MC; output is bit-identical
        config.dispatch = dispatch;
        config.fault_sampling = core_config.fault_sampling;
        return config;
    }

    /// Applies the shared MC knobs (watchdog, sampling policy) that the
    /// figure factories do not take as parameters. Campaign drivers call
    /// this on every spec they build.
    void apply_to(campaign::CampaignSpec& spec) const {
        spec.watchdog_factor = watchdog_factor;
        spec.sampling = sampling;
    }

    /// Store/CSV/threads wiring for a campaign run from this bench.
    /// (Non-const: the campaign writes through the Context-owned ledger.)
    campaign::RunOptions campaign_options() {
        campaign::RunOptions options;
        options.store_path = store_path;
        options.csv_dir = csv_dir;
        options.threads = threads;
        options.dispatch = dispatch;
        options.console = &std::cout;
        options.ledger = ledger.get();
        options.progress = !quiet;
        options.forensics_dir = forensics_dir;
        options.forensics_trials = forensics_trials;
        return options;
    }

    std::string csv_path(const std::string& name) const {
        return csv_dir.empty() ? std::string{} : csv_dir + "/" + name;
    }

    void footer() const {
        const double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        std::cout << "\n[done in " << fmt_fixed(dt, 1) << " s]\n";
    }

    /// get_uint with CLI-grade error reporting: a bad value prints the
    /// reason and exits 2 instead of running a nonsense experiment.
    /// Bench-specific count flags (fig5's --points) go through this too.
    std::uint64_t checked_uint(const char* name, std::uint64_t def) const {
        try {
            return cli.get_uint(name, def);
        } catch (const std::invalid_argument& e) {
            std::cerr << "error: " << e.what() << "\n";
            std::exit(2);
        }
    }

    /// get_positive_double with the same exit-2 contract: non-finite or
    /// <= 0 --watchdog-factor/--ci-target values abort at parse time.
    double checked_positive_double(const char* name, double def) const {
        try {
            return cli.get_positive_double(name, def);
        } catch (const std::invalid_argument& e) {
            std::cerr << "error: " << e.what() << "\n";
            std::exit(2);
        }
    }

private:
    CpuDispatch parse_dispatch_flag() const {
        const std::string mode = cli.get("dispatch", "threaded");
        const auto parsed = parse_cpu_dispatch(mode);
        if (!parsed) {
            std::cerr << "error: --dispatch must be one of legacy, threaded"
                         " (got \"" << mode << "\")\n";
            std::exit(2);
        }
        return *parsed;
    }

    FaultSamplingMode parse_fault_sampling_flag() const {
        const std::string mode = cli.get("fault-sampling", "batched");
        const auto parsed = parse_fault_sampling_mode(mode);
        if (!parsed) {
            std::cerr << "error: --fault-sampling must be one of scalar, "
                         "batched, quantized (got \"" << mode << "\")\n";
            std::exit(2);
        }
        return *parsed;
    }

    sampling::SamplingPolicy parse_sampling_policy() const {
        const std::string mode = cli.get("sampling", "fixed");
        const auto kind = sampling::parse_sampling_kind(mode);
        if (!kind) {
            std::cerr << "error: --sampling must be one of fixed, ci, "
                         "two-stage (got \"" << mode << "\")\n";
            std::exit(2);
        }
        sampling::SamplingPolicy policy;
        policy.kind = *kind;
        policy.ci_half_width = checked_positive_double("ci-target", 0.05);
        policy.max_trials =
            static_cast<std::size_t>(checked_uint("max-trials", 1000));
        policy.batch_size =
            static_cast<std::size_t>(checked_uint("batch", 25));
        if (policy.batch_size == 0 ||
            (policy.adaptive() && policy.max_trials == 0)) {
            std::cerr << "error: --batch and --max-trials must be positive\n";
            std::exit(2);
        }
        policy.min_trials = std::min(policy.min_trials, policy.max_trials);
        policy.screen_trials = std::min(policy.screen_trials, policy.max_trials);
        return policy;
    }
};

/// Frequencies spanning [lo, hi] with roughly `points` samples.
inline std::vector<double> span(double lo, double hi, std::size_t points) {
    return linspace(lo, hi, points);
}

/// Maps a --benchmark flag value to its BenchmarkId; a typo prints the
/// valid names and exits 2 (the Context::checked_* contract). Call it
/// before producing any output so a bad flag cannot leave a partial
/// report on stdout.
inline BenchmarkId checked_benchmark(const std::string& name) {
    for (const BenchmarkId id : all_benchmarks())
        if (name == benchmark_name(id)) return id;
    std::cerr << "error: --benchmark must be one of:";
    for (const BenchmarkId id : all_benchmarks())
        std::cerr << " " << benchmark_name(id);
    std::cerr << " (got \"" << name << "\")\n";
    std::exit(2);
}

}  // namespace sfi::bench
