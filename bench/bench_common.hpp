// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --trials N       Monte-Carlo trials per data point (default varies)
//   --threads N      MC worker threads per data point (default 0 = one per
//                    hardware thread; results are bit-identical at any N)
//   --dta-cycles N   DTA characterization kernel length (default 8192)
//   --seed S         Monte-Carlo base seed
//   --cache PATH     CDF cache file (default sfi_cdf_cache.bin in cwd)
//   --csv-dir DIR    directory for CSV dumps (default bench_csv)
//   --no-csv         disable CSV output
#pragma once

#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>

#include "sfi/sfi.hpp"

namespace sfi::bench {

struct Context {
    Cli cli;
    CoreModelConfig core_config;
    std::size_t trials;
    std::uint64_t seed;
    std::size_t threads;
    std::string csv_dir;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();

    Context(int argc, char** argv, std::size_t default_trials)
        : cli(argc, argv),
          trials(static_cast<std::size_t>(
              cli.get_int("trials", static_cast<std::int64_t>(default_trials)))),
          seed(static_cast<std::uint64_t>(cli.get_int("seed", 1))),
          threads(cli.get_threads()) {
        core_config.dta.cycles =
            static_cast<std::size_t>(cli.get_int("dta-cycles", 8192));
        core_config.cdf_cache_path = cli.get("cache", "sfi_cdf_cache.bin");
        if (cli.get_bool("no-csv", false)) {
            csv_dir.clear();
        } else {
            csv_dir = cli.get("csv-dir", "bench_csv");
            std::filesystem::create_directories(csv_dir);
        }
    }

    /// Builds the characterized core (prints a one-line summary).
    CharacterizedCore make_core() const {
        const auto t0 = std::chrono::steady_clock::now();
        CharacterizedCore core(core_config);
        const double dt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        std::cout << "[core] " << core.alu().netlist.cell_count()
                  << " cells, f_STA(0.7 V) = " << fmt_fixed(core.sta_fmax_mhz(0.7), 1)
                  << " MHz, DTA " << core_config.dta.cycles
                  << " cycles/class, characterization " << fmt_fixed(dt, 1)
                  << " s\n\n";
        return core;
    }

    McConfig mc_config() const {
        McConfig config;
        config.trials = trials;
        config.seed = seed;
        config.threads = threads;  // parallel MC; output is bit-identical
        return config;
    }

    std::string csv_path(const std::string& name) const {
        return csv_dir.empty() ? std::string{} : csv_dir + "/" + name;
    }

    void footer() const {
        const double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        std::cout << "\n[done in " << fmt_fixed(dt, 1) << " s]\n";
    }
};

/// Frequencies spanning [lo, hi] with roughly `points` samples.
inline std::vector<double> span(double lo, double hi, std::size_t points) {
    return linspace(lo, hi, points);
}

}  // namespace sfi::bench
