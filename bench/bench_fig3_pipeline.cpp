// Fig. 3 is the block diagram of the model-C simulation flow. This bench
// exercises every block of that diagram once and reports what flowed
// through it: gate-level netlist -> dynamic timing analysis -> statistical
// timings (CDFs) -> CDF scaling (frequency + voltage noise) -> per-cycle
// timing error probabilities -> fault injection into the cycle-accurate
// ISS's EX stage.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    // The walkthrough's operating point and demo kernel are flags (all in
    // the known vocabulary, so typos warn instead of passing silently).
    bench::Context ctx(argc, argv, /*default_trials=*/1,
                       {"freq", "vdd", "sigma", "benchmark"});
    const double freq_mhz = ctx.checked_positive_double("freq", 760.0);
    const double vdd = ctx.checked_positive_double("vdd", 0.7);
    const double sigma_mv = ctx.cli.get_double("sigma", 10.0);
    const BenchmarkId bench_id =
        bench::checked_benchmark(ctx.cli.get("benchmark", "mat_mult_8bit"));
    const CharacterizedCore core = ctx.make_core();

    std::cout << "Fig. 3 walkthrough: statistical FI simulation pipeline\n\n";

    // (1) gate-level netlist
    const Netlist& netlist = core.alu().netlist;
    std::cout << "[netlist]   " << netlist.cell_count() << " cells, depth "
              << netlist.logic_depth() << ", endpoints "
              << netlist.output_bus("y").size() << "\n";
    for (const auto& [type, count] : netlist.type_histogram())
        std::cout << "            " << type << " x" << count << "\n";

    // (2) dynamic timing analysis -> statistical timings (CDFs)
    const TimingErrorCdfs& cdfs = *core.cdfs();
    std::cout << "[DTA/CDFs]  " << cdfs.samples_per_endpoint()
              << " arrival samples per endpoint, setup "
              << fmt_fixed(cdfs.setup_ps(), 1) << " ps\n";
    for (const ExClass cls : Alu::instruction_classes())
        std::cout << "            " << ex_class_name(cls)
                  << ": dynamic f_max(" << fmt_fixed(vdd, 2) << " V) = "
                  << fmt_fixed(core.dynamic_fmax_mhz(cls, vdd), 1) << " MHz\n";

    // (3) CDF scaling factor from clock frequency + supply voltage noise
    OperatingPoint point;
    point.freq_mhz = freq_mhz;
    point.vdd = vdd;
    point.noise.sigma_mv = sigma_mv;
    const VddDelayFit& fit = core.lib().fit();
    std::cout << "[scaling]   f = " << fmt_fixed(point.freq_mhz, 0)
              << " MHz, Vdd = " << fmt_fixed(point.vdd, 2)
              << " V, sigma = " << fmt_fixed(point.noise.sigma_mv, 0)
              << " mV -> capture window "
              << fmt_fixed(point.period_ps() / fit.factor(point.vdd), 1)
              << " ps @ Vref (noise range "
              << fmt_fixed(point.period_ps() / fit.factor(point.vdd - 0.02), 1)
              << " .. "
              << fmt_fixed(point.period_ps() / fit.factor(point.vdd + 0.02), 1)
              << " ps)\n";

    // (4) timing error probability evaluation for one instruction
    const double window = point.period_ps() / fit.factor(point.vdd);
    std::cout << "[P_E,V,I]   l.mul endpoint probabilities at this window:\n";
    for (const std::size_t bit : {31, 24, 16, 8, 3})
        std::cout << "            bit[" << bit << "] P = "
                  << fmt_sci(cdfs.violation_prob(ExClass::Mul, bit, window), 3)
                  << "\n";

    // (5) fault injection into the ISS
    auto model = core.make_model_c();
    model->set_operating_point(point);
    model->reseed(ctx.seed);
    const auto bench = make_benchmark(bench_id);
    MonteCarloRunner runner(*bench, *model, ctx.mc_config());
    const TrialOutcome outcome = runner.run_trial(point, 0);
    std::cout << "[ISS]       " << bench->name() << ": "
              << stop_reason_name(outcome.stop) << ", "
              << outcome.kernel_cycles << " kernel cycles, "
              << outcome.fi.alu_ops << " ALU ops offered, "
              << outcome.fi.injections << " faults injected ("
              << fmt_sci(outcome.fi.fi_per_kcycle(), 3) << " FI/kCycle)\n";
    ctx.footer();
    return 0;
}
