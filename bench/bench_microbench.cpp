// Simulator micro-benchmarks (google-benchmark): throughput of the main
// engines so performance regressions in the simulation stack are visible.
#include <benchmark/benchmark.h>

#include "sfi/sfi.hpp"

namespace {

using namespace sfi;

const CharacterizedCore& micro_core() {
    static const CharacterizedCore core = [] {
        CoreModelConfig config;
        config.dta.cycles = 512;  // startup cost only
        return CharacterizedCore(config);
    }();
    return core;
}

void BM_IssMedianKernel(benchmark::State& state) {
    const auto bench = make_benchmark(BenchmarkId::Median);
    Memory memory;
    Cpu cpu(memory);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        cpu.reset(bench->program());
        const RunResult run = cpu.run();
        instructions += run.instructions;
        benchmark::DoNotOptimize(run.exit_code);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssMedianKernel)->Unit(benchmark::kMillisecond);

void BM_IssWithModelC(benchmark::State& state) {
    const auto bench = make_benchmark(BenchmarkId::Median);
    auto model = micro_core().make_model_c();
    OperatingPoint point;
    point.freq_mhz = 760.0;
    point.vdd = 0.7;
    point.noise.sigma_mv = 10.0;
    model->set_operating_point(point);
    Memory memory;
    Cpu cpu(memory);
    cpu.set_fault_hook(model.get());
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        model->reseed(42);
        cpu.reset(bench->program());
        const RunResult run = cpu.run(2'000'000);
        cycles += run.cycles;
        benchmark::DoNotOptimize(run.cycles);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssWithModelC)->Unit(benchmark::kMillisecond);

void BM_EventSimMulCycle(benchmark::State& state) {
    const auto& core = micro_core();
    EventSim sim(core.alu().netlist, core.timing(),
                 {{"op", Alu::op_code(ExClass::Mul)}});
    Rng rng(7);
    sim.set_input("a", rng.u32());
    sim.set_input("b", rng.u32());
    sim.initialize();
    std::uint64_t events = 0;
    for (auto _ : state) {
        sim.set_input("a", rng.u32());
        sim.set_input("b", rng.u32());
        benchmark::DoNotOptimize(sim.settle().data());
    }
    events = sim.total_events();
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventSimMulCycle)->Unit(benchmark::kMicrosecond);

void BM_ModelCAluOp(benchmark::State& state) {
    auto model = micro_core().make_model_c();
    OperatingPoint point;
    point.freq_mhz = 760.0;
    point.vdd = 0.7;
    point.noise.sigma_mv = 10.0;
    model->set_operating_point(point);
    model->reseed(3);
    Rng rng(11);
    ExEvent ev;
    ev.cls = ExClass::Mul;
    for (auto _ : state) {
        model->on_cycle(true);
        ev.operand_a = rng.u32();
        ev.operand_b = rng.u32();
        benchmark::DoNotOptimize(
            model->on_ex_result(ev, ev.operand_a * ev.operand_b));
    }
}
BENCHMARK(BM_ModelCAluOp);

void BM_StaFullAlu(benchmark::State& state) {
    const auto& core = micro_core();
    for (auto _ : state) {
        const StaResult sta = run_sta(core.alu().netlist, core.timing());
        benchmark::DoNotOptimize(sta.worst_ps);
    }
}
BENCHMARK(BM_StaFullAlu)->Unit(benchmark::kMillisecond);

void BM_AssembleMedian(benchmark::State& state) {
    const auto bench = make_benchmark(BenchmarkId::Median);
    const std::string source = bench->asm_source();
    for (auto _ : state) {
        const Program program = assemble(source);
        benchmark::DoNotOptimize(program.byte_size());
    }
}
BENCHMARK(BM_AssembleMedian)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
