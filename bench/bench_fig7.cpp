// Fig. 7 reproduction: relative output error vs. normalized core power
// for the median benchmark under model C, trading supply voltage against
// quality at the fixed nominal frequency of 707 MHz (the STA limit at
// 0.7 V). Three noise levels as in the paper.
//
// Expected shape: error-free at nominal power; the PoFF near 0.93x power
// (~0.667 V); graceful error growth below (paper: 22 % error at 0.88x /
// 0.657 V); at sigma = 25 mV the error rises much earlier, leaving only
// marginal savings.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);
    const CharacterizedCore core = ctx.make_core();
    const auto bench = make_benchmark(BenchmarkId::Median);
    const PowerModel power;

    const double f_nom = core.sta_fmax_mhz(0.7);
    const double v_nom = 0.7;
    const auto vdds = linspace(0.640, v_nom, 16);

    std::cout << "Fig. 7: relative error vs core power, median @ "
              << fmt_fixed(f_nom, 1) << " MHz fixed\n\n";

    std::unique_ptr<CsvWriter> csv;
    if (!ctx.csv_dir.empty()) {
        csv = std::make_unique<CsvWriter>(ctx.csv_path("fig7_error_power.csv"));
        csv->header({"vdd", "normalized_power", "sigma_mv", "avg_rel_error",
                     "finished", "correct"});
    }

    for (const double sigma : {0.0, 10.0, 25.0}) {
        auto model = core.make_model_c();
        OperatingPoint base;
        base.freq_mhz = f_nom;
        base.vdd = v_nom;
        base.noise.sigma_mv = sigma;
        MonteCarloRunner runner(*bench, *model, ctx.mc_config());
        const auto sweep = voltage_sweep(runner, base, vdds);

        std::cout << "sigma = " << fmt_fixed(sigma, 0) << " mV\n";
        TextTable table({"Vdd [V]", "norm. power", "finished", "correct",
                         "avg rel. error %"});
        std::optional<double> poff_vdd;
        for (const PointSummary& p : sweep) {
            const double np = power.normalized_power(p.point.vdd, v_nom);
            table.add_row({fmt_fixed(p.point.vdd, 3), fmt_fixed(np, 3),
                           fmt_pct(p.finished_frac()), fmt_pct(p.correct_frac()),
                           fmt_fixed(p.mean_error, 2)});
            if (!poff_vdd && p.correct_count != p.trials) {
                // sweep is ordered by increasing vdd: remember the highest
                // voltage that is NOT fully correct.
            }
            if (p.correct_count != p.trials) poff_vdd = p.point.vdd;
            if (csv)
                csv->row({p.point.vdd, np, sigma, p.mean_error,
                          p.finished_frac(), p.correct_frac()});
        }
        table.print(std::cout);
        if (poff_vdd)
            std::cout << "first-failure voltage ~" << fmt_fixed(*poff_vdd, 3)
                      << " V (" << fmt_fixed(100.0 * power.normalized_power(
                                                 *poff_vdd, v_nom), 1)
                      << "% of nominal power)\n";
        std::cout << "\n";
    }
    std::cout << "paper anchors: PoFF ~0 % error at 0.93x power (0.667 V); "
                 "22 % error at 0.88x power (0.657 V); sigma = 25 mV erodes "
                 "most of the saving\n";
    ctx.footer();
    return 0;
}
