// Fig. 7 reproduction: relative output error vs. normalized core power
// for the median benchmark under model C, trading supply voltage against
// quality at the fixed nominal frequency of 707 MHz (the STA limit at
// 0.7 V). Three noise levels as in the paper.
//
// Expected shape: error-free at nominal power; the PoFF near 0.93x power
// (~0.667 V); graceful error growth below (paper: 22 % error at 0.88x /
// 0.657 V); at sigma = 25 mV the error rises much earlier, leaving only
// marginal savings.
//
// The voltage sweeps are store-backed panels of the declarative fig7
// campaign (standard sweep CSV per sigma: fig7_s0/s10/s25); this driver
// adds the power-normalized console view of the paper's y-axis.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);
    const PowerModel power;
    const double v_nom = 0.7;

    campaign::CampaignSpec spec =
        campaign::figures::fig7(ctx.core_config, ctx.trials, ctx.seed);
    ctx.apply_to(spec);
    for (campaign::PanelSpec& panel : spec.panels)
        panel.print_table = false;  // power-normalized table below instead

    campaign::RunOptions options = ctx.campaign_options();
    campaign::CampaignRunner runner(spec, std::move(options));
    std::cout << "Fig. 7: relative error vs core power, median @ "
              << fmt_fixed(runner.core().sta_fmax_mhz(v_nom), 1)
              << " MHz fixed\n\n";
    const campaign::CampaignResult result = runner.run();

    for (const campaign::PanelResult& panel : result.panels) {
        const double sigma = panel.sweep.empty()
                                 ? 0.0
                                 : panel.sweep.front().point.noise.sigma_mv;
        std::cout << "sigma = " << fmt_fixed(sigma, 0) << " mV\n";
        TextTable table({"Vdd [V]", "norm. power", "finished", "correct",
                         "avg rel. error %"});
        std::optional<double> poff_vdd;
        for (const PointSummary& p : panel.sweep) {
            const double np = power.normalized_power(p.point.vdd, v_nom);
            table.add_row({fmt_fixed(p.point.vdd, 3), fmt_fixed(np, 3),
                           fmt_pct(p.finished_frac()), fmt_pct(p.correct_frac()),
                           fmt_fixed(p.mean_error, 2)});
            // The sweep is ordered by increasing vdd: remember the
            // highest voltage that is NOT fully correct.
            if (p.correct_count != p.trials) poff_vdd = p.point.vdd;
        }
        table.print(std::cout);
        if (poff_vdd)
            std::cout << "first-failure voltage ~" << fmt_fixed(*poff_vdd, 3)
                      << " V (" << fmt_fixed(100.0 * power.normalized_power(
                                                 *poff_vdd, v_nom), 1)
                      << "% of nominal power)\n";
        std::cout << "\n";
    }
    std::cout << "paper anchors: PoFF ~0 % error at 0.93x power (0.667 V); "
                 "22 % error at 0.88x power (0.657 V); sigma = 25 mV erodes "
                 "most of the saving\n";
    ctx.footer();
    return 0;
}
