// Extension: Razor-style error detection & replay evaluated with the
// statistical FI model — the design alternative the paper's introduction
// contrasts against ([1,2]). Detection converts timing errors into replay
// cycles, so over-scaling trades throughput instead of correctness; the
// statistical model locates the throughput-optimal operating point.
#include "bench_common.hpp"

#include "fi/mitigation.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/40,
                       {"coverage", "replay-penalty"});
    const CharacterizedCore core = ctx.make_core();
    const auto bench = make_benchmark(BenchmarkId::KMeans);

    OperatingPoint base;
    base.vdd = 0.7;
    base.noise.sigma_mv = 10.0;
    const double fsta = core.sta_fmax_mhz(0.7);
    const double coverage = ctx.cli.get_double("coverage", 1.0);
    const unsigned penalty =
        static_cast<unsigned>(ctx.cli.get_int("replay-penalty", 11));

    std::cout << "Razor-style detection (coverage "
              << fmt_pct(coverage) << ", replay " << penalty
              << " cycles) on " << bench->name() << ", Vdd = 0.7 V, "
              << "sigma = 10 mV\n\n";

    TextTable table({"f [MHz]", "finished", "correct", "raw FI/kCycle",
                     "detected/run", "escaped/run", "eff. throughput [MHz]"});
    double best_eff = 0.0, best_f = 0.0;
    for (const double rel :
         {0.95, 1.0, 1.03, 1.06, 1.09, 1.12, 1.15, 1.20, 1.25}) {
        const double f = fsta * rel;
        RazorConfig razor;
        razor.detection_coverage = coverage;
        razor.replay_penalty_cycles = penalty;
        auto model = std::make_unique<ErrorDetectionModel>(core.make_model_c(),
                                                           razor);
        ErrorDetectionModel* razor_model = model.get();
        MonteCarloRunner runner(*bench, *model, ctx.mc_config());
        OperatingPoint point = base;
        point.freq_mhz = f;

        std::size_t finished = 0, correct = 0;
        std::uint64_t detected = 0, escaped = 0;
        double eff_sum = 0.0;
        RunningStats raw_rate;
        // Serial run_trial loop (not run_point): this bench reads the
        // Razor model's detection counters after every trial, which the
        // parallel engine's per-worker clones don't expose — so --threads
        // has no effect here.
        for (std::size_t trial = 0; trial < ctx.trials; ++trial) {
            razor_model->reset_mitigation_stats();
            const TrialOutcome outcome = runner.run_trial(point, trial);
            finished += outcome.finished;
            correct += outcome.correct;
            detected += razor_model->detected();
            escaped += razor_model->escaped();
            raw_rate.add(outcome.fi.fi_per_kcycle());
            eff_sum += razor_model->effective_mhz(f, outcome.kernel_cycles);
        }
        const double eff = eff_sum / static_cast<double>(ctx.trials);
        if (eff > best_eff && finished == ctx.trials) {
            best_eff = eff;
            best_f = f;
        }
        table.add_row(
            {fmt_fixed(f, 1),
             fmt_pct(static_cast<double>(finished) / ctx.trials),
             fmt_pct(static_cast<double>(correct) / ctx.trials),
             fmt_sci(raw_rate.mean(), 3),
             fmt_fixed(static_cast<double>(detected) / ctx.trials, 1),
             fmt_fixed(static_cast<double>(escaped) / ctx.trials, 2),
             fmt_fixed(eff, 1)});
    }
    table.print(std::cout);
    std::cout << "\nthroughput-optimal clock: " << fmt_fixed(best_f, 1)
              << " MHz (" << fmt_fixed(100.0 * (best_f / fsta - 1.0), 1)
              << "% over the STA limit) with effective "
              << fmt_fixed(best_eff, 1) << " MHz\n";
    if (coverage >= 1.0)
        std::cout << "with full coverage every error is replayed: runs stay "
                     "correct and the optimum sits where replay cost "
                     "outweighs the clock gain.\n";
    ctx.footer();
    return 0;
}
