// Campaign driver: runs any of the built-in figure/ablation campaigns
// (src/campaign/figures.hpp) against a shared persistent point store.
//
//   sfi_campaign --list
//   sfi_campaign --figures fig1,fig5 --trials 100 --threads 0
//   sfi_campaign                       # every figure campaign
//
// Completed points land in the store (--store, default
// sfi_point_store.bin) as soon as they finish, so an interrupted run —
// Ctrl-C stops cleanly after the point in flight — resumes where it
// left off, and a re-run with identical parameters is served entirely
// from the store with byte-identical CSV output (the resume contract;
// CI enforces it).
#include <algorithm>
#include <csignal>

#include "bench_common.hpp"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void handle_sigint(int) {
    g_interrupted = 1;
    // Re-arm default handling: the campaign only checks the flag between
    // points, so a second Ctrl-C during a long in-flight point must still
    // be able to terminate the process.
    std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/0, {"figures", "list"});

    if (ctx.cli.get_bool("list", false)) {
        std::cout << "built-in figure campaigns:\n";
        for (const std::string& name : campaign::figures::figure_names())
            std::cout << "  " << name << "\n";
        return 0;
    }

    // --figures a,b,c ("all" or empty = everything).
    std::vector<std::string> selected;
    {
        const std::string list = ctx.cli.get("figures", "all");
        if (list == "all" || list.empty()) {
            selected = campaign::figures::figure_names();
        } else {
            std::string::size_type pos = 0;
            while (pos <= list.size()) {
                const auto comma = list.find(',', pos);
                const std::string name =
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
                if (!name.empty()) selected.push_back(name);
                if (comma == std::string::npos) break;
                pos = comma + 1;
            }
        }
    }

    // Validate every name up front: a typo late in the list must not
    // surface only after earlier campaigns already ran for minutes.
    {
        const auto& names = campaign::figures::figure_names();
        for (const std::string& name : selected)
            if (std::find(names.begin(), names.end(), name) == names.end()) {
                std::cerr << "error: unknown figure campaign: " << name
                          << " (see --list)\n";
                return 2;
            }
    }

    std::signal(SIGINT, handle_sigint);

    std::size_t total_hits = 0, total_misses = 0;
    bool all_completed = true;
    for (const std::string& name : selected) {
        campaign::CampaignSpec spec = campaign::figures::make_figure(
            name, ctx.core_config, ctx.trials, ctx.seed);
        ctx.apply_to(spec);  // --watchdog-factor / --sampling / --ci-target
        campaign::RunOptions options = ctx.campaign_options();
        options.cancelled = [] { return g_interrupted != 0; };
        std::cout << "=== campaign " << name << " ===\n";
        campaign::CampaignRunner runner(std::move(spec), std::move(options));
        const campaign::CampaignResult result = runner.run();
        total_hits += result.store_hits;
        total_misses += result.store_misses;
        if (!result.completed) {
            all_completed = false;
            std::cout << "[interrupted — completed points are persisted; "
                         "re-run to resume]\n";
            break;
        }
        std::cout << "\n";
    }

    std::cout << "store: " << total_hits << " hits, " << total_misses
              << " misses\n";
    ctx.footer();
    return all_completed ? 0 : 130;
}
