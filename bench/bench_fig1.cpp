// Fig. 1 reproduction: performance and fault-injection rate of the median
// benchmark under model B (STA-based) and model B+ (STA + supply noise),
// in narrow frequency windows around each model's failure threshold.
//
// Expected shapes (paper §3.2/3.3): FI onset exactly at the threshold,
// FI rate jumping to 10^2..10^4 per kCycle within ~1 MHz, and the
// finished/correct probabilities collapsing from 100 % to 0 % with almost
// no transition region. With noise the threshold moves well below the
// STA limit (paper: 707 -> 661 -> 588 MHz for sigma = 0/10/25 mV) and the
// onset rate drops to ~10 FI/kCycle.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);
    const CharacterizedCore core = ctx.make_core();
    const auto bench = make_benchmark(BenchmarkId::Median);

    for (const double sigma : {0.0, 10.0, 25.0}) {
        auto model = core.make_model_b();
        OperatingPoint base;
        base.vdd = 0.7;
        base.noise.sigma_mv = sigma;
        model->set_operating_point(base);
        const double f0 = model->first_fault_frequency_mhz();

        MonteCarloRunner runner(*bench, *model, ctx.mc_config());
        const auto freqs = arange(f0 - 1.5, f0 + 3.5, 0.5);
        const auto sweep = frequency_sweep(runner, base, freqs);

        char title[160];
        std::snprintf(title, sizeof title,
                      "Fig. 1 model %s  (Vdd = 0.7 V, sigma = %.0f mV, "
                      "threshold %.1f MHz, STA limit %.1f MHz)",
                      model->name().c_str(), sigma, f0, core.sta_fmax_mhz(0.7));
        std::cout << title << "\n";
        print_sweep(std::cout, "", sweep, "rel. error %");
        std::cout << "\n";

        char csv_name[64];
        std::snprintf(csv_name, sizeof csv_name, "fig1_sigma%.0f.csv", sigma);
        write_sweep_csv(ctx.csv_path(csv_name), sweep);
    }
    ctx.footer();
    return 0;
}
