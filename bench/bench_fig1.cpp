// Fig. 1 reproduction: performance and fault-injection rate of the median
// benchmark under model B (STA-based) and model B+ (STA + supply noise),
// in narrow frequency windows around each model's failure threshold.
//
// Expected shapes (paper §3.2/3.3): FI onset exactly at the threshold,
// FI rate jumping to 10^2..10^4 per kCycle within ~1 MHz, and the
// finished/correct probabilities collapsing from 100 % to 0 % with almost
// no transition region. With noise the threshold moves well below the
// STA limit (paper: 707 -> 661 -> 588 MHz for sigma = 0/10/25 mV) and the
// onset rate drops to ~10 FI/kCycle.
//
// This is a thin driver over the declarative fig1 campaign
// (src/campaign/figures.hpp): sweeps, CSV and the point store all live
// in the campaign engine, so an interrupted run resumes and a repeat run
// is served from the store with byte-identical CSVs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);

    campaign::CampaignSpec spec =
        campaign::figures::fig1(ctx.core_config, ctx.trials, ctx.seed);
    ctx.apply_to(spec);
    // The runner's generic heading is replaced by the historical header
    // with the runtime threshold/STA anchors.
    for (campaign::PanelSpec& panel : spec.panels) panel.title.clear();

    campaign::RunOptions options = ctx.campaign_options();
    options.on_panel_start = [](const campaign::PanelSpec& panel,
                                const CharacterizedCore& core) {
        const double sigma = panel.base.noise.sigma_mv;
        const double f0 =
            campaign::first_fault_mhz(core, panel.model, panel.base);
        char title[160];
        std::snprintf(title, sizeof title,
                      "Fig. 1 model %s  (Vdd = 0.7 V, sigma = %.0f mV, "
                      "threshold %.1f MHz, STA limit %.1f MHz)",
                      sigma > 0.0 ? "B+" : "B", sigma, f0,
                      core.sta_fmax_mhz(0.7));
        std::cout << title << "\n";
    };

    campaign::CampaignRunner runner(std::move(spec), std::move(options));
    runner.run();
    ctx.footer();
    return 0;
}
