// Fig. 5 reproduction: program performance of the median benchmark under
// model C across the reliable->unreliable transition region, for
// Vdd in {0.7, 0.8} V and supply-noise sigma in {0, 10, 25} mV
// (six panels, four metrics each: probability to finish, probability of a
// correct result, FI rate, relative output error), plus the PoFF and its
// frequency gain over the STA limit.
//
// Expected shapes (paper §4.2): PoFF displaced above the pessimistic STA
// limit at low noise, the gain shrinking with sigma and vanishing at
// 25 mV; noise smoothening all transitions; higher Vdd giving sharper
// transitions (faster error explosion beyond the PoFF).
//
// Thin driver over the declarative fig5 campaign: panels, store-backed
// points, CSVs, PoFF lines and the manifest all come from the campaign
// engine.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100, {"points"});
    const std::size_t points =
        static_cast<std::size_t>(ctx.checked_uint("points", 22));

    campaign::CampaignSpec spec = campaign::figures::fig5(
        ctx.core_config, ctx.trials, ctx.seed, points);
    ctx.apply_to(spec);
    for (campaign::PanelSpec& panel : spec.panels) panel.title.clear();

    campaign::RunOptions options = ctx.campaign_options();
    options.on_panel_start = [](const campaign::PanelSpec& panel,
                                const CharacterizedCore& core) {
        char title[160];
        std::snprintf(title, sizeof title,
                      "Fig. 5  Vdd = %.1f V  noise sigma = %.0f mV   "
                      "(STA limit %.1f MHz)",
                      panel.base.vdd, panel.base.noise.sigma_mv,
                      core.sta_fmax_mhz(panel.base.vdd));
        std::cout << title << "\n";
    };
    campaign::CampaignRunner runner(std::move(spec), std::move(options));
    runner.run();

    std::cout << "paper PoFF gains: +11.4% (0.7V/0), +3.3% (0.7V/10), none "
                 "(0.7V/25), +10.1% (0.8V/0), +6.9% (0.8V/10), +0.1% "
                 "(0.8V/25)\n";
    ctx.footer();
    return 0;
}
