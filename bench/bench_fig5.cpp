// Fig. 5 reproduction: program performance of the median benchmark under
// model C across the reliable->unreliable transition region, for
// Vdd in {0.7, 0.8} V and supply-noise sigma in {0, 10, 25} mV
// (six panels, four metrics each: probability to finish, probability of a
// correct result, FI rate, relative output error), plus the PoFF and its
// frequency gain over the STA limit.
//
// Expected shapes (paper §4.2): PoFF displaced above the pessimistic STA
// limit at low noise, the gain shrinking with sigma and vanishing at
// 25 mV; noise smoothening all transitions; higher Vdd giving sharper
// transitions (faster error explosion beyond the PoFF).
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace sfi;
    bench::Context ctx(argc, argv, /*default_trials=*/100);
    const CharacterizedCore core = ctx.make_core();
    const auto bench = make_benchmark(BenchmarkId::Median);

    const std::size_t points =
        static_cast<std::size_t>(ctx.cli.get_int("points", 22));

    for (const double vdd : {0.7, 0.8}) {
        for (const double sigma : {0.0, 10.0, 25.0}) {
            auto model = core.make_model_c();
            OperatingPoint base;
            base.vdd = vdd;
            base.noise.sigma_mv = sigma;
            MonteCarloRunner runner(*bench, *model, ctx.mc_config());

            const double fsta = core.sta_fmax_mhz(vdd);
            // The interesting transition region: from below the noisy
            // first-fault point up to well past total failure.
            model->set_operating_point(base);
            const auto sweep = frequency_sweep(
                runner, base, bench::span(fsta * 0.92, fsta * 1.45, points));

            char title[160];
            std::snprintf(title, sizeof title,
                          "Fig. 5  Vdd = %.1f V  noise sigma = %.0f mV   "
                          "(STA limit %.1f MHz)",
                          vdd, sigma, fsta);
            std::cout << title << "\n";
            print_sweep(std::cout, "", sweep, "rel. error %");

            if (const auto poff = find_poff_mhz(sweep)) {
                std::cout << "PoFF = " << fmt_fixed(*poff, 1) << " MHz, gain "
                          << fmt_fixed(poff_gain_percent(*poff, fsta), 1)
                          << "% over STA\n";
            } else {
                std::cout << "PoFF above the swept range\n";
            }
            std::cout << "\n";

            char csv_name[64];
            std::snprintf(csv_name, sizeof csv_name, "fig5_v%.1f_s%.0f.csv",
                          vdd, sigma);
            write_sweep_csv(ctx.csv_path(csv_name), sweep);
        }
    }
    std::cout << "paper PoFF gains: +11.4% (0.7V/0), +3.3% (0.7V/10), none "
                 "(0.7V/25), +10.1% (0.8V/0), +6.9% (0.8V/10), +0.1% "
                 "(0.8V/25)\n";
    ctx.footer();
    return 0;
}
