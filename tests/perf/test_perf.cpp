// Contracts of the perf instrumentation subsystem (src/perf/):
//  * Stopwatch is monotonic (steady clock, never negative, never
//    decreasing);
//  * PhaseProfile counters are deterministic and merge exactly — the
//    counter columns of BENCH_core.json must not depend on scheduling;
//  * the JSON emitter is stable (same input -> identical bytes) and
//    produces well-formed JSON: a minimal recursive-descent parser here
//    round-trips a full PerfReport and checks the schema keys.
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "perf/json_writer.hpp"
#include "perf/perf.hpp"
#include "perf/report.hpp"

namespace sfi::perf {
namespace {

// ---------------------------------------------------------------------------
// Stopwatch / ScopedPhaseTimer
// ---------------------------------------------------------------------------

TEST(Stopwatch, Monotonic) {
    Stopwatch watch;
    double last = watch.seconds();
    EXPECT_GE(last, 0.0);
    for (int i = 0; i < 1000; ++i) {
        const double now = watch.seconds();
        EXPECT_GE(now, last) << "steady clock went backwards";
        last = now;
    }
}

TEST(Stopwatch, RestartRearms) {
    // Scheduling-proof formulation: after restart(), `watch`'s interval is
    // a strict subset of `reference`'s (started earlier, read later), so
    // watch.seconds() <= reference.seconds() holds on a steady clock no
    // matter how the thread is preempted between the calls.
    Stopwatch watch;
    Stopwatch reference;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    watch.restart();
    const double restarted = watch.seconds();
    const double elapsed = reference.seconds();
    EXPECT_LE(restarted, elapsed);
    EXPECT_GE(restarted, 0.0);
}

TEST(ScopedPhaseTimer, ChargesPhaseOnDestruction) {
    PhaseProfile profile;
    {
        ScopedPhaseTimer timer(&profile, Phase::TrialRun, 42);
    }
    EXPECT_EQ(profile.stats(Phase::TrialRun).calls, 1u);
    EXPECT_EQ(profile.stats(Phase::TrialRun).items, 42u);
    EXPECT_GE(profile.stats(Phase::TrialRun).seconds, 0.0);
    EXPECT_EQ(profile.stats(Phase::Aggregation).calls, 0u);
}

TEST(ScopedPhaseTimer, NullProfileIsNoOp) {
    ScopedPhaseTimer timer(nullptr, Phase::DtaEval, 7);  // must not crash
}

// ---------------------------------------------------------------------------
// PhaseProfile determinism
// ---------------------------------------------------------------------------

TEST(PhaseProfile, CountersAccumulateExactly) {
    PhaseProfile profile;
    for (std::uint64_t i = 0; i < 100; ++i)
        profile.add(Phase::FaultSampling, 0.001, i);
    EXPECT_EQ(profile.stats(Phase::FaultSampling).calls, 100u);
    EXPECT_EQ(profile.stats(Phase::FaultSampling).items, 99u * 100u / 2u);
}

// The supported concurrent pattern: one profile per worker, merged on the
// dispatch thread. The merged counter columns must equal a serial run's
// regardless of how the threads interleaved.
TEST(PhaseProfile, PerWorkerMergeIsDeterministicAcrossThreads) {
    constexpr std::size_t kWorkers = 8;
    constexpr std::uint64_t kAddsPerWorker = 1000;

    std::vector<PhaseProfile> profiles(kWorkers);
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < kWorkers; ++w)
        pool.emplace_back([&profiles, w] {
            for (std::uint64_t i = 0; i < kAddsPerWorker; ++i)
                profiles[w].add(Phase::TrialRun, 1e-9, /*items=*/3);
        });
    for (std::thread& t : pool) t.join();

    PhaseProfile merged;
    for (const PhaseProfile& p : profiles) merged.merge(p);

    PhaseProfile serial;
    for (std::size_t w = 0; w < kWorkers; ++w)
        for (std::uint64_t i = 0; i < kAddsPerWorker; ++i)
            serial.add(Phase::TrialRun, 1e-9, 3);

    EXPECT_EQ(merged.stats(Phase::TrialRun).calls,
              serial.stats(Phase::TrialRun).calls);
    EXPECT_EQ(merged.stats(Phase::TrialRun).items,
              serial.stats(Phase::TrialRun).items);
}

TEST(PhaseProfile, PhaseNamesAreStableIdentifiers) {
    EXPECT_STREQ(phase_name(Phase::DtaEval), "dta_eval");
    EXPECT_STREQ(phase_name(Phase::EventSimSettle), "event_sim_settle");
    EXPECT_STREQ(phase_name(Phase::FaultSampling), "fault_sampling");
    EXPECT_STREQ(phase_name(Phase::Decode), "decode");
    EXPECT_STREQ(phase_name(Phase::TrialRun), "trial_run");
    EXPECT_STREQ(phase_name(Phase::Aggregation), "aggregation");
    EXPECT_STREQ(phase_name(Phase::FaultSamplingBatch),
                 "fault_sampling_batch");
    EXPECT_STREQ(phase_name(Phase::Forensics), "forensics");
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (tests only): enough of RFC 8259 to round-trip
// BENCH_core.json — objects, arrays, strings, numbers, booleans, null.
// ---------------------------------------------------------------------------

struct JsonValue {
    enum class Kind { Object, Array, String, Number, Bool, Null } kind;
    std::map<std::string, std::shared_ptr<JsonValue>> object;
    std::vector<std::shared_ptr<JsonValue>> array;
    std::vector<std::string> object_key_order;
    std::string string;
    double number = 0.0;
    bool boolean = false;

    const JsonValue& at(const std::string& key) const {
        const auto it = object.find(key);
        if (it == object.end()) throw std::out_of_range("no key: " + key);
        return *it->second;
    }
};

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::shared_ptr<JsonValue> parse() {
        auto v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) throw std::runtime_error("trailing data");
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    char peek() {
        skip_ws();
        if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
        return text_[pos_];
    }
    void expect(char c) {
        if (peek() != c)
            throw std::runtime_error(std::string("expected ") + c);
        ++pos_;
    }
    bool consume(std::string_view word) {
        skip_ws();
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) throw std::runtime_error("bad string");
            const char c = text_[pos_++];
            if (c == '"') break;
            if (c == '\\') {
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        const unsigned code = static_cast<unsigned>(
                            std::stoul(std::string(text_.substr(pos_, 4)),
                                       nullptr, 16));
                        pos_ += 4;
                        out += static_cast<char>(code);  // ASCII range only
                        break;
                    }
                    default: throw std::runtime_error("bad escape");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    std::shared_ptr<JsonValue> parse_value() {
        auto value = std::make_shared<JsonValue>();
        const char c = peek();
        if (c == '{') {
            value->kind = JsonValue::Kind::Object;
            expect('{');
            if (peek() != '}') {
                while (true) {
                    std::string key = parse_string();
                    expect(':');
                    value->object_key_order.push_back(key);
                    value->object[key] = parse_value();
                    if (peek() == ',') { expect(','); continue; }
                    break;
                }
            }
            expect('}');
        } else if (c == '[') {
            value->kind = JsonValue::Kind::Array;
            expect('[');
            if (peek() != ']') {
                while (true) {
                    value->array.push_back(parse_value());
                    if (peek() == ',') { expect(','); continue; }
                    break;
                }
            }
            expect(']');
        } else if (c == '"') {
            value->kind = JsonValue::Kind::String;
            value->string = parse_string();
        } else if (consume("true")) {
            value->kind = JsonValue::Kind::Bool;
            value->boolean = true;
        } else if (consume("false")) {
            value->kind = JsonValue::Kind::Bool;
            value->boolean = false;
        } else if (consume("null")) {
            value->kind = JsonValue::Kind::Null;
        } else {
            value->kind = JsonValue::Kind::Number;
            skip_ws();
            std::size_t end = pos_;
            while (end < text_.size() &&
                   (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                    text_[end] == '-' || text_[end] == '+' ||
                    text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E'))
                ++end;
            if (end == pos_) throw std::runtime_error("bad number");
            value->number = std::stod(std::string(text_.substr(pos_, end - pos_)));
            pos_ = end;
        }
        return value;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, RoundTripsScalars) {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object();
    json.field("text", "hi \"there\"");
    json.field("pi", 3.141592653589793);
    json.field("count", std::uint64_t{18446744073709551615ULL});
    json.field("negative", std::int64_t{-42});
    json.field("yes", true);
    json.null_field("nothing");
    json.end_object();

    const auto doc = JsonParser(os.str()).parse();
    EXPECT_EQ(doc->at("text").string, "hi \"there\"");
    EXPECT_DOUBLE_EQ(doc->at("pi").number, 3.141592653589793);
    EXPECT_EQ(doc->at("negative").number, -42.0);
    EXPECT_TRUE(doc->at("yes").boolean);
    EXPECT_EQ(doc->at("nothing").kind, JsonValue::Kind::Null);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object();
    json.field("nan", std::nan(""));
    json.field("inf", std::numeric_limits<double>::infinity());
    json.end_object();
    const auto doc = JsonParser(os.str()).parse();
    EXPECT_EQ(doc->at("nan").kind, JsonValue::Kind::Null);
    EXPECT_EQ(doc->at("inf").kind, JsonValue::Kind::Null);
}

// ---------------------------------------------------------------------------
// BENCH_core.json schema stability
// ---------------------------------------------------------------------------

PerfReport make_report() {
    PerfReport report;
    report.seed = 7;
    report.dta_cycles = 1024;
    report.trials = 256;
    report.benchmark = "median";
    report.phases.add(Phase::DtaEval, 1.25, 10240);
    report.phases.add(Phase::EventSimSettle, 1.125, 10240);
    report.phases.add(Phase::Decode, 0.0625, 512);
    report.phases.add(Phase::TrialRun, 0.5, 2560);
    KernelBench kernel;
    kernel.label = "fig1-modelB-fault";
    kernel.model = "B";
    kernel.benchmark = "median";
    kernel.freq_mhz = 708.5;
    kernel.vdd = 0.7;
    kernel.sigma_mv = 0.0;
    kernel.trials = 256;
    kernel.fast_path = true;
    kernel.scaling.push_back({1, 0.25, 1024.0});
    kernel.scaling.push_back({4, 0.0625, 4096.0});
    report.kernels.push_back(kernel);
    report.fast_path = {700.0, 42000.0, 60.0};
    report.fault_sampling = {2.9e7, 4.3e7, 8.9e7, 1.48, false};
    report.campaign = CampaignSample{"fig1", 1.5, 330};
    report.metrics.add("campaign.points", 33);
    report.metrics.add("campaign.trials_spent", 330);
    report.metrics.add("run.store_misses", 33);
    report.metrics.set_gauge("example.gauge", 2.5);
    report.wall_clock_s = 5.75;
    return report;
}

TEST(BenchCoreJson, EmissionIsByteStable) {
    const PerfReport report = make_report();
    std::ostringstream first, second;
    write_bench_core_json(first, report);
    write_bench_core_json(second, report);
    EXPECT_EQ(first.str(), second.str());
}

TEST(BenchCoreJson, RoundTripParseMatchesSchema) {
    const PerfReport report = make_report();
    std::ostringstream os;
    write_bench_core_json(os, report);
    const auto doc = JsonParser(os.str()).parse();

    // Top-level schema: exact keys in exact order (the stability contract
    // scripts/check_perf_regression.py and artifact diffs rely on).
    // Schema v4 inserted "metrics" (campaign counters/gauges) before
    // "campaign".
    const std::vector<std::string> expected_keys = {
        "schema",    "schema_version", "config",  "phases",
        "kernels",   "fast_path",      "fault_sampling",
        "metrics",   "campaign",       "wall_clock_s"};
    EXPECT_EQ(doc->object_key_order, expected_keys);
    EXPECT_EQ(doc->at("schema").string, "sfi-bench-core");
    EXPECT_EQ(doc->at("schema_version").number, kSchemaVersion);

    EXPECT_EQ(doc->at("config").at("seed").number, 7.0);
    EXPECT_EQ(doc->at("config").at("benchmark").string, "median");

    // One phase row per taxonomy entry, in enum order, values preserved —
    // except "forensics", which is emitted only when it ran (calls > 0):
    // make_report never touches it, so exactly kPhaseCount - 1 rows here.
    // Schema v2 inserted "decode" (micro-op lowering) before "trial_run".
    const auto& phases = doc->at("phases").array;
    ASSERT_EQ(phases.size(), kPhaseCount - 1);
    EXPECT_EQ(phases[0]->at("phase").string, "dta_eval");
    EXPECT_DOUBLE_EQ(phases[0]->at("seconds").number, 1.25);
    EXPECT_EQ(phases[0]->at("items").number, 10240.0);
    EXPECT_EQ(phases[3]->at("phase").string, "decode");
    EXPECT_EQ(phases[3]->at("items").number, 512.0);
    EXPECT_EQ(phases[4]->at("phase").string, "trial_run");
    EXPECT_EQ(phases[5]->at("phase").string, "aggregation");
    EXPECT_EQ(phases[5]->at("calls").number, 0.0);
    // Schema v3 appended "fault_sampling_batch" (block-prefetched draws).
    EXPECT_EQ(phases[6]->at("phase").string, "fault_sampling_batch");

    const auto& kernels = doc->at("kernels").array;
    ASSERT_EQ(kernels.size(), 1u);
    EXPECT_EQ(kernels[0]->at("label").string, "fig1-modelB-fault");
    EXPECT_TRUE(kernels[0]->at("fast_path").boolean);
    ASSERT_EQ(kernels[0]->at("scaling").array.size(), 2u);
    EXPECT_EQ(kernels[0]->at("scaling").array[1]->at("threads").number, 4.0);
    EXPECT_DOUBLE_EQ(
        kernels[0]->at("scaling").array[1]->at("trials_per_sec").number,
        4096.0);

    EXPECT_DOUBLE_EQ(doc->at("fast_path").at("speedup").number, 60.0);
    // Schema v3: the within-run fault-sampling comparison the perf gate
    // reads (batched_speedup is its machine-independent floor metric).
    EXPECT_DOUBLE_EQ(doc->at("fault_sampling").at("scalar_ops_per_sec").number,
                     2.9e7);
    EXPECT_DOUBLE_EQ(
        doc->at("fault_sampling").at("batched_ops_per_sec").number, 4.3e7);
    EXPECT_DOUBLE_EQ(
        doc->at("fault_sampling").at("quantized_ops_per_sec").number, 8.9e7);
    EXPECT_DOUBLE_EQ(doc->at("fault_sampling").at("batched_speedup").number,
                     1.48);
    EXPECT_FALSE(doc->at("fault_sampling").at("avx2").boolean);
    EXPECT_EQ(doc->at("campaign").at("figure").string, "fig1");
    EXPECT_EQ(doc->at("campaign").at("trials_spent").number, 330.0);

    // Schema v4: counters in sorted name order, gauges likewise.
    const auto& counters = doc->at("metrics").at("counters").array;
    ASSERT_EQ(counters.size(), 3u);
    EXPECT_EQ(counters[0]->at("name").string, "campaign.points");
    EXPECT_EQ(counters[0]->at("value").number, 33.0);
    EXPECT_EQ(counters[1]->at("name").string, "campaign.trials_spent");
    EXPECT_EQ(counters[2]->at("name").string, "run.store_misses");
    const auto& gauges = doc->at("metrics").at("gauges").array;
    ASSERT_EQ(gauges.size(), 1u);
    EXPECT_EQ(gauges[0]->at("name").string, "example.gauge");
    EXPECT_DOUBLE_EQ(gauges[0]->at("value").number, 2.5);

    EXPECT_DOUBLE_EQ(doc->at("wall_clock_s").number, 5.75);
}

TEST(BenchCoreJson, ForensicsPhaseRowOnlyWhenRun) {
    PerfReport report = make_report();
    report.phases.add(Phase::Forensics, 0.25, 64);
    std::ostringstream os;
    write_bench_core_json(os, report);
    const auto doc = JsonParser(os.str()).parse();
    const auto& phases = doc->at("phases").array;
    ASSERT_EQ(phases.size(), kPhaseCount);
    EXPECT_EQ(phases[7]->at("phase").string, "forensics");
    EXPECT_DOUBLE_EQ(phases[7]->at("seconds").number, 0.25);
    EXPECT_EQ(phases[7]->at("items").number, 64.0);
}

TEST(BenchCoreJson, AbsentCampaignIsNull) {
    PerfReport report = make_report();
    report.campaign.reset();
    std::ostringstream os;
    write_bench_core_json(os, report);
    const auto doc = JsonParser(os.str()).parse();
    EXPECT_EQ(doc->at("campaign").kind, JsonValue::Kind::Null);
}

}  // namespace
}  // namespace sfi::perf
