// Phase::Decode accounting contract (threaded dispatch): micro-op
// lowering is charged on the dispatching thread only, with deterministic
// call/item counters — a pure function of the configuration (context
// count x program words), never of worker scheduling. Guarantees the
// BENCH_core.json decode column is comparable across runs and machines.
#include <gtest/gtest.h>

#include <memory>

#include "apps/benchmark.hpp"
#include "fi/models.hpp"
#include "mc/montecarlo.hpp"
#include "perf/perf.hpp"

namespace sfi {
namespace {

std::uint64_t program_words(const Benchmark& benchmark) {
    std::uint64_t words = 0;
    for (const auto& section : benchmark.program().sections)
        if (section.addr % 4 == 0) words += section.bytes.size() / 4;
    return words;
}

McConfig make_config(std::size_t threads, CpuDispatch dispatch) {
    McConfig config;
    config.trials = 8;
    config.seed = 1;
    config.threads = threads;
    config.dispatch = dispatch;
    return config;
}

perf::PhaseStats decode_stats_of_run(std::size_t threads,
                                     CpuDispatch dispatch,
                                     double flip_probability = 1e-3) {
    const auto benchmark = make_median(42, 33);
    ModelA model(flip_probability);
    McConfig config = make_config(threads, dispatch);
    // A clean prototype is used to observe the no-relowering steady
    // state; the fast path would skip its ISS runs entirely, so force
    // real (provably injection-free) simulations instead.
    if (flip_probability == 0.0) config.zero_fault_fast_path = false;
    MonteCarloRunner runner(*benchmark, model, config);
    perf::PhaseProfile profile;
    runner.set_perf_profile(&profile);
    runner.run_point(OperatingPoint{});
    return profile.stats(perf::Phase::Decode);
}

// Parallel run_point: every worker context is primed up front on the
// dispatch thread — one Decode record whose item count is exactly
// contexts x program words (workers never decode lazily, so scheduling
// cannot perturb the counters).
TEST(DecodePhase, ParallelPrimingChargesContextsTimesWords) {
    const auto benchmark = make_median(42, 33);
    const std::uint64_t words = program_words(*benchmark);
    ASSERT_GT(words, 0u);

    const perf::PhaseStats stats =
        decode_stats_of_run(8, CpuDispatch::Threaded);
    EXPECT_EQ(stats.calls, 1u);
    EXPECT_EQ(stats.items, 8 * words);
}

// Serial run_point executes on the runner's own Cpu, which the
// constructor primed before the golden run: clean steady-state trials
// must never re-lower a single word. (Injecting runs MAY re-lower —
// corrupted address arithmetic can store into the code image — which is
// why this uses a provably clean model with the fast path disabled.)
TEST(DecodePhase, SerialCleanRunsOnPrimedCpuNeverRelower) {
    const perf::PhaseStats stats =
        decode_stats_of_run(1, CpuDispatch::Threaded, 0.0);
    EXPECT_EQ(stats.calls, 0u);
    EXPECT_EQ(stats.items, 0u);
}

// Legacy dispatch has no micro-op stream; the decode phase must stay
// silent so the BENCH_core.json column reads 0, not noise.
TEST(DecodePhase, LegacyDispatchRecordsNothing) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const perf::PhaseStats stats =
            decode_stats_of_run(threads, CpuDispatch::Legacy);
        EXPECT_EQ(stats.calls, 0u) << threads << " threads";
        EXPECT_EQ(stats.items, 0u) << threads << " threads";
    }
}

// The counters are reproducible: identical configurations on fresh
// runner/profile pairs yield identical calls and items at 1 and 8
// threads alike.
TEST(DecodePhase, CountersAreAPureFunctionOfTheConfiguration) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const perf::PhaseStats a =
            decode_stats_of_run(threads, CpuDispatch::Threaded);
        const perf::PhaseStats b =
            decode_stats_of_run(threads, CpuDispatch::Threaded);
        EXPECT_EQ(a.calls, b.calls) << threads << " threads";
        EXPECT_EQ(a.items, b.items) << threads << " threads";
    }
}

}  // namespace
}  // namespace sfi
