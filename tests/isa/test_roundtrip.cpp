// Property test: disassemble -> assemble -> encode is a fixpoint for
// every opcode (the assembler accepts exactly the disassembler's syntax).
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "util/rng.hpp"

namespace sfi {
namespace {

std::uint32_t first_word(const Program& p) {
    for (const auto& s : p.sections)
        if (s.addr == 0 && s.bytes.size() >= 4)
            return static_cast<std::uint32_t>(s.bytes[0]) |
                   (static_cast<std::uint32_t>(s.bytes[1]) << 8) |
                   (static_cast<std::uint32_t>(s.bytes[2]) << 16) |
                   (static_cast<std::uint32_t>(s.bytes[3]) << 24);
    throw std::runtime_error("no code at address 0");
}

class DisasmRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DisasmRoundTrip, AssemblingDisassemblyReproducesTheWord) {
    const auto op = static_cast<Op>(GetParam());
    const OpInfo& info = op_info(op);
    Rng rng(GetParam() * 17 + 5);
    auto reg = [&] { return static_cast<std::uint8_t>(rng.bounded(32)); };
    for (int trial = 0; trial < 64; ++trial) {
        Instr instr;
        instr.op = op;
        if (info.writes_rd && op != Op::JAL && op != Op::JALR) instr.rd = reg();
        if (info.reads_ra) instr.ra = reg();
        if (info.reads_rb) instr.rb = reg();
        switch (op) {
            case Op::NOP:
            case Op::MOVHI:
            case Op::ANDI:
            case Op::ORI:
                instr.imm = static_cast<std::int32_t>(rng.bounded(0x10000));
                break;
            case Op::SLLI:
            case Op::SRLI:
            case Op::SRAI:
                instr.imm = static_cast<std::int32_t>(rng.bounded(32));
                break;
            case Op::J:
            case Op::JAL:
            case Op::BF:
            case Op::BNF:
                // Literal word offsets round-trip through the assembler.
                instr.imm =
                    static_cast<std::int32_t>(rng.bounded(1u << 20)) - (1 << 19);
                break;
            default:
                if (info.has_imm)
                    instr.imm =
                        static_cast<std::int32_t>(rng.bounded(0x10000)) - 0x8000;
                break;
        }
        const std::uint32_t word = encode(instr);
        const std::string text = disassemble(instr) + "\n";
        const Program p = assemble(text);
        EXPECT_EQ(first_word(p), word) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, DisasmRoundTrip, ::testing::Range<std::size_t>(0, kOpCount),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
        std::string name = op_info(static_cast<Op>(info.param)).mnemonic;
        for (char& c : name)
            if (c == '.') c = '_';
        return name;
    });

}  // namespace
}  // namespace sfi
