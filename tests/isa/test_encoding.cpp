#include "isa/encoding.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sfi {
namespace {

// Hand-checked golden encodings against the OpenRISC 1000 manual.
TEST(Encode, GoldenWords) {
    // l.nop: 0x15000000 | K
    EXPECT_EQ(encode({Op::NOP, 0, 0, 0, 0}), 0x15000000u);
    EXPECT_EQ(encode({Op::NOP, 0, 0, 0, 1}), 0x15000001u);
    // l.addi r3,r4,-1 -> opcode 0x27, D=3, A=4, imm=0xffff
    EXPECT_EQ(encode({Op::ADDI, 3, 4, 0, -1}), (0x27u << 26) | (3u << 21) |
                                                   (4u << 16) | 0xffffu);
    // l.add r1,r2,r3 -> opcode 0x38, low nibble 0
    EXPECT_EQ(encode({Op::ADD, 1, 2, 3, 0}),
              (0x38u << 26) | (1u << 21) | (2u << 16) | (3u << 11));
    // l.mul r5,r6,r7 -> opcode 0x38, op2=3, low=6
    EXPECT_EQ(encode({Op::MUL, 5, 6, 7, 0}), (0x38u << 26) | (5u << 21) |
                                                 (6u << 16) | (7u << 11) |
                                                 (3u << 8) | 0x6u);
    // l.j with offset -2
    EXPECT_EQ(encode({Op::J, 0, 0, 0, -2}), 0x03fffffeu);
    // l.movhi r7,0xABCD
    EXPECT_EQ(encode({Op::MOVHI, 7, 0, 0, 0xABCD}),
              (0x06u << 26) | (7u << 21) | 0xABCDu);
    // l.sw -4(r2),r9: store imm split across [25:21] and [10:0]
    const std::uint32_t imm = 0xfffcu;
    EXPECT_EQ(encode({Op::SW, 0, 2, 9, -4}),
              (0x35u << 26) | ((imm >> 11) << 21) | (2u << 16) | (9u << 11) |
                  (imm & 0x7ffu));
}

TEST(Decode, RejectsUnknownOpcodes) {
    EXPECT_FALSE(decode(0xffffffffu).has_value());
    EXPECT_FALSE(decode(0x60000000u).has_value());  // opcode 0x18: unused
}

TEST(Decode, RejectsBadNopFormat) {
    // l.nop requires bits [25:24] == 01.
    EXPECT_FALSE(decode(0x14000000u).has_value());
}

std::vector<Instr> representative_instrs() {
    std::vector<Instr> out;
    Rng rng(7);
    auto reg = [&] { return static_cast<std::uint8_t>(rng.bounded(32)); };
    for (std::size_t i = 0; i < kOpCount; ++i) {
        const auto op = static_cast<Op>(i);
        const OpInfo& info = op_info(op);
        for (int k = 0; k < 8; ++k) {
            Instr instr;
            instr.op = op;
            // l.jal / l.jalr write r9 implicitly; no rd field is encoded.
            if (info.writes_rd && op != Op::JAL && op != Op::JALR)
                instr.rd = reg();
            if (info.reads_ra) instr.ra = reg();
            if (info.reads_rb) instr.rb = reg();
            if (op == Op::MOVHI || op == Op::NOP || op == Op::ANDI ||
                op == Op::ORI) {
                instr.imm = static_cast<std::int32_t>(rng.bounded(0x10000));
            } else if (op == Op::SLLI || op == Op::SRLI || op == Op::SRAI) {
                instr.imm = static_cast<std::int32_t>(rng.bounded(32));
            } else if (op == Op::J || op == Op::JAL || op == Op::BF ||
                       op == Op::BNF) {
                instr.imm = static_cast<std::int32_t>(rng.bounded(1u << 26)) -
                            (1 << 25);
            } else if (info.has_imm) {
                instr.imm = static_cast<std::int32_t>(rng.bounded(0x10000)) - 0x8000;
            }
            out.push_back(instr);
        }
    }
    return out;
}

TEST(EncodeDecode, RoundTripsEveryOpcode) {
    for (const Instr& instr : representative_instrs()) {
        const std::uint32_t word = encode(instr);
        const auto back = decode(word);
        ASSERT_TRUE(back.has_value()) << disassemble(instr);
        EXPECT_EQ(*back, instr) << disassemble(instr) << " vs "
                                << disassemble(*back);
    }
}

TEST(Encode, ImmediateRangeChecks) {
    EXPECT_THROW(encode({Op::ADDI, 1, 1, 0, 40000}), std::out_of_range);
    EXPECT_THROW(encode({Op::ADDI, 1, 1, 0, -40000}), std::out_of_range);
    EXPECT_THROW(encode({Op::ANDI, 1, 1, 0, -1}), std::out_of_range);
    EXPECT_THROW(encode({Op::ANDI, 1, 1, 0, 0x10000}), std::out_of_range);
    EXPECT_THROW(encode({Op::SLLI, 1, 1, 0, 32}), std::out_of_range);
    EXPECT_THROW(encode({Op::J, 0, 0, 0, 1 << 25}), std::out_of_range);
    EXPECT_NO_THROW(encode({Op::J, 0, 0, 0, (1 << 25) - 1}));
}

TEST(Disassemble, Formats) {
    EXPECT_EQ(disassemble({Op::ADDI, 3, 4, 0, -12}), "l.addi r3,r4,-12");
    EXPECT_EQ(disassemble({Op::ADD, 1, 2, 3, 0}), "l.add r1,r2,r3");
    EXPECT_EQ(disassemble({Op::LWZ, 5, 6, 0, 8}), "l.lwz r5,8(r6)");
    EXPECT_EQ(disassemble({Op::SW, 0, 2, 9, -4}), "l.sw -4(r2),r9");
    EXPECT_EQ(disassemble({Op::BF, 0, 0, 0, 8}), "l.bf 8");
    EXPECT_EQ(disassemble({Op::NOP, 0, 0, 0, 0}), "l.nop");
    EXPECT_EQ(disassemble({Op::NOP, 0, 0, 0, 1}), "l.nop 1");
    EXPECT_EQ(disassemble({Op::SFEQI, 0, 7, 0, 3}), "l.sfeqi r7,3");
    EXPECT_EQ(disassemble({Op::JR, 0, 0, 9, 0}), "l.jr r9");
}

TEST(EncodeDecode, StoreImmediateSplitExhaustive) {
    // The split store immediate is the trickiest field: check the full
    // signed range at a coarse stride plus the boundary values.
    for (std::int32_t imm = -32768; imm <= 32767; imm += 257) {
        const Instr instr{Op::SW, 0, 3, 4, imm};
        const auto back = decode(encode(instr));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->imm, imm);
    }
    for (const std::int32_t imm : {-32768, -1, 0, 1, 32767}) {
        const auto back = decode(encode({Op::SH, 0, 1, 2, imm}));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->imm, imm);
    }
}

}  // namespace
}  // namespace sfi
