#include "isa/isa.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace sfi {
namespace {

TEST(OpInfo, MnemonicsAreUniqueAndPrefixed) {
    std::set<std::string> seen;
    for (std::size_t i = 0; i < kOpCount; ++i) {
        const OpInfo& info = op_info(static_cast<Op>(i));
        EXPECT_TRUE(std::string(info.mnemonic).rfind("l.", 0) == 0)
            << info.mnemonic;
        EXPECT_TRUE(seen.insert(info.mnemonic).second) << info.mnemonic;
    }
}

TEST(OpInfo, AluClassesWriteRdExceptCompares) {
    for (std::size_t i = 0; i < kOpCount; ++i) {
        const auto op = static_cast<Op>(i);
        const OpInfo& info = op_info(op);
        if (info.ex_class == ExClass::None) continue;
        if (info.sets_flag)
            EXPECT_FALSE(info.writes_rd) << info.mnemonic;
        else
            EXPECT_TRUE(info.writes_rd) << info.mnemonic;
    }
}

TEST(OpInfo, BranchesAreNotFiTargets) {
    for (const Op op : {Op::J, Op::JAL, Op::JR, Op::JALR, Op::BF, Op::BNF,
                        Op::LWZ, Op::SW, Op::NOP, Op::MOVHI}) {
        EXPECT_FALSE(is_alu_fi_target(op)) << op_info(op).mnemonic;
    }
}

TEST(OpInfo, AluOpsAreFiTargets) {
    for (const Op op : {Op::ADD, Op::ADDI, Op::SUB, Op::MUL, Op::MULI, Op::AND,
                        Op::SLL, Op::SRAI, Op::SFEQ, Op::SFLTSI}) {
        EXPECT_TRUE(is_alu_fi_target(op)) << op_info(op).mnemonic;
    }
}

TEST(ExClassNames, RoundTrip) {
    for (std::size_t i = 0; i < kExClassCount; ++i) {
        const auto cls = static_cast<ExClass>(i);
        const auto back = ex_class_from_name(ex_class_name(cls));
        ASSERT_TRUE(back.has_value()) << ex_class_name(cls);
        EXPECT_EQ(*back, cls);
    }
    EXPECT_FALSE(ex_class_from_name("bogus").has_value());
}

TEST(AluResult, MatchesReferenceSemantics) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint32_t a = rng.u32(), b = rng.u32();
        EXPECT_EQ(alu_result(ExClass::Add, a, b), a + b);
        EXPECT_EQ(alu_result(ExClass::Sub, a, b), a - b);
        EXPECT_EQ(alu_result(ExClass::Cmp, a, b), a - b);
        EXPECT_EQ(alu_result(ExClass::And, a, b), a & b);
        EXPECT_EQ(alu_result(ExClass::Or, a, b), a | b);
        EXPECT_EQ(alu_result(ExClass::Xor, a, b), a ^ b);
        EXPECT_EQ(alu_result(ExClass::Mul, a, b), a * b);
        EXPECT_EQ(alu_result(ExClass::Sll, a, b), a << (b & 31));
        EXPECT_EQ(alu_result(ExClass::Srl, a, b), a >> (b & 31));
        EXPECT_EQ(alu_result(ExClass::Sra, a, b),
                  static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                             (b & 31)));
    }
}

TEST(CompareFlag, AllConditionsAgainstNative) {
    Rng rng(2);
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> edge = {
        {0, 0},
        {1, 0},
        {0, 1},
        {0x7fffffffu, 0x80000000u},
        {0x80000000u, 0x7fffffffu},
        {0xffffffffu, 0},
        {0xffffffffu, 0xffffffffu},
    };
    auto check = [](std::uint32_t a, std::uint32_t b) {
        const auto sa = static_cast<std::int32_t>(a);
        const auto sb = static_cast<std::int32_t>(b);
        EXPECT_EQ(compare_flag(Op::SFEQ, a, b), a == b);
        EXPECT_EQ(compare_flag(Op::SFNE, a, b), a != b);
        EXPECT_EQ(compare_flag(Op::SFGTU, a, b), a > b);
        EXPECT_EQ(compare_flag(Op::SFGEU, a, b), a >= b);
        EXPECT_EQ(compare_flag(Op::SFLTU, a, b), a < b);
        EXPECT_EQ(compare_flag(Op::SFLEU, a, b), a <= b);
        EXPECT_EQ(compare_flag(Op::SFGTS, a, b), sa > sb);
        EXPECT_EQ(compare_flag(Op::SFGES, a, b), sa >= sb);
        EXPECT_EQ(compare_flag(Op::SFLTS, a, b), sa < sb);
        EXPECT_EQ(compare_flag(Op::SFLES, a, b), sa <= sb);
    };
    for (const auto& [a, b] : edge) check(a, b);
    for (int i = 0; i < 2000; ++i) check(rng.u32(), rng.u32());
}

TEST(CompareFlagFromDiff, AgreesWithDirectFlagForCorrectDiff) {
    Rng rng(3);
    const Op ops[] = {Op::SFEQ, Op::SFNE, Op::SFGTU, Op::SFGEU, Op::SFLTU,
                      Op::SFLEU, Op::SFGTS, Op::SFGES, Op::SFLTS, Op::SFLES};
    for (int i = 0; i < 5000; ++i) {
        const std::uint32_t a = rng.u32(), b = rng.u32();
        const std::uint32_t diff = a - b;
        for (const Op op : ops)
            EXPECT_EQ(compare_flag_from_diff(op, a, b, diff),
                      compare_flag(op, a, b))
                << op_info(op).mnemonic << " a=" << a << " b=" << b;
    }
}

TEST(CompareFlagFromDiff, CorruptedDiffChangesEquality) {
    // A flipped bit in the difference must flip sfeq when a == b.
    const std::uint32_t a = 77, b = 77;
    EXPECT_TRUE(compare_flag_from_diff(Op::SFEQ, a, b, 0));
    EXPECT_FALSE(compare_flag_from_diff(Op::SFEQ, a, b, 1u << 13));
}

TEST(RegName, Format) {
    EXPECT_EQ(reg_name(0), "r0");
    EXPECT_EQ(reg_name(31), "r31");
}

}  // namespace
}  // namespace sfi
