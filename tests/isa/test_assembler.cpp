#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/encoding.hpp"

namespace sfi {
namespace {

std::uint32_t word_at(const Program& p, std::uint32_t addr) {
    for (const auto& s : p.sections) {
        if (addr >= s.addr && addr + 4 <= s.addr + s.bytes.size()) {
            const std::size_t off = addr - s.addr;
            return static_cast<std::uint32_t>(s.bytes[off]) |
                   (static_cast<std::uint32_t>(s.bytes[off + 1]) << 8) |
                   (static_cast<std::uint32_t>(s.bytes[off + 2]) << 16) |
                   (static_cast<std::uint32_t>(s.bytes[off + 3]) << 24);
        }
    }
    throw std::out_of_range("word_at: address not covered");
}

TEST(Assembler, SimpleInstruction) {
    const Program p = assemble("l.addi r3,r0,5\n");
    EXPECT_EQ(word_at(p, 0), encode({Op::ADDI, 3, 0, 0, 5}));
    EXPECT_EQ(p.byte_size(), 4u);
}

TEST(Assembler, CommentsAndBlankLines) {
    const Program p = assemble(
        "# full line comment\n"
        "\n"
        "  l.nop    ; trailing comment\n");
    EXPECT_EQ(word_at(p, 0), encode({Op::NOP, 0, 0, 0, 0}));
}

TEST(Assembler, LabelsResolveToBranchOffsets) {
    const Program p = assemble(
        "start:\n"
        "  l.nop\n"
        "  l.j start\n");
    EXPECT_EQ(word_at(p, 4), encode({Op::J, 0, 0, 0, -1}));
}

TEST(Assembler, ForwardReferences) {
    const Program p = assemble(
        "  l.bf end\n"
        "  l.nop\n"
        "end:\n"
        "  l.nop\n");
    EXPECT_EQ(word_at(p, 0), encode({Op::BF, 0, 0, 0, 2}));
}

TEST(Assembler, HiLoSplitAddresses) {
    const Program p = assemble(
        "  l.movhi r4,hi(data)\n"
        "  l.ori r4,r4,lo(data)\n"
        ".org 0x12340\n"
        "data:\n"
        "  .word 99\n");
    EXPECT_EQ(word_at(p, 0), encode({Op::MOVHI, 4, 0, 0, 0x1}));
    EXPECT_EQ(word_at(p, 4), encode({Op::ORI, 4, 4, 0, 0x2340}));
    EXPECT_EQ(p.symbol("data"), 0x12340u);
    EXPECT_EQ(word_at(p, 0x12340), 99u);
}

TEST(Assembler, MemoryOperands) {
    const Program p = assemble(
        "  l.lwz r5,8(r6)\n"
        "  l.sw -4(r2),r9\n"
        "  l.lbz r1,0(r2)\n");
    EXPECT_EQ(word_at(p, 0), encode({Op::LWZ, 5, 6, 0, 8}));
    EXPECT_EQ(word_at(p, 4), encode({Op::SW, 0, 2, 9, -4}));
    EXPECT_EQ(word_at(p, 8), encode({Op::LBZ, 1, 2, 0, 0}));
}

TEST(Assembler, DataDirectives) {
    const Program p = assemble(
        ".org 0x100\n"
        "d:\n"
        "  .word 1, 2, 0x30\n"
        "  .half 7, 8\n"
        "  .byte 1, 2\n"
        "  .align 4\n"
        "  .space 8\n"
        "e:\n");
    EXPECT_EQ(word_at(p, 0x100), 1u);
    EXPECT_EQ(word_at(p, 0x104), 2u);
    EXPECT_EQ(word_at(p, 0x108), 0x30u);
    // half/byte packing: 7, 8 as halves then 1, 2 as bytes -> one word + pad
    EXPECT_EQ(word_at(p, 0x10c), 7u | (8u << 16));
    EXPECT_EQ(word_at(p, 0x110), 1u | (2u << 8));
    EXPECT_EQ(p.symbol("e"), 0x114u + 8u);
}

TEST(Assembler, EquConstants) {
    const Program p = assemble(
        ".equ N, 12\n"
        ".equ M, N + 3\n"
        "  l.addi r1,r0,N\n"
        "  l.addi r2,r0,M\n");
    EXPECT_EQ(word_at(p, 0), encode({Op::ADDI, 1, 0, 0, 12}));
    EXPECT_EQ(word_at(p, 4), encode({Op::ADDI, 2, 0, 0, 15}));
}

TEST(Assembler, EntryDirective) {
    const Program p = assemble(
        "  l.nop\n"
        ".entry main\n"
        "main:\n"
        "  l.nop 1\n");
    EXPECT_EQ(p.entry, 4u);
}

TEST(Assembler, DefaultEntryIsZero) {
    EXPECT_EQ(assemble("l.nop\n").entry, 0u);
}

TEST(Assembler, ExpressionArithmetic) {
    const Program p = assemble(
        ".org 0x200\n"
        "base:\n"
        "  .word base + 8, base - 4, 2 + 3 + 4\n");
    EXPECT_EQ(word_at(p, 0x200), 0x208u);
    EXPECT_EQ(word_at(p, 0x204), 0x1fcu);
    EXPECT_EQ(word_at(p, 0x208), 9u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
    try {
        assemble("l.nop\nl.bogus r1,r2,r3\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError& e) {
        EXPECT_EQ(e.line, 2u);
    }
}

TEST(Assembler, DuplicateLabelRejected) {
    EXPECT_THROW(assemble("a:\n l.nop\na:\n"), AsmError);
}

TEST(Assembler, UndefinedSymbolRejected) {
    EXPECT_THROW(assemble("l.j nowhere\n"), AsmError);
}

TEST(Assembler, WrongOperandCountRejected) {
    EXPECT_THROW(assemble("l.add r1,r2\n"), AsmError);
    EXPECT_THROW(assemble("l.jr r1,r2\n"), AsmError);
}

TEST(Assembler, BadRegisterRejected) {
    EXPECT_THROW(assemble("l.add r1,r32,r2\n"), AsmError);
    EXPECT_THROW(assemble("l.add r1,x2,r3\n"), AsmError);
}

TEST(Assembler, ImmediateOverflowReportsLine) {
    try {
        assemble("  l.nop\n  l.addi r1,r0,100000\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError& e) {
        EXPECT_EQ(e.line, 2u);
    }
}

TEST(Assembler, MultipleLabelsOnOneAddress) {
    const Program p = assemble(
        "a: b:\n"
        "  l.nop\n");
    EXPECT_EQ(p.symbol("a"), 0u);
    EXPECT_EQ(p.symbol("b"), 0u);
}

TEST(Assembler, NopCodes) {
    const Program p = assemble("l.nop 0x10\nl.nop 0x11\nl.nop 1\n");
    EXPECT_EQ(word_at(p, 0), encode({Op::NOP, 0, 0, 0, kNopKernelBegin}));
    EXPECT_EQ(word_at(p, 4), encode({Op::NOP, 0, 0, 0, kNopKernelEnd}));
    EXPECT_EQ(word_at(p, 8), encode({Op::NOP, 0, 0, 0, kNopExit}));
}

TEST(Assembler, SetFlagSyntax) {
    const Program p = assemble("l.sfeqi r3,-1\nl.sfltu r4,r5\n");
    EXPECT_EQ(word_at(p, 0), encode({Op::SFEQI, 0, 3, 0, -1}));
    EXPECT_EQ(word_at(p, 4), encode({Op::SFLTU, 0, 4, 5, 0}));
}

TEST(Program, SymbolLookupThrowsForUnknown) {
    const Program p = assemble("l.nop\n");
    EXPECT_THROW(p.symbol("missing"), std::out_of_range);
}

TEST(Assembler, OrgCreatesDisjointSections) {
    const Program p = assemble(
        "  l.nop\n"
        ".org 0x8000\n"
        "  .word 5\n");
    ASSERT_EQ(p.sections.size(), 2u);
    EXPECT_EQ(p.sections[0].addr, 0u);
    EXPECT_EQ(p.sections[1].addr, 0x8000u);
}

}  // namespace
}  // namespace sfi
