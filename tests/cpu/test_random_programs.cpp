// Property test: random straight-line ALU programs executed by the fast
// ISS (and the explicit pipeline) must match an independent architectural
// interpreter built directly on the reference semantics.
//
// The generator lives in tests/testing/program_gen.hpp (shared with the
// dispatch-differential harness); this file keeps the original property
// tests plus a determinism guard on the extracted generator.
#include <gtest/gtest.h>

#include "cpu/cpu.hpp"
#include "cpu/pipeline.hpp"
#include "testing/program_gen.hpp"

namespace sfi {
namespace {

using testgen::alu_to_program;
using testgen::generate_alu_program;
using testgen::RandomProgram;

class RandomAluPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAluPrograms, FastIssMatchesReferenceInterpreter) {
    const RandomProgram rp = generate_alu_program(GetParam(), 300);
    Memory memory(1 << 16);
    Cpu cpu(memory);
    cpu.reset(alu_to_program(rp));
    const RunResult run = cpu.run();
    ASSERT_EQ(run.stop, StopReason::Halted);
    for (std::uint8_t r = 0; r < 32; ++r)
        EXPECT_EQ(cpu.reg(r), rp.expected[r]) << "r" << int(r);
    EXPECT_EQ(cpu.flag(), rp.expected_flag);
}

TEST_P(RandomAluPrograms, PipelineMatchesReferenceInterpreter) {
    const RandomProgram rp = generate_alu_program(GetParam(), 300);
    Memory memory(1 << 16);
    PipelineCpu cpu(memory);
    cpu.reset(alu_to_program(rp));
    const RunResult run = cpu.run();
    ASSERT_EQ(run.stop, StopReason::Halted);
    for (std::uint8_t r = 0; r < 32; ++r)
        EXPECT_EQ(cpu.reg(r), rp.expected[r]) << "r" << int(r);
    EXPECT_EQ(cpu.flag(), rp.expected_flag);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAluPrograms,
                         ::testing::Range<std::uint64_t>(1, 13));

// The extraction into program_gen.hpp must not have changed the RNG
// consumption pattern: the same seed produces the same program on every
// call (and therefore the same programs the private generator produced).
TEST(ProgramGen, SameSeedSameProgram) {
    const RandomProgram a = generate_alu_program(42, 300);
    const RandomProgram b = generate_alu_program(42, 300);
    ASSERT_EQ(a.instrs.size(), b.instrs.size());
    for (std::size_t i = 0; i < a.instrs.size(); ++i)
        EXPECT_EQ(a.instrs[i], b.instrs[i]) << "instr " << i;
    EXPECT_EQ(a.expected, b.expected);
    EXPECT_EQ(a.expected_flag, b.expected_flag);

    const Program pa = testgen::generate_fuzz_program(42);
    const Program pb = testgen::generate_fuzz_program(42);
    ASSERT_EQ(pa.sections.size(), 1u);
    EXPECT_EQ(pa.sections[0].bytes, pb.sections[0].bytes);
}

}  // namespace
}  // namespace sfi
