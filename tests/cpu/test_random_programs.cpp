// Property test: random straight-line ALU programs executed by the fast
// ISS (and the explicit pipeline) must match an independent architectural
// interpreter built directly on the reference semantics.
#include <gtest/gtest.h>

#include "cpu/cpu.hpp"
#include "cpu/pipeline.hpp"
#include "isa/encoding.hpp"
#include "util/rng.hpp"

namespace sfi {
namespace {

struct RandomProgram {
    std::vector<Instr> instrs;
    std::array<std::uint32_t, 32> expected{};  // architectural registers
    bool expected_flag = false;
};

RandomProgram generate(std::uint64_t seed, std::size_t length) {
    Rng rng(seed);
    RandomProgram p;
    // Seed some registers with known constants via movhi/ori pairs.
    auto emit = [&](Instr i) { p.instrs.push_back(i); };
    for (std::uint8_t r = 2; r < 8; ++r) {
        const std::uint32_t v = rng.u32();
        emit({Op::MOVHI, r, 0, 0, static_cast<std::int32_t>(v >> 16)});
        emit({Op::ORI, r, r, 0, static_cast<std::int32_t>(v & 0xffffu)});
    }
    const Op alu_ops[] = {Op::ADD,  Op::SUB,  Op::AND,  Op::OR,   Op::XOR,
                          Op::MUL,  Op::SLL,  Op::SRL,  Op::SRA,  Op::ADDI,
                          Op::ANDI, Op::ORI,  Op::XORI, Op::MULI, Op::SLLI,
                          Op::SRLI, Op::SRAI, Op::SFEQ, Op::SFNE, Op::SFGTU,
                          Op::SFLTS, Op::SFGESI, Op::SFLEUI, Op::MOVHI};
    for (std::size_t i = 0; i < length; ++i) {
        const Op op = alu_ops[rng.bounded(std::size(alu_ops))];
        const OpInfo& info = op_info(op);
        Instr instr;
        instr.op = op;
        auto reg = [&] { return static_cast<std::uint8_t>(rng.bounded(30) + 2); };
        if (info.writes_rd) instr.rd = reg();
        if (info.reads_ra) instr.ra = reg();
        if (info.reads_rb) instr.rb = reg();
        if (op == Op::MOVHI || op == Op::ANDI || op == Op::ORI)
            instr.imm = static_cast<std::int32_t>(rng.bounded(0x10000));
        else if (op == Op::SLLI || op == Op::SRLI || op == Op::SRAI)
            instr.imm = static_cast<std::int32_t>(rng.bounded(32));
        else if (info.has_imm)
            instr.imm = static_cast<std::int32_t>(rng.bounded(0x10000)) - 0x8000;
        emit(instr);
    }
    // Independent architectural interpreter (reference semantics only).
    std::array<std::uint32_t, 32> regs{};
    bool flag = false;
    for (const Instr& instr : p.instrs) {
        const OpInfo& info = op_info(instr.op);
        if (instr.op == Op::MOVHI) {
            if (instr.rd != 0)
                regs[instr.rd] = static_cast<std::uint32_t>(instr.imm) << 16;
            continue;
        }
        const std::uint32_t a = regs[instr.ra];
        const std::uint32_t b = info.has_imm
                                    ? static_cast<std::uint32_t>(instr.imm)
                                    : regs[instr.rb];
        if (info.sets_flag) {
            flag = compare_flag(instr.op, a, b);
        } else if (info.writes_rd && instr.rd != 0) {
            regs[instr.rd] = alu_result(info.ex_class, a, b);
        }
    }
    p.expected = regs;
    p.expected_flag = flag;
    return p;
}

Program to_program(const RandomProgram& rp) {
    Program::Section code;
    code.addr = 0;
    auto push_word = [&](std::uint32_t w) {
        code.bytes.push_back(static_cast<std::uint8_t>(w));
        code.bytes.push_back(static_cast<std::uint8_t>(w >> 8));
        code.bytes.push_back(static_cast<std::uint8_t>(w >> 16));
        code.bytes.push_back(static_cast<std::uint8_t>(w >> 24));
    };
    for (const Instr& i : rp.instrs) push_word(encode(i));
    push_word(encode({Op::NOP, 0, 0, 0, kNopExit}));
    Program p;
    p.sections.push_back(std::move(code));
    return p;
}

class RandomAluPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAluPrograms, FastIssMatchesReferenceInterpreter) {
    const RandomProgram rp = generate(GetParam(), 300);
    Memory memory(1 << 16);
    Cpu cpu(memory);
    cpu.reset(to_program(rp));
    const RunResult run = cpu.run();
    ASSERT_EQ(run.stop, StopReason::Halted);
    for (std::uint8_t r = 0; r < 32; ++r)
        EXPECT_EQ(cpu.reg(r), rp.expected[r]) << "r" << int(r);
    EXPECT_EQ(cpu.flag(), rp.expected_flag);
}

TEST_P(RandomAluPrograms, PipelineMatchesReferenceInterpreter) {
    const RandomProgram rp = generate(GetParam(), 300);
    Memory memory(1 << 16);
    PipelineCpu cpu(memory);
    cpu.reset(to_program(rp));
    const RunResult run = cpu.run();
    ASSERT_EQ(run.stop, StopReason::Halted);
    for (std::uint8_t r = 0; r < 32; ++r)
        EXPECT_EQ(cpu.reg(r), rp.expected[r]) << "r" << int(r);
    EXPECT_EQ(cpu.flag(), rp.expected_flag);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAluPrograms,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace sfi
