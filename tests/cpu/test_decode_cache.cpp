// Decode-cache coherence edge cases, for both execution engines:
//
//   * generation-stamp rollover — the legacy per-word decode cache and
//     the threaded micro-op stream both mark validity with a monotone
//     stamp and must survive it wrapping (fast-forwarded via the Cpu
//     debug hooks; unreachable in real runs),
//   * self-modifying code — a store into the executed image must be
//     visible to the very next fetch of that word,
//   * external memory mutation between reset() and run() — writes and
//     Memory::clear() bypass the Cpu entirely and must still invalidate
//     the threaded stream (write-generation coherence guard),
//   * prime_decode() — priming is idempotent and never makes a stale
//     stream trusted before a reset.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/cpu.hpp"
#include "isa/encoding.hpp"
#include "isa/isa.hpp"

namespace sfi {
namespace {

Program words_to_program(const std::vector<std::uint32_t>& words) {
    Program::Section code;
    code.addr = 0;
    for (const std::uint32_t w : words) {
        code.bytes.push_back(static_cast<std::uint8_t>(w));
        code.bytes.push_back(static_cast<std::uint8_t>(w >> 8));
        code.bytes.push_back(static_cast<std::uint8_t>(w >> 16));
        code.bytes.push_back(static_cast<std::uint8_t>(w >> 24));
    }
    Program p;
    p.sections.push_back(std::move(code));
    return p;
}

/// `ori r3, r0, value; l.nop exit` — exits with `value`.
Program exit_with(std::uint32_t value) {
    return words_to_program({
        encode({Op::ORI, 3, 0, 0, static_cast<std::int32_t>(value)}),
        encode({Op::NOP, 0, 0, 0, kNopExit}),
    });
}

// ---------------------------------------------------------------------------
// Generation-stamp rollover.
// ---------------------------------------------------------------------------

TEST(DecodeCache, LegacyGenerationRolloverWipesStaleEntries) {
    Memory mem(1 << 12);
    Cpu cpu(mem);
    cpu.set_dispatch(CpuDispatch::Legacy);

    // First reset sizes the cache (and restarts the stamp); only then can
    // the generation be fast-forwarded to the wrap boundary.
    cpu.reset(exit_with(0));
    cpu.debug_set_decode_generation(~0ULL - 1);

    // Fill the cache with entries stamped at the all-ones generation.
    cpu.reset(exit_with(7));  // bumps to ~0ULL
    EXPECT_EQ(cpu.run().exit_code, 7u);
    EXPECT_EQ(cpu.debug_decode_generation(), ~0ULL);

    // The next reset wraps the stamp; entries from the ~0 generation must
    // not resurface as valid (0 is the permanent "invalid" stamp).
    cpu.reset(exit_with(9));
    EXPECT_EQ(cpu.debug_decode_generation(), 1u);
    EXPECT_EQ(cpu.run().exit_code, 9u);

    // And the cache still works after the wrap.
    cpu.reset(exit_with(11));
    EXPECT_EQ(cpu.debug_decode_generation(), 2u);
    EXPECT_EQ(cpu.run().exit_code, 11u);
}

TEST(DecodeCache, ThreadedGenerationRolloverWipesStaleUops) {
    Memory mem(1 << 12);
    Cpu cpu(mem);
    cpu.set_dispatch(CpuDispatch::Threaded);

    cpu.reset(exit_with(7));
    EXPECT_EQ(cpu.run().exit_code, 7u);
    ASSERT_NE(cpu.debug_interp_generation(), 0u);

    // Stamp the lowered stream at the wrap boundary, then force a
    // wholesale invalidation (different program hash): bump_gen() must
    // wipe every micro-op back to the permanent-invalid stamp and restart
    // at 1 instead of letting stale uops alias the new program.
    cpu.debug_set_interp_generation(0xffffffffu);
    cpu.reset(exit_with(9));
    EXPECT_EQ(cpu.debug_interp_generation(), 1u);
    EXPECT_EQ(cpu.run().exit_code, 9u);

    cpu.reset(exit_with(11));
    EXPECT_EQ(cpu.run().exit_code, 11u);
}

// ---------------------------------------------------------------------------
// Self-modifying code: patch an already-executed instruction and loop
// back over it. A stale decode on either engine exits with the old value.
// ---------------------------------------------------------------------------

Program self_patching_program() {
    const std::uint32_t patch = encode({Op::ORI, 3, 0, 0, 5});
    return words_to_program({
        /*0*/ encode({Op::MOVHI, 4, 0, 0, static_cast<std::int32_t>(patch >> 16)}),
        /*1*/ encode({Op::ORI, 4, 4, 0, static_cast<std::int32_t>(patch & 0xffffu)}),
        /*2*/ encode({Op::ORI, 3, 0, 0, 1}),     // patched to ori r3,r0,5
        /*3*/ encode({Op::SFEQI, 0, 5, 0, 0}),   // pass 1: r5==0 -> flag set
        /*4*/ encode({Op::BNF, 0, 0, 0, 4}),     // pass 2: exit
        /*5*/ encode({Op::ORI, 5, 0, 0, 1}),
        /*6*/ encode({Op::SW, 0, 0, 4, 8}),      // mem[8] = r4 (patch word 2)
        /*7*/ encode({Op::J, 0, 0, 0, -5}),      // back to word 2
        /*8*/ encode({Op::NOP, 0, 0, 0, kNopExit}),
    });
}

TEST(DecodeCache, StoreToExecutedCodeIsVisibleOnBothEngines) {
    for (const CpuDispatch dispatch :
         {CpuDispatch::Legacy, CpuDispatch::Threaded}) {
        Memory mem(1 << 12);
        Cpu cpu(mem);
        cpu.set_dispatch(dispatch);
        cpu.reset(self_patching_program());
        const RunResult run = cpu.run(1000);
        EXPECT_EQ(int(run.stop), int(StopReason::Halted))
            << cpu_dispatch_name(dispatch);
        EXPECT_EQ(run.exit_code, 5u) << cpu_dispatch_name(dispatch);

        // reset() reverts memory to the pristine image; a micro-op
        // lowered from the patched bytes must not survive into the next
        // run (relower_risk protocol). The re-run must patch again, not
        // start from the patched decode.
        cpu.reset(self_patching_program());
        EXPECT_EQ(cpu.memory().read_u32(8), encode({Op::ORI, 3, 0, 0, 1}))
            << cpu_dispatch_name(dispatch);
        EXPECT_EQ(cpu.run(1000).exit_code, 5u) << cpu_dispatch_name(dispatch);
    }
}

// ---------------------------------------------------------------------------
// External mutation between reset() and run(): the coherence guard keys
// on Memory's write generation, which every external write and clear()
// bumps.
// ---------------------------------------------------------------------------

TEST(DecodeCache, ExternalWriteAfterResetIsPickedUp) {
    for (const CpuDispatch dispatch :
         {CpuDispatch::Legacy, CpuDispatch::Threaded}) {
        Memory mem(1 << 12);
        Cpu cpu(mem);
        cpu.set_dispatch(dispatch);

        // Warm every cache with the original word first.
        cpu.reset(exit_with(1));
        EXPECT_EQ(cpu.run().exit_code, 1u) << cpu_dispatch_name(dispatch);

        // Patch word 0 behind the Cpu's back, post-reset.
        cpu.reset(exit_with(1));
        mem.write_u32(0, encode({Op::ORI, 3, 0, 0, 9}));
        EXPECT_EQ(cpu.run().exit_code, 9u) << cpu_dispatch_name(dispatch);
    }
}

TEST(DecodeCache, ExternalClearAfterResetIsPickedUp) {
    for (const CpuDispatch dispatch :
         {CpuDispatch::Legacy, CpuDispatch::Threaded}) {
        Memory mem(1 << 12);
        Cpu cpu(mem);
        cpu.set_dispatch(dispatch);
        cpu.reset(exit_with(1));
        EXPECT_EQ(cpu.run().exit_code, 1u) << cpu_dispatch_name(dispatch);

        // A cleared image is all zeroes, which decode as `l.j 0`: the run
        // must stop immediately as a self-loop at pc 0, not replay the
        // cached program.
        cpu.reset(exit_with(1));
        mem.clear();
        const RunResult run = cpu.run(100);
        EXPECT_EQ(int(run.stop), int(StopReason::SelfLoop))
            << cpu_dispatch_name(dispatch);
        EXPECT_EQ(run.instructions, 0u) << cpu_dispatch_name(dispatch);
    }
}

// ---------------------------------------------------------------------------
// prime_decode(): idempotent, dispatch-gated, and never trusts the
// stream before a reset.
// ---------------------------------------------------------------------------

TEST(DecodeCache, PrimeDecodeIsIdempotentAndUntrustedUntilReset) {
    const Program program = exit_with(3);
    Memory mem(1 << 12);
    Cpu cpu(mem);

    // Legacy dispatch: priming is a no-op by contract.
    cpu.set_dispatch(CpuDispatch::Legacy);
    EXPECT_EQ(cpu.prime_decode(program), 0u);

    cpu.set_dispatch(CpuDispatch::Threaded);
    EXPECT_EQ(cpu.prime_decode(program), 2u);  // both words lowered
    EXPECT_EQ(cpu.prime_decode(program), 0u);  // hash match: no re-lower

    // Priming must not let run() execute before any reset loaded memory:
    // the image is still all zeroes here, so a trusted-but-stale stream
    // would wrongly exit with 3.
    const RunResult unloaded = cpu.run(100);
    EXPECT_EQ(int(unloaded.stop), int(StopReason::SelfLoop));

    cpu.reset(program);
    EXPECT_EQ(cpu.run().exit_code, 3u);
    EXPECT_EQ(cpu.prime_decode(program), 0u);  // still current after runs

    // A different program re-primes in full.
    EXPECT_EQ(cpu.prime_decode(exit_with(4)), 2u);
    cpu.reset(exit_with(4));
    EXPECT_EQ(cpu.run().exit_code, 4u);
}

}  // namespace
}  // namespace sfi
