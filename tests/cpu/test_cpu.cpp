#include "cpu/cpu.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "isa/encoding.hpp"

namespace sfi {
namespace {

struct CpuTest : ::testing::Test {
    Memory memory{1 << 16};
    Cpu cpu{memory};

    RunResult run(const std::string& source, std::uint64_t max_cycles = 0) {
        cpu.reset(assemble(source));
        return cpu.run(max_cycles);
    }
};

TEST_F(CpuTest, HaltReturnsExitCode) {
    const RunResult r = run(
        "  l.addi r3,r0,42\n"
        "  l.nop 1\n");
    EXPECT_EQ(r.stop, StopReason::Halted);
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.exit_code, 42u);
    EXPECT_EQ(r.instructions, 2u);
}

TEST_F(CpuTest, R0IsHardwiredZero) {
    run(
        "  l.addi r0,r0,5\n"
        "  l.ori r3,r0,0\n"
        "  l.nop 1\n");
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(3), 0u);
}

TEST_F(CpuTest, ArithmeticAndLogic) {
    run(
        "  l.addi r4,r0,100\n"
        "  l.addi r5,r0,7\n"
        "  l.add  r6,r4,r5\n"
        "  l.sub  r7,r4,r5\n"
        "  l.and  r8,r4,r5\n"
        "  l.or   r10,r4,r5\n"
        "  l.xor  r11,r4,r5\n"
        "  l.mul  r12,r4,r5\n"
        "  l.nop 1\n");
    EXPECT_EQ(cpu.reg(6), 107u);
    EXPECT_EQ(cpu.reg(7), 93u);
    EXPECT_EQ(cpu.reg(8), 100u & 7u);
    EXPECT_EQ(cpu.reg(10), 100u | 7u);
    EXPECT_EQ(cpu.reg(11), 100u ^ 7u);
    EXPECT_EQ(cpu.reg(12), 700u);
}

TEST_F(CpuTest, ShiftSemantics) {
    run(
        "  l.addi r4,r0,-16\n"
        "  l.slli r5,r4,2\n"
        "  l.srli r6,r4,2\n"
        "  l.srai r7,r4,2\n"
        "  l.addi r8,r0,33\n"   // shift amount masked to 1
        "  l.sll  r10,r4,r8\n"
        "  l.nop 1\n");
    EXPECT_EQ(cpu.reg(5), static_cast<std::uint32_t>(-64));
    EXPECT_EQ(cpu.reg(6), 0xfffffff0u >> 2);
    EXPECT_EQ(cpu.reg(7), static_cast<std::uint32_t>(-4));
    EXPECT_EQ(cpu.reg(10), static_cast<std::uint32_t>(-32));
}

TEST_F(CpuTest, MovhiOriBuildsConstants) {
    run(
        "  l.movhi r4,0xdead\n"
        "  l.ori r4,r4,0xbeef\n"
        "  l.nop 1\n");
    EXPECT_EQ(cpu.reg(4), 0xdeadbeefu);
}

TEST_F(CpuTest, LoadsAndStores) {
    run(
        "  l.movhi r4,hi(buf)\n"
        "  l.ori r4,r4,lo(buf)\n"
        "  l.movhi r5,0x1234\n"
        "  l.ori r5,r5,0x5678\n"
        "  l.sw 0(r4),r5\n"
        "  l.lwz r6,0(r4)\n"
        "  l.lbz r7,0(r4)\n"
        "  l.lhz r8,2(r4)\n"
        "  l.sb 4(r4),r5\n"
        "  l.sh 6(r4),r5\n"
        "  l.lwz r10,4(r4)\n"
        "  l.nop 1\n"
        ".org 0x8000\n"
        "buf: .space 16\n");
    EXPECT_EQ(cpu.reg(6), 0x12345678u);
    EXPECT_EQ(cpu.reg(7), 0x78u);
    EXPECT_EQ(cpu.reg(8), 0x1234u);
    EXPECT_EQ(cpu.reg(10), 0x78u | (0x5678u << 16));
}

TEST_F(CpuTest, CompareAndBranch) {
    const RunResult r = run(
        "  l.addi r4,r0,3\n"
        "  l.addi r5,r0,0\n"
        "loop:\n"
        "  l.addi r5,r5,10\n"
        "  l.addi r4,r4,-1\n"
        "  l.sfnei r4,0\n"
        "  l.bf loop\n"
        "  l.ori r3,r5,0\n"
        "  l.nop 1\n");
    EXPECT_EQ(r.exit_code, 30u);
}

TEST_F(CpuTest, SignedVsUnsignedCompare) {
    run(
        "  l.addi r4,r0,-1\n"      // 0xffffffff
        "  l.addi r5,r0,1\n"
        "  l.addi r6,r0,0\n"
        "  l.sfltu r4,r5\n"        // unsigned: max < 1 is false
        "  l.bf skip1\n"
        "  l.addi r6,r6,1\n"
        "skip1:\n"
        "  l.sflts r4,r5\n"        // signed: -1 < 1 is true
        "  l.bf skip2\n"
        "  l.addi r6,r6,100\n"
        "skip2:\n"
        "  l.ori r3,r6,0\n"
        "  l.nop 1\n");
    EXPECT_EQ(cpu.reg(3), 1u);
}

TEST_F(CpuTest, JumpAndLink) {
    const RunResult r = run(
        "  l.jal sub\n"
        "  l.ori r3,r11,0\n"
        "  l.nop 1\n"
        "sub:\n"
        "  l.addi r11,r0,55\n"
        "  l.jr r9\n");
    EXPECT_EQ(r.exit_code, 55u);
}

TEST_F(CpuTest, JalrLinksAndJumps) {
    const RunResult r = run(
        "  l.movhi r5,hi(dest)\n"
        "  l.ori r5,r5,lo(dest)\n"
        "  l.jalr r5\n"
        "  l.nop 1\n"             // returned here
        "dest:\n"
        "  l.addi r3,r0,9\n"
        "  l.jr r9\n");
    EXPECT_EQ(r.exit_code, 9u);
}

TEST_F(CpuTest, SelfLoopDetected) {
    const RunResult r = run(
        "spin:\n"
        "  l.j spin\n");
    EXPECT_EQ(r.stop, StopReason::SelfLoop);
    EXPECT_FALSE(r.finished());
}

TEST_F(CpuTest, ConditionalSelfLoopDetectedWhenTaken) {
    const RunResult r = run(
        "  l.sfeqi r0,0\n"
        "spin:\n"
        "  l.bf spin\n");
    EXPECT_EQ(r.stop, StopReason::SelfLoop);
}

TEST_F(CpuTest, WatchdogStopsRunawayLoop) {
    const RunResult r = run(
        "loop:\n"
        "  l.addi r4,r4,1\n"
        "  l.j loop\n",
        5000);
    EXPECT_EQ(r.stop, StopReason::Watchdog);
    EXPECT_GE(r.cycles, 5000u);
}

TEST_F(CpuTest, MemFaultOnWildLoad) {
    const RunResult r = run(
        "  l.movhi r4,0xffff\n"
        "  l.lwz r5,0(r4)\n"
        "  l.nop 1\n");
    EXPECT_EQ(r.stop, StopReason::MemFault);
    EXPECT_FALSE(r.finished());
}

TEST_F(CpuTest, MemFaultOnMisalignedStore) {
    const RunResult r = run(
        "  l.addi r4,r0,2\n"
        "  l.sw 0(r4),r4\n"
        "  l.nop 1\n");
    EXPECT_EQ(r.stop, StopReason::MemFault);
    EXPECT_EQ(r.fault_addr, 2u);
}

TEST_F(CpuTest, IllegalInstructionStops) {
    Memory& m = cpu.memory();
    cpu.reset(assemble("l.nop\n"));
    m.write_u32(0, 0xffffffffu);
    const RunResult r = cpu.run();
    EXPECT_EQ(r.stop, StopReason::IllegalInstr);
}

TEST_F(CpuTest, FetchFaultWhenPcEscapes) {
    const RunResult r = run(
        "  l.movhi r4,0x0100\n"   // beyond the 64 KiB test memory
        "  l.jr r4\n");
    EXPECT_EQ(r.stop, StopReason::FetchFault);
}

TEST_F(CpuTest, KernelMarkersToggleFiWindow) {
    run(
        "  l.addi r4,r0,1\n"
        "  l.nop 0x10\n"
        "  l.addi r4,r4,1\n"
        "  l.addi r4,r4,1\n"
        "  l.nop 0x11\n"
        "  l.addi r4,r4,1\n"
        "  l.nop 1\n");
    EXPECT_FALSE(cpu.fi_active());
}

TEST_F(CpuTest, KernelCycleCountingCoversOnlyWindow) {
    const RunResult r = run(
        "  l.addi r4,r0,1\n"
        "  l.nop 0x10\n"
        "  l.addi r4,r4,1\n"
        "  l.nop 0x11\n"
        "  l.addi r4,r4,1\n"
        "  l.nop 1\n");
    EXPECT_GT(r.kernel_cycles, 0u);
    EXPECT_LT(r.kernel_cycles, r.cycles);
    // begin marker + one addi retire inside the window; the end marker's
    // cycle is still inside but it retires after closing the window.
    EXPECT_EQ(r.kernel_instructions, 2u);
    EXPECT_EQ(r.kernel_cycles, 3u);
}

TEST_F(CpuTest, TakenBranchCostsFlushPenalty) {
    // not-taken path: sfeqi + bf + nop 1 -> 3 cycles
    const RunResult nt = run(
        "  l.sfeqi r0,1\n"
        "  l.bf away\n"
        "  l.nop 1\n"
        "away:\n"
        "  l.nop 1\n");
    // taken path adds the flush penalty
    const RunResult t = run(
        "  l.sfeqi r0,0\n"
        "  l.bf away\n"
        "  l.nop 1\n"
        "away:\n"
        "  l.nop 1\n");
    EXPECT_EQ(nt.cycles, 3u);
    EXPECT_EQ(t.cycles, 3u + PipelineTiming{}.taken_branch_flush);
}

TEST_F(CpuTest, LoadUseHazardAddsStall) {
    const RunResult dependent = run(
        "  l.lwz r4,0(r0)\n"
        "  l.add r5,r4,r4\n"
        "  l.nop 1\n");
    const RunResult independent = run(
        "  l.lwz r4,0(r0)\n"
        "  l.add r5,r6,r6\n"
        "  l.nop 1\n");
    EXPECT_EQ(dependent.cycles, independent.cycles + 1);
}

TEST_F(CpuTest, IpcIsCloseToOneForStraightLineAlu) {
    std::string source;
    for (int i = 0; i < 200; ++i) source += "  l.addi r4,r4,1\n";
    source += "  l.nop 1\n";
    const RunResult r = run(source);
    EXPECT_GT(r.ipc(), 0.99);
}

struct CountingHook final : ExFaultHook {
    std::uint64_t cycles = 0, fi_cycles = 0, alu_events = 0;
    std::vector<ExClass> classes;
    std::uint32_t force_value = 0;
    bool force = false;

    void on_cycle(bool fi_active) override {
        ++cycles;
        if (fi_active) ++fi_cycles;
    }
    std::uint32_t on_ex_result(const ExEvent& ev, std::uint32_t correct) override {
        ++alu_events;
        classes.push_back(ev.cls);
        return force ? force_value : correct;
    }
};

TEST_F(CpuTest, HookSeesOnlyKernelAluOps) {
    CountingHook hook;
    cpu.set_fault_hook(&hook);
    run(
        "  l.addi r4,r0,1\n"      // outside window: not offered
        "  l.nop 0x10\n"
        "  l.addi r4,r4,1\n"
        "  l.mul r5,r4,r4\n"
        "  l.lwz r6,0(r0)\n"      // load: never offered
        "  l.nop 0x11\n"
        "  l.addi r4,r4,1\n"      // outside again
        "  l.nop 1\n");
    EXPECT_EQ(hook.alu_events, 2u);
    ASSERT_EQ(hook.classes.size(), 2u);
    EXPECT_EQ(hook.classes[0], ExClass::Add);
    EXPECT_EQ(hook.classes[1], ExClass::Mul);
    EXPECT_EQ(hook.cycles, cpu.cycles());
}

TEST_F(CpuTest, HookCorruptionPropagatesToRegister) {
    CountingHook hook;
    hook.force = true;
    hook.force_value = 0x1234u;
    cpu.set_fault_hook(&hook);
    run(
        "  l.nop 0x10\n"
        "  l.addi r4,r0,1\n"
        "  l.nop 0x11\n"
        "  l.nop 1\n");
    EXPECT_EQ(cpu.reg(4), 0x1234u);
}

TEST_F(CpuTest, CorruptedCompareFlipsBranch) {
    CountingHook hook;
    hook.force = true;
    hook.force_value = 1;  // non-zero difference -> "not equal"
    cpu.set_fault_hook(&hook);
    const RunResult r = run(
        "  l.nop 0x10\n"
        "  l.sfeqi r0,0\n"        // truly equal, but diff corrupted to 1
        "  l.nop 0x11\n"
        "  l.bf good\n"
        "  l.addi r3,r0,7\n"      // branch not taken -> flag was corrupted
        "  l.nop 1\n"
        "good:\n"
        "  l.addi r3,r0,1\n"
        "  l.nop 1\n");
    EXPECT_EQ(r.exit_code, 7u);
}

TEST_F(CpuTest, TraceCallbackFires) {
    std::vector<std::string> lines;
    cpu.set_trace([&](std::uint32_t, const Instr&, const std::string& d) {
        lines.push_back(d);
    });
    run("  l.addi r3,r0,1\n  l.nop 1\n");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "l.addi r3,r0,1");
    EXPECT_EQ(lines[1], "l.nop 1");
}

TEST_F(CpuTest, StepSingleInstruction) {
    cpu.reset(assemble("  l.addi r4,r0,9\n  l.nop 1\n"));
    EXPECT_FALSE(cpu.step().has_value());
    EXPECT_EQ(cpu.reg(4), 9u);
    EXPECT_EQ(cpu.pc(), 4u);
    const auto stop = cpu.step();
    ASSERT_TRUE(stop.has_value());
    EXPECT_EQ(*stop, StopReason::Halted);
}

// reset() fast path: when the same Program is reset repeatedly (the MC
// trial loop), the checkpointed memory image is restored instead of a
// full clear+load. The contract is that a fast reset is observationally
// identical to a full one — these tests run programs whose OUTCOME
// depends on pristine initial memory, so a leaky reset changes exit
// codes rather than passing silently.

namespace {
// Increments an in-section counter word and exits with its new value:
// returns 1 on pristine memory, 2+ if a previous trial's write survived.
const char* const kCounterSource =
    "  l.movhi r4,hi(counter)\n"
    "  l.ori r4,r4,lo(counter)\n"
    "  l.lwz r3,0(r4)\n"
    "  l.addi r3,r3,1\n"
    "  l.sw 0(r4),r3\n"
    "  l.nop 1\n"
    "counter:\n"
    "  .word 0\n";
}  // namespace

TEST_F(CpuTest, RepeatedResetOfSameProgramRestoresInitialState) {
    const Program p = assemble(kCounterSource);
    cpu.reset(p);
    const RunResult first = cpu.run();
    ASSERT_EQ(first.stop, StopReason::Halted);
    ASSERT_EQ(first.exit_code, 1u);
    std::vector<std::uint32_t> regs_first(32);
    for (std::uint8_t i = 0; i < 32; ++i) regs_first[i] = cpu.reg(i);

    for (int trial = 0; trial < 3; ++trial) {
        cpu.reset(p);  // same Program object: eligible for the fast path
        const RunResult again = cpu.run();
        EXPECT_EQ(again.stop, StopReason::Halted) << "trial " << trial;
        EXPECT_EQ(again.exit_code, 1u) << "trial " << trial;
        EXPECT_EQ(again.cycles, first.cycles) << "trial " << trial;
        EXPECT_EQ(again.instructions, first.instructions) << "trial " << trial;
        for (std::uint8_t i = 0; i < 32; ++i)
            ASSERT_EQ(cpu.reg(i), regs_first[i])
                << "trial " << trial << " reg " << int(i);
    }
}

TEST_F(CpuTest, FastResetRevertsWritesOutsideProgramSections) {
    // The program also scribbles far beyond its own image; after a fast
    // reset, memory must be word-for-word what a fresh clear+load gives.
    const Program p = assemble(
        "  l.movhi r4,0x0000\n"
        "  l.ori r4,r4,0x8000\n"
        "  l.addi r5,r0,77\n"
        "  l.sw 0(r4),r5\n"
        "  l.sw 0x100(r4),r5\n"
        "  l.addi r3,r0,1\n"
        "  l.nop 1\n");
    cpu.reset(p);
    ASSERT_EQ(cpu.run().exit_code, 1u);
    cpu.reset(p);

    Memory pristine{1 << 16};
    pristine.load(p);
    for (std::uint32_t addr = 0; addr < (1u << 16); addr += 4)
        ASSERT_EQ(memory.read_u32(addr), pristine.read_u32(addr))
            << "addr " << addr;
}

TEST_F(CpuTest, ResetToADifferentProgramSwitchesCleanly) {
    const Program counter = assemble(kCounterSource);
    const Program other = assemble("  l.addi r3,r0,9\n  l.nop 1\n");
    cpu.reset(counter);
    EXPECT_EQ(cpu.run().exit_code, 1u);
    cpu.reset(other);
    EXPECT_EQ(cpu.run().exit_code, 9u);
    cpu.reset(counter);  // back again: still sees a zeroed counter word
    EXPECT_EQ(cpu.run().exit_code, 1u);
}

TEST_F(CpuTest, ReassembledProgramIsNotMistakenForTheCachedOne) {
    // Re-assigning a fresh assembly into the SAME Program object reuses
    // its address: the identity signature must look at contents, not the
    // pointer, or the stale checkpoint image would resurrect program A.
    Program p = assemble(kCounterSource);
    cpu.reset(p);
    EXPECT_EQ(cpu.run().exit_code, 1u);
    p = assemble("  l.addi r3,r0,33\n  l.nop 1\n");
    cpu.reset(p);
    EXPECT_EQ(cpu.run().exit_code, 33u);
}

TEST_F(CpuTest, SelfModifyingCodeInvalidatesDecodeCache) {
    // The instruction at `patch` (l.addi r3,r0,1) is executed once, then
    // overwritten with l.addi r3,r0,2 and executed again: a stale decode
    // cache would loop forever on r3 == 1.
    const std::uint32_t new_word = encode({Op::ADDI, 3, 0, 0, 2});
    const RunResult r = run(
        "  l.movhi r4,hi(patch)\n"
        "  l.ori r4,r4,lo(patch)\n"
        "  l.movhi r5," +
        std::to_string(new_word >> 16) +
        "\n"
        "  l.ori r5,r5," +
        std::to_string(new_word & 0xffffu) +
        "\n"
        "patch:\n"
        "  l.addi r3,r0,1\n"
        "  l.sfeqi r3,2\n"
        "  l.bf done\n"
        "  l.sw 0(r4),r5\n"       // patch the instruction, retry
        "  l.j patch\n"
        "done:\n"
        "  l.nop 1\n",
        10000);
    EXPECT_EQ(r.stop, StopReason::Halted);
    EXPECT_EQ(r.exit_code, 2u);
}

}  // namespace
}  // namespace sfi
